"""ExpressPass [Cho, Jang, Han — SIGCOMM 2017] — credit-scheduled,
delay-bounded proactive transport.

Table 1's "passive (1st RTT wasted)" proactive baseline.  The model
captures ExpressPass's essentials:

* **Credit request** — the sender announces the message; no data moves
  until credits arrive, so the first RTT carries no payload at all
  (the deployability/efficiency drawback the PPT paper highlights).
* **Credit pacing** — the receiver host paces small credit packets to
  its active senders at (a fraction of) its link rate, shared round-
  robin across inbound messages; each credit authorises exactly one
  data packet, so data arrives pre-scheduled and queues stay near-empty.
* **Credit waste feedback** — credits issued beyond what a sender can
  use are wasted bandwidth; the model stops crediting a message once it
  has been fully authorised.

Like NDP and Homa here, credits ride the ideal control path.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from ..sim.engine import Event
from ..sim.packet import ACK, CONTROL, DATA, HEADER_BYTES, Packet
from ..units import serialization_delay
from .base import Flow, Scheme, TransportContext

# Credits are paced at ~95% of the receiver link rate (the paper's
# aggressiveness-controlled target), expressed per full data packet.
CREDIT_RATE_FRACTION = 0.95


class ExpressPassReceiverHost:
    """Per-host credit pacer, round-robin over inbound messages."""

    def __init__(self, host_id: int, ctx: TransportContext) -> None:
        self.host_id = host_id
        self.ctx = ctx
        self.flows: Dict[int, dict] = {}
        self.credit_queue: Deque[int] = deque()  # flow ids awaiting credits
        self._pacer_armed = False
        self._next_free = 0.0
        rate = ctx.network.hosts[host_id].uplink.rate_bps
        self._interval = serialization_delay(
            ctx.config.mss, rate * CREDIT_RATE_FRACTION)

    def open_message(self, flow: Flow) -> None:
        n = flow.n_packets(self.ctx.config.mss)
        self.flows[flow.flow_id] = {
            "flow": flow,
            "n": n,
            "credited": 0,
            "delivered": set(),
            "cum": 0,
            "done": False,
            "progress_mark": 0,
            "recredit": deque(),
        }
        self.credit_queue.append(flow.flow_id)
        self._arm()
        self.ctx.sim.schedule(self.ctx.config.min_rto, self._rtx_check,
                              flow.flow_id)

    def _rtx_check(self, flow_id: int) -> None:
        """Fully-credited message with no delivery progress for an RTO:
        some credited packets were lost — re-credit the holes."""
        state = self.flows.get(flow_id)
        if state is None or state["done"]:
            return
        delivered = state["delivered"]
        if (state["credited"] >= state["n"]
                and len(delivered) <= state["progress_mark"]
                and not state["recredit"]):
            # target exactly the holes, not a sequential re-walk
            state["recredit"].extend(
                seq for seq in range(state["n"]) if seq not in delivered)
            if flow_id not in self.credit_queue:
                self.credit_queue.append(flow_id)
            self._arm()
        state["progress_mark"] = len(delivered)
        self.ctx.sim.schedule(self.ctx.config.min_rto, self._rtx_check,
                              flow_id)

    def on_data(self, pkt: Packet) -> None:
        state = self.flows.get(pkt.flow_id)
        if state is None or state["done"]:
            return
        delivered = state["delivered"]
        if pkt.seq not in delivered:
            delivered.add(pkt.seq)
            while state["cum"] in delivered:
                state["cum"] += 1
        if len(delivered) >= state["n"]:
            state["done"] = True
            self._final_ack(state)
            self.ctx.on_complete(state["flow"])
            return

    def _arm(self) -> None:
        if self._pacer_armed or not self.credit_queue:
            return
        self._pacer_armed = True
        delay = max(0.0, self._next_free - self.ctx.sim.now)
        self.ctx.sim.schedule(delay, self._issue_credit)

    def _issue_credit(self) -> None:
        self._pacer_armed = False
        while self.credit_queue:
            flow_id = self.credit_queue[0]
            state = self.flows.get(flow_id)
            if (state is None or state["done"]
                    or (state["credited"] >= state["n"]
                        and not state["recredit"])):
                self.credit_queue.popleft()
                continue
            break
        else:
            return
        state = self.flows[flow_id]
        self.credit_queue.rotate(-1)  # round-robin across messages
        self._next_free = self.ctx.sim.now + self._interval
        flow = state["flow"]
        if state["recredit"]:
            seq = state["recredit"].popleft()
            if seq in state["delivered"]:
                self._arm()
                return
        else:
            seq = state["credited"]
            state["credited"] += 1
        credit = Packet(flow_id, self.host_id, flow.src, seq,
                        HEADER_BYTES, kind=CONTROL, priority=0)
        credit.ack_seq = state["cum"]
        self.ctx.network.send_control(credit)
        self._arm()

    def _final_ack(self, state: dict) -> None:
        flow = state["flow"]
        ack = Packet(flow.flow_id, self.host_id, flow.src, state["n"],
                     HEADER_BYTES, kind=ACK, priority=0)
        ack.ack_seq = state["n"]
        self.ctx.network.send_control(ack)


class _ReceiverEndpoint:
    __slots__ = ("manager",)

    def __init__(self, manager: ExpressPassReceiverHost) -> None:
        self.manager = manager

    def on_packet(self, pkt: Packet) -> None:
        if pkt.kind == DATA:
            self.manager.on_data(pkt)


class ExpressPassSender:
    """Sends exactly one data packet per received credit."""

    def __init__(self, flow: Flow, ctx: TransportContext) -> None:
        self.flow = flow
        self.ctx = ctx
        self.sim = ctx.sim
        self.cfg = ctx.config
        self.host = ctx.network.hosts[flow.src]
        self.n_packets = flow.n_packets(self.cfg.mss)
        self.finished = False
        self.pkts_transmitted = 0
        self.pkts_retransmitted = 0
        if flow.first_syscall_bytes is None:
            flow.first_syscall_bytes = min(flow.size,
                                           self.cfg.send_buffer_bytes)

    def start(self) -> None:
        """Nothing to do: the receiver was notified out-of-band (the
        request rides the flow-open control exchange) and data waits for
        credits — the wasted first RTT."""

    def stop(self) -> None:
        self.finished = True

    def on_packet(self, pkt: Packet) -> None:
        if self.finished:
            return
        if pkt.kind == ACK and pkt.ack_seq >= self.n_packets:
            self.stop()
            return
        if pkt.kind != CONTROL:
            return
        seq = min(pkt.seq, self.n_packets - 1)
        payload = self.cfg.payload_per_packet()
        remaining = self.flow.size - seq * payload
        size = min(self.cfg.mss, max(1, remaining) + HEADER_BYTES)
        data = Packet(self.flow.flow_id, self.flow.src, self.flow.dst, seq,
                      size, kind=DATA, priority=0, ecn_capable=False)
        data.retransmit = seq < pkt.ack_seq
        data.sent_at = self.sim.now
        self.pkts_transmitted += 1
        if data.retransmit:
            self.pkts_retransmitted += 1
        self.host.send(data)


class ExpressPass(Scheme):
    name = "expresspass"

    def _manager(self, host_id: int,
                 ctx: TransportContext) -> ExpressPassReceiverHost:
        managers = ctx.extra.setdefault("xpass_rx", {})
        manager = managers.get(host_id)
        if manager is None:
            manager = ExpressPassReceiverHost(host_id, ctx)
            managers[host_id] = manager
        return manager

    def start_flow(self, flow: Flow, ctx: TransportContext) -> None:
        manager = self._manager(flow.dst, ctx)
        sender = ExpressPassSender(flow, ctx)
        receiver = _ReceiverEndpoint(manager)
        ctx.network.attach(flow.flow_id, flow.src, flow.dst, sender, receiver)
        sender.start()
        # the credit request reaches the receiver after one-way delay
        ctx.sim.schedule(ctx.network.base_delay(flow.src, flow.dst),
                         manager.open_message, flow)
