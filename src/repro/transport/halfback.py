"""Halfback [Li, Dong, Godfrey — CoNEXT 2015] — "running short flows
quickly and safely".

Table 1's second startup-focused reactive baseline.  Halfback has two
mechanisms:

* **Pacing-out**: flows up to ~141KB skip slow start entirely — the
  whole flow is paced out within the first RTT (at line rate in the
  original; paced over one RTT here, which is the paper's description).
* **Backwards retransmission (proactive redundancy)**: after pacing the
  flow out, the sender immediately retransmits packets from the *tail
  backwards* while waiting for ACKs, so a lost packet near the end is
  repaired without waiting for a timeout.  Redundant packets are
  deprioritised so they only consume spare capacity.

Flows larger than the pace-out threshold fall back to standard TCP
behaviour (slow start from IW).  Like TCP-10, Halfback ignores the
queue-buildup phase — which is the PPT paper's critique ("utilize spare
bandwidth in the startup phase ... while ignoring those in the queue
buildup phase").
"""

from __future__ import annotations

from typing import Optional

from ..sim.engine import Event
from .base import Flow, Scheme, TransportContext
from .window import WindowReceiver, WindowSender

PACE_OUT_LIMIT = 141_000       # bytes; flows up to this are paced out
REDUNDANCY_PRIORITY = 7        # backwards retransmissions ride the bottom


class HalfbackSender(WindowSender):
    """Window sender with first-RTT pace-out and backwards redundancy."""

    def __init__(self, flow: Flow, ctx: TransportContext) -> None:
        super().__init__(flow, ctx)
        self.paced_out = flow.size <= PACE_OUT_LIMIT
        self.redundant_sent = 0
        self._pace_events: list = []
        self._back_ptr = self.n_packets - 1

    def ecn_capable(self) -> bool:
        return False

    def start(self) -> None:
        if not self.paced_out:
            super().start()
            return
        # pace the whole flow over one RTT, then start backwards
        # retransmission of unacked packets
        interval = max(self.base_rtt, 1e-9) / self.n_packets
        self.cwnd = float(self.n_packets)
        for i in range(self.n_packets):
            self._pace_events.append(
                self.sim.schedule(i * interval, self._paced_send, i))
        self._pace_events.append(
            self.sim.schedule(self.base_rtt, self._backwards_round))

    def stop(self) -> None:
        super().stop()
        for event in self._pace_events:
            event.cancel()
        self._pace_events.clear()

    def _paced_send(self, seq: int) -> None:
        if self.finished or seq in self.delivered:
            return
        self.transmit(seq)

    def _backwards_round(self) -> None:
        """Redundantly resend un-ACKed packets from the tail backwards,
        one per ACK-interval, until everything is delivered."""
        if self.finished:
            return
        ptr = self._back_ptr
        while ptr >= 0 and ptr in self.delivered:
            ptr -= 1
        if ptr < 0:
            # completed one backwards sweep; start over after one RTT
            # (Halfback keeps repairing until everything is ACKed)
            self._back_ptr = self.n_packets - 1
            self._pace_events.append(
                self.sim.schedule(max(self.srtt, self.base_rtt),
                                  self._backwards_round))
            return
        self._back_ptr = ptr
        pkt = self.build_packet(ptr)
        pkt.retransmit = True
        pkt.priority = REDUNDANCY_PRIORITY
        pkt.lcp = True              # redundancy is scavenger-class
        pkt.sent_at = self.sim.now
        self._back_ptr -= 1
        self.pkts_transmitted += 1
        self.pkts_retransmitted += 1
        self.host.send(pkt)
        interval = max(self.srtt, self.base_rtt) / max(self.n_packets, 1)
        self._pace_events.append(
            self.sim.schedule(interval, self._backwards_round))

    def on_packet(self, pkt) -> None:
        if pkt.kind == 1 and pkt.lcp and not self.finished:  # ACK for redundancy
            self.delivered.add(pkt.seq)
            self.outstanding.pop(pkt.seq, None)
            if len(self.delivered) >= self.n_packets:
                self.stop()
            return
        super().on_packet(pkt)


class Halfback(Scheme):
    name = "halfback"

    def start_flow(self, flow: Flow, ctx: TransportContext) -> None:
        sender = HalfbackSender(flow, ctx)
        receiver = WindowReceiver(flow, ctx)
        ctx.network.attach(flow.flow_id, flow.src, flow.dst, sender, receiver)
        sender.start()
