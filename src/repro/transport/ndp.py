"""NDP [Handley et al., SIGCOMM 2017] — trimming + pull-based transport.

Fabric behaviour (enabled by :meth:`Ndp.configure_network`):

* tiny switch queues (8 full packets per port),
* **packet trimming**: on overflow the payload is cut and the 64-byte
  header is queued at the highest priority, so the receiver learns about
  every would-be loss within one RTT,
* per-packet **spraying** across all equal-cost paths.

End-host behaviour:

* the sender blasts the first RTT's worth of packets unsolicited, then
  sends exactly one packet per received PULL;
* the receiver host runs a single paced *pull queue* shared by all
  inbound flows: one PULL is released per packet-serialisation time of
  the downlink, which clocks aggregate arrivals at exactly line rate;
* a trimmed header both requests a retransmission and earns a pull slot.

The PPT paper's characterisation — "passive, 1st RTT wasted" for loaded
networks (Table 1) and good incast behaviour (Fig. 23) — both emerge from
this model.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Set, Tuple

from ..sim.engine import Event
from ..sim.network import Network
from ..sim.packet import ACK, DATA, HEADER, HEADER_BYTES, PULL, Packet
from ..units import serialization_delay
from .base import Flow, Scheme, TransportContext

NDP_QUEUE_PACKETS = 8


class NdpReceiverHost:
    """Per-host pull pacer and delivery tracker."""

    def __init__(self, host_id: int, ctx: TransportContext) -> None:
        self.host_id = host_id
        self.ctx = ctx
        self.flows: Dict[int, dict] = {}
        # pull queue entries: (flow_id, rtx_seq or None)
        self.pull_queue: Deque[Tuple[int, Optional[int]]] = deque()
        self._pacer_armed = False
        self._next_free = 0.0
        rate = ctx.network.hosts[host_id].uplink.rate_bps
        self._pull_interval = serialization_delay(ctx.config.mss, rate)

    def add_flow(self, flow: Flow, first_window: int) -> None:
        n = flow.n_packets(self.ctx.config.mss)
        self.flows[flow.flow_id] = {
            "flow": flow,
            "n": n,
            "delivered": set(),
            "cum": 0,
            # every packet beyond the unsolicited first window is clocked
            # out by exactly one pull
            "pull_budget": max(0, n - first_window),
            "pulls_issued": 0,
            "done": False,
            "progress_mark": 0,
        }
        # receiver-driven retransmission timer (real NDP receivers keep
        # an RTX timer per incomplete message)
        self.ctx.sim.schedule(self.ctx.config.min_rto, self._rtx_check,
                              flow.flow_id)

    def _rtx_check(self, flow_id: int) -> None:
        state = self.flows.get(flow_id)
        if state is None or state["done"]:
            return
        min_rto = self.ctx.config.min_rto
        delivered = state["delivered"]
        if len(delivered) <= state["progress_mark"]:
            # no unique-delivery progress in a full RTO: re-pull holes
            pulled = 0
            for seq in range(state["n"]):
                if seq in delivered:
                    continue
                self._enqueue_pull(flow_id, seq)
                pulled += 1
                if pulled >= 64:
                    break
        state["progress_mark"] = len(delivered)
        self.ctx.sim.schedule(min_rto, self._rtx_check, flow_id)

    # -- arrivals ---------------------------------------------------------

    def on_packet(self, pkt: Packet) -> None:
        state = self.flows.get(pkt.flow_id)
        if state is None or state["done"]:
            return
        if pkt.kind == DATA:
            delivered: Set[int] = state["delivered"]
            if pkt.seq not in delivered:
                delivered.add(pkt.seq)
                while state["cum"] in delivered:
                    state["cum"] += 1
            if len(delivered) >= state["n"]:
                state["done"] = True
                self._final_ack(state)
                self.ctx.on_complete(state["flow"])
                return
            self._maybe_enqueue_pull(pkt.flow_id, state)
        elif pkt.kind == HEADER:
            # trimmed: request retransmission via a pull for that seq
            self._enqueue_pull(pkt.flow_id, pkt.seq)

    def _maybe_enqueue_pull(self, flow_id: int, state: dict) -> None:
        # one pull per received packet, until the pull budget (everything
        # beyond the unsolicited first window) is spent
        if state["pulls_issued"] < state["pull_budget"]:
            state["pulls_issued"] += 1
            self._enqueue_pull(flow_id, None)

    def _enqueue_pull(self, flow_id: int, rtx_seq: Optional[int]) -> None:
        self.pull_queue.append((flow_id, rtx_seq))
        self._arm_pacer()

    def _arm_pacer(self) -> None:
        if self._pacer_armed or not self.pull_queue:
            return
        self._pacer_armed = True
        delay = max(0.0, self._next_free - self.ctx.sim.now)
        self.ctx.sim.schedule(delay, self._release_pull)

    def _release_pull(self) -> None:
        self._pacer_armed = False
        if not self.pull_queue:
            return
        flow_id, rtx_seq = self.pull_queue.popleft()
        self._next_free = self.ctx.sim.now + self._pull_interval
        state = self.flows.get(flow_id)
        if state is not None and not state["done"]:
            flow = state["flow"]
            pull = Packet(flow_id, self.host_id, flow.src,
                          rtx_seq if rtx_seq is not None else -1,
                          HEADER_BYTES, kind=PULL, priority=0)
            pull.ack_seq = state["cum"]
            pull.meta = rtx_seq
            self.ctx.network.send_control(pull)
        self._arm_pacer()

    def _final_ack(self, state: dict) -> None:
        flow = state["flow"]
        ack = Packet(flow.flow_id, self.host_id, flow.src, state["n"],
                     HEADER_BYTES, kind=ACK, priority=0)
        ack.ack_seq = state["n"]
        self.ctx.network.send_control(ack)


class _NdpReceiverEndpoint:
    __slots__ = ("manager",)

    def __init__(self, manager: NdpReceiverHost) -> None:
        self.manager = manager

    def on_packet(self, pkt: Packet) -> None:
        self.manager.on_packet(pkt)


class NdpSender:
    """Unsolicited first window, then one packet per PULL."""

    def __init__(self, flow: Flow, ctx: TransportContext, scheme: "Ndp") -> None:
        self.flow = flow
        self.ctx = ctx
        self.scheme = scheme
        self.sim = ctx.sim
        self.cfg = ctx.config
        self.host = ctx.network.hosts[flow.src]
        self.n_packets = flow.n_packets(self.cfg.mss)
        self.next_seq = 0
        self.acked_cum = 0
        self.rtx_queue: Deque[int] = deque()
        self.finished = False
        self.pkts_transmitted = 0
        self.pkts_retransmitted = 0
        self._rto_event: Optional[Event] = None
        if flow.first_syscall_bytes is None:
            flow.first_syscall_bytes = min(flow.size, self.cfg.send_buffer_bytes)

    def start(self) -> None:
        first_window = min(self.n_packets,
                           self.scheme.rtt_packets(self.flow, self.ctx))
        while self.next_seq < first_window:
            self._transmit(self.next_seq)
            self.next_seq += 1
        self._arm_rto()

    def stop(self) -> None:
        self.finished = True
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    def _transmit(self, seq: int, retransmit: bool = False) -> None:
        payload = self.cfg.payload_per_packet()
        remaining = self.flow.size - seq * payload
        size = min(self.cfg.mss, max(1, remaining) + HEADER_BYTES)
        pkt = Packet(self.flow.flow_id, self.flow.src, self.flow.dst, seq,
                     size, kind=DATA, priority=1, ecn_capable=False)
        pkt.retransmit = retransmit
        pkt.sent_at = self.sim.now
        self.pkts_transmitted += 1
        if retransmit:
            self.pkts_retransmitted += 1
        self.host.send(pkt)

    def on_packet(self, pkt: Packet) -> None:
        if self.finished:
            return
        if pkt.kind == ACK and pkt.ack_seq >= self.n_packets:
            self.stop()
            return
        if pkt.kind != PULL:
            return
        if pkt.ack_seq > self.acked_cum:
            self.acked_cum = pkt.ack_seq
        if pkt.meta is not None:
            self.rtx_queue.append(pkt.meta)
        # one pull releases one packet: retransmissions first
        if self.rtx_queue:
            self._transmit(self.rtx_queue.popleft(), retransmit=True)
        elif self.next_seq < self.n_packets:
            self._transmit(self.next_seq)
            self.next_seq += 1
        self._arm_rto()

    def _arm_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
        if self.finished:
            return
        self._rto_event = self.sim.schedule(self.cfg.min_rto, self._on_rto)

    def _on_rto(self) -> None:
        if self.finished:
            return
        self.host.ops_sent += 1
        # fallback probe: recovery is receiver-driven (pull RTX timer);
        # the sender only nudges the first unacknowledged packet
        if self.acked_cum < self.n_packets:
            self._transmit(self.acked_cum, retransmit=True)
        self._rto_event = None
        self._arm_rto()


class Ndp(Scheme):
    """NDP scheme factory.  ``rtt_bytes`` as in :class:`~.homa.Homa`."""

    name = "ndp"

    def __init__(self, rtt_bytes: Optional[int] = None):
        self.rtt_bytes = rtt_bytes

    def rtt_packets(self, flow: Flow, ctx: TransportContext) -> int:
        if self.rtt_bytes is not None:
            return max(1, self.rtt_bytes // ctx.config.mss)
        return ctx.bdp_packets(flow)

    def configure_network(self, network: Network) -> None:
        network.set_spray(True)
        # NDP's tiny trimming queues are a *switch* feature; host NIC
        # egress queues stay as they are (the pull clock paces senders).
        host_uplinks = {host.uplink for host in network.hosts.values()}
        for port in network.ports:
            if port in host_uplinks:
                continue
            port.mux.trim = True
            # tiny data queues (trim beyond 8 packets); headers keep the
            # full port buffer, modelling NDP's separate header queue
            port.mux.trim_threshold_bytes = NDP_QUEUE_PACKETS * 1500

    def _manager(self, host_id: int, ctx: TransportContext) -> NdpReceiverHost:
        managers = ctx.extra.setdefault("ndp_rx", {})
        manager = managers.get(host_id)
        if manager is None:
            manager = NdpReceiverHost(host_id, ctx)
            managers[host_id] = manager
        return manager

    def start_flow(self, flow: Flow, ctx: TransportContext) -> None:
        manager = self._manager(flow.dst, ctx)
        manager.add_flow(flow, self.rtt_packets(flow, ctx))
        sender = NdpSender(flow, ctx, self)
        receiver = _NdpReceiverEndpoint(manager)
        ctx.network.attach(flow.flow_id, flow.src, flow.dst, sender, receiver)
        sender.start()
