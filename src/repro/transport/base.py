"""Transport framework: flows, per-flow endpoints and scheme factories.

A *scheme* (DCTCP, PPT, Homa, ...) is a factory that, given a
:class:`Flow` and a :class:`TransportContext`, produces a sender endpoint
living at the flow's source host and a receiver endpoint at the
destination host.  Endpoints expose a single ``on_packet`` entry point;
everything else (timers, pacing) is scheduled against the simulator.

Flow completion is detected at the *receiver* (all unique payload packets
delivered) and reported through ``TransportContext.on_complete`` — the
quantity every FCT figure in the paper measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..sim.engine import Simulator
from ..sim.network import Network
from ..sim.packet import HEADER_BYTES, Packet


@dataclass
class Flow:
    """One application message/flow.

    ``size`` is application payload bytes.  FCT = ``finish_time -
    start_time`` once the receiver has every payload byte.
    """

    flow_id: int
    src: int
    dst: int
    size: int
    start_time: float
    finish_time: Optional[float] = None
    # Filled by the sender model: bytes the application's *first* send()
    # syscall injected into the send buffer (buffer-aware identification).
    first_syscall_bytes: Optional[int] = None
    # Optional absolute completion deadline (used by deadline-aware
    # transports such as D2TCP); None = no deadline.
    deadline: Optional[float] = None

    @property
    def fct(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.start_time

    @property
    def completed(self) -> bool:
        return self.finish_time is not None

    def n_packets(self, mss: int) -> int:
        payload = mss - HEADER_BYTES
        return max(1, math.ceil(self.size / payload))


@dataclass
class TransportConfig:
    """Knobs shared by every scheme.

    ``mss`` is the wire size of a full data packet (header included);
    payload per packet is ``mss - HEADER_BYTES``.
    """

    mss: int = 1500
    init_cwnd: int = 10            # packets; Linux default (TCP-10 [12])
    min_rto: float = 2e-3          # seconds; testbed uses 10ms (Table 3)
    # Exponential RTO backoff (consecutive timeouts without forward
    # progress double the timer, capped) — keeps senders alive through
    # link blackouts without a pathological retransmit storm.
    max_rto: float = 0.25          # seconds; the backoff cap
    rto_backoff: float = 2.0       # multiplier per consecutive timeout
    dctcp_g: float = 1.0 / 16.0    # alpha EWMA gain (DCTCP paper default)
    max_cwnd_packets: int = 10_000
    # TCP send buffer capacity (buffer-aware identification, §4.1 / Fig 27).
    send_buffer_bytes: int = 2_000_000_000
    # Large-flow identification threshold (Table 3: 100KB in the testbed).
    identification_threshold: int = 100_000
    # Delayed-ACK timer for PPT's 2:1 low-priority ACKs: an odd LP data
    # packet left un-acked (no pair arrived) is acknowledged after this
    # delay instead of waiting for the sender's RTO.
    lp_ack_delay: float = 5e-4
    # PIAS-style demotion thresholds (bytes sent) for priorities 0->1->2->3.
    demotion_thresholds: tuple = (100_000, 1_000_000, 10_000_000)

    def payload_per_packet(self) -> int:
        return self.mss - HEADER_BYTES


class TransportContext:
    """Everything endpoints need: the engine, the fabric and bookkeeping."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: TransportConfig,
        on_complete: Optional[Callable[[Flow], None]] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.config = config
        self._on_complete = on_complete
        self.completed: List[Flow] = []
        # Registry so PPT senders can consult per-host shared state
        # (e.g. the send-buffer model) if needed.
        self.extra: Dict[str, object] = {}
        # The run's Telemetry (repro.obs), or None for an unobserved
        # run; endpoints read this once at construction.
        self.telemetry = None
        # The run's invariant auditor (repro.validate), or None for an
        # unvalidated run; same read-once contract as ``telemetry``.
        self.auditor = None

    def on_complete(self, flow: Flow) -> None:
        flow.finish_time = self.sim.now
        self.completed.append(flow)
        if self._on_complete is not None:
            self._on_complete(flow)

    def base_rtt(self, flow: Flow) -> float:
        return self.network.base_rtt(flow.src, flow.dst)

    def bdp_packets(self, flow: Flow) -> int:
        """BDP of the flow's path bottleneck (edge link) in MSS packets."""
        rate = self.network.hosts[flow.src].uplink.rate_bps
        bdp_bytes = rate * self.base_rtt(flow) / 8.0
        return max(1, int(bdp_bytes // self.config.mss))


class Scheme:
    """Base class for transport scheme factories."""

    name: str = "base"

    def start_flow(self, flow: Flow, ctx: TransportContext) -> None:
        """Create endpoints, register them with the fabric, start sending."""
        raise NotImplementedError

    def configure_network(self, network: Network) -> None:
        """Hook for schemes needing fabric features (spray, trim, ...)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Scheme {self.name}>"
