"""RC3 [Mittal et al., NSDI 2014] — recursively cautious congestion control.

RC3 runs a primary TCP loop (here DCTCP, as the PPT paper configures for
a fair DCN comparison) plus a low-priority loop that transmits from the
*tail* of the flow.  The LP loop is deliberately aggressive — the PPT
paper's critique: it "fills up the entire BDP for every RTT" and "makes
no effort to protect the HCP loop":

* every RTT the LP loop bursts enough low-priority packets to fill the
  BDP left over by the primary loop, at line rate, until the two loops'
  pointers cross;
* LP packets are assigned RC3's recursive priority levels — the last 40
  packets of the flow at the highest LP priority, the next 400 one level
  lower, the rest at the lowest — mirroring RC3's exponential levels;
* LP packets are *not* ECN-capable and the LP loop never slows down on
  congestion; lost LP packets are never retransmitted by the LP loop
  (the primary loop eventually covers the hole).
"""

from __future__ import annotations

from typing import Dict

from ..sim.packet import ACK, DATA, Packet
from .base import Flow, Scheme, TransportContext
from .dctcp import Dctcp, DctcpSender
from .window import WindowReceiver

# RC3's recursive priority-level sizes, in packets, counted from the tail.
LEVEL_SIZES = (40, 400)          # beyond these, everything at the last level
LEVEL_PRIORITIES = (5, 6, 7)     # P5, P6, then P7 for the remainder


def rc3_priority(packets_from_tail: int) -> int:
    """Priority for the LP packet ``packets_from_tail`` before flow end."""
    boundary = 0
    for size, priority in zip(LEVEL_SIZES, LEVEL_PRIORITIES):
        boundary += size
        if packets_from_tail < boundary:
            return priority
    return LEVEL_PRIORITIES[-1]


class Rc3Sender(DctcpSender):
    """DCTCP primary loop + RC3's aggressive low-priority filler loop."""

    LP_STALE_RTTS = 2.0  # purge un-ACKed LP packets after this many RTTs

    def __init__(self, flow: Flow, ctx: TransportContext) -> None:
        super().__init__(flow, ctx)
        self.lp_outstanding: Dict[int, float] = {}  # seq -> send time
        self.lp_sent = 0
        self.lp_crossed = False
        self.bdp = ctx.bdp_packets(flow)
        self._lp_timer = None
        # RC3's LP loop attempts every packet exactly once: a strictly
        # descending pointer.  Lost LP packets are *never* retried by the
        # LP loop — the primary loop covers the holes at DCTCP pace.
        self._lp_ptr = self.n_packets - 1

    def start(self) -> None:
        super().start()
        self._lp_round()

    def stop(self) -> None:
        super().stop()
        if self._lp_timer is not None:
            self._lp_timer.cancel()
            self._lp_timer = None

    # -- LP loop ------------------------------------------------------------

    def _lp_round(self) -> None:
        """Once per RTT: burst LP packets to fill the BDP (RC3's behaviour)."""
        if self.finished or self.lp_crossed:
            return
        # purge stale LP inflight entries (losses are never retransmitted)
        horizon = self.sim.now - self.LP_STALE_RTTS * self.srtt
        stale = [s for s, t in self.lp_outstanding.items() if t < horizon]
        for s in stale:
            del self.lp_outstanding[s]

        budget = self.bdp - len(self.outstanding) - len(self.lp_outstanding)
        sent = 0
        end = self.buffer_end() - 1
        if self._lp_ptr > end:
            self._lp_ptr = end
        while sent < budget and self._lp_ptr >= 0:
            seq = self._lp_ptr
            if seq <= self.send_ptr:
                # LP pointer met the primary loop: RC3 closes the LP loop.
                self.lp_crossed = True
                break
            self._lp_ptr -= 1
            if (seq not in self.delivered and seq not in self.outstanding
                    and seq not in self.lp_outstanding):
                self._lp_transmit(seq)
                sent += 1
        if not self.finished and not self.lp_crossed:
            self._lp_timer = self.sim.schedule(max(self.srtt, self.base_rtt),
                                               self._lp_round)

    def _lp_transmit(self, seq: int) -> None:
        pkt = self.build_packet(seq)
        pkt.lcp = True
        pkt.ecn_capable = False
        pkt.priority = rc3_priority(self.n_packets - 1 - seq)
        pkt.sent_at = self.sim.now
        self.lp_outstanding[seq] = self.sim.now
        self.lp_sent += 1
        self.pkts_transmitted += 1
        self.host.send(pkt)

    # -- ACK handling ----------------------------------------------------------

    def on_packet(self, pkt: Packet) -> None:
        if pkt.kind != ACK or self.finished:
            return
        if pkt.lcp:
            # LP ACK: record delivery only; no congestion-control input.
            self.delivered.add(pkt.seq)
            self.lp_outstanding.pop(pkt.seq, None)
            if pkt.ack_seq > self.cum:
                for s in range(self.cum, pkt.ack_seq):
                    self.delivered.add(s)
                    self.outstanding.pop(s, None)
                self.cum = pkt.ack_seq
            if len(self.delivered) >= self.n_packets:
                self.stop()
                return
            self.try_send()
            return
        self.handle_ack(pkt)


class Rc3(Dctcp):
    name = "rc3"
    sender_cls = Rc3Sender
    receiver_cls = WindowReceiver
