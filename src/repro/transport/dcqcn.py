"""DCQCN [Zhu et al., SIGCOMM 2015] — ECN-based rate control for RDMA.

Cited in the paper's appendix C.  DCQCN is *rate*-based (the NIC paces a
current rate RC toward a target rate RT), with QCN-style additive and
hyper-additive recovery:

* on a congestion notification (we use the per-window ECN fraction,
  mirroring how CNPs are coalesced): ``RT = RC; RC = RC * (1 - a/2)``
  where ``a`` is DCQCN's EWMA of marking, and the recovery state resets;
* otherwise, every recovery period: ``RC = (RT + RC) / 2`` (fast
  recovery), and after F periods RT itself grows additively (+R_AI),
  then hyper-additively (+R_HAI) — the standard three-stage recovery.

Windows and rates are interchangeable at this model's granularity, so
the sender keeps DCQCN's rate state in packets-per-RTT units and applies
it as a congestion window, like the paper's other rate-based baselines.
"""

from __future__ import annotations

from .base import Flow, Scheme, TransportContext
from .window import WindowReceiver, WindowSender


class DcqcnSender(WindowSender):
    G = 1.0 / 16.0       # alpha EWMA gain
    F_FAST = 5           # fast-recovery periods before additive increase
    R_AI = 1.0           # additive increase, packets/RTT
    R_HAI = 5.0          # hyper increase after 2F periods

    def __init__(self, flow: Flow, ctx: TransportContext) -> None:
        super().__init__(flow, ctx)
        # start at line rate, as RDMA NICs do
        self.cwnd = float(ctx.bdp_packets(flow))
        self.alpha = 1.0
        self.target = self.cwnd       # RT
        self._periods = 0             # recovery periods since last CNP
        self._win_acks = 0
        self._win_ce = 0
        self._last_update = 0.0

    def cc_on_ack(self, ce: bool, rtt: float) -> None:
        self._win_acks += 1
        if ce:
            self._win_ce += 1
        if self.sim.now - self._last_update < max(self.srtt, 1e-9):
            return
        self._last_update = self.sim.now
        fraction = self._win_ce / max(1, self._win_acks)
        self.alpha = (1 - self.G) * self.alpha + self.G * fraction
        if self._win_ce > 0:
            # congestion notification: cut and remember the target
            self.target = self.cwnd
            self.cwnd = max(1.0, self.cwnd * (1.0 - self.alpha / 2.0))
            self._periods = 0
        else:
            # recovery
            self._periods += 1
            if self._periods > 2 * self.F_FAST:
                self.target += self.R_HAI
            elif self._periods > self.F_FAST:
                self.target += self.R_AI
            self.cwnd = (self.target + self.cwnd) / 2.0
        self._win_acks = 0
        self._win_ce = 0
        self._cap_cwnd()

    def cc_on_fast_rtx(self) -> None:
        self.target = self.cwnd
        self.cwnd = max(1.0, self.cwnd / 2.0)
        self._periods = 0

    def cc_on_rto(self) -> None:
        self.target = max(self.cwnd / 2.0, 1.0)
        self.cwnd = 1.0
        self._periods = 0


class Dcqcn(Scheme):
    name = "dcqcn"

    def start_flow(self, flow: Flow, ctx: TransportContext) -> None:
        sender = DcqcnSender(flow, ctx)
        receiver = WindowReceiver(flow, ctx)
        ctx.network.attach(flow.flow_id, flow.src, flow.dst, sender, receiver)
        sender.start()
