"""PIAS [Bai et al., NSDI 2015] — information-agnostic flow scheduling.

PIAS keeps DCTCP's rate control and adds multi-level feedback-queue
scheduling: every flow starts at the highest priority and is demoted as
it sends more bytes, so long flows sink to low priorities *during*
transmission.  The PPT paper's critique (§2.3) — demotion happens "too
late to isolate small flows" — falls out of this model naturally: a large
flow's first ``demotion_thresholds[0]`` bytes ride at P0 alongside small
flows.
"""

from __future__ import annotations

from .base import Flow, TransportContext
from .dctcp import Dctcp, DctcpSender


def demotion_priority(bytes_sent: int, thresholds) -> int:
    """Map cumulative bytes sent to a priority level (0 = highest)."""
    for level, threshold in enumerate(thresholds):
        if bytes_sent < threshold:
            return level
    return len(thresholds)


class PiasSender(DctcpSender):
    """DCTCP sender with bytes-sent priority demotion."""

    def priority_for(self, seq: int) -> int:
        bytes_sent = seq * self.cfg.payload_per_packet()
        return demotion_priority(bytes_sent, self.cfg.demotion_thresholds)


class Pias(Dctcp):
    name = "pias"
    sender_cls = PiasSender
