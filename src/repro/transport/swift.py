"""Swift-style delay-based congestion control [Kumar et al., SIGCOMM 2020].

The PPT paper's Fig. 14 variant is "conceptually equivalent to Swift": a
window adjusted only on *fabric* delay (our ideal control path returns the
forward-path queueing delay measured at every hop, so fabric delay is
exactly ``rtt - base_rtt``).  The algorithm is Swift's:

* target delay = base RTT scaled by a constant plus a per-hop term,
* below target: additive increase (+ai/cwnd per ACK, +ai when cwnd < 1),
* above target: multiplicative decrease proportional to the overshoot,
  capped at ``max_mdf``, at most once per RTT.
"""

from __future__ import annotations

from .base import Flow, Scheme, TransportContext
from .window import WindowReceiver, WindowSender


class SwiftSender(WindowSender):
    """Delay-based window sender."""

    AI = 1.0             # additive increment, packets per RTT
    BETA = 0.8           # multiplicative-decrease gain
    MAX_MDF = 0.5        # max multiplicative decrease factor
    BASE_SCALE = 1.25    # target = base_rtt * scale + per-hop term
    HOP_SCALE = 0.5e-6   # seconds of budget per switch hop

    def __init__(self, flow: Flow, ctx: TransportContext) -> None:
        super().__init__(flow, ctx)
        self._last_decrease = -1.0
        self.hops = 2
        self.target_delay = self._target()

    def _target(self) -> float:
        return self.base_rtt * self.BASE_SCALE + self.hops * self.HOP_SCALE

    def ecn_capable(self) -> bool:
        return False  # pure delay signal

    def cc_on_ack(self, ce: bool, rtt: float) -> None:
        if rtt <= 0:
            return
        self.target_delay = self._target()
        if rtt < self.target_delay:
            if self.cwnd >= 1.0:
                self.cwnd += self.AI / self.cwnd
            else:
                self.cwnd += self.AI
        else:
            now = self.sim.now
            if now - self._last_decrease >= self.srtt:
                overshoot = (rtt - self.target_delay) / rtt
                factor = max(1.0 - self.BETA * overshoot, 1.0 - self.MAX_MDF)
                self.cwnd = max(0.5, self.cwnd * factor)
                self._last_decrease = now
        self._cap_cwnd()

    def cc_on_fast_rtx(self) -> None:
        self.cwnd = max(0.5, self.cwnd * (1.0 - self.MAX_MDF))

    def cc_on_rto(self) -> None:
        self.cwnd = 1.0

    @property
    def below_target(self) -> bool:
        """True when the last smoothed RTT is under the target delay —
        the PPT-over-Swift LCP trigger (Fig. 14)."""
        return self.srtt < self.target_delay


class Swift(Scheme):
    name = "swift"

    sender_cls = SwiftSender
    receiver_cls = WindowReceiver

    def start_flow(self, flow: Flow, ctx: TransportContext) -> None:
        sender = self.sender_cls(flow, ctx)
        receiver = self.receiver_cls(flow, ctx)
        ctx.network.attach(flow.flow_id, flow.src, flow.dst, sender, receiver)
        sender.start()
