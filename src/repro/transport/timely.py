"""TIMELY [Mittal et al., SIGCOMM 2015] — RTT-*gradient* based rate
control, one of the reactive transports the paper's introduction cites.

Unlike Swift (absolute delay vs a target), TIMELY reacts to the *rate of
change* of the RTT: a positive normalised gradient means queues are
building and the rate is cut multiplicatively; a negative gradient means
queues are draining and the window grows additively.  Low/high RTT
thresholds (Tlow/Thigh) bound the gradient regime, exactly as in the
paper's Algorithm 1.  We keep it window-based (window = rate x RTT) like
the rest of the framework; the paper's own analysis treats the two as
interchangeable at this granularity.
"""

from __future__ import annotations

from .base import Flow, Scheme, TransportContext
from .window import WindowReceiver, WindowSender


class TimelySender(WindowSender):
    ALPHA_EWMA = 0.3     # gradient smoothing
    BETA = 0.8           # multiplicative decrease factor
    DELTA = 1.0          # additive increase, packets
    T_LOW_SCALE = 1.1    # below this x base_rtt: always increase
    T_HIGH_SCALE = 4.0   # above this x base_rtt: always decrease
    HAI_N = 5            # completion events before hyper-active increase

    def __init__(self, flow: Flow, ctx: TransportContext) -> None:
        super().__init__(flow, ctx)
        self._prev_rtt = self.base_rtt
        self._gradient = 0.0
        self._neg_streak = 0

    def ecn_capable(self) -> bool:
        return False

    def cc_on_ack(self, ce: bool, rtt: float) -> None:
        if rtt <= 0:
            return
        new_gradient = (rtt - self._prev_rtt) / max(self.base_rtt, 1e-9)
        self._prev_rtt = rtt
        self._gradient = ((1 - self.ALPHA_EWMA) * self._gradient
                          + self.ALPHA_EWMA * new_gradient)

        if rtt < self.T_LOW_SCALE * self.base_rtt:
            self.cwnd += self.DELTA / max(self.cwnd, 1.0)
            self._neg_streak = 0
        elif rtt > self.T_HIGH_SCALE * self.base_rtt:
            self.cwnd = max(1.0, self.cwnd
                            * (1.0 - self.BETA
                               * (1.0 - (self.T_HIGH_SCALE * self.base_rtt)
                                  / rtt)))
            self._neg_streak = 0
        elif self._gradient <= 0:
            self._neg_streak += 1
            boost = self.HAI_N if self._neg_streak >= self.HAI_N else 1
            self.cwnd += boost * self.DELTA / max(self.cwnd, 1.0)
        else:
            self._neg_streak = 0
            self.cwnd = max(1.0, self.cwnd
                            * (1.0 - self.BETA * min(self._gradient, 1.0)))
        self._cap_cwnd()

    def cc_on_fast_rtx(self) -> None:
        self.cwnd = max(1.0, self.cwnd / 2.0)

    def cc_on_rto(self) -> None:
        self.cwnd = 1.0


class Timely(Scheme):
    name = "timely"

    def start_flow(self, flow: Flow, ctx: TransportContext) -> None:
        sender = TimelySender(flow, ctx)
        receiver = WindowReceiver(flow, ctx)
        ctx.network.attach(flow.flow_id, flow.src, flow.dst, sender, receiver)
        sender.start()
