"""HPCC [Li et al., SIGCOMM 2019] — INT-driven high-precision CC.

Every data packet carries in-band network telemetry: each switch hop
appends ``(qlen, txBytes, timestamp, linkRate)``.  The ACK echoes the
records and the sender estimates per-hop utilisation::

    U_j = qlen_j / (rate_j * T)  +  txRate_j / rate_j

with ``txRate_j`` computed from consecutive samples of the same hop.  The
window tracks ``W = W_c / (maxU / eta) + W_ai`` (multiplicative toward the
target utilisation ``eta``), with a bounded additive probing stage, and
the reference window ``W_c`` is assigned once per RTT — all per the HPCC
paper's Algorithm 1.

The PPT paper's point (Table 1, appendix D) is that HPCC utilises spare
bandwidth gracefully but (a) needs INT switches and (b) has no in-network
priority scheduling — both visible here: INT is a switch feature we must
enable, and every packet rides P0.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..sim.packet import Packet
from .base import Flow, Scheme, TransportContext
from .window import WindowReceiver, WindowSender


class HpccSender(WindowSender):
    ETA = 0.95          # target utilisation
    MAX_STAGE = 5       # additive probing stages
    WAI_PACKETS = 0.5   # additive increase per update, in packets

    def __init__(self, flow: Flow, ctx: TransportContext) -> None:
        super().__init__(flow, ctx)
        self.cwnd = float(self.ctx.bdp_packets(flow))  # start at line rate
        self.w_c = self.cwnd
        self.inc_stage = 0
        self._last_ref_update = 0.0
        # per-hop previous INT sample: hop index -> (txBytes, timestamp)
        self._prev: Dict[int, Tuple[int, float]] = {}

    def ecn_capable(self) -> bool:
        return False

    def build_packet(self, seq: int) -> Packet:
        pkt = super().build_packet(seq)
        pkt.int_records = []  # switches append INT at every hop
        return pkt

    def _utilisation(self, records) -> Optional[float]:
        max_u = None
        for hop, (qlen, tx_bytes, ts, rate) in enumerate(records):
            prev = self._prev.get(hop)
            self._prev[hop] = (tx_bytes, ts)
            if prev is None:
                continue
            prev_bytes, prev_ts = prev
            dt = ts - prev_ts
            if dt <= 0:
                continue
            tx_rate = (tx_bytes - prev_bytes) * 8.0 / dt
            u = qlen * 8.0 / (rate * self.base_rtt) + tx_rate / rate
            if max_u is None or u > max_u:
                max_u = u
        return max_u

    def cc_on_ack(self, ce: bool, rtt: float) -> None:
        records = None
        # The ACK's INT records are stashed on the packet by make_ack; the
        # window machinery hands us only (ce, rtt), so we pull them from
        # the last handled ACK (set in handle_ack below).
        records = self._pending_int
        self._pending_int = None
        if not records:
            return
        u = self._utilisation(records)
        if u is None:
            return
        u = max(u, 0.01)  # an idle path reads as (near-)zero utilisation
        if u >= self.ETA or self.inc_stage >= self.MAX_STAGE:
            self.cwnd = max(1.0, self.w_c / (u / self.ETA) + self.WAI_PACKETS)
            self.inc_stage = 0
        else:
            self.cwnd = self.w_c + self.WAI_PACKETS
            self.inc_stage += 1
        self._cap_cwnd()
        # reference window: once per RTT
        if self.sim.now - self._last_ref_update >= self.srtt:
            self.w_c = self.cwnd
            self._last_ref_update = self.sim.now

    _pending_int = None

    def handle_ack(self, pkt: Packet) -> None:
        self._pending_int = pkt.int_records
        super().handle_ack(pkt)

    def cc_on_fast_rtx(self) -> None:
        self.cwnd = max(1.0, self.cwnd / 2.0)
        self.w_c = self.cwnd

    def cc_on_rto(self) -> None:
        self.cwnd = 1.0
        self.w_c = self.cwnd


class Hpcc(Scheme):
    name = "hpcc"

    sender_cls = HpccSender
    receiver_cls = WindowReceiver

    def start_flow(self, flow: Flow, ctx: TransportContext) -> None:
        sender = self.sender_cls(flow, ctx)
        receiver = self.receiver_cls(flow, ctx)
        ctx.network.attach(flow.flow_id, flow.src, flow.dst, sender, receiver)
        sender.start()
