"""Aeolus [Hu et al., SIGCOMM 2020] — a pre-credit building block for
proactive transports, evaluated integrated with Homa (as in the paper).

Differences from plain Homa, per the Aeolus design:

* First-RTT unscheduled packets are tagged ``unscheduled`` and the fabric
  performs **selective dropping**: once a port's occupancy exceeds a small
  threshold, arriving unscheduled packets are dropped outright instead of
  queued, so pre-credit blasts can never delay scheduled traffic.
* Dropped unscheduled packets are recovered *in the scheduled phase*: the
  receiver's grant machinery (inherited from Homa) re-requests the holes,
  so the per-packet timeout cost of a first-RTT loss is avoided — but the
  blasted bandwidth itself is wasted, which is why the PPT paper finds
  Aeolus degrades small flows under all-small workloads (Fig. 21).
"""

from __future__ import annotations

from typing import Optional

from ..sim.network import Network
from .base import Flow, TransportContext
from .homa import Homa, HomaSender


class AeolusSender(HomaSender):
    """Homa sender whose unscheduled packets are selectively droppable.

    After the pre-credit blast the sender probes the receiver one RTT
    later, so that holes punched by selective dropping are re-requested
    through the scheduled (granted) path instead of waiting for the
    timeout — Aeolus's cheap first-RTT loss recovery.
    """

    def _transmit(self, seq, priority, unscheduled=False, retransmit=False):
        # Aeolus de-prioritises pre-credit packets: they ride the lowest
        # priority and carry the droppable flag.
        if unscheduled:
            priority = 7
        super()._transmit(seq, priority, unscheduled=unscheduled,
                          retransmit=retransmit)

    MAX_PROBES = 8

    def start(self) -> None:
        super().start()
        self._probes_sent = 0
        rtt = self.ctx.network.base_rtt(self.flow.src, self.flow.dst)
        self.sim.schedule(rtt, self._send_probe)

    def _send_probe(self) -> None:
        if self.finished or self._probes_sent >= self.MAX_PROBES:
            return
        from ..sim.packet import CONTROL, HEADER_BYTES, Packet
        probe = Packet(self.flow.flow_id, self.flow.src, self.flow.dst,
                       self.next_seq, HEADER_BYTES, kind=CONTROL, priority=0)
        self.ctx.network.send_control(probe)
        self._probes_sent += 1
        rtt = self.ctx.network.base_rtt(self.flow.src, self.flow.dst)
        self.sim.schedule(rtt, self._send_probe)


class Aeolus(Homa):
    name = "aeolus"
    grant_resend = True

    def __init__(self, rtt_bytes: Optional[int] = None, overcommit: int = 2,
                 drop_threshold_bytes: Optional[int] = None):
        super().__init__(rtt_bytes=rtt_bytes, overcommit=overcommit)
        self.drop_threshold_bytes = drop_threshold_bytes

    def configure_network(self, network: Network) -> None:
        super().configure_network(network)  # uniform DT (see Homa)
        for port in network.ports:
            threshold = self.drop_threshold_bytes
            if threshold is None:
                # default: drop unscheduled once the port holds more than
                # a quarter of its buffer
                threshold = port.mux.buffer_bytes // 4
            port.mux.selective_drop_threshold = threshold

    def start_flow(self, flow: Flow, ctx: TransportContext) -> None:
        manager = self._manager(flow.dst, ctx)
        manager.add_message(flow)
        sender = AeolusSender(flow, ctx, self)
        from .homa import _ReceiverEndpoint
        receiver = _ReceiverEndpoint(manager)
        ctx.network.attach(flow.flow_id, flow.src, flow.dst, sender, receiver)
        sender.start()
