"""Transport schemes: the paper's baselines and the window machinery."""

from .aeolus import Aeolus
from .base import Flow, Scheme, TransportConfig, TransportContext
from .d2tcp import D2tcp
from .dcqcn import Dcqcn
from .dctcp import Dctcp, DctcpSender
from .expresspass import ExpressPass
from .halfback import Halfback
from .homa import Homa, HomaSender
from .hpcc import Hpcc, HpccSender
from .ndp import Ndp, NdpSender
from .pias import Pias, PiasSender
from .rc3 import Rc3, Rc3Sender
from .swift import Swift, SwiftSender
from .tcp10 import Tcp10
from .timely import Timely
from .window import WindowReceiver, WindowSender

__all__ = [
    "Flow", "Scheme", "TransportConfig", "TransportContext",
    "Dctcp", "DctcpSender", "Pias", "PiasSender", "Rc3", "Rc3Sender",
    "Swift", "SwiftSender", "Hpcc", "HpccSender",
    "Homa", "HomaSender", "Aeolus", "Ndp", "NdpSender",
    "Tcp10", "Halfback", "ExpressPass", "Timely", "D2tcp", "Dcqcn",
    "WindowSender", "WindowReceiver",
]
