"""DCTCP [Alizadeh et al., SIGCOMM 2010] — the paper's HCP and main baseline.

The sender maintains ``alpha``, an EWMA of the fraction of ECN-marked
ACKs per window of data (Eq. 1 in the PPT paper)::

    alpha <- (1 - g) * alpha + g * F

and on windows containing at least one mark cuts ``cwnd`` by
``alpha / 2``.  Growth between cuts is standard slow start / congestion
avoidance.  The sender exposes the two quantities PPT's LCP consumes:

* ``alpha`` and its running minimum over recent windows (Eq. 2 trigger),
* ``wmax`` — the maximum congestion window experienced, restricted to
  post-startup windows per the paper's footnote 3.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from .base import Flow, Scheme, TransportContext
from .window import WindowReceiver, WindowSender

# Number of recent per-window alpha values over which PPT computes its
# running minimum (the paper says "the past RTTs"; a short sliding window
# keeps the trigger responsive).
ALPHA_HISTORY = 16


class DctcpSender(WindowSender):
    """Window sender running the DCTCP congestion-control algorithm."""

    def __init__(self, flow: Flow, ctx: TransportContext) -> None:
        super().__init__(flow, ctx)
        self.alpha = 1.0          # Linux dctcp initialises alpha to 1
        self.g = ctx.config.dctcp_g
        self.startup_done = False  # True after the first window cut / loss
        self.wmax: float = 0.0     # max cwnd, post-startup only (footnote 3)
        self.alpha_history: deque = deque(maxlen=ALPHA_HISTORY)
        # per-window mark accounting
        self._win_acks = 0
        self._win_ce = 0
        self._win_end = self.cfg.init_cwnd
        self._last_alpha_update = 0.0
        # cwnd cap, cached as a float: config is fixed once the run is
        # built, and cc_on_ack compares against it on every ACK
        self._max_cwnd = float(self.cfg.max_cwnd_packets)
        # PPT hooks in
        self.on_window_update: Optional[Callable[["DctcpSender"], None]] = None

    # -- congestion control -------------------------------------------------

    def cc_on_ack(self, ce: bool, rtt: float) -> None:
        self._win_acks += 1
        if ce:
            self._win_ce += 1
        # growth: slow start until first mark/loss, then +1/cwnd per ACK
        cwnd = self.cwnd
        if cwnd < self.ssthresh and not self.startup_done:
            cwnd += 1.0
        else:
            cwnd += 1.0 / max(cwnd, 1.0)
        # _cap_cwnd, inlined (once per ACK)
        if cwnd > self._max_cwnd:
            cwnd = self._max_cwnd
        self.cwnd = cwnd
        if cwnd > self.max_cwnd_seen:
            self.max_cwnd_seen = cwnd
        if self.startup_done and cwnd > self.wmax:
            self.wmax = cwnd

        window_elapsed = self.cum >= self._win_end
        time_elapsed = self.sim.now - self._last_alpha_update > self.srtt
        if window_elapsed or (time_elapsed and self._win_acks > 0):
            self._end_of_window()

    def _end_of_window(self) -> None:
        fraction = self._win_ce / max(1, self._win_acks)
        self.alpha = (1.0 - self.g) * self.alpha + self.g * fraction
        self.alpha_history.append(self.alpha)
        if self._win_ce > 0:
            if not self.startup_done:
                self.startup_done = True
                self.ssthresh = max(self.cwnd, 2.0)
                self.wmax = max(self.wmax, self.cwnd)
            self.cwnd = max(1.0, self.cwnd * (1.0 - self.alpha / 2.0))
        self._win_acks = 0
        self._win_ce = 0
        self._win_end = max(self.send_ptr, self.cum + 1)
        self._last_alpha_update = self.sim.now
        if self.on_window_update is not None:
            self.on_window_update(self)

    def cc_on_fast_rtx(self) -> None:
        self.startup_done = True
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = self.ssthresh

    def cc_on_rto(self) -> None:
        self.startup_done = True
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = 1.0

    # -- PPT-facing state ----------------------------------------------------

    @property
    def alpha_min(self) -> float:
        """Minimum alpha over the recent windows (Eq. 2's alpha_min)."""
        if not self.alpha_history:
            return self.alpha
        return min(self.alpha_history)


class Dctcp(Scheme):
    """Plain DCTCP: single loop, single priority (P0)."""

    name = "dctcp"

    sender_cls = DctcpSender
    receiver_cls = WindowReceiver

    def start_flow(self, flow: Flow, ctx: TransportContext) -> None:
        sender = self.sender_cls(flow, ctx)
        receiver = self.receiver_cls(flow, ctx)
        ctx.network.attach(flow.flow_id, flow.src, flow.dst, sender, receiver)
        sender.start()
