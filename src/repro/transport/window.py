"""Reliable window-based transport machinery (the TCP-shaped core).

Every TCP-style scheme in the paper — DCTCP, PIAS, RC3's primary loop,
PPT's HCP, Swift, HPCC — is a window transport: a congestion window in
MSS-sized packets, per-packet ACKs carrying cumulative + selective
information, duplicate-ACK fast retransmit, and a minimum-RTO timer.
:class:`WindowSender` / :class:`WindowReceiver` implement that machinery
once; congestion control is three overridable hooks:

* ``cc_on_ack(ce, rtt)``   — called for every new ACK,
* ``cc_on_fast_rtx()``     — called when dup-ACKs trigger a retransmit,
* ``cc_on_rto()``          — called when the retransmission timer fires.

The default hooks implement NewReno-style slow start / congestion
avoidance, which concrete schemes refine.

Sequence numbers are *packet indices* (0-based); ``ack_seq`` on an ACK is
the next expected index (all indices below it are delivered), and the
ACK's own ``seq`` selectively acknowledges that one packet — a compact
SACK that is exact at packet granularity.
"""

from __future__ import annotations

import math
from collections.abc import Set as _AbstractSet
from typing import Dict, Optional, Set

from ..sim.engine import Event
from ..sim.network import Network
from ..sim.packet import ACK, ACK_BYTES, DATA, Packet
from .base import Flow, TransportConfig, TransportContext


class _DeliveredAll(_AbstractSet):
    """Memory-flat stand-in for a *finished* flow's delivered-seq set.

    When a flow completes, its delivered set is provably exactly
    ``{0, .., n_packets-1}`` (``cum`` only advances past delivered seqs
    and no seq >= ``n_packets`` is ever created), so the per-seq hash
    set can be replaced by this O(1)-memory equivalent.  Long-horizon
    soaks retire tens of thousands of flows; without this swap the
    retired endpoints' seq sets dominate the process's memory and grow
    without bound (see docs/robustness.md).

    Implements the full ``collections.abc.Set`` protocol, so membership,
    ``len``, iteration and set comparisons against real ``set`` objects
    all behave exactly as the original set did.
    """

    __slots__ = ("n",)

    def __init__(self, n: int) -> None:
        self.n = n

    def __contains__(self, seq: object) -> bool:
        return isinstance(seq, int) and 0 <= seq < self.n

    def __iter__(self):
        return iter(range(self.n))

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<_DeliveredAll n={self.n}>"

    def __getstate__(self):
        return self.n

    def __setstate__(self, n) -> None:
        self.n = n


class WindowReceiver:
    """Counts unique payload packets; one ACK per data packet."""

    __slots__ = ("flow", "ctx", "n_packets", "delivered", "cum",
                 "_done", "data_pkts_received", "dup_pkts_received",
                 "lp_pkts_received", "_net", "_ack_pipe", "_ack_delay",
                 "_ack_host")

    def __init__(self, flow: Flow, ctx: TransportContext) -> None:
        self.flow = flow
        self.ctx = ctx
        self.n_packets = flow.n_packets(ctx.config.mss)
        self.delivered: Set[int] = set()
        self.cum = 0               # next expected in-order packet index
        self._done = False
        self.data_pkts_received = 0
        self.dup_pkts_received = 0
        self.lp_pkts_received = 0  # low-priority-loop arrivals (RC3 etc.)
        # ACK fast path: the reverse pair (dst -> src) never changes, so
        # the control pipe, base delay and sending host are resolved once
        # on the first ACK instead of per packet (see acknowledge()).
        self._net = None
        self._ack_pipe = None
        self._ack_delay = 0.0
        self._ack_host = None

    def on_packet(self, pkt: Packet) -> None:
        if pkt.kind != DATA:
            return
        self.data_pkts_received += 1
        if pkt.lcp:
            self.lp_pkts_received += 1
        delivered = self.delivered
        seq = pkt.seq
        if seq in delivered:
            self.dup_pkts_received += 1
        else:
            delivered.add(seq)
            cum = self.cum
            while cum in delivered:
                cum += 1
            self.cum = cum
        self.acknowledge(pkt)
        if not self._done and len(delivered) >= self.n_packets:
            self._done = True
            # all n seqs are provably in ``delivered`` now: swap the
            # per-seq set for the O(1) equivalent (late duplicates only
            # probe membership) so retired receivers stop holding one
            # hash entry per packet — see _DeliveredAll
            self.delivered = _DeliveredAll(self.n_packets)
            self.ctx.on_complete(self.flow)

    def acknowledge(self, pkt: Packet) -> None:
        """Send an ACK for ``pkt``.  Overridable (PPT's 2:1 LP-ACKs)."""
        # make_ack, inlined — keep in sync with repro.sim.packet.make_ack
        # (this runs once per delivered data packet)
        ack = Packet(pkt.flow_id, pkt.dst, pkt.src, pkt.seq, ACK_BYTES,
                     ACK, pkt.priority)
        ack.ack_seq = self.cum
        ack.ecn_ce = pkt.ecn_ce
        ack.lcp = pkt.lcp
        ack.sent_at = pkt.sent_at
        # snapshot, never alias (HPCC forward-path INT; see make_ack)
        ack.int_records = (None if pkt.int_records is None
                           else list(pkt.int_records))
        ack.queue_delay = pkt.queue_delay
        ack.hops = pkt.hops
        # Network.send_control, inlined with the per-pair lookups cached
        # (this runs once per delivered data packet)
        pipe = self._ack_pipe
        if pipe is None:
            net = self.ctx.network
            if ("send_control" in getattr(net, "__dict__", ())
                    or type(net).send_control is not Network.send_control):
                # send_control is patched (test capture seam) or
                # overridden — honour it; never install the fast path
                net.send_control(ack)
                return
            self._net = net
            flow = self.flow
            pipe = self._ack_pipe = net.control_pipe(flow.dst, flow.src)
            self._ack_delay = net.base_delay(flow.dst, flow.src)
            self._ack_host = net.hosts[flow.dst]
        self._net.control_pkts += 1
        self._ack_host.ops_sent += 1
        pipe.send(self._ack_delay, ack)

    @property
    def done(self) -> bool:
        return self._done


class WindowSender:
    """Window-based reliable sender with SACK, fast retransmit and RTO."""

    def __init__(self, flow: Flow, ctx: TransportContext) -> None:
        self.flow = flow
        self.ctx = ctx
        self.cfg: TransportConfig = ctx.config
        self.sim = ctx.sim
        self.host = ctx.network.hosts[flow.src]
        self.n_packets = flow.n_packets(self.cfg.mss)
        self.base_rtt = ctx.base_rtt(flow)

        # congestion state
        self.cwnd: float = float(self.cfg.init_cwnd)
        self.ssthresh: float = float("inf")
        self.max_cwnd_seen: float = self.cwnd  # W_max for PPT (Eq. 2)

        # reliability state: outstanding maps seq -> last send time, so
        # SACK-style recovery can tell a *lost* packet (sent long ago,
        # still unacknowledged) from one merely in flight
        self.outstanding: Dict[int, float] = {}
        # every seq this loop has ever put on the wire — a re-send of one
        # of these is a retransmission even when the caller didn't know
        # (post-RTO recovery goes through the plain try_send path)
        self._ever_sent: Set[int] = set()
        # Karn's rule: seqs that were ever retransmitted.  An ACK for one
        # is ambiguous (it may acknowledge the original or any re-send
        # copy), so its RTT sample must not feed the srtt estimator.
        self._rtx_seqs: Set[int] = set()
        self.delivered: Set[int] = set()
        self.cum = 0
        self.send_ptr = 0
        self.dup_acks = 0
        self.finished = False

        # measurements
        self.srtt: float = self.base_rtt
        self.pkts_transmitted = 0
        self.pkts_retransmitted = 0
        self.acks_received = 0
        self.rtos_fired = 0

        # telemetry hook sites (repro.obs): None when the run is not
        # observed — the hot paths then pay one branch and nothing else
        self.obs = ctx.telemetry
        # invariant auditor (repro.validate): same contract as ``obs`` —
        # None on unvalidated runs, one branch per send burst otherwise
        self.audit = getattr(ctx, "auditor", None)

        # timers — a single lazy-deadline RTO: `_rto_deadline` is the
        # authoritative timeout and is merely *extended* on each ACK/send;
        # the scheduled event re-checks it on fire instead of being
        # cancelled and re-pushed per packet (which bloats the engine
        # heap with one dead entry per ACK).
        self._rto_event: Optional[Event] = None
        self._rto_deadline: float = math.inf
        self._last_fast_rtx: float = -1.0
        # Dup-ACK rescan guard: the minimum outstanding send time observed
        # by the last hole scan that found nothing.  While every send time
        # is provably newer than the staleness cutoff the O(W) rescan is
        # skipped — it could not find a hole either.  None = no such bound.
        self._no_hole_floor: Optional[float] = None
        # consecutive timeouts without forward progress; exponent of the
        # RTO backoff, reset by any ACK that delivers new data
        self.rto_backoff_exp = 0

        # send-buffer model: only bytes the application has already copied
        # into the kernel send buffer are transmittable (§4.1).  The app
        # refills instantly as data drains, so the window of *available*
        # packet indices is [cum, cum + buffer_packets).
        payload = self.cfg.payload_per_packet()
        self.buffer_packets = max(1, self.cfg.send_buffer_bytes // payload)
        if flow.first_syscall_bytes is None:
            flow.first_syscall_bytes = min(flow.size, self.cfg.send_buffer_bytes)

        # hot-path caches: the per-packet payload split is a config
        # constant, and the claimed_elsewhere hook only matters when a
        # subclass actually overrides it (LCP's shadow loop)
        self._payload = payload
        self._size_pad = self.cfg.mss - payload
        # RTO parameters are construction-time constants of the config;
        # _arm_rto runs once per ACK and per send, so it reads these
        # caches instead of chasing cfg attributes
        self._min_rto = self.cfg.min_rto
        self._rto_cap = max(self.cfg.max_rto, self.cfg.min_rto)
        self._rto_backoff = self.cfg.rto_backoff
        cls = type(self)
        self._has_claims = (cls.claimed_elsewhere
                            is not WindowSender.claimed_elsewhere)
        # build_packet hook dispatch, resolved once: schemes that keep
        # the default P0 / ECN-on hooks skip two frames per data packet
        self._default_priority = cls.priority_for is WindowSender.priority_for
        self._default_ecn = cls.ecn_capable is WindowSender.ecn_capable

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        self.try_send()

    def stop(self) -> None:
        self.finished = True
        if self._rto_event is not None:
            self._rto_event.cancel()
        self._release_seq_state()

    def _release_seq_state(self) -> None:
        """Swap the per-seq containers of a *completed* flow for O(1)
        equivalents.  Every read that can still happen (progress
        signature ``len``, auditor finalize membership/len, late
        duplicate ACKs bounced off the ``finished`` guard) behaves
        identically; what disappears is one hash entry per packet per
        retired flow — the difference between flat and linearly growing
        memory on a long-horizon soak."""
        if len(self.delivered) >= self.n_packets:
            self.delivered = _DeliveredAll(self.n_packets)
        self.outstanding.clear()
        # dead once ``finished`` is set: try_send/handle_ack/transmit all
        # short-circuit, so nothing consults send history or Karn marks
        self._ever_sent = set()
        self._rtx_seqs = set()
        self._no_hole_floor = None
        self._rto_event = None

    # -- sending ----------------------------------------------------------

    def buffer_end(self) -> int:
        """One past the highest packet index currently in the send buffer."""
        return min(self.n_packets, self.cum + self.buffer_packets)

    def _next_new_seq(self) -> Optional[int]:
        end = self.buffer_end()
        ptr = self.send_ptr
        delivered = self.delivered
        outstanding = self.outstanding
        # ``_has_claims`` short-circuits the hook call when no subclass
        # overrides claimed_elsewhere — one bool load instead of a frame
        # per probed seq on the default path.
        claims = self._has_claims
        while ptr < end and (ptr in delivered or ptr in outstanding or
                             (claims and self.claimed_elsewhere(ptr))):
            ptr += 1
        self.send_ptr = ptr
        return ptr if ptr < end else None

    def claimed_elsewhere(self, seq: int) -> bool:
        """Hook: True when another loop (LCP) already has ``seq`` in flight."""
        return False

    def try_send(self) -> None:
        """Transmit while the window allows and data remains."""
        audit = self.audit
        outstanding = self.outstanding
        pre_burst = len(outstanding) if audit is not None else 0
        # cwnd/finished cannot change inside the loop (transmit() never
        # runs congestion hooks; delivery is asynchronous), so they are
        # hoisted out of the loop condition, and _next_new_seq is
        # inlined — one probe loop instead of a frame per window slot
        cwnd = self.cwnd
        if not self.finished:
            delivered = self.delivered
            claims = self._has_claims
            while len(outstanding) < cwnd:
                end = self.buffer_end()
                ptr = self.send_ptr
                while ptr < end and (ptr in delivered or ptr in outstanding or
                                     (claims and self.claimed_elsewhere(ptr))):
                    ptr += 1
                self.send_ptr = ptr
                if ptr >= end:
                    break
                self.transmit(ptr)
        if audit is not None:
            audit.on_send_burst(self, pre_burst)

    def transmit(self, seq: int, retransmit: bool = False) -> None:
        # Any re-send of a seq this loop already transmitted is a
        # retransmission, whether or not the caller knew: after an RTO
        # the presumed-lost window is re-sent via the ordinary try_send
        # path, and that recovery work must show up in the counters.
        ever_sent = self._ever_sent
        retransmit = retransmit or seq in ever_sent
        ever_sent.add(seq)
        pkt = self.build_packet(seq)
        now = self.sim.now
        pkt.retransmit = retransmit
        pkt.sent_at = now
        self.outstanding[seq] = now
        self.pkts_transmitted += 1
        if retransmit:
            self._rtx_seqs.add(seq)
            self.pkts_retransmitted += 1
            if self.obs is not None:
                self.obs.on_retransmit(self.sim.now, self.flow.flow_id, seq)
        self.host.send(pkt)
        self._arm_rto()

    def build_packet(self, seq: int) -> Packet:
        payload = self._payload
        flow = self.flow
        mss = self.cfg.mss
        remaining = flow.size - seq * payload
        size = remaining + self._size_pad
        if remaining < 1:
            size = 1 + self._size_pad
        if size > mss:
            size = mss
        return Packet(
            flow.flow_id,
            flow.src,
            flow.dst,
            seq,
            size,
            DATA,
            0 if self._default_priority else self.priority_for(seq),
            True if self._default_ecn else self.ecn_capable(),
        )

    # -- scheme hooks -------------------------------------------------------

    def priority_for(self, seq: int) -> int:
        """Strict-priority class for packet ``seq``; default P0."""
        return 0

    def ecn_capable(self) -> bool:
        return True

    def cc_on_ack(self, ce: bool, rtt: float) -> None:
        """NewReno default: slow start then +1/cwnd per ACK."""
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0
        else:
            self.cwnd += 1.0 / max(self.cwnd, 1.0)
        self._cap_cwnd()

    def cc_on_fast_rtx(self) -> None:
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = self.ssthresh
        self._cap_cwnd()

    def cc_on_rto(self) -> None:
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = 1.0

    def _cap_cwnd(self) -> None:
        if self.cwnd > self.cfg.max_cwnd_packets:
            self.cwnd = float(self.cfg.max_cwnd_packets)
        if self.cwnd > self.max_cwnd_seen:
            self.max_cwnd_seen = self.cwnd

    # -- receiving ACKs -------------------------------------------------------

    def on_packet(self, pkt: Packet) -> None:
        if pkt.kind != ACK or self.finished:
            return
        self.handle_ack(pkt)

    def handle_ack(self, pkt: Packet) -> None:
        self.acks_received += 1
        seq = pkt.seq
        delivered = self.delivered
        outstanding = self.outstanding
        newly = seq not in delivered
        delivered.add(seq)
        outstanding.pop(seq, None)

        rtt = self.sim.now - pkt.sent_at
        if rtt > 0 and seq not in self._rtx_seqs:
            # Karn's rule: never take an srtt sample from the ACK of a
            # retransmitted seq — the echoed sent_at may belong to either
            # copy, and a stale-original echo measured against a re-send
            # would collapse srtt below the physical floor.
            self.srtt = 0.875 * self.srtt + 0.125 * rtt

        new_cum = pkt.ack_seq
        if new_cum > self.cum:
            for s in range(self.cum, new_cum):
                delivered.add(s)
                outstanding.pop(s, None)
            self.cum = new_cum
            self.dup_acks = 0
        elif seq > self.cum:
            self.dup_acks += 1
            if self.dup_acks >= 3:
                self._fast_retransmit()

        if newly:
            self.rto_backoff_exp = 0  # forward progress: reset backoff
            self.cc_on_ack(pkt.ecn_ce, rtt)

        if len(delivered) >= self.n_packets:
            self.stop()
            return
        self._arm_rto()
        self.try_send()

    MAX_RTX_PER_ACK = 8

    def _fast_retransmit(self) -> None:
        """SACK-style loss recovery: a packet still outstanding one
        smoothed RTT after it was sent, with later packets selectively
        acknowledged, is presumed lost and retransmitted.  The window is
        cut at most once per RTT (one congestion event per window)."""
        now = self.sim.now
        stale = now - max(self.srtt, self.base_rtt)
        floor = self._no_hole_floor
        if floor is not None and floor > stale:
            # Every send time at the last no-hole scan was >= floor, and
            # anything transmitted since then is newer still — so no
            # entry can satisfy ``t <= stale``.  Skipping the O(W) rescan
            # here is exact: the scan below would find nothing.
            return
        holes = [s for s, t in self.outstanding.items()
                 if t <= stale and s < self.n_packets]
        if not holes:
            outstanding = self.outstanding
            self._no_hole_floor = (min(outstanding.values())
                                   if outstanding else None)
            return
        self._no_hole_floor = None
        if now - self._last_fast_rtx >= self.srtt:
            self._last_fast_rtx = now
            self.cc_on_fast_rtx()
        self.dup_acks = 0
        holes.sort()
        for seq in holes[: self.MAX_RTX_PER_ACK]:
            self.transmit(seq, retransmit=True)

    # -- retransmission timeout -----------------------------------------------

    # Backoff exponent never grows past this — 2**16 overflows any
    # realistic cap anyway and unbounded exponents are a float hazard.
    MAX_BACKOFF_EXP = 16

    def rto_interval(self) -> float:
        """Current timeout: base RTO scaled by exponential backoff, capped.

        The ``max_rto`` cap applies to the *base* too — an srtt inflated
        by queueing (or a stale sample) must not let the un-backed-off
        timeout exceed the cap that backoff itself respects.
        """
        cap = max(self.cfg.max_rto, self.cfg.min_rto)
        base = min(max(self.cfg.min_rto, 2.0 * self.srtt), cap)
        if self.rto_backoff_exp == 0:
            return base
        return min(base * self.cfg.rto_backoff ** self.rto_backoff_exp, cap)

    def _arm_rto(self) -> None:
        """Push the RTO deadline out to ``now + rto_interval()``.

        Lazy-deadline pattern: the deadline extension is just a float
        store.  A timer event is only (re)scheduled when none is pending
        or the deadline moved *earlier* (e.g. backoff reset); when the
        existing event fires before the deadline it re-arms itself
        instead of timing out (:meth:`_rto_fire`).
        """
        if self.finished:
            return
        # rto_interval(), inlined with branches for min/max — this runs
        # once per ACK and once per transmission
        cap = self._rto_cap
        interval = 2.0 * self.srtt
        if interval < self._min_rto:
            interval = self._min_rto
        if interval > cap:
            interval = cap
        exp = self.rto_backoff_exp
        if exp:
            interval = min(interval * self._rto_backoff ** exp, cap)
        deadline = self.sim.now + interval
        self._rto_deadline = deadline
        event = self._rto_event
        if event is not None and not event.cancelled and event.time <= deadline:
            return
        if event is not None:
            event.cancel()
        self._rto_event = self.sim.schedule(deadline - self.sim.now,
                                            self._rto_fire)

    def _rto_fire(self) -> None:
        """Timer callback: time out only if the real deadline passed."""
        self._rto_event = None
        if self.finished:
            return
        if self.sim.now < self._rto_deadline:
            # deadline was extended since this event was scheduled;
            # sleep again until the current deadline
            self._rto_event = self.sim.schedule(
                self._rto_deadline - self.sim.now, self._rto_fire)
            return
        self._on_rto()

    def _on_rto(self) -> None:
        if self.finished:
            return
        self.host.ops_sent += 1  # timer work counts as datapath ops
        self.rtos_fired += 1
        if self.obs is not None:
            self.obs.on_rto(self.sim.now, self.flow.flow_id)
        if self.rto_backoff_exp < self.MAX_BACKOFF_EXP:
            self.rto_backoff_exp += 1
        # Everything in flight is presumed lost.
        self.outstanding.clear()
        self.send_ptr = self.cum
        self.cc_on_rto()
        self.try_send()
        if not self.outstanding:
            # nothing sendable (e.g. all delivered via SACK); re-arm anyway
            self._arm_rto()

    # -- introspection ----------------------------------------------------------

    @property
    def bytes_delivered(self) -> int:
        payload = self.cfg.payload_per_packet()
        return min(self.flow.size, len(self.delivered) * payload)
