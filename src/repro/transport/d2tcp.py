"""D2TCP [Vamanan et al., SIGCOMM 2012] — deadline-aware DCTCP.

Cited in the paper's appendix C among the reactive transports that
"require multiple rounds to converge and lack flow scheduling".  D2TCP
keeps DCTCP's alpha estimate but gamma-corrects the window cut with a
per-flow urgency exponent::

    p = alpha ** d          # d = deadline imminence factor
    cwnd <- cwnd * (1 - p/2)

where ``d`` grows as the flow's deadline approaches (far-deadline flows
back off more, near-deadline flows less).  ``d`` is clamped to
[D_MIN, D_MAX] as in the original paper; flows without a deadline behave
exactly like DCTCP (d = 1).
"""

from __future__ import annotations

from .base import Flow, Scheme, TransportContext
from .dctcp import Dctcp, DctcpSender

D_MIN = 0.5
D_MAX = 2.0


class D2tcpSender(DctcpSender):
    """DCTCP with the gamma-corrected, deadline-aware window cut."""

    def deadline_factor(self) -> float:
        """Urgency exponent d = Tc / D: expected completion time over
        remaining time to deadline, clamped to [D_MIN, D_MAX]."""
        deadline = getattr(self.flow, "deadline", None)
        if deadline is None:
            return 1.0
        remaining_time = deadline - self.sim.now
        if remaining_time <= 0:
            return D_MAX  # already late: maximum urgency
        remaining_packets = self.n_packets - len(self.delivered)
        rate = max(self.cwnd, 1.0) / max(self.srtt, 1e-9)  # pkts/s
        expected_completion = remaining_packets / rate
        d = expected_completion / remaining_time
        return max(D_MIN, min(D_MAX, d))

    def _end_of_window(self) -> None:
        # replicate DCTCP's per-window bookkeeping with the gamma-
        # corrected cut (p = alpha^d instead of alpha)
        fraction = self._win_ce / max(1, self._win_acks)
        self.alpha = (1.0 - self.g) * self.alpha + self.g * fraction
        self.alpha_history.append(self.alpha)
        if self._win_ce > 0:
            if not self.startup_done:
                self.startup_done = True
                self.ssthresh = max(self.cwnd, 2.0)
                self.wmax = max(self.wmax, self.cwnd)
            penalty = self.alpha ** self.deadline_factor()
            self.cwnd = max(1.0, self.cwnd * (1.0 - penalty / 2.0))
        self._win_acks = 0
        self._win_ce = 0
        self._win_end = max(self.send_ptr, self.cum + 1)
        self._last_alpha_update = self.sim.now
        if self.on_window_update is not None:
            self.on_window_update(self)


class D2tcp(Dctcp):
    name = "d2tcp"
    sender_cls = D2tcpSender
