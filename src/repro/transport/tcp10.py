"""TCP-10 [Dukkipati et al., CCR 2010] — "an argument for increasing
TCP's initial congestion window".

One of Table 1's reactive baselines: standard loss-based TCP whose only
startup improvement is IW=10.  It does not use ECN (classic NewReno
response: halve on loss) and does not schedule flows — the paper's point
is that raising the initial window only helps the *first* RTT of small
flows and ignores the queue-buildup spare bandwidth entirely.
"""

from __future__ import annotations

from .base import Flow, Scheme, TransportContext
from .window import WindowReceiver, WindowSender


class Tcp10Sender(WindowSender):
    """NewReno with IW=10 (the windowing defaults of WindowSender) and
    no ECN reaction."""

    def ecn_capable(self) -> bool:
        return False


class Tcp10(Scheme):
    name = "tcp10"

    def start_flow(self, flow: Flow, ctx: TransportContext) -> None:
        sender = Tcp10Sender(flow, ctx)
        receiver = WindowReceiver(flow, ctx)
        ctx.network.attach(flow.flow_id, flow.src, flow.dst, sender, receiver)
        sender.start()
