"""Homa [Montazeri et al., SIGCOMM 2018] — receiver-driven transport.

The model follows the paper's simulation setup for PPT's evaluation (§6.2):

* **Unscheduled phase** — a new message blindly blasts its first
  ``RTTbytes`` at line rate, at a priority chosen from the message's size
  (smaller messages get higher unscheduled priorities, emulating Homa's
  priority allocation from the workload's size distribution).  This is
  exactly the pre-credit aggressiveness the PPT paper critiques.
* **Scheduled phase** — the *receiver host* (one manager shared by all
  inbound messages) grants the messages with the fewest remaining bytes,
  up to the configured degree of overcommitment, keeping at most one
  ``RTTbytes`` of granted-but-undelivered data per message.  Grants carry
  the scheduled priority (P4 + rank).
* **Loss recovery** — timeout-based only, matching the note in §6.2 that
  Homa's evaluation uses the Aeolus simulator's timeout recovery.

Homa assumes flow (message) sizes are known a priori — the manager sorts
by true remaining bytes — which is precisely the deployability concern
PPT removes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..sim.engine import Event
from ..sim.packet import ACK, CONTROL, DATA, GRANT, HEADER_BYTES, Packet
from .base import Flow, Scheme, TransportContext


def unscheduled_priority(size: int) -> int:
    """Unscheduled priority from message size (smaller -> higher).

    Thresholds approximate Homa's workload-driven priority cutoffs for
    heavy-tailed DCN workloads.
    """
    if size <= 10_000:
        return 0
    if size <= 100_000:
        return 1
    if size <= 1_000_000:
        return 2
    return 3


class _MsgState:
    """Receiver-side state for one inbound message."""

    __slots__ = ("flow", "n_packets", "delivered", "cum", "granted",
                 "done", "sender_host", "last_missing_request")

    def __init__(self, flow: Flow, n_packets: int) -> None:
        self.flow = flow
        self.n_packets = n_packets
        self.delivered: Set[int] = set()
        self.cum = 0
        self.granted = 0          # packets authorised so far
        self.done = False
        self.last_missing_request: Dict[int, float] = {}

    @property
    def remaining(self) -> int:
        return self.n_packets - len(self.delivered)


class HomaReceiverHost:
    """Per-host grant scheduler: SRPT with overcommitment."""

    def __init__(self, host_id: int, ctx: TransportContext, scheme: "Homa") -> None:
        self.host_id = host_id
        self.ctx = ctx
        self.scheme = scheme
        self.messages: Dict[int, _MsgState] = {}

    def add_message(self, flow: Flow) -> None:
        n = flow.n_packets(self.ctx.config.mss)
        state = _MsgState(flow, n)
        state.granted = min(n, self.scheme.rtt_packets(flow, self.ctx))
        self.messages[flow.flow_id] = state

    def on_data(self, pkt: Packet) -> None:
        state = self.messages.get(pkt.flow_id)
        if state is None or state.done:
            return
        old_cum = state.cum
        if pkt.seq not in state.delivered:
            state.delivered.add(pkt.seq)
            while state.cum in state.delivered:
                state.cum += 1
        if len(state.delivered) >= state.n_packets:
            state.done = True
            self._send_grant(state, final=True)
            self.ctx.on_complete(state.flow)
            del self.messages[pkt.flow_id]
            self._regrant()
            return
        self._regrant(trigger=pkt.flow_id)
        if state.cum > old_cum:
            # pure acknowledgement so the sender's timeout recovery makes
            # forward progress (loss *detection* remains timeout-based)
            self._send_grant(state)

    def _ranked(self) -> List[_MsgState]:
        """Active messages by SRPT order (fewest remaining bytes first)."""
        return sorted(self.messages.values(),
                      key=lambda m: (m.remaining, m.flow.flow_id))

    def _regrant(self, trigger: Optional[int] = None) -> None:
        ranked = self._ranked()
        overcommit = self.scheme.overcommit
        for rank, state in enumerate(ranked[:overcommit]):
            rtt_pkts = self.scheme.rtt_packets(state.flow, self.ctx)
            target = min(state.n_packets, len(state.delivered) + rtt_pkts)
            # Plain Homa is evaluated with timeout-based loss recovery
            # only (paper §6.2); Aeolus recovers holes via grants.
            missing = self._missing(state) if self.scheme.grant_resend else []
            if target > state.granted or missing:
                state.granted = max(state.granted, target)
                self._send_grant(state, rank=rank, missing=missing)

    def on_probe(self, pkt: Packet) -> None:
        """Aeolus first-RTT probe: the sender asks which unscheduled
        packets survived; holes are re-requested in the scheduled phase."""
        state = self.messages.get(pkt.flow_id)
        if state is None or state.done:
            return
        horizon = min(pkt.seq, state.n_packets)
        now = self.ctx.sim.now
        missing = []
        for seq in range(horizon):
            if seq in state.delivered:
                continue
            state.last_missing_request[seq] = now
            missing.append(seq)
            if len(missing) >= 64:
                break
        if missing:
            self._send_grant(state, missing=missing)

    def _missing(self, state: _MsgState, limit: int = 8) -> List[int]:
        """Holes below the highest delivered seq, rate-limited per seq."""
        if not state.delivered:
            return []
        high = max(state.delivered)
        now = self.ctx.sim.now
        cooldown = self.ctx.network.base_rtt(state.flow.src, state.flow.dst)
        missing = []
        for seq in range(state.cum, high):
            if seq in state.delivered:
                continue
            last = state.last_missing_request.get(seq, -1.0)
            if now - last < cooldown:
                continue
            state.last_missing_request[seq] = now
            missing.append(seq)
            if len(missing) >= limit:
                break
        return missing

    def _send_grant(self, state: _MsgState, rank: int = 0,
                    missing: Optional[List[int]] = None,
                    final: bool = False) -> None:
        flow = state.flow
        grant = Packet(flow.flow_id, self.host_id, flow.src, state.cum,
                       HEADER_BYTES, kind=GRANT, priority=0)
        grant.ack_seq = state.cum
        scheduled_priority = min(7, 4 + rank)
        grant.meta = (state.granted, tuple(missing or ()), scheduled_priority,
                      final)
        self.ctx.network.send_control(grant)


class _ReceiverEndpoint:
    """Per-flow shim dispatching to the per-host manager.

    ``gro_delay`` models Homa-Linux's GRO batching (appendix C / the
    §6.1.1 remark): the kernel stack aggregates messages before handing
    them up, adding a fixed receive-side latency that hurts small
    messages most.  Zero for the idealised simulation scenarios; set on
    the testbed-shaped scenarios.
    """

    __slots__ = ("manager", "gro_delay")

    def __init__(self, manager: HomaReceiverHost,
                 gro_delay: float = 0.0) -> None:
        self.manager = manager
        self.gro_delay = gro_delay

    def on_packet(self, pkt: Packet) -> None:
        if pkt.kind == DATA:
            if self.gro_delay > 0.0:
                self.manager.ctx.sim.schedule(self.gro_delay,
                                              self.manager.on_data, pkt)
            else:
                self.manager.on_data(pkt)
        elif pkt.kind == CONTROL:
            self.manager.on_probe(pkt)


class HomaSender:
    """Message sender: unscheduled blast, then grant-clocked."""

    def __init__(self, flow: Flow, ctx: TransportContext, scheme: "Homa") -> None:
        self.flow = flow
        self.ctx = ctx
        self.scheme = scheme
        self.sim = ctx.sim
        self.host = ctx.network.hosts[flow.src]
        self.cfg = ctx.config
        self.n_packets = flow.n_packets(self.cfg.mss)
        self.granted = min(self.n_packets, scheme.rtt_packets(flow, ctx))
        self.next_seq = 0
        self.sent: Set[int] = set()
        self.acked_cum = 0
        self.scheduled_priority = 4
        self.finished = False
        self.pkts_transmitted = 0
        self.pkts_retransmitted = 0
        self._rto_event: Optional[Event] = None
        if flow.first_syscall_bytes is None:
            flow.first_syscall_bytes = min(flow.size, self.cfg.send_buffer_bytes)

    def start(self) -> None:
        # unscheduled blast at line rate (NIC serialises back-to-back)
        priority = unscheduled_priority(self.flow.size)
        while self.next_seq < self.granted:
            self._transmit(self.next_seq, priority, unscheduled=True)
            self.next_seq += 1
        self._arm_rto()

    def stop(self) -> None:
        self.finished = True
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    def _transmit(self, seq: int, priority: int, unscheduled: bool = False,
                  retransmit: bool = False) -> None:
        payload = self.cfg.payload_per_packet()
        remaining = self.flow.size - seq * payload
        size = min(self.cfg.mss, max(1, remaining) + HEADER_BYTES)
        pkt = Packet(self.flow.flow_id, self.flow.src, self.flow.dst, seq,
                     size, kind=DATA, priority=priority,
                     ecn_capable=False)
        pkt.unscheduled = unscheduled
        pkt.retransmit = retransmit
        pkt.sent_at = self.sim.now
        self.sent.add(seq)
        self.pkts_transmitted += 1
        if retransmit:
            self.pkts_retransmitted += 1
        self.host.send(pkt)

    def on_packet(self, pkt: Packet) -> None:
        if pkt.kind != GRANT or self.finished:
            return
        granted, missing, priority, final = pkt.meta
        self.scheduled_priority = priority
        if pkt.ack_seq > self.acked_cum:
            self.acked_cum = pkt.ack_seq
        if final:
            self.stop()
            return
        for seq in missing:
            self._transmit(seq, priority, retransmit=True)
        if granted > self.granted:
            self.granted = min(granted, self.n_packets)
        while self.next_seq < self.granted:
            self._transmit(self.next_seq, priority)
            self.next_seq += 1
        self._arm_rto()

    # timeout-based loss recovery (see module docstring)
    def _arm_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
        if self.finished:
            return
        self._rto_event = self.sim.schedule(self.cfg.min_rto, self._on_rto)

    def _on_rto(self) -> None:
        if self.finished:
            return
        self.host.ops_sent += 1
        # resend a window of un-acked sent packets
        window = self.scheme.rtt_packets(self.flow, self.ctx)
        resent = 0
        for seq in range(self.acked_cum, self.next_seq):
            if resent >= window:
                break
            self._transmit(seq, self.scheduled_priority, retransmit=True)
            resent += 1
        self._rto_event = None
        self._arm_rto()


class Homa(Scheme):
    """Homa scheme factory.

    Parameters
    ----------
    rtt_bytes:
        Unscheduled window / grant window size in bytes.  None derives
        the path BDP at flow start (the paper sets 45KB for the 40/100G
        fabric and 50KB on the testbed).
    overcommit:
        Degree of overcommitment (number of concurrently granted
        messages); the paper uses 2.
    """

    name = "homa"

    # Aeolus overrides this: holes are re-requested through grants.
    # Plain Homa relies on the sender timeout alone (see _regrant).
    grant_resend = False

    def __init__(self, rtt_bytes: Optional[int] = None, overcommit: int = 2,
                 gro_delay: float = 0.0):
        self.rtt_bytes = rtt_bytes
        self.overcommit = overcommit
        self.gro_delay = gro_delay

    def configure_network(self, network) -> None:
        # A Homa deployment's P4-P7 queues carry *scheduled* (primary)
        # traffic, not scavenger traffic: give every queue the same
        # dynamic-threshold share instead of the lossy low-priority
        # profile used for PPT/RC3-style opportunistic queues.
        for port in network.ports:
            if port.mux.dt_alphas is not None:
                alpha = max(port.mux.dt_alphas)
                port.mux.dt_alphas = [alpha] * len(port.mux.dt_alphas)

    def rtt_packets(self, flow: Flow, ctx: TransportContext) -> int:
        if self.rtt_bytes is not None:
            return max(1, self.rtt_bytes // ctx.config.mss)
        return ctx.bdp_packets(flow)

    def _manager(self, host_id: int, ctx: TransportContext) -> HomaReceiverHost:
        managers = ctx.extra.setdefault(f"{self.name}_rx", {})
        manager = managers.get(host_id)
        if manager is None:
            manager = HomaReceiverHost(host_id, ctx, self)
            managers[host_id] = manager
        return manager

    def start_flow(self, flow: Flow, ctx: TransportContext) -> None:
        manager = self._manager(flow.dst, ctx)
        manager.add_message(flow)
        sender = HomaSender(flow, ctx, self)
        receiver = _ReceiverEndpoint(manager, self.gro_delay)
        ctx.network.attach(flow.flow_id, flow.src, flow.dst, sender, receiver)
        sender.start()
