"""repro — a packet-level reproduction of
"PPT: A Pragmatic Transport for Datacenters" (SIGCOMM 2024).

Public API quick tour::

    from repro import Ppt, Dctcp, Scenario, run
    from repro.sim import star
    from repro.workloads import WEB_SEARCH, all_to_all, poisson_flows

See README.md for a full walkthrough and DESIGN.md for the system
inventory.
"""

from .core import (
    HypotheticalDctcp,
    LcpController,
    MirrorTagger,
    MwRecordingDctcp,
    Ppt,
    PptHpcc,
    PptSwift,
)
from .experiments import RunResult, Scenario, format_table, run, run_all, two_pass
from .metrics import FctStats, reduction
from .transport import (
    Aeolus,
    Dctcp,
    ExpressPass,
    Flow,
    Halfback,
    Homa,
    Hpcc,
    Ndp,
    Pias,
    Rc3,
    Scheme,
    Swift,
    Tcp10,
    Timely,
    TransportConfig,
    TransportContext,
)

__version__ = "1.0.0"

__all__ = [
    "Ppt", "PptSwift", "LcpController", "MirrorTagger",
    "HypotheticalDctcp", "MwRecordingDctcp",
    "Dctcp", "Pias", "Rc3", "Swift", "Hpcc", "Homa", "Aeolus", "Ndp",
    "Tcp10", "Halfback", "ExpressPass", "Timely", "PptHpcc",
    "Flow", "Scheme", "TransportConfig", "TransportContext",
    "Scenario", "RunResult", "run", "run_all", "two_pass", "format_table",
    "FctStats", "reduction",
    "__version__",
]
