"""Experiment harness: scenarios, runners and per-figure drivers."""

from . import figures, parallel, scenarios, sweeps, tables
from .parallel import GridTask, RunSummary, run_grid, scheme_grid
from .runner import (
    RunResult,
    Scenario,
    format_table,
    run,
    run_all,
    two_pass,
)

__all__ = ["Scenario", "RunResult", "run", "run_all", "two_pass",
           "format_table", "figures", "scenarios", "tables", "sweeps",
           "parallel", "GridTask", "RunSummary", "run_grid", "scheme_grid"]
