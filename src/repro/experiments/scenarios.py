"""Canonical scenario builders for every experiment in the paper.

Scale note: the paper's fabrics (144 hosts, thousands of flows, seconds
of simulated traffic) would take hours per scheme in pure Python, so the
default scenarios here are *scaled replicas*: the same topology shape,
link-speed ratio, oversubscription, buffer/ECN settings and workloads,
with fewer hosts and a few hundred flows, and heavy-tailed size
distributions capped so a run finishes in seconds.  Every builder takes
overrides, so the full-size configuration is one call away (see
``examples/full_scale.py``).

The arrival *load* is always preserved — capping sizes feeds the capped
mean back into the Poisson arrival rate (see
:func:`repro.workloads.generator.poisson_flows`).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

from ..faults.plan import FaultPlan, LinkDown, PacketLoss, PfcStorm, RateDegrade
from ..sim.hybrid import HybridConfig
from ..sim.network import QueueConfig
from ..sim.queues import PfcConfig
from ..sim.topology import Topology, dumbbell, leaf_spine, star
from ..transport.base import Flow, TransportConfig
from ..units import gbps, kb, mb, us
from ..workloads.distributions import EmpiricalCdf, WEB_SEARCH
from ..workloads.generator import poisson_flows
from ..workloads.patterns import PairSampler, all_to_all, incast
from ..workloads.streams import FlowStream, LoadShape, TenantClass, flow_stream

#: The return type every ``build_flows`` closure may now produce.
FlowSource = Union[List[Flow], FlowStream]
from .runner import Scenario

# ---------------------------------------------------------------------------
# fabric builders
# ---------------------------------------------------------------------------

SIM_BUFFER = 120_000          # per-port buffer, §6.2
SIM_K_HIGH = 96_000           # HCP marking threshold, §6.2
SIM_K_LOW = 86_000            # LCP marking threshold, §6.2
TESTBED_BUFFER = 925_000      # 50MB shared by 54 ports (Table 3)
TESTBED_K_HIGH = 100_000      # Table 3
TESTBED_K_LOW = 80_000        # Table 3
DEFAULT_SIZE_CAP = 2_000_000  # flow-size cap for the scaled scenarios

# Lossless (RoCEv2-style) fabric settings for the scaled leaf-spine: ECN
# engages first (the DCQCN/HPCC congestion signal), PFC backstops it —
# XOFF above the marking threshold, XON halfway down, and headroom sized
# for every ingress port's pause-propagation in-flight bytes several
# times over so a lossless class can never drop.
SIM_PFC = PfcConfig(xoff_bytes=60_000, xon_bytes=30_000,
                    headroom_bytes=480_000)
SIM_LOSSLESS_K_HIGH = 40_000  # mark well below XOFF: ECN before PAUSE
SIM_LOSSLESS_K_LOW = 35_000


def _with_features(
    fabric: Callable[[], Topology],
    *,
    lb: str = "ecmp",
    lb_gap: Optional[float] = None,
    pfc: bool = False,
    pfc_config: Optional[PfcConfig] = None,
) -> Callable[[], Topology]:
    """Wrap a fabric builder with PFC / load-balancer configuration.

    With everything at defaults the original closure is returned
    untouched, so scenarios without these features stay bit-identical
    object-for-object.
    """
    if lb == "ecmp" and not pfc and pfc_config is None:
        return fabric

    def build() -> Topology:
        topo = fabric()
        if pfc or pfc_config is not None:
            topo.enable_pfc(pfc_config)
        if lb != "ecmp":
            topo.set_load_balancer(lb, lb_gap)
        return topo

    return build


def sim_qcfg(buffer_bytes: int = SIM_BUFFER, k_high: int = SIM_K_HIGH,
             k_low: int = SIM_K_LOW, **kwargs) -> QueueConfig:
    return QueueConfig(buffer_bytes=buffer_bytes,
                       ecn_thresholds=[k_high] * 4 + [k_low] * 4, **kwargs)


def sim_fabric(
    *,
    n_leaf: int = 4,
    n_spine: int = 2,
    hosts_per_leaf: int = 8,
    edge_rate: float = gbps(40),
    core_rate: float = gbps(100),
    prop_delay: float = us(2),
    qcfg: Optional[QueueConfig] = None,
) -> Callable[[], Topology]:
    """Scaled replica of the §6.2 oversubscribed 40/100G fabric."""
    qcfg = qcfg or sim_qcfg()

    def build() -> Topology:
        return leaf_spine(n_leaf=n_leaf, n_spine=n_spine,
                          hosts_per_leaf=hosts_per_leaf,
                          edge_rate=edge_rate, core_rate=core_rate,
                          prop_delay=prop_delay, qcfg=qcfg)

    return build


def sim_fabric_100_400g(**overrides) -> Callable[[], Topology]:
    """Fig. 22's higher-line-rate variant."""
    params = dict(edge_rate=gbps(100), core_rate=gbps(400))
    params.update(overrides)
    return sim_fabric(**params)


def sim_fabric_non_oversubscribed(**overrides) -> Callable[[], Topology]:
    """Appendix E: 10G edge / 40G core, fully provisioned."""
    params = dict(edge_rate=gbps(10), core_rate=gbps(40),
                  qcfg=sim_qcfg(k_high=30_000, k_low=25_000))
    params.update(overrides)
    return sim_fabric(**params)


def testbed_fabric(n_hosts: int = 15) -> Callable[[], Topology]:
    """The CloudLab testbed stand-in: 15 hosts, one switch, 10G, ~80us RTT."""
    qcfg = QueueConfig(buffer_bytes=TESTBED_BUFFER,
                       ecn_thresholds=[TESTBED_K_HIGH] * 4 + [TESTBED_K_LOW] * 4)

    def build() -> Topology:
        return star(n_hosts, rate=gbps(10), prop_delay=us(19), qcfg=qcfg)

    return build


def star_fabric(
    n_hosts: int = 8,
    *,
    rate: float = gbps(10),
    prop_delay: float = us(10),
    qcfg: Optional[QueueConfig] = None,
) -> Callable[[], Topology]:
    """A small single-switch star (validation-matrix topology #1)."""
    qcfg = qcfg or sim_qcfg()

    def build() -> Topology:
        return star(n_hosts, rate=rate, prop_delay=prop_delay, qcfg=qcfg)

    return build


def dumbbell_fabric(
    *,
    rate: float = gbps(10),
    bottleneck_rate: Optional[float] = None,
    prop_delay: float = us(10),
    qcfg: Optional[QueueConfig] = None,
) -> Callable[[], Topology]:
    """host0–sw0–sw1–host1 (validation-matrix topology #2; also the
    HPCC INT regression fixture — exactly two switch hops each way)."""
    qcfg = qcfg or sim_qcfg()

    def build() -> Topology:
        return dumbbell(rate=rate, bottleneck_rate=bottleneck_rate,
                        prop_delay=prop_delay, qcfg=qcfg)

    return build


def dumbbell_scenario(
    name: str,
    cdf: EmpiricalCdf = WEB_SEARCH,
    *,
    load: float = 0.5,
    n_flows: int = 40,
    bottleneck_rate: Optional[float] = None,
    config: Optional[TransportConfig] = None,
    size_cap: Optional[int] = DEFAULT_SIZE_CAP,
    seed: int = 13,
    max_time: float = 10.0,
    event_budget: Optional[int] = None,
    stream: bool = False,
    load_shape: Optional[LoadShape] = None,
    tenants: Optional[Sequence[TenantClass]] = None,
    arrivals: str = "open",
    closed_users: int = 8,
    lb: str = "ecmp",
    lb_gap: Optional[float] = None,
    pfc: bool = False,
    pfc_config: Optional[PfcConfig] = None,
    hybrid: Optional[HybridConfig] = None,
) -> Scenario:
    """Poisson traffic host0 -> host1 across the dumbbell bottleneck."""
    fabric = _with_features(dumbbell_fabric(bottleneck_rate=bottleneck_rate),
                            lb=lb, lb_gap=lb_gap, pfc=pfc,
                            pfc_config=pfc_config)

    def build_flows(topo: Topology) -> FlowSource:
        return _flow_source(
            incast([0], 1), cdf,
            load=load, link_rate=topo.edge_rate, n_flows=n_flows,
            n_senders=1, seed=seed, size_cap=size_cap,
            stream=stream, load_shape=load_shape, tenants=tenants,
            arrivals=arrivals, closed_users=closed_users)

    return Scenario(name, fabric, build_flows,
                    config=config or sim_config(), max_time=max_time,
                    event_budget=event_budget, hybrid=hybrid)


def micro_fabric(rate: float = gbps(40),
                 buffer_bytes: int = 250_000,
                 k_high: int = 120_000,
                 k_low: int = 100_000) -> Callable[[], Topology]:
    """The 2-sender/1-receiver microbenchmark fabric (Figs 1, 20, 28, 29)."""
    qcfg = sim_qcfg(buffer_bytes, k_high, k_low)

    def build() -> Topology:
        return star(3, rate=rate, prop_delay=us(5), qcfg=qcfg)

    return build


# ---------------------------------------------------------------------------
# flow sources: one materialized/streaming switch for every builder
# ---------------------------------------------------------------------------


def _flow_source(
    pattern: PairSampler,
    cdf: EmpiricalCdf,
    *,
    load: float,
    link_rate: float,
    n_flows: int,
    n_senders: int,
    seed: int,
    size_cap: Optional[int],
    stream: bool,
    load_shape: Optional[LoadShape],
    tenants: Optional[Sequence[TenantClass]],
    arrivals: str,
    closed_users: int,
):
    """Build a scenario's flow source.

    ``stream=True`` returns a constant-memory
    :class:`~repro.workloads.FlowStream` the runner pulls lazily —
    bit-identical to the materialized list for the same seed.  The
    richer generator features (tenant mixes, load shapes, closed-loop
    arrivals) are available in both modes: without ``stream`` the
    stream is simply drained into a list up front.  The plain
    open-loop, unshaped, single-class case keeps going through
    :func:`poisson_flows`, the reference implementation the stream is
    gated against.
    """
    plain = (tenants is None and load_shape is None and arrivals == "open")
    if not stream and plain:
        return poisson_flows(pattern, cdf, load=load, link_rate=link_rate,
                             n_flows=n_flows, n_senders=n_senders, seed=seed,
                             size_cap=size_cap)
    source = flow_stream(pattern, cdf, load=load, link_rate=link_rate,
                         n_flows=n_flows, n_senders=n_senders, seed=seed,
                         size_cap=size_cap, shape=load_shape,
                         tenants=tenants, arrivals=arrivals,
                         closed_users=closed_users)
    return source if stream else source.materialize()


# ---------------------------------------------------------------------------
# transport configs
# ---------------------------------------------------------------------------


def sim_config(**overrides) -> TransportConfig:
    """Large-scale-simulation defaults (§6.2): 2GB send buffer, 1ms RTO."""
    params = dict(min_rto=1e-3, send_buffer_bytes=2_000_000_000,
                  identification_threshold=100_000,
                  demotion_thresholds=(100_000, 400_000, 1_000_000))
    params.update(overrides)
    return TransportConfig(**params)


def testbed_config(**overrides) -> TransportConfig:
    """Testbed defaults (Table 3): RTOmin 10ms, 100KB thresholds."""
    params = dict(min_rto=10e-3, send_buffer_bytes=2_000_000_000,
                  identification_threshold=100_000,
                  demotion_thresholds=(100_000, 400_000, 1_000_000))
    params.update(overrides)
    return TransportConfig(**params)


# ---------------------------------------------------------------------------
# scenario builders
# ---------------------------------------------------------------------------


def all_to_all_scenario(
    name: str,
    cdf: EmpiricalCdf,
    *,
    load: float = 0.5,
    n_flows: int = 150,
    fabric: Optional[Callable[[], Topology]] = None,
    config: Optional[TransportConfig] = None,
    size_cap: Optional[int] = DEFAULT_SIZE_CAP,
    seed: int = 7,
    max_time: float = 10.0,
    faults: Optional[FaultPlan] = None,
    event_budget: Optional[int] = None,
    stream: bool = False,
    load_shape: Optional[LoadShape] = None,
    tenants: Optional[Sequence[TenantClass]] = None,
    arrivals: str = "open",
    closed_users: int = 8,
    lb: str = "ecmp",
    lb_gap: Optional[float] = None,
    pfc: bool = False,
    pfc_config: Optional[PfcConfig] = None,
    hybrid: Optional[HybridConfig] = None,
) -> Scenario:
    """All-to-all Poisson traffic on a fabric (the §6.2 shape)."""
    fabric = _with_features(fabric or sim_fabric(), lb=lb, lb_gap=lb_gap,
                            pfc=pfc, pfc_config=pfc_config)

    def build_flows(topo: Topology) -> FlowSource:
        return _flow_source(
            all_to_all(topo.host_ids()), cdf,
            load=load, link_rate=topo.edge_rate, n_flows=n_flows,
            n_senders=topo.n_hosts, seed=seed, size_cap=size_cap,
            stream=stream, load_shape=load_shape, tenants=tenants,
            arrivals=arrivals, closed_users=closed_users)

    return Scenario(name, fabric, build_flows,
                    config=config or sim_config(), max_time=max_time,
                    faults=faults, event_budget=event_budget, hybrid=hybrid)


def incast_scenario(
    name: str,
    cdf: EmpiricalCdf,
    *,
    n_senders: int,
    load: float = 0.5,
    n_flows: int = 120,
    fabric: Optional[Callable[[], Topology]] = None,
    config: Optional[TransportConfig] = None,
    size_cap: Optional[int] = DEFAULT_SIZE_CAP,
    seed: int = 11,
    max_time: float = 20.0,
    receiver: int = 0,
    faults: Optional[FaultPlan] = None,
    event_budget: Optional[int] = None,
    stream: bool = False,
    load_shape: Optional[LoadShape] = None,
    tenants: Optional[Sequence[TenantClass]] = None,
    arrivals: str = "open",
    closed_users: int = 8,
    lb: str = "ecmp",
    lb_gap: Optional[float] = None,
    pfc: bool = False,
    pfc_config: Optional[PfcConfig] = None,
    hybrid: Optional[HybridConfig] = None,
) -> Scenario:
    """N-to-1 incast: the load is defined against the receiver downlink."""
    fabric = _with_features(fabric or sim_fabric(), lb=lb, lb_gap=lb_gap,
                            pfc=pfc, pfc_config=pfc_config)

    def build_flows(topo: Topology) -> FlowSource:
        senders = [h for h in topo.host_ids() if h != receiver][:n_senders]
        return _flow_source(
            incast(senders, receiver), cdf,
            load=load, link_rate=topo.edge_rate, n_flows=n_flows,
            n_senders=1, seed=seed, size_cap=size_cap,
            stream=stream, load_shape=load_shape, tenants=tenants,
            arrivals=arrivals, closed_users=closed_users)

    return Scenario(name, fabric, build_flows,
                    config=config or sim_config(), max_time=max_time,
                    faults=faults, event_budget=event_budget, hybrid=hybrid)


def two_to_one_scenario(
    name: str,
    cdf: EmpiricalCdf = WEB_SEARCH,
    *,
    load: float = 0.5,
    n_flows: int = 120,
    rate: float = gbps(40),
    k_high: int = 120_000,
    k_low: int = 100_000,
    buffer_bytes: int = 250_000,
    size_cap: Optional[int] = 3_000_000,
    seed: int = 3,
    max_time: float = 30.0,
    stream: bool = False,
    load_shape: Optional[LoadShape] = None,
    tenants: Optional[Sequence[TenantClass]] = None,
    arrivals: str = "open",
    closed_users: int = 8,
) -> Scenario:
    """The Fig 1/20/28/29 microbenchmark: two senders, one receiver."""
    fabric = micro_fabric(rate, buffer_bytes, k_high, k_low)

    def build_flows(topo: Topology) -> FlowSource:
        return _flow_source(
            incast([0, 1], 2), cdf,
            load=load, link_rate=topo.edge_rate, n_flows=n_flows,
            n_senders=1, seed=seed, size_cap=size_cap,
            stream=stream, load_shape=load_shape, tenants=tenants,
            arrivals=arrivals, closed_users=closed_users)

    return Scenario(name, fabric, build_flows, config=sim_config(),
                    max_time=max_time)


def testbed_scenario(
    name: str,
    cdf: EmpiricalCdf,
    *,
    load: float = 0.5,
    n_flows: int = 120,
    pattern: str = "all-to-all",   # or "incast" (the 14-to-1 pattern)
    size_cap: Optional[int] = DEFAULT_SIZE_CAP,
    seed: int = 5,
    max_time: float = 60.0,
    stream: bool = False,
    load_shape: Optional[LoadShape] = None,
    tenants: Optional[Sequence[TenantClass]] = None,
    arrivals: str = "open",
    closed_users: int = 8,
) -> Scenario:
    """The §6.1 testbed experiments: 15 hosts, 10G star, RTOmin 10ms."""
    fabric = testbed_fabric()

    def build_flows(topo: Topology) -> FlowSource:
        hosts = topo.host_ids()
        if pattern == "incast":
            pair = incast(hosts[1:], hosts[0])
            n_senders = 1
        else:
            pair = all_to_all(hosts)
            n_senders = topo.n_hosts
        return _flow_source(pair, cdf, load=load, link_rate=topo.edge_rate,
                            n_flows=n_flows, n_senders=n_senders, seed=seed,
                            size_cap=size_cap,
                            stream=stream, load_shape=load_shape,
                            tenants=tenants, arrivals=arrivals,
                            closed_users=closed_users)

    return Scenario(name, fabric, build_flows, config=testbed_config(),
                    max_time=max_time)


# ---------------------------------------------------------------------------
# sharded-determinism gate (repro.experiments.distributed)
# ---------------------------------------------------------------------------


def shard_gate_scenario(name: str = "shard-gate") -> Scenario:
    """The canonical sharded-determinism gate scenario.

    A 4-leaf/2-spine fabric whose exact parameters (seed 103, load 0.4,
    60 flows, 50us links) have been audited collision-free: no two
    packets whose causal chains cross a shard boundary ever interact at
    the same float timestamp, for 1-, 2- and 4-way partitions.  Under
    that condition the sharded runner's per-flow FCTs are bit-identical
    to the serial runner's (see ``docs/sharding.md`` for the determinism
    contract and why same-timestamp cross-shard ties are the one case
    the contract excludes).  Tests, the validation matrix and CI all
    gate on this scenario — change any parameter and the collision
    audit must be redone.
    """
    return all_to_all_scenario(
        name, WEB_SEARCH, load=0.4, n_flows=60,
        fabric=sim_fabric(n_leaf=4, n_spine=2, hosts_per_leaf=4,
                          prop_delay=us(50)),
        seed=103, max_time=5.0)


# ---------------------------------------------------------------------------
# long-horizon soak (repro.resilience)
# ---------------------------------------------------------------------------


def soak_fault_plan(
    horizon: float,
    *,
    period: float = 300.0,
    seed: int = 17,
    down_port: str = "sw0->host1",
    loss_port: str = "host2->sw0",
    degrade_port: str = "sw0->host3",
) -> FaultPlan:
    """A repeating fault schedule that fires throughout ``horizon``.

    Every ``period`` simulated seconds one fault lands, rotating through
    the three injector families — a link blackout, a Bernoulli loss
    window, a rate degrade — so a soak exercises *every* fault path many
    times, not once.  Windows are short relative to ``period`` (a tenth)
    so the fabric keeps making progress and the run-health watchdog's
    fault grace never masks a real stall for long.
    """
    if horizon <= 0.0:
        raise ValueError(f"horizon must be positive, got {horizon!r}")
    if period <= 0.0:
        raise ValueError(f"period must be positive, got {period!r}")
    events: List[object] = []
    width = period / 10.0
    t = period / 2.0
    k = 0
    while t < horizon:
        kind = k % 3
        if kind == 0:
            events.append(LinkDown(down_port, t, min(width, 0.05)))
        elif kind == 1:
            events.append(PacketLoss(loss_port, 0.02, t, t + width))
        else:
            events.append(RateDegrade(degrade_port, 0.25, t, t + width))
        k += 1
        t += period
    return FaultPlan(events, seed=seed)


def soak_scenario(
    name: str = "soak",
    cdf: EmpiricalCdf = WEB_SEARCH,
    *,
    horizon: float = 3600.0,
    load: float = 0.05,
    n_hosts: int = 4,
    rate: float = gbps(0.01),
    size_cap: Optional[int] = 200_000,
    seed: int = 23,
    fault_period: Optional[float] = 300.0,
    fault_seed: int = 17,
    faults: Optional[FaultPlan] = None,
    config: Optional[TransportConfig] = None,
    event_budget: Optional[int] = None,
    stream: bool = False,
    load_shape: Optional[LoadShape] = None,
    tenants: Optional[Sequence[TenantClass]] = None,
    arrivals: str = "open",
    closed_users: int = 8,
    lb: str = "ecmp",
    lb_gap: Optional[float] = None,
    pfc: bool = False,
    pfc_config: Optional[PfcConfig] = None,
    hybrid: Optional[HybridConfig] = None,
) -> Scenario:
    """Hours of simulated time on a slow star, faults firing throughout.

    Built for :mod:`repro.resilience`: the flow count is derived from
    ``horizon`` so the Poisson arrival process spans ~90% of it (the
    last 10% lets the tail complete), the link rate is deliberately low
    so an hour of simulated time stays a few million events, and
    ``fault_period`` (``None`` disables) lays a
    :func:`soak_fault_plan` over the whole horizon (an explicit
    ``faults`` plan takes precedence).  Designed to run
    under ``--validate`` with periodic checkpoints — see
    ``docs/robustness.md``.
    """
    if horizon <= 0.0:
        raise ValueError(f"horizon must be positive, got {horizon!r}")
    fabric = _with_features(star_fabric(n_hosts, rate=rate),
                            lb=lb, lb_gap=lb_gap, pfc=pfc,
                            pfc_config=pfc_config)
    if faults is None and fault_period is not None:
        faults = soak_fault_plan(horizon, period=fault_period,
                                 seed=fault_seed)

    def build_flows(topo: Topology) -> FlowSource:
        hosts = topo.host_ids()
        mean_size = cdf.mean(size_cap)
        # arrival rate the generator will use (flows/sec); size it so
        # arrivals span ~90% of the horizon
        arrival_rate = load * len(hosts) * topo.edge_rate / (8.0 * mean_size)
        n_flows = max(2, int(arrival_rate * horizon * 0.9))
        return _flow_source(
            all_to_all(hosts), cdf,
            load=load, link_rate=topo.edge_rate, n_flows=n_flows,
            n_senders=len(hosts), seed=seed, size_cap=size_cap,
            stream=stream, load_shape=load_shape, tenants=tenants,
            arrivals=arrivals, closed_users=closed_users)

    # The default 1ms RTO assumes a 40G fabric; at soak rates a single
    # 1500B serialization takes longer than that, so every un-ACKed
    # packet would fire a spurious RTO.  Scale RTOmin well past the slow
    # star's base RTT (~5ms at the default 10 Mbps).
    if config is None:
        config = sim_config(min_rto=0.05)
    # The stall watchdog window scales with the slice length
    # (horizon/200), so sparse soak traffic with multi-second arrival
    # gaps is already tolerated; faults get their usual grace on top.
    return Scenario(name, fabric, build_flows,
                    config=config, max_time=horizon,
                    faults=faults, event_budget=event_budget, hybrid=hybrid)


# ---------------------------------------------------------------------------
# lossless Ethernet (RoCEv2-style) scenarios
# ---------------------------------------------------------------------------


def lossless_fabric(**overrides) -> Callable[[], Topology]:
    """The scaled leaf-spine tuned for lossless operation.

    ECN thresholds are pulled below the PFC XOFF point so DCQCN/HPCC see
    congestion marks before any PAUSE fires — PFC is the backstop, not
    the congestion signal, exactly as RoCEv2 deployments tune it.
    """
    params = dict(qcfg=sim_qcfg(k_high=SIM_LOSSLESS_K_HIGH,
                                k_low=SIM_LOSSLESS_K_LOW))
    params.update(overrides)
    return sim_fabric(**params)


def lossless_scenario(
    name: str,
    cdf: EmpiricalCdf = WEB_SEARCH,
    *,
    n_senders: int = 12,
    load: float = 0.6,
    n_flows: int = 120,
    seed: int = 11,
    max_time: float = 20.0,
    lb: str = "ecmp",
    lb_gap: Optional[float] = None,
    pfc_config: Optional[PfcConfig] = None,
    faults: Optional[FaultPlan] = None,
    **overrides,
) -> Scenario:
    """RoCEv2-style incast on a PFC-enabled leaf-spine.

    The sender set spans two leaves (12 senders > 7 same-leaf peers of
    the receiver), so pauses propagate leaf -> spine -> leaf and the
    lossless guarantee is exercised across the core, not just on one
    edge queue.  Pair with DCQCN or HPCC, the schemes designed for this
    fabric.
    """
    return incast_scenario(
        name, cdf, n_senders=n_senders, load=load, n_flows=n_flows,
        fabric=lossless_fabric(), seed=seed, max_time=max_time,
        lb=lb, lb_gap=lb_gap, pfc=True,
        pfc_config=pfc_config or SIM_PFC, faults=faults, **overrides)


def pfc_storm_scenario(
    name: str,
    cdf: EmpiricalCdf = WEB_SEARCH,
    *,
    storm_port: str = "leaf0->host0",
    storm_start: float = 0.002,
    storm_duration: float = 0.004,
    priority: int = 0,
    **overrides,
) -> Scenario:
    """A lossless incast with a malfunctioning-NIC PFC storm layered on.

    The storm jams ``storm_port`` (the victim receiver's downlink) in
    the paused state; the leaf's shared buffer backs up, the leaf pauses
    its own ingress — spine downlinks included — and head-of-line
    blocking cascades fabric-wide until the window closes.  This is the
    classic PFC failure mode (RoCEv2 deployment papers' motivating
    incident) and the reason `repro.faults` grew a pause injector.
    """
    plan = FaultPlan([PfcStorm(storm_port, storm_start, storm_duration,
                               priority=priority)])
    return lossless_scenario(name, cdf, faults=plan, **overrides)


# ---------------------------------------------------------------------------
# scheme parameter helpers (paper settings)
# ---------------------------------------------------------------------------

HOMA_RTT_BYTES_SIM = 45_000       # §6.2: 45KB for the 40/100G fabric
HOMA_RTT_BYTES_TESTBED = 50_000   # §6.1: 50KB on the testbed
HOMA_OVERCOMMIT = 2               # both


def testbed_params() -> List[dict]:
    """Table 3 rows."""
    return [
        {"parameter": "Switch buffer size", "setting": "50MB (925KB/port)"},
        {"parameter": "Switch port number", "setting": "54"},
        {"parameter": "RTT", "setting": "80us"},
        {"parameter": "RTO_min", "setting": "10ms"},
        {"parameter": "RTTbytes for Homa", "setting": "50KB"},
        {"parameter": "Overcommitment degree for Homa", "setting": "2"},
        {"parameter": "DCTCP's ECN threshold", "setting": "100KB"},
        {"parameter": "HCP's ECN threshold", "setting": "100KB"},
        {"parameter": "LCP's ECN threshold", "setting": "80KB"},
        {"parameter": "Identification threshold", "setting": "100KB"},
    ]
