"""Tables 1-3 of the paper, plus scenario-table cell formatting.

Table 1 is the qualitative design-space comparison; Table 2 is computed
from our workload distributions (so it doubles as a check that the
transcribed CDFs match the paper's summary statistics); Table 3 lists the
testbed parameters (mirrored by :func:`repro.experiments.scenarios
.testbed_params`).

:func:`fct_cell` / :func:`fct_summary_row` render
:class:`~repro.metrics.fct.FctStats` for the CLI scenario tables:
an empty small/large bucket produces an explicit ``"n=0"`` marker
instead of silently printing ``nan``.
"""

from __future__ import annotations

from typing import List

from ..metrics.fct import SMALL_FLOW_BYTES, FctStats
from ..workloads.distributions import DATA_MINING, WEB_SEARCH, EmpiricalCdf
from .scenarios import testbed_params


def fct_cell(seconds: float, n: int):
    """One scenario-table FCT cell: milliseconds, or ``"n=0"`` for an
    empty bucket.  A NaN with a non-zero count is a real upstream bug
    and stays visible as ``nan`` rather than being papered over."""
    if n == 0:
        return "n=0"
    return seconds * 1e3


def fct_summary_row(stats: FctStats) -> dict:
    """Flat milliseconds dict for :class:`FctStats`, with ``n=0``
    markers for empty buckets — what the CLI scenario table prints."""
    return {
        "flows": stats.n_flows,
        "overall_avg_ms": fct_cell(stats.overall_avg, stats.n_flows),
        "small_avg_ms": fct_cell(stats.small_avg, stats.n_small),
        "small_p99_ms": fct_cell(stats.small_p99, stats.n_small),
        "large_avg_ms": fct_cell(stats.large_avg, stats.n_large),
        "overall_p99_ms": fct_cell(stats.overall_p99, stats.n_flows),
    }


def table1() -> List[dict]:
    """Table 1: qualitative comparison of prior transports and PPT."""

    def row(category, scheme, spare, sched, commodity, tcpip, nonintrusive):
        return {
            "category": category,
            "scheme": scheme,
            "spare_bw_pattern": spare,
            "sched_wo_flow_size": sched,
            "commodity_switches": commodity,
            "tcpip_compatible": tcpip,
            "non_intrusive": nonintrusive,
        }

    return [
        row("reactive", "DCTCP", "passive", "x", "yes", "yes", "yes"),
        row("reactive", "TCP-10", "passive", "x", "yes", "yes", "yes"),
        row("reactive", "Halfback", "passive", "x", "yes", "yes", "yes"),
        row("reactive", "RC3", "aggressive", "x", "yes", "yes", "yes"),
        row("reactive", "PIAS", "passive", "yes", "yes", "yes", "yes"),
        row("reactive", "HPCC", "graceful (INT required)", "x", "no",
            "no (RoCE)", "yes"),
        row("proactive", "Homa", "aggressive", "no (size required)", "yes",
            "no", "no"),
        row("proactive", "Aeolus", "aggressive", "no (size required)", "yes",
            "no", "no"),
        row("proactive", "ExpressPass", "passive (1st RTT wasted)", "x",
            "yes", "no", "no"),
        row("proactive", "NDP", "passive (1st RTT wasted)", "x", "no", "no",
            "no"),
        row("—", "PPT", "graceful", "yes", "yes", "yes", "yes"),
    ]


def table2() -> List[dict]:
    """Table 2: flow-size distribution summary, computed from our CDFs."""
    rows = []
    for cdf in (WEB_SEARCH, DATA_MINING):
        short = cdf.fraction_below(SMALL_FLOW_BYTES)
        rows.append({
            "workload": cdf.name,
            "short_flows_0_100KB": f"{short * 100:.0f}%",
            "large_flows_gt_100KB": f"{(1 - short) * 100:.0f}%",
            "average_size_MB": cdf.mean() / 1e6,
        })
    return rows


def table3() -> List[dict]:
    """Table 3: testbed parameter settings."""
    return testbed_params()


# Tables 4 and 5 (Homa-Linux lines-of-code breakdowns) are static facts
# from the paper's appendix C; they motivate PPT's deployability argument
# and are documented verbatim in EXPERIMENTS.md rather than computed.
TABLE4_HOMA_LINUX_LOC = {
    "User API": 1900,
    "Transport control": 2800,
    "GRO/GSO": 400,
    "State management": 700,
    "Memory management": 300,
    "Timeout retransmission": 300,
    "Other": 6300,
}

TABLE5_APP_CHANGES_LOC = {
    "Socket": (2080, True),
    "HTTP package header processing": (1516, False),
    "RPC": (975, True),
    "RAFT consensus protocol": (1365, False),
    "Coroutine synchronization": (145, False),
    "IO": (393, True),
    "Other": (1694, False),
}
