"""Parameter-sweep helpers: run a scheme grid over scenario variants.

The per-figure drivers in :mod:`repro.experiments.figures` hard-code the
paper's sweeps; this module provides the generic machinery for ad-hoc
exploration (load sweeps, buffer sweeps, scheme grids) plus JSON
import/export so results can be archived and diffed across code
versions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from ..metrics.fct import FctStats
from ..transport.base import Scheme
from .parallel import run_grid, scheme_grid
from .runner import Scenario


@dataclass
class SweepPoint:
    """One (scheme, variant) cell of a sweep."""

    scheme: str
    variant: Dict[str, object]
    stats: FctStats
    completed: int
    n_flows: int

    def row(self) -> dict:
        row = {"scheme": self.scheme}
        row.update(self.variant)
        row.update({
            "overall_avg_ms": self.stats.overall_avg * 1e3,
            "small_avg_ms": self.stats.small_avg * 1e3,
            "small_p99_ms": self.stats.small_p99 * 1e3,
            "large_avg_ms": self.stats.large_avg * 1e3,
            "completed": f"{self.completed}/{self.n_flows}",
        })
        return row


def sweep(
    scheme_factories: Dict[str, Callable[[], Scheme]],
    scenario_factory: Callable[..., Scenario],
    variants: Sequence[Dict[str, object]],
    *,
    progress: Optional[Callable[[str], None]] = None,
    jobs: Optional[int] = None,
) -> List[SweepPoint]:
    """Run every scheme on every scenario variant.

    ``scenario_factory`` is called with each variant dict's items as
    keyword arguments and must return a fresh :class:`Scenario`.

    ``jobs`` fans the grid across that many worker processes
    (``-1`` = one per core).  Every cell builds its own fresh scenario
    and results are merged in grid order, so the returned points are
    bit-identical to a serial run — see :mod:`repro.experiments.parallel`
    for the determinism contract.

    For large sweeps pass ``stream=True`` in each variant (every
    builder in :mod:`repro.experiments.scenarios` accepts it): each
    worker then pulls flows lazily from a constant-memory
    :class:`~repro.workloads.FlowStream` built in-process instead of
    materializing the whole workload list up front.  The results are
    bit-identical either way.
    """
    tasks = scheme_grid(scheme_factories, scenario_factory, variants)
    summaries = run_grid(tasks, jobs=jobs, progress=progress)
    return [
        SweepPoint(
            scheme=summary.scheme,
            variant=dict(task.params),
            stats=summary.stats,
            completed=summary.completed,
            n_flows=summary.n_flows,
        )
        for task, summary in zip(tasks, summaries)
    ]


def supervised_sweep(
    scheme_factories: Dict[str, Callable[[], Scheme]],
    scenario_factory: Callable[..., Scenario],
    variants: Sequence[Dict[str, object]],
    *,
    jobs: Optional[int] = None,
    task_timeout: Optional[float] = None,
    retries: int = 2,
    progress: Optional[Callable[[str], None]] = None,
):
    """:func:`sweep` under the :mod:`repro.resilience` supervisor.

    Same grid, same deterministic order — but a hung, crashed or
    repeatedly-failing cell is retried with backoff and ultimately
    quarantined instead of killing the whole sweep.  Returns
    ``(points, failed)``: the :class:`SweepPoint` list for every cell
    that completed (grid order preserved) and the
    :class:`~repro.resilience.FailedTask` records for those that did
    not.  Because each retry replays the identical simulation, the
    points a disturbed sweep produces are bit-identical to an
    undisturbed sweep's — see ``docs/robustness.md``.
    """
    from ..resilience import supervise_grid

    tasks = scheme_grid(scheme_factories, scenario_factory, variants)
    outcome = supervise_grid(tasks, jobs=jobs, task_timeout=task_timeout,
                             retries=retries, progress=progress)
    points = [
        SweepPoint(
            scheme=summary.scheme,
            variant=dict(task.params),
            stats=summary.stats,
            completed=summary.completed,
            n_flows=summary.n_flows,
        )
        for task, summary in zip(tasks, outcome.summaries)
        if summary is not None
    ]
    return points, outcome.failed


def load_sweep_variants(loads: Iterable[float]) -> List[Dict[str, object]]:
    """The most common sweep: one variant per network load."""
    return [{"load": load} for load in loads]


# ---------------------------------------------------------------------------
# result archival
# ---------------------------------------------------------------------------


def rows_to_json(rows: List[dict], path: Union[str, Path],
                 *, meta: Optional[dict] = None) -> None:
    """Save printable rows (plus optional metadata) as JSON."""
    payload = {"meta": meta or {}, "rows": rows}
    Path(path).write_text(json.dumps(payload, indent=1, default=str))


def rows_from_json(path: Union[str, Path]) -> List[dict]:
    """Load rows previously saved with :func:`rows_to_json`."""
    payload = json.loads(Path(path).read_text())
    return payload["rows"]


def points_to_json(points: List[SweepPoint], path: Union[str, Path],
                   *, meta: Optional[dict] = None) -> None:
    rows_to_json([p.row() for p in points], path, meta=meta)
