"""Parameter-sweep helpers: run a scheme grid over scenario variants.

The per-figure drivers in :mod:`repro.experiments.figures` hard-code the
paper's sweeps; this module provides the generic machinery for ad-hoc
exploration (load sweeps, buffer sweeps, scheme grids) plus JSON
import/export so results can be archived and diffed across code
versions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from ..metrics.fct import FctStats
from ..transport.base import Scheme
from .runner import RunResult, Scenario, run


@dataclass
class SweepPoint:
    """One (scheme, variant) cell of a sweep."""

    scheme: str
    variant: Dict[str, object]
    stats: FctStats
    completed: int
    n_flows: int

    def row(self) -> dict:
        row = {"scheme": self.scheme}
        row.update(self.variant)
        row.update({
            "overall_avg_ms": self.stats.overall_avg * 1e3,
            "small_avg_ms": self.stats.small_avg * 1e3,
            "small_p99_ms": self.stats.small_p99 * 1e3,
            "large_avg_ms": self.stats.large_avg * 1e3,
            "completed": f"{self.completed}/{self.n_flows}",
        })
        return row


def sweep(
    scheme_factories: Dict[str, Callable[[], Scheme]],
    scenario_factory: Callable[..., Scenario],
    variants: Sequence[Dict[str, object]],
    *,
    progress: Optional[Callable[[str], None]] = None,
) -> List[SweepPoint]:
    """Run every scheme on every scenario variant.

    ``scenario_factory`` is called with each variant dict's items as
    keyword arguments and must return a fresh :class:`Scenario`.
    """
    points: List[SweepPoint] = []
    for variant in variants:
        scenario = scenario_factory(**variant)
        for name, factory in scheme_factories.items():
            if progress is not None:
                progress(f"{name} @ {variant}")
            result = run(factory(), scenario)
            points.append(SweepPoint(
                scheme=name,
                variant=dict(variant),
                stats=result.stats,
                completed=result.completed,
                n_flows=len(result.flows),
            ))
    return points


def load_sweep_variants(loads: Iterable[float]) -> List[Dict[str, object]]:
    """The most common sweep: one variant per network load."""
    return [{"load": load} for load in loads]


# ---------------------------------------------------------------------------
# result archival
# ---------------------------------------------------------------------------


def rows_to_json(rows: List[dict], path: Union[str, Path],
                 *, meta: Optional[dict] = None) -> None:
    """Save printable rows (plus optional metadata) as JSON."""
    payload = {"meta": meta or {}, "rows": rows}
    Path(path).write_text(json.dumps(payload, indent=1, default=str))


def rows_from_json(path: Union[str, Path]) -> List[dict]:
    """Load rows previously saved with :func:`rows_to_json`."""
    payload = json.loads(Path(path).read_text())
    return payload["rows"]


def points_to_json(points: List[SweepPoint], path: Union[str, Path],
                   *, meta: Optional[dict] = None) -> None:
    rows_to_json([p.row() for p in points], path, meta=meta)
