"""Experiment harness: run one scheme over one scenario, collect results.

A :class:`Scenario` bundles a topology factory, a flow list factory and a
transport config; :func:`run` builds a fresh fabric, lets the scheme
configure it (trimming, spraying, selective drop), schedules every flow's
start, drains the simulator and returns a :class:`RunResult` with FCT
statistics plus the live network for deeper inspection (samplers,
efficiency, CPU proxies).

Because every piece of randomness is seeded, running the same scenario
twice gives identical flows and identical packet-level behaviour — which
is what makes the two-pass *hypothetical DCTCP* construction
(:func:`two_pass`) meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.hypothetical import HypotheticalDctcp, MwRecordingDctcp
from ..metrics.fct import FctStats
from ..sim.topology import Topology
from ..transport.base import Flow, Scheme, TransportConfig, TransportContext


@dataclass
class Scenario:
    """A reproducible experiment setup.

    ``build_topology`` returns a fresh :class:`Topology` (with its own
    simulator);  ``build_flows`` receives that topology and returns the
    flow list (so patterns can reference real host ids and rates).
    """

    name: str
    build_topology: Callable[[], Topology]
    build_flows: Callable[[Topology], List[Flow]]
    config: TransportConfig = field(default_factory=TransportConfig)
    max_time: float = 10.0  # simulated-seconds safety stop

    def describe(self) -> str:
        return self.name


@dataclass
class RunResult:
    scheme_name: str
    scenario_name: str
    flows: List[Flow]
    stats: FctStats
    topology: Topology
    ctx: TransportContext
    wall_events: int

    @property
    def completed(self) -> int:
        return sum(1 for f in self.flows if f.completed)

    @property
    def completion_rate(self) -> float:
        return self.completed / max(1, len(self.flows))

    def summary(self) -> str:
        return (f"[{self.scheme_name} @ {self.scenario_name}] "
                f"{self.completed}/{len(self.flows)} flows, {self.stats}")


def run(
    scheme: Scheme,
    scenario: Scenario,
    *,
    instruments: Optional[Callable[[Topology], object]] = None,
) -> RunResult:
    """Execute ``scheme`` on ``scenario``; returns results when all flows
    finish or the safety stop is reached.

    ``instruments`` may attach samplers to the freshly built topology
    before any flow starts; whatever it returns is stored on the result's
    ``ctx.extra['instruments']``.
    """
    topo = scenario.build_topology()
    scheme.configure_network(topo.network)
    flows = scenario.build_flows(topo)
    ctx = TransportContext(topo.sim, topo.network, scenario.config)
    if instruments is not None:
        ctx.extra["instruments"] = instruments(topo)

    for flow in flows:
        topo.sim.schedule_at(flow.start_time, scheme.start_flow, flow, ctx)

    n_flows = len(flows)
    # Drain in slices so we can stop as soon as everything completes
    # (RTO timers would otherwise keep the heap warm until max_time).
    slice_len = max(scenario.max_time / 200.0, 1e-4)
    t = 0.0
    while len(ctx.completed) < n_flows and t < scenario.max_time:
        t += slice_len
        topo.sim.run(until=t)

    stats = FctStats.from_flows(flows)
    return RunResult(
        scheme_name=scheme.name,
        scenario_name=scenario.name,
        flows=flows,
        stats=stats,
        topology=topo,
        ctx=ctx,
        wall_events=topo.sim.events_run,
    )


def run_all(
    schemes: List[Scheme],
    scenario: Scenario,
) -> Dict[str, RunResult]:
    """Run several schemes on (fresh builds of) the same scenario."""
    return {scheme.name: run(scheme, scenario) for scheme in schemes}


def two_pass(
    scenario: Scenario,
    fill_factor: float = 1.0,
) -> Tuple[RunResult, RunResult]:
    """The hypothetical-DCTCP construction (§2.3).

    Pass one runs default DCTCP recording each flow's maximum window;
    pass two replays the identical scenario with the oracle gap filler.
    Returns ``(baseline_result, hypothetical_result)``.
    """
    recorder = MwRecordingDctcp()
    baseline = run(recorder, scenario)
    hypothetical = HypotheticalDctcp(recorder.mw_table, fill_factor)
    filled = run(hypothetical, scenario)
    return baseline, filled


def format_table(rows: List[dict], columns: Optional[List[str]] = None) -> str:
    """Plain-text table used by the benchmark harness output."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {c: len(c) for c in columns}
    rendered: List[List[str]] = []
    for row in rows:
        line = []
        for c in columns:
            value = row.get(c, "")
            if isinstance(value, float):
                text = f"{value:.3f}"
            else:
                text = str(value)
            widths[c] = max(widths[c], len(text))
            line.append(text)
        rendered.append(line)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    sep = "  ".join("-" * widths[c] for c in columns)
    body = "\n".join(
        "  ".join(cell.ljust(widths[c]) for cell, c in zip(line, columns))
        for line in rendered
    )
    return f"{header}\n{sep}\n{body}"
