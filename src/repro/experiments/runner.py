"""Experiment harness: run one scheme over one scenario, collect results.

A :class:`Scenario` bundles a topology factory, a flow list factory, a
transport config and (optionally) a :class:`~repro.faults.FaultPlan`;
:func:`run` builds a fresh fabric, lets the scheme configure it
(trimming, spraying, selective drop), applies the fault plan, schedules
every flow's start, drains the simulator under a run-health watchdog and
returns a :class:`RunResult` with FCT statistics, a structured
:class:`RunHealth` (completion rate, retransmit/RTO counts, stall
diagnosis, active faults) and the live network for deeper inspection.

The watchdog replaces the old silent spin-to-``max_time``: it stops as
soon as the event heap empties (nothing can ever make progress again),
enforces an optional per-run event budget, and detects stalls — no new
completions *and* no new deliveries across a sliding window — while
giving fault windows (plus an RTO-cap-sized grace period) the benefit of
the doubt, since riding out a fault is precisely what transports are
being tested on.

Because every piece of randomness is seeded, running the same scenario
twice gives identical flows and identical packet-level behaviour — which
is what makes the two-pass *hypothetical DCTCP* construction
(:func:`two_pass`) meaningful.
"""

from __future__ import annotations

import functools
import gc
import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..core.hypothetical import HypotheticalDctcp, MwRecordingDctcp
from ..faults.plan import ActiveFaults, FaultPlan
from ..metrics.fct import FctStats
from ..obs.hooks import chain
from ..obs.telemetry import Telemetry
from ..resilience.checkpoint import (
    CheckpointError,
    RunState,
    load_checkpoint,
    save_checkpoint,
)
from ..sim.hybrid import HybridConfig, HybridController
from ..sim.network import Network
from ..sim.topology import Topology
from ..transport.base import Flow, Scheme, TransportConfig, TransportContext
from ..validate import RunAuditor, ValidationReport
from ..workloads.streams import FlowStream


@dataclass
class Scenario:
    """A reproducible experiment setup.

    ``build_topology`` returns a fresh :class:`Topology` (with its own
    simulator);  ``build_flows`` receives that topology and returns
    either a flow **list** or a :class:`~repro.workloads.FlowStream`
    (so patterns can reference real host ids and rates).  A list is
    scheduled up front; a stream is pulled lazily — one look-ahead flow
    at a time — so memory stays flat regardless of flow count, and for
    the same seed the streamed run is bit-identical to the materialized
    one (see ``docs/workloads.md``).  ``faults`` re-runs the identical
    workload under a deterministic fault schedule; ``event_budget``
    bounds runaway runs.
    """

    name: str
    build_topology: Callable[[], Topology]
    build_flows: Callable[[Topology], Union[List[Flow], FlowStream]]
    config: TransportConfig = field(default_factory=TransportConfig)
    max_time: float = 10.0  # simulated-seconds safety stop
    faults: Optional[FaultPlan] = None
    event_budget: Optional[int] = None  # max simulator events per run
    stall_slices: int = 40  # watchdog window, in drain slices
    # hybrid flow-level fast path (repro.sim.hybrid); None — or a config
    # with enabled=False — takes the identical code path as before the
    # feature existed (bit-identity gated by the validate matrix)
    hybrid: Optional[HybridConfig] = None

    def describe(self) -> str:
        return self.name


@dataclass
class RunHealth:
    """Structured diagnosis of how (and whether) a run finished.

    Replaces the old silent timeout: every :class:`RunResult` carries
    one of these, so a partial ``FctStats`` always comes with the *why*
    — stalled behind a dead link, out of event budget, or simply still
    progressing at ``max_time``.
    """

    n_flows: int = 0
    completed: int = 0
    stalled: bool = False
    stall_time: Optional[float] = None
    stall_reason: Optional[str] = None
    dead_links: List[str] = field(default_factory=list)
    faults_active_at_stall: List[str] = field(default_factory=list)
    fault_windows: List[str] = field(default_factory=list)
    fault_drops: int = 0
    corrupted_pkts: int = 0
    retransmits_total: int = 0
    rtos_total: int = 0
    retransmits_by_flow: Dict[int, int] = field(default_factory=dict)
    event_budget_exceeded: bool = False
    events_run: int = 0
    sim_time: float = 0.0
    # live (non-cancelled) events still pending when the drain stopped —
    # the engine's raw heap length also counts lazily-deleted timers, so
    # diagnostics use Simulator.live_pending instead
    live_pending: int = 0
    # high-water mark of raw heap entries over the run (memory pressure;
    # the pipelined wire model keeps this flat under incast)
    peak_pending: int = 0

    @property
    def completion_rate(self) -> float:
        return self.completed / max(1, self.n_flows)

    @property
    def ok(self) -> bool:
        """All flows completed without stalling or budget exhaustion."""
        return (self.completed == self.n_flows and not self.stalled
                and not self.event_budget_exceeded)

    def summary(self) -> str:
        parts = [f"{self.completed}/{self.n_flows} flows",
                 f"{self.retransmits_total} rtx", f"{self.rtos_total} RTOs"]
        if self.fault_windows:
            parts.append(f"{len(self.fault_windows)} fault window(s), "
                         f"{self.fault_drops} fault drops")
        if self.stalled:
            parts.append(f"STALLED @ {self.stall_time:.6g}s: "
                         f"{self.stall_reason}")
        if self.event_budget_exceeded:
            parts.append("event budget exceeded")
        return "; ".join(parts)


@dataclass
class RunResult:
    scheme_name: str
    scenario_name: str
    flows: List[Flow]
    stats: FctStats
    topology: Topology
    ctx: TransportContext
    wall_events: int
    health: RunHealth = field(default_factory=RunHealth)
    # The run's Telemetry (event trace + counter snapshots + profile)
    # when ``run(..., observe=...)`` asked for one; None otherwise.
    telemetry: Optional[Telemetry] = None
    # The invariant auditor's report when ``run(..., validate=...)``
    # asked for one; None otherwise.
    validation: Optional[ValidationReport] = None

    @property
    def completed(self) -> int:
        return sum(1 for f in self.flows if f.completed)

    @property
    def completion_rate(self) -> float:
        return self.completed / max(1, len(self.flows))

    def summary(self) -> str:
        return (f"[{self.scheme_name} @ {self.scenario_name}] "
                f"{self.completed}/{len(self.flows)} flows, {self.stats}")


def _progress_signature(ctx: TransportContext, network: Network) -> tuple:
    """Snapshot of forward progress: completions, every endpoint's
    delivered-packet count (senders and receivers both keep ``delivered``
    sets; receiver-driven schemes' per-message state counts through the
    same attribute) and the number of registered endpoints (so a newly
    started flow counts as progress).  If this is unchanged across the
    watchdog window, nothing useful is happening — retransmit storms and
    idling RTO timers keep the heap warm but do not move it."""
    delivered = 0
    endpoints = 0
    for host in network.hosts.values():
        endpoints += len(host.endpoints)
        for endpoint in host.endpoints.values():
            # try/except instead of getattr(..., None): nearly every
            # endpoint has ``delivered``, and a caught attribute miss
            # is the rare path — this runs once per endpoint per slice
            try:
                delivered += len(endpoint.delivered)
            except AttributeError:
                pass
    hybrid = ctx.extra.get("hybrid")
    if hybrid is not None:
        # analytic progress has no packets for the counters above to
        # see: fold in the controller's projected-delivery probe so an
        # hours-long abstract epoch never reads as a stall
        return (len(ctx.completed), delivered, endpoints,
                hybrid.progress_probe(network.sim.now))
    return (len(ctx.completed), delivered, endpoints)


def _collect_flow_counters(network: Network, health: RunHealth) -> None:
    """Harvest retransmit/RTO counters from live transport endpoints."""
    seen = set()
    for host in network.hosts.values():
        for flow_id, endpoint in host.endpoints.items():
            if id(endpoint) in seen:
                continue
            seen.add(id(endpoint))
            rtx = getattr(endpoint, "pkts_retransmitted", None)
            if rtx is None:
                continue
            health.retransmits_by_flow[flow_id] = (
                health.retransmits_by_flow.get(flow_id, 0) + rtx)
            health.retransmits_total += rtx
            health.rtos_total += getattr(endpoint, "rtos_fired", 0)


def _resolve_observe(observe: Union[None, bool, Telemetry]) -> Optional[Telemetry]:
    """``observe=`` accepts False/None (off), True (fresh default
    Telemetry) or a preconfigured :class:`~repro.obs.Telemetry`."""
    if observe is None or observe is False:
        return None
    if observe is True:
        return Telemetry()
    if isinstance(observe, Telemetry):
        return observe
    raise TypeError(f"observe must be bool or Telemetry, got {observe!r}")


def _resolve_validate(
        validate: Union[None, bool, str, RunAuditor]) -> Optional[RunAuditor]:
    """``validate=`` accepts False/None (off), True (audit mode),
    ``"strict"`` (raise on first violation) or a preconfigured
    :class:`~repro.validate.RunAuditor`."""
    if validate is None or validate is False:
        return None
    if validate is True:
        return RunAuditor()
    if validate == "strict":
        return RunAuditor(strict=True)
    if isinstance(validate, RunAuditor):
        return validate
    raise TypeError(
        f"validate must be bool, 'strict' or RunAuditor, got {validate!r}")


def _observed_start(scheme: Scheme, flow: Flow, ctx: TransportContext,
                    telemetry: Telemetry) -> None:
    telemetry.on_flow_start(flow)
    scheme.start_flow(flow, ctx)


class _FlowStarts:
    """Adapts a :class:`~repro.workloads.FlowStream` into the
    ``(time, fn, args)`` entries a lazy chain consumes.

    Every pulled flow is appended to ``sink`` — the run's shared
    ``flows`` list — so results, telemetry and the stall watchdog see
    exactly the flows that have entered the simulation.  A plain class
    (not a generator) because the chain pickles into checkpoints and
    generators do not survive ``pickle``.
    """

    def __init__(self, stream: FlowStream, sink: List[Flow],
                 fn: Callable, extra_args: tuple) -> None:
        self._stream = iter(stream)
        self._sink = sink
        self._fn = fn
        self._extra = extra_args

    def __iter__(self) -> "_FlowStarts":
        return self

    def __next__(self) -> tuple:
        flow = next(self._stream)
        self._sink.append(flow)
        return (flow.start_time, self._fn, (flow,) + self._extra)


def _stop_instruments(obj) -> None:
    """Recursively ``stop()`` whatever an ``instruments`` callback (or a
    figure driver) hung onto: a sampler, or any nesting of
    lists/tuples/dicts of them.  Objects without ``stop`` are ignored."""
    if obj is None:
        return
    if isinstance(obj, (list, tuple, set)):
        for item in obj:
            _stop_instruments(item)
        return
    if isinstance(obj, dict):
        for item in obj.values():
            _stop_instruments(item)
        return
    stop = getattr(obj, "stop", None)
    if callable(stop):
        stop()


def run(
    scheme: Optional[Scheme] = None,
    scenario: Optional[Scenario] = None,
    *,
    instruments: Optional[Callable[[Topology], object]] = None,
    observe: Union[None, bool, Telemetry] = None,
    validate: Union[None, bool, str, RunAuditor] = None,
    checkpoint_every: Optional[float] = None,
    checkpoint_path=None,
    resume: Union[None, str, RunState] = None,
) -> RunResult:
    """Execute ``scheme`` on ``scenario``; returns results when all flows
    finish or the watchdog stops the run (stall, event budget, heap
    exhaustion, ``max_time``).

    ``observe`` opts the run into :mod:`repro.obs` telemetry: ``True``
    builds a default :class:`~repro.obs.Telemetry`, or pass your own
    (e.g. with a larger ring capacity).  The finalized object lands on
    ``result.telemetry``.  When off (the default) every hook site stays
    ``None`` and the run is bit-identical to an unobserved one.

    ``instruments`` (the older, narrower mechanism ``observe`` subsumes)
    may attach samplers to the freshly built topology before any flow
    starts; whatever it returns is stored on the result's
    ``ctx.extra['instruments']`` and stopped at drain end.

    ``validate`` opts the run into the :mod:`repro.validate` invariant
    auditor: ``True`` audits (violations land on ``result.validation``),
    ``"strict"`` raises :class:`~repro.validate.InvariantViolation` at
    the first broken law, or pass a preconfigured
    :class:`~repro.validate.RunAuditor`.  The auditor only reads state,
    so a validated run is bit-identical to a bare one.

    ``checkpoint_every`` + ``checkpoint_path`` write a
    :mod:`repro.resilience` snapshot of the whole run every that many
    *simulated* seconds (atomic replace — the file always holds the
    newest complete snapshot).  Snapshotting only reads state, so a
    checkpointed run stays bit-identical to an uncheckpointed one.

    ``resume`` restores such a snapshot (a path or a loaded
    :class:`~repro.resilience.RunState`) and finishes the run from
    where it stopped; the result is bit-identical to a run that never
    stopped.  ``scheme``/``scenario`` may be omitted when resuming —
    when given, their names are checked against the checkpoint.
    ``observe``/``validate``/``instruments`` travel inside the snapshot
    and must not be re-passed.
    """
    if resume is not None:
        if observe not in (None, False) or validate not in (None, False) \
                or instruments is not None:
            raise ValueError(
                "observe/validate/instruments are baked into the checkpoint; "
                "do not pass them together with resume=")
        state = resume if isinstance(resume, RunState) \
            else load_checkpoint(resume)
        if scheme is not None and scheme.name != state.scheme_name:
            raise CheckpointError(
                f"checkpoint was taken for scheme {state.scheme_name!r}, "
                f"cannot resume it as {scheme.name!r}")
        if scenario is not None and scenario.name != state.scenario_name:
            raise CheckpointError(
                f"checkpoint was taken for scenario {state.scenario_name!r}, "
                f"cannot resume it as {scenario.name!r}")
        if state.auditor is not None:
            # certify the restored engine before trusting it with the
            # rest of the run
            state.auditor.on_restore()
        return _finish_run(state, checkpoint_every, checkpoint_path)

    if scheme is None or scenario is None:
        raise TypeError("run() needs scheme and scenario unless resume= "
                        "restores them from a checkpoint")
    telemetry = _resolve_observe(observe)
    auditor = _resolve_validate(validate)
    hybrid_ctl: Optional[HybridController] = None
    if scenario.hybrid is not None and scenario.hybrid.enabled:
        # wrap the scheme: large flows are intercepted at start_flow and
        # advanced analytically; everything else passes straight through
        # to the packet model.  hybrid=None (or enabled=False) skips the
        # wrapper entirely, keeping the bare path bit-identical.
        hybrid_ctl = HybridController(scheme, scenario.hybrid)
        scheme = hybrid_ctl
    topo = scenario.build_topology()
    scheme.configure_network(topo.network)
    faults: Optional[ActiveFaults] = None
    if scenario.faults is not None:
        faults = scenario.faults.apply(topo.network, topo.sim)
        if hybrid_ctl is not None:
            # fault transitions are congestion epochs: bank abstract
            # progress, then let the contended-port sweep demote flows
            # crossing the chained/downed link
            for injector in faults.link_injectors:
                injector.transition_hook = chain(
                    injector.transition_hook, hybrid_ctl.on_fault_transition)
    flow_source = scenario.build_flows(topo)
    if isinstance(flow_source, FlowStream):
        stream, flows = flow_source, []
        total_flows = stream.n_flows
    else:
        stream, flows = None, flow_source
        total_flows = len(flows)
    on_complete = None
    if telemetry is not None:
        telemetry.attach(topo.sim, topo.network, faults)
        on_complete = telemetry.on_flow_complete
    ctx = TransportContext(topo.sim, topo.network, scenario.config,
                           on_complete=on_complete)
    ctx.telemetry = telemetry
    if auditor is not None:
        auditor.attach(topo.sim, topo.network, ctx)
    if faults is not None:
        ctx.extra["faults"] = faults
    if instruments is not None:
        ctx.extra["instruments"] = instruments(topo)

    # One chain entry per flow start instead of one heap event each:
    # seqs are claimed in the same order the schedule_at loop used to,
    # so firing order is bit-identical while the heap holds a single
    # entry for the whole start schedule.  A FlowStream goes through
    # the lazy variant — same (time, seq) keys (the seq block is
    # reserved up front for bounded streams), but flows are pulled one
    # look-ahead at a time, so the start schedule never materializes.
    if stream is not None:
        if telemetry is None:
            start_fn, extra = scheme.start_flow, (ctx,)
        else:
            start_fn = functools.partial(_observed_start, scheme)
            extra = (ctx, telemetry)
        topo.sim.schedule_lazy_chain(
            _FlowStarts(stream, flows, start_fn, extra), count=total_flows)
    elif telemetry is None:
        topo.sim.schedule_chain(
            (flow.start_time, scheme.start_flow, (flow, ctx))
            for flow in flows)
    else:
        topo.sim.schedule_chain(
            (flow.start_time, _observed_start, (scheme, flow, ctx, telemetry))
            for flow in flows)

    state = RunState(
        scheme_name=scheme.name,
        scenario_name=scenario.name,
        topo=topo, ctx=ctx, flows=flows, faults=faults,
        telemetry=telemetry, auditor=auditor, hybrid=hybrid_ctl,
        max_time=scenario.max_time,
        stall_slices=scenario.stall_slices,
        event_budget=scenario.event_budget,
        max_rto=getattr(scenario.config, "max_rto", 0.25),
        total_flows=total_flows,
    )
    return _finish_run(state, checkpoint_every, checkpoint_path)


def _finish_run(state: RunState, checkpoint_every: Optional[float],
                checkpoint_path) -> RunResult:
    """Drain (or keep draining) a run described by ``state`` and build
    the result.  Shared by the fresh and resumed paths — which is
    exactly why a resumed run cannot diverge from a straight-through
    one after the restore point."""
    topo, ctx, flows = state.topo, state.ctx, state.flows
    telemetry, auditor = state.telemetry, state.auditor
    health = _drain(state, checkpoint_every, checkpoint_path)
    _collect_flow_counters(topo.network, health)
    _stop_instruments(ctx.extra.get("instruments"))
    if telemetry is not None:
        telemetry.finalize(topo.network, flows)
    validation = auditor.finalize(flows) if auditor is not None else None

    stats = FctStats.from_flows(flows)
    return RunResult(
        scheme_name=state.scheme_name,
        scenario_name=state.scenario_name,
        flows=flows,
        stats=stats,
        topology=topo,
        ctx=ctx,
        wall_events=topo.sim.events_run,
        health=health,
        telemetry=telemetry,
        validation=validation,
    )


def _drain(state: RunState, checkpoint_every: Optional[float] = None,
           checkpoint_path=None) -> RunHealth:
    """Drain the simulator in slices under the run-health watchdog.

    The loop's position lives on ``state`` (slice clock, watchdog
    progress signature, checkpoint cadence), so a snapshot taken at any
    slice boundary resumes mid-loop with nothing lost.  Checkpoints are
    written at the *end* of an iteration — after the budget, heap and
    watchdog checks — so a restored run re-enters cleanly at the top of
    the next iteration.
    """
    sim, ctx, flows = state.sim, state.ctx, state.flows
    faults, network = state.faults, state.topo.network
    telemetry, auditor = state.telemetry, state.auditor
    # total_flows is the run's target: len(flows) for a materialized
    # list, the stream's declared total for a streamed run (where
    # ``flows`` only holds what has been pulled so far), or None for an
    # unbounded stream — which can only end at max_time or heap
    # exhaustion, so its target is infinite and its reported n_flows is
    # whatever was pulled.
    total = state.total_flows if state.total_flows is not None \
        else len(flows)
    target = state.total_flows if state.total_flows is not None \
        else float("inf")
    health = RunHealth(n_flows=total)
    if faults is not None:
        health.fault_windows = faults.describe_windows()

    # Drain in slices so we can stop as soon as everything completes
    # (RTO timers would otherwise keep the heap warm until max_time).
    slice_len = max(state.max_time / 200.0, 1e-4)
    max_rto = state.max_rto
    # The watchdog never cries stall before the transport had a chance
    # to recover: at least `stall_slices` quiet slices AND a few backed-
    # off RTOs' worth of quiet time.
    stall_window = max(state.stall_slices * slice_len, 4.0 * max_rto)
    grace = 2.0 * max_rto
    checkpointing = (checkpoint_every is not None
                     and checkpoint_path is not None)

    heap_empty = False
    watchdog_tripped = False
    # Hold GC off across the whole drain, not per slice: the nested
    # Simulator.run() guard sees GC already disabled and leaves it
    # alone, so the gen-0 pool isn't collected at every slice boundary.
    # The hot path creates no reference cycles, so deferring collection
    # to the end of the drain is safe.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        while len(ctx.completed) < target and state.t < state.max_time:
            # clamp the final slice: ``t`` stepping past ``max_time``
            # would let the run simulate (and bill) up to one slice
            # beyond the scenario's stated horizon
            state.t = min(state.t + slice_len, state.max_time)
            t = state.t
            max_events = None
            if state.event_budget is not None:
                remaining = state.event_budget - sim.events_run
                if remaining <= 0:
                    health.event_budget_exceeded = True
                    break
                max_events = remaining
            if telemetry is None:
                sim.run(until=t, max_events=max_events)
            else:
                wall_start = _time.perf_counter()
                executed = sim.run(until=t, max_events=max_events)
                telemetry.record_slice(t, executed,
                                       _time.perf_counter() - wall_start)
            # drop lazily-cancelled timers wholesale so a run's peak
            # heap size reflects live work, not RTO corpses (pop order
            # depends only on the (time, seq) keys, so this cannot
            # change behaviour)
            sim.sweep()
            if auditor is not None:
                auditor.on_slice()
            if (state.event_budget is not None
                    and sim.events_run >= state.event_budget):
                health.event_budget_exceeded = True
                break
            if sim.peek_time() is None:
                # Event heap exhausted: nothing can ever happen again,
                # so idling through empty slices until max_time is
                # pointless.
                heap_empty = True
                break
            signature = _progress_signature(ctx, network)
            if signature != state.last_signature:
                state.last_signature = signature
                state.last_progress_t = t
            elif (t - state.last_progress_t >= stall_window
                  and (faults is None
                       or not faults.any_active_or_recent(sim.now, grace))
                  and any(f.start_time <= sim.now and not f.completed
                          for f in flows)):
                # a quiet fabric is only a stall if some *started* flow
                # is stuck — waiting for a sparse arrival schedule is
                # not
                watchdog_tripped = True
                break
            if checkpointing and t - state.last_checkpoint_t \
                    >= checkpoint_every * (1.0 - 1e-12):
                state.last_checkpoint_t = t
                state.checkpoints_taken += 1
                save_checkpoint(state, checkpoint_path)
    finally:
        if gc_was_enabled:
            gc.enable()

    health.completed = len(ctx.completed)
    health.events_run = sim.events_run
    health.sim_time = sim.now
    health.live_pending = sim.live_pending
    health.peak_pending = sim.peak_pending
    if state.total_flows is None:
        # unbounded stream: report against what actually entered the run
        health.n_flows = len(flows)

    if health.completed < health.n_flows \
            and not health.event_budget_exceeded:
        quiet_for = state.t - state.last_progress_t
        if heap_empty:
            health.stalled = True
            health.stall_time = sim.now
            health.stall_reason = (
                f"event heap empty with "
                f"{health.n_flows - health.completed} flow(s) incomplete")
        elif watchdog_tripped or (
                quiet_for >= stall_window
                and any(f.start_time <= sim.now and not f.completed
                        for f in flows)):
            health.stalled = True
            health.stall_time = sim.now
            dead = faults.down_links() if faults is not None else []
            health.dead_links = dead
            if faults is not None:
                health.faults_active_at_stall = faults.active_faults()
            if dead:
                health.stall_reason = (
                    f"no progress for {quiet_for:.6g}s; "
                    f"link(s) down: {', '.join(dead)}")
            elif health.faults_active_at_stall:
                health.stall_reason = (
                    f"no progress for {quiet_for:.6g}s; active faults: "
                    f"{'; '.join(health.faults_active_at_stall)}")
            else:
                health.stall_reason = (
                    f"no progress for {quiet_for:.6g}s; no faults active; "
                    f"{health.live_pending} live event(s) pending")
        else:
            health.stall_reason = "max_time reached while still progressing"

    if faults is not None:
        health.fault_drops = faults.pkts_dropped
        health.corrupted_pkts = faults.pkts_corrupted
    return health


def run_all(
    schemes: List[Scheme],
    scenario: Scenario,
) -> Dict[str, RunResult]:
    """Run several schemes on (fresh builds of) the same scenario."""
    return {scheme.name: run(scheme, scenario) for scheme in schemes}


def two_pass(
    scenario: Scenario,
    fill_factor: float = 1.0,
) -> Tuple[RunResult, RunResult]:
    """The hypothetical-DCTCP construction (§2.3).

    Pass one runs default DCTCP recording each flow's maximum window;
    pass two replays the identical scenario with the oracle gap filler.
    Returns ``(baseline_result, hypothetical_result)``.
    """
    recorder = MwRecordingDctcp()
    baseline = run(recorder, scenario)
    hypothetical = HypotheticalDctcp(recorder.mw_table, fill_factor)
    filled = run(hypothetical, scenario)
    return baseline, filled


def format_table(rows: List[dict], columns: Optional[List[str]] = None) -> str:
    """Plain-text table used by the benchmark harness output."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {c: len(c) for c in columns}
    rendered: List[List[str]] = []
    for row in rows:
        line = []
        for c in columns:
            value = row.get(c, "")
            if isinstance(value, float):
                text = f"{value:.3f}"
            else:
                text = str(value)
            widths[c] = max(widths[c], len(text))
            line.append(text)
        rendered.append(line)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    sep = "  ".join("-" * widths[c] for c in columns)
    body = "\n".join(
        "  ".join(cell.ljust(widths[c]) for cell, c in zip(line, columns))
        for line in rendered
    )
    return f"{header}\n{sep}\n{body}"
