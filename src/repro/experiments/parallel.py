"""Parallel experiment execution: fan a run grid across worker processes.

Every sweep and multi-seed benchmark in this repo is embarrassingly
parallel — each (scheme, variant, seed) cell builds its own topology,
its own simulator and its own seeded RNGs, so cells share *nothing*.
This module exploits that: :func:`run_grid` executes a list of
:class:`GridTask` cells either serially or on a ``fork``-based process
pool, and returns one slim, picklable :class:`RunSummary` per cell in
the exact order the tasks were given.

Determinism contract
--------------------

Parallel output is **bit-identical** to serial output:

* each worker executes the same ``run(scheme_factory(), scenario)`` call
  the serial path would, on a freshly built scenario, so the packet-level
  behaviour of a cell cannot depend on its neighbours;
* results are collected with ``Pool.map``, which preserves submission
  order — the merged list is in deterministic grid order no matter which
  worker finished first.

Workers are created with the ``fork`` start method so tasks (which close
over scheme factories, scenario builders and fault plans — none of them
picklable in general) are inherited by reference through a module-level
table instead of being pickled.  Only the integer task index crosses the
pipe going in, and only the :class:`RunSummary` crosses coming back.  On
platforms without ``fork`` the grid silently degrades to serial
execution, which is always correct.

:class:`RunSummary` vs :class:`~repro.experiments.runner.RunResult`:
the full result drags the live :class:`~repro.sim.network.Network`,
:class:`~repro.sim.topology.Topology` and every endpoint along — none of
which survive pickling (and shipping a few hundred megabytes of
simulator state across a pipe would erase the speedup).  The summary
keeps what every sweep consumer actually reads: FCT statistics, run
health, completion counts and the event total.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..metrics.fct import FctStats
from ..obs.telemetry import TelemetrySummary
from ..transport.base import Scheme
from ..validate import ValidationReport
from .runner import RunHealth, RunResult, Scenario, run


@dataclass
class RunSummary:
    """Slim, picklable digest of one run — what sweeps consume.

    Carries only plain data (dataclasses of numbers, strings and small
    containers), so it crosses process boundaries cheaply and can be
    archived as JSON.  ``telemetry`` is the equally slim
    :class:`~repro.obs.TelemetrySummary` rollup when the cell ran
    observed (the full event trace stays in the worker; only the digest
    crosses the pipe, merged in grid order exactly like the rest).
    """

    scheme: str
    scenario: str
    params: Dict[str, object]
    stats: FctStats
    health: RunHealth
    completed: int
    n_flows: int
    wall_events: int
    telemetry: Optional[TelemetrySummary] = None
    # The invariant auditor's report when the cell ran validated; plain
    # picklable data like everything else here.
    validation: Optional[ValidationReport] = None

    @classmethod
    def from_result(cls, result: RunResult,
                    params: Optional[Dict[str, object]] = None
                    ) -> "RunSummary":
        return cls(
            scheme=result.scheme_name,
            scenario=result.scenario_name,
            params=dict(params or {}),
            stats=result.stats,
            health=result.health,
            completed=result.completed,
            # health.n_flows is the run's true flow target: for a
            # streamed scenario ``result.flows`` only holds what the
            # stream emitted before the drain stopped.
            n_flows=result.health.n_flows,
            wall_events=result.wall_events,
            telemetry=(result.telemetry.summary()
                       if result.telemetry is not None else None),
            validation=result.validation,
        )

    @property
    def completion_rate(self) -> float:
        return self.completed / max(1, self.n_flows)


@dataclass
class GridTask:
    """One cell of a run grid: build a fresh scenario, run one scheme.

    ``scenario_factory`` is called with ``params`` as keyword arguments
    inside the worker, so the (unpicklable) topology/flows/faults are
    built after the fork, exactly as the serial path would build them.
    Streaming scenarios (``stream=True`` builders) get this for free:
    the cell ships only the factory + params, and the worker constructs
    its own :class:`~repro.workloads.FlowStream` from that picklable
    spec — no flow list ever crosses the pipe.
    """

    scheme_factory: Callable[[], Scheme]
    scenario_factory: Callable[..., Scenario]
    params: Dict[str, object] = field(default_factory=dict)
    label: str = ""
    # Registry key for the scheme (sweeps name cells by their factory
    # key, which can differ from ``Scheme.name``); empty = use the
    # scheme's own name.
    scheme_key: str = ""
    # Run the cell with repro.obs telemetry; only the TelemetrySummary
    # digest comes back (the event trace is not picklable at scale).
    observe: bool = False
    # Run the cell with the repro.validate auditor: False (off), True
    # (audit mode) or "strict".  The picklable ValidationReport comes
    # back on the summary; in strict mode a broken law raises
    # InvariantViolation inside the worker and surfaces through the pool.
    validate: object = False

    def execute(self) -> RunSummary:
        scenario = self.scenario_factory(**self.params)
        result = run(self.scheme_factory(), scenario, observe=self.observe,
                     validate=self.validate)
        summary = RunSummary.from_result(result, self.params)
        if self.scheme_key:
            summary.scheme = self.scheme_key
        return summary


class GridTaskError(RuntimeError):
    """A worker raised while executing a grid cell.

    ``Pool.map`` re-raises worker exceptions in the parent with the
    worker's traceback discarded and no hint of *which* cell died —
    useless for a 200-cell sweep.  This wrapper crosses the fork
    boundary intact (it pickles via :meth:`__reduce__`) and carries the
    failing cell's identity (``label``, ``scheme``, ``params``) plus
    the worker-side traceback text, so the parent's stack trace names
    the exact (scheme, seed, params) cell and shows where in the worker
    it blew up.
    """

    def __init__(self, label: str, scheme: str, params: Dict[str, object],
                 cause: str, worker_traceback: str) -> None:
        self.label = label
        self.scheme = scheme
        self.params = params
        self.cause = cause
        self.worker_traceback = worker_traceback
        super().__init__(
            f"grid cell {label or scheme!r} (scheme={scheme!r}, "
            f"params={params!r}) failed in worker: {cause}\n"
            f"--- worker traceback ---\n{worker_traceback}")

    def __reduce__(self):
        return (type(self), (self.label, self.scheme, self.params,
                             self.cause, self.worker_traceback))


# Task table inherited by forked workers; indexed by the integers that
# actually cross the pipe.  Never mutated while a pool is alive.
_FORK_TASKS: Optional[Sequence[GridTask]] = None


def _run_nth_task(index: int) -> RunSummary:
    task = _FORK_TASKS[index]
    try:
        return task.execute()
    except Exception as exc:
        import traceback as _tb
        scheme = task.scheme_key or getattr(
            task.scheme_factory, "__name__", "<factory>")
        raise GridTaskError(
            task.label, scheme, dict(task.params),
            repr(exc), _tb.format_exc()) from exc


def default_jobs() -> int:
    """A sane worker count: the cores this process may actually use.

    ``sched_getaffinity`` respects cgroup/CPU-set limits (container
    quotas, ``taskset``), where ``cpu_count`` reports the whole machine
    and would oversubscribe a pinned process.  Falls back to
    ``cpu_count`` on platforms without affinity support (macOS).
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


# run_grid warns at most once per process about a no-fork degrade; the
# grid is called once per sweep row and repeating the warning per row
# would drown the table
_warned_no_fork = False


def _warn_no_fork() -> None:
    global _warned_no_fork
    if _warned_no_fork:
        return
    _warned_no_fork = True
    warnings.warn(
        f"parallel grid requested but the {multiprocessing.get_start_method()!r} "
        "start method cannot share task closures (fork unavailable); "
        "running serially in-process",
        RuntimeWarning, stacklevel=3)


def run_grid(
    tasks: Sequence[GridTask],
    *,
    jobs: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[RunSummary]:
    """Execute every task; return summaries in task order.

    ``jobs`` — worker processes.  ``None``, ``0`` or ``1`` runs serially
    in-process; ``-1`` means :func:`default_jobs`.  ``progress`` is
    called with each task's label as its result is merged (serial: as it
    runs), so output ordering is identical on both paths.
    """
    tasks = list(tasks)
    if jobs is not None and jobs < 0:
        jobs = default_jobs()
    n_workers = min(jobs or 1, len(tasks))
    if n_workers <= 1 or not _fork_available():
        if n_workers > 1:
            _warn_no_fork()
        summaries = []
        for task in tasks:
            if progress is not None:
                progress(task.label)
            summaries.append(task.execute())
        return summaries

    global _FORK_TASKS
    previous = _FORK_TASKS
    _FORK_TASKS = tasks
    try:
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=n_workers) as pool:
            summaries = pool.map(_run_nth_task, range(len(tasks)),
                                 chunksize=1)
    finally:
        _FORK_TASKS = previous
    if progress is not None:
        for task in tasks:
            progress(task.label)
    return summaries


def scheme_grid(
    scheme_factories: Dict[str, Callable[[], Scheme]],
    scenario_factory: Callable[..., Scenario],
    variants: Sequence[Dict[str, object]],
) -> List[GridTask]:
    """The canonical sweep grid: variants outer, schemes inner.

    Matches the iteration order of :func:`repro.experiments.sweeps.sweep`
    exactly, which is what makes ``sweep(..., jobs=N)`` bit-identical to
    the serial path.
    """
    tasks: List[GridTask] = []
    for variant in variants:
        for name, factory in scheme_factories.items():
            tasks.append(GridTask(
                scheme_factory=factory,
                scenario_factory=scenario_factory,
                params=dict(variant),
                label=f"{name} @ {variant}",
                scheme_key=name,
            ))
    return tasks
