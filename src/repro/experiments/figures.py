"""Per-figure experiment drivers.

One function per table/figure in the paper's evaluation.  Each returns a
dict with ``rows`` (list of flat dicts, printable with
:func:`~repro.experiments.runner.format_table`) plus any figure-specific
data series, so the benchmark harness can both print the same rows the
paper reports and assert the reproduced *shape*.

All drivers accept scale overrides; defaults are the scaled scenarios of
:mod:`repro.experiments.scenarios` (see that module's scale note).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..core.hypothetical import HypotheticalDctcp, MwRecordingDctcp
from ..core.identification import (
    MEMCACHED_APP,
    WEB_SERVER_APP,
    identification_accuracy,
)
from ..core.ppt import Ppt
from ..core.ppt_swift import PptSwift
from ..metrics.cpu import collect_cpu
from ..metrics.efficiency import collect_efficiency
from ..metrics.fct import FctStats, reduction
from ..metrics.sampler import BufferOccupancySampler, LinkUtilizationSampler
from ..transport.aeolus import Aeolus
from ..transport.dctcp import Dctcp
from ..transport.homa import Homa
from ..transport.hpcc import Hpcc
from ..transport.ndp import Ndp
from ..transport.pias import Pias
from ..transport.rc3 import Rc3
from ..transport.swift import Swift
from ..workloads.distributions import (
    DATA_MINING,
    MEMCACHED_ETC,
    MEMCACHED_W1,
    WEB_SEARCH,
    YOUTUBE_HTTP,
    sample_sizes,
)
from .runner import RunResult, Scenario, run
from .scenarios import (
    HOMA_OVERCOMMIT,
    HOMA_RTT_BYTES_SIM,
    HOMA_RTT_BYTES_TESTBED,
    all_to_all_scenario,
    incast_scenario,
    sim_config,
    sim_fabric,
    sim_fabric_100_400g,
    sim_fabric_non_oversubscribed,
    sim_qcfg,
    testbed_scenario,
    two_to_one_scenario,
)

WORKLOADS = {"web-search": WEB_SEARCH, "data-mining": DATA_MINING,
             "memcached": MEMCACHED_W1}


def stats_row(scheme: str, stats: FctStats, **extra) -> dict:
    row = {
        "scheme": scheme,
        "overall_avg_ms": stats.overall_avg * 1e3,
        "small_avg_ms": stats.small_avg * 1e3,
        "small_p99_ms": stats.small_p99 * 1e3,
        "large_avg_ms": stats.large_avg * 1e3,
    }
    row.update(extra)
    return row


def sim_schemes(rtt_bytes: int = HOMA_RTT_BYTES_SIM) -> List:
    """The §6.2 comparison set: NDP, Aeolus, Homa, RC3, DCTCP, PPT."""
    return [
        Ndp(rtt_bytes=rtt_bytes),
        Aeolus(rtt_bytes=rtt_bytes, overcommit=HOMA_OVERCOMMIT),
        Homa(rtt_bytes=rtt_bytes, overcommit=HOMA_OVERCOMMIT),
        Rc3(),
        Dctcp(),
        Ppt(),
    ]


# Homa-Linux batches messages through GRO before handing them up — a
# fixed receive-side latency the paper blames for its poor small-flow
# results on the testbed (§6.1.1 remarks, appendix C).
HOMA_LINUX_GRO_DELAY = 40e-6


def testbed_schemes() -> List:
    """The §6.1 comparison set: Homa-Linux, RC3, DCTCP, PPT."""
    return [
        Homa(rtt_bytes=HOMA_RTT_BYTES_TESTBED, overcommit=HOMA_OVERCOMMIT,
             gro_delay=HOMA_LINUX_GRO_DELAY),
        Rc3(),
        Dctcp(),
        Ppt(),
    ]


def run_schemes(schemes: Iterable, scenario: Scenario,
                **extra) -> Dict[str, RunResult]:
    results = {}
    for scheme in schemes:
        results[scheme.name] = run(scheme, scenario)
    return results


# ---------------------------------------------------------------------------
# Figs 1 & 20 — link utilisation microbenchmark
# ---------------------------------------------------------------------------


def _utilization_run(scheme, scenario, interval: float = 100e-6,
                     skip: int = 10, samples: int = 50):
    holder = {}

    def instruments(topo):
        sampler = LinkUtilizationSampler(topo.sim, topo.network.port_to_host(2),
                                         interval)
        holder["sampler"] = sampler
        return sampler

    result = run(scheme, scenario, instruments=instruments)
    series = holder["sampler"].utilizations()[skip:skip + samples]
    return result, series


def fig01_link_utilization(*, load: float = 0.5, n_flows: int = 120) -> dict:
    """Fig. 1: DCTCP's utilisation fluctuates below the ideal load."""
    scenario = two_to_one_scenario("fig01", load=load, n_flows=n_flows)
    _result, series = _utilization_run(Dctcp(), scenario)
    avg = sum(series) / len(series)
    rows = [{"scheme": "dctcp", "avg_utilization": avg,
             "min_utilization": min(series), "max_utilization": max(series),
             "ideal": load}]
    return {"rows": rows, "series": {"dctcp": series}, "ideal": load}


def fig20_link_utilization(*, load: float = 0.5, n_flows: int = 120) -> dict:
    """Fig. 20: PPT vs DCTCP vs hypothetical DCTCP utilisation."""
    scenario = two_to_one_scenario("fig20", load=load, n_flows=n_flows)
    series: Dict[str, List[float]] = {}

    _res, series["dctcp"] = _utilization_run(Dctcp(), scenario)
    recorder = MwRecordingDctcp()
    run(recorder, scenario)
    _res, series["hypothetical"] = _utilization_run(
        HypotheticalDctcp(recorder.mw_table), scenario)
    _res, series["ppt"] = _utilization_run(Ppt(), scenario)

    rows = []
    for name, vals in series.items():
        rows.append({"scheme": name,
                     "avg_utilization": sum(vals) / len(vals),
                     "min_utilization": min(vals), "ideal": load})
    return {"rows": rows, "series": series, "ideal": load}


# ---------------------------------------------------------------------------
# Figs 2 & 3 — the hypothetical DCTCP motivation
# ---------------------------------------------------------------------------


def fig02_hypothetical(*, n_flows: int = 150, load: float = 0.5) -> dict:
    """Fig. 2: hypothetical DCTCP beats Homa and NDP on overall avg FCT."""
    scenario = all_to_all_scenario("fig02", WEB_SEARCH, load=load,
                                   n_flows=n_flows)
    recorder = MwRecordingDctcp()
    base = run(recorder, scenario)
    hypo = run(HypotheticalDctcp(recorder.mw_table), scenario)
    homa = run(Homa(rtt_bytes=HOMA_RTT_BYTES_SIM), scenario)
    ndp = run(Ndp(rtt_bytes=HOMA_RTT_BYTES_SIM), scenario)
    rows = [
        {"scheme": "dctcp", "overall_avg_ms": base.stats.overall_avg * 1e3},
        {"scheme": "hypothetical-dctcp",
         "overall_avg_ms": hypo.stats.overall_avg * 1e3},
        {"scheme": "homa", "overall_avg_ms": homa.stats.overall_avg * 1e3},
        {"scheme": "ndp", "overall_avg_ms": ndp.stats.overall_avg * 1e3},
    ]
    return {"rows": rows,
            "results": {"dctcp": base, "hypothetical": hypo,
                        "homa": homa, "ndp": ndp}}


def fig03_fill_factor(*, factors: Sequence[float] = (0.5, 1.0, 1.5),
                      n_flows: int = 120, load: float = 0.6) -> dict:
    """Fig. 3: filling beyond 1x MW hurts badly; 1x MW is the choice.

    Runs on plain shared tail-drop buffers (no dynamic-threshold
    protection) like the paper's ns-3 queues — under the commodity
    per-priority DT used elsewhere, an overfilling flow mostly punishes
    itself and the penalty is masked (see EXPERIMENTS.md)."""
    fabric = sim_fabric(qcfg=sim_qcfg(dt_alpha=None))
    scenario = all_to_all_scenario("fig03", DATA_MINING, load=load,
                                   n_flows=n_flows, size_cap=2_000_000,
                                   fabric=fabric)
    recorder = MwRecordingDctcp()
    run(recorder, scenario)
    rows = []
    results = {}
    for factor in factors:
        res = run(HypotheticalDctcp(recorder.mw_table, factor), scenario)
        results[factor] = res
        rows.append({"fill_factor": factor,
                     "overall_avg_ms": res.stats.overall_avg * 1e3})
    return {"rows": rows, "results": results}


# ---------------------------------------------------------------------------
# Figs 8-11 — testbed experiments (15-to-15 and 14-to-1)
# ---------------------------------------------------------------------------


def fig08_09_testbed_15to15(workload: str = "web-search",
                            *, loads: Sequence[float] = (0.5, 0.7),
                            n_flows: int = 100) -> dict:
    """Figs. 8/9: 15-to-15 FCT statistics vs load on the testbed."""
    cdf = WORKLOADS[workload]
    rows = []
    results = {}
    for load in loads:
        scenario = testbed_scenario(f"fig08-{workload}-{load}", cdf,
                                    load=load, n_flows=n_flows)
        for scheme in testbed_schemes():
            res = run(scheme, scenario)
            results[(scheme.name, load)] = res
            rows.append(stats_row(scheme.name, res.stats, load=load))
    return {"rows": rows, "results": results}


def fig10_11_testbed_14to1(workload: str = "web-search",
                           *, load: float = 0.5, n_flows: int = 100) -> dict:
    """Figs. 10/11: 14-to-1 incast FCT statistics on the testbed."""
    cdf = WORKLOADS[workload]
    scenario = testbed_scenario(f"fig10-{workload}", cdf, load=load,
                                n_flows=n_flows, pattern="incast")
    rows = []
    results = {}
    for scheme in testbed_schemes():
        res = run(scheme, scenario)
        results[scheme.name] = res
        rows.append(stats_row(scheme.name, res.stats))
    return {"rows": rows, "results": results}


# ---------------------------------------------------------------------------
# Figs 12/13 — large-scale simulations
# ---------------------------------------------------------------------------


def fig12_13_largescale(workload: str = "web-search", *, load: float = 0.5,
                        n_flows: int = 150,
                        fabric: Optional[Callable] = None,
                        schemes: Optional[List] = None) -> dict:
    """Figs. 12/13: the six-scheme comparison on the oversubscribed fabric."""
    cdf = WORKLOADS[workload]
    scenario = all_to_all_scenario(f"fig12-{workload}", cdf, load=load,
                                   n_flows=n_flows, fabric=fabric)
    rows = []
    results = {}
    for scheme in (schemes or sim_schemes()):
        res = run(scheme, scenario)
        results[scheme.name] = res
        rows.append(stats_row(scheme.name, res.stats))
    return {"rows": rows, "results": results}


# ---------------------------------------------------------------------------
# Fig 14 — PPT over a delay-based transport
# ---------------------------------------------------------------------------


def fig14_delay_based(*, load: float = 0.5, n_flows: int = 150) -> dict:
    """Fig. 14: grafting PPT's design onto a Swift-like transport."""
    scenario = all_to_all_scenario("fig14", WEB_SEARCH, load=load,
                                   n_flows=n_flows)
    base = run(Swift(), scenario)
    variant = run(PptSwift(), scenario)
    rows = [stats_row("swift", base.stats),
            stats_row("ppt-swift", variant.stats)]
    return {"rows": rows, "results": {"swift": base, "ppt-swift": variant}}


# ---------------------------------------------------------------------------
# Figs 15-18 — ablations
# ---------------------------------------------------------------------------


def _ablation(variant: Ppt, name: str, *, load: float = 0.5,
              n_flows: int = 150) -> dict:
    scenario = all_to_all_scenario(name, WEB_SEARCH, load=load,
                                   n_flows=n_flows)
    full = run(Ppt(), scenario)
    ablated = run(variant, scenario)
    rows = [stats_row("ppt", full.stats),
            stats_row(variant.name, ablated.stats)]
    return {"rows": rows, "results": {"ppt": full, variant.name: ablated}}


def fig15_ablation_lcp_ecn(**kwargs) -> dict:
    """Fig. 15: PPT without ECN for the LCP loop."""
    return _ablation(Ppt(lcp_ecn=False), "fig15", **kwargs)


def fig16_ablation_ewd(**kwargs) -> dict:
    """Fig. 16: PPT without EWD (line-rate LCP)."""
    return _ablation(Ppt(ewd=False), "fig16", **kwargs)


def fig17_ablation_scheduling(**kwargs) -> dict:
    """Fig. 17: PPT without flow scheduling (single priority per loop)."""
    return _ablation(Ppt(scheduling=False), "fig17", **kwargs)


def fig18_ablation_identification(**kwargs) -> dict:
    """Fig. 18: PPT without buffer-aware identification."""
    return _ablation(Ppt(identification=False), "fig18", **kwargs)


# ---------------------------------------------------------------------------
# Fig 19 — kernel datapath (CPU) overhead proxy
# ---------------------------------------------------------------------------


def fig19_cpu_overhead(*, loads: Sequence[float] = (0.3, 0.5, 0.7),
                       n_flows: int = 100) -> dict:
    """Fig. 19: PPT's datapath overhead vs DCTCP's, shrinking with load."""
    rows = []
    gaps = []
    for load in loads:
        scenario = testbed_scenario(f"fig19-{load}", WEB_SEARCH, load=load,
                                    n_flows=n_flows)
        usage = {}
        for scheme in (Dctcp(), Ppt()):
            res = run(scheme, scenario)
            duration = max(f.finish_time or 0.0 for f in res.flows)
            cpu = collect_cpu(res.topology.network, duration)
            usage[scheme.name] = cpu.usage_proxy()
        gap = usage["ppt"] - usage["dctcp"]
        gaps.append(gap)
        rows.append({"load": load, "dctcp_cpu_pct": usage["dctcp"],
                     "ppt_cpu_pct": usage["ppt"], "gap_pct": gap})
    return {"rows": rows, "gaps": gaps}


# ---------------------------------------------------------------------------
# Fig 21 — Memcached (all-small) workload
# ---------------------------------------------------------------------------


def fig21_memcached(*, load: float = 0.5, n_flows: int = 20_000) -> dict:
    """Fig. 21: the Facebook Memcached W1 workload (all flows <= 100KB).

    A mean-1.7KB workload at 0.5 load on a 40G fabric is a firehose of
    tiny flows (tens of millions per second fabric-wide), so this
    experiment needs a large flow count for the Poisson process to span
    many RTTs; the flows themselves are 1-2 packets, so the run stays
    cheap.  Demotion/identification thresholds are tuned to the W1 size
    distribution, exactly as PIAS (and hence PPT's aging) derives them
    per workload."""
    cfg = sim_config(demotion_thresholds=(2_000, 10_000, 30_000),
                     identification_threshold=30_000)
    scenario = all_to_all_scenario("fig21", MEMCACHED_W1, load=load,
                                   n_flows=n_flows, size_cap=None,
                                   config=cfg)
    rows = []
    results = {}
    for scheme in sim_schemes():
        res = run(scheme, scenario)
        results[scheme.name] = res
        rows.append(stats_row(scheme.name, res.stats))
    return {"rows": rows, "results": results}


# ---------------------------------------------------------------------------
# Fig 22 — 100/400G topology
# ---------------------------------------------------------------------------


def fig22_100_400g(*, load: float = 0.5, n_flows: int = 150) -> dict:
    """Fig. 22: FCT statistics at 100G edge / 400G core line rates."""
    return fig12_13_largescale("web-search", load=load, n_flows=n_flows,
                               fabric=sim_fabric_100_400g())


# ---------------------------------------------------------------------------
# Fig 23 — incast ratio sweep
# ---------------------------------------------------------------------------


def fig23_incast_sweep(*, ratios: Sequence[int] = (8, 16, 31),
                       load: float = 0.6, n_flows: int = 100) -> dict:
    """Fig. 23: N-to-1 incast (RC3 excluded: it cannot sustain heavy
    incast, per the paper)."""
    rows = []
    results = {}
    schemes = [s for s in sim_schemes() if s.name != "rc3"]
    for n in ratios:
        scenario = incast_scenario(f"fig23-{n}", WEB_SEARCH, n_senders=n,
                                   load=load, n_flows=n_flows)
        for scheme in schemes:
            res = run(scheme, scenario)
            results[(scheme.name, n)] = res
            rows.append({"scheme": scheme.name, "incast_ratio": n,
                         "overall_avg_ms": res.stats.overall_avg * 1e3})
    return {"rows": rows, "results": results}


# ---------------------------------------------------------------------------
# Fig 24 — RC3 with limited low-priority buffer
# ---------------------------------------------------------------------------


def fig24_rc3_lp_buffer(*, fractions: Sequence[float] = (0.2, 0.5, 0.8),
                        load: float = 0.5, n_flows: int = 150) -> dict:
    """Fig. 24: capping RC3's LP buffer does not save it."""
    rows = []
    results = {}
    ppt_scenario = all_to_all_scenario("fig24-ppt", WEB_SEARCH, load=load,
                                       n_flows=n_flows)
    ppt = run(Ppt(), ppt_scenario)
    results["ppt"] = ppt
    rows.append(stats_row("ppt", ppt.stats, lp_buffer_fraction="n/a"))
    from .scenarios import SIM_BUFFER
    for fraction in fractions:
        qcfg = sim_qcfg(lp_buffer_cap=int(SIM_BUFFER * fraction))
        scenario = all_to_all_scenario(
            f"fig24-rc3-{fraction}", WEB_SEARCH, load=load, n_flows=n_flows,
            fabric=sim_fabric(qcfg=qcfg))
        res = run(Rc3(), scenario)
        results[fraction] = res
        rows.append(stats_row("rc3", res.stats, lp_buffer_fraction=fraction))
    return {"rows": rows, "results": results}


# ---------------------------------------------------------------------------
# Fig 25 — PIAS and HPCC
# ---------------------------------------------------------------------------


def fig25_pias_hpcc(*, load: float = 0.5, n_flows: int = 150) -> dict:
    """Fig. 25: PPT vs PIAS vs HPCC."""
    scenario = all_to_all_scenario("fig25", WEB_SEARCH, load=load,
                                   n_flows=n_flows)
    rows = []
    results = {}
    for scheme in (Hpcc(), Pias(), Ppt()):
        res = run(scheme, scenario)
        results[scheme.name] = res
        rows.append(stats_row(scheme.name, res.stats))
    return {"rows": rows, "results": results}


# ---------------------------------------------------------------------------
# Fig 26 — non-oversubscribed topology
# ---------------------------------------------------------------------------


def fig26_non_oversubscribed(*, load: float = 0.5, n_flows: int = 150) -> dict:
    """Appendix E: the proactive-friendly fully-provisioned fabric."""
    return fig12_13_largescale("web-search", load=load, n_flows=n_flows,
                               fabric=sim_fabric_non_oversubscribed())


# ---------------------------------------------------------------------------
# Fig 27 — send-buffer sensitivity
# ---------------------------------------------------------------------------


def fig27_send_buffer(*, sizes: Sequence[int] = (128_000, 2_000_000,
                                                 2_000_000_000),
                      load: float = 0.5, n_flows: int = 150) -> dict:
    """Appendix F: PPT under different TCP send-buffer capacities."""
    rows = []
    results = {}
    for size in sizes:
        scenario = all_to_all_scenario(
            f"fig27-{size}", WEB_SEARCH, load=load, n_flows=n_flows,
            config=sim_config(send_buffer_bytes=size))
        res = run(Ppt(), scenario)
        results[size] = res
        rows.append(stats_row("ppt", res.stats, send_buffer=size))
    return {"rows": rows, "results": results}


# ---------------------------------------------------------------------------
# Figs 28/29 — ECN threshold vs buffer occupancy / transfer efficiency
# ---------------------------------------------------------------------------


def _occupancy_run(scheme, *, threshold_fraction: float, load: float,
                   n_flows: int):
    buffer_bytes = 120_000
    k = int(buffer_bytes * threshold_fraction)
    scenario = two_to_one_scenario(
        f"fig28-{scheme.name}-{threshold_fraction}",
        load=load, n_flows=n_flows, buffer_bytes=buffer_bytes,
        k_high=k, k_low=k)
    holder = {}

    def instruments(topo):
        sampler = BufferOccupancySampler(topo.sim,
                                         topo.network.port_to_host(2), 50e-6)
        holder["sampler"] = sampler
        return sampler

    result = run(scheme, scenario, instruments=instruments)
    total, high, low = holder["sampler"].averages(skip=5)
    return result, total, high, low


def fig28_buffer_occupancy(*, fractions: Sequence[float] = (0.6, 0.8),
                           load: float = 0.7, n_flows: int = 100) -> dict:
    """Appendix F: high- vs low-priority buffer occupancy per scheme."""
    rows = []
    data = {}
    for fraction in fractions:
        for scheme in (Dctcp(), Rc3(), Ppt()):
            _res, total, high, low = _occupancy_run(
                scheme, threshold_fraction=fraction, load=load,
                n_flows=n_flows)
            data[(scheme.name, fraction)] = (total, high, low)
            rows.append({"scheme": scheme.name, "ecn_fraction": fraction,
                         "avg_total_bytes": total, "avg_high_bytes": high,
                         "avg_low_bytes": low,
                         "low_share": (low / total) if total else 0.0})
    return {"rows": rows, "data": data}


def fig29_transfer_efficiency(*, fractions: Sequence[float] = (0.6, 0.8),
                              load: float = 0.7, n_flows: int = 100) -> dict:
    """Appendix F: received/sent efficiency, overall and LP-only."""
    rows = []
    data = {}
    for fraction in fractions:
        buffer_bytes = 120_000
        k = int(buffer_bytes * fraction)
        for scheme in (Dctcp(), Rc3(), Ppt()):
            scenario = two_to_one_scenario(
                f"fig29-{scheme.name}-{fraction}", load=load,
                n_flows=n_flows, buffer_bytes=buffer_bytes, k_high=k, k_low=k)
            res = run(scheme, scenario)
            eff = collect_efficiency(res.topology.network)
            data[(scheme.name, fraction)] = eff
            rows.append({"scheme": scheme.name, "ecn_fraction": fraction,
                         "overall_efficiency": eff.overall,
                         "lp_efficiency": eff.low_priority})
    return {"rows": rows, "data": data}


# ---------------------------------------------------------------------------
# §4.1 — buffer-aware identification accuracy
# ---------------------------------------------------------------------------


def sec41_identification_accuracy(*, n_messages: int = 5000,
                                  seed: int = 1) -> dict:
    """§4.1: first-syscall identification accuracy on app-shaped traces."""
    etc_sizes = sample_sizes(MEMCACHED_ETC, n_messages, seed=seed)
    http_sizes = sample_sizes(YOUTUBE_HTTP, n_messages, seed=seed + 1)
    memcached = identification_accuracy(
        etc_sizes, MEMCACHED_APP, threshold=1_000, send_buffer=16_000,
        seed=seed)
    web = identification_accuracy(
        http_sizes, WEB_SERVER_APP, threshold=10_000, send_buffer=16_000,
        seed=seed)
    rows = [
        {"application": "memcached (ETC)", "threshold": "1KB",
         "accuracy": memcached, "paper_accuracy": 0.867},
        {"application": "web server (HTTP)", "threshold": "10KB",
         "accuracy": web, "paper_accuracy": 0.843},
    ]
    return {"rows": rows, "memcached": memcached, "web": web}
