"""Sharded run supervisor: one process per shard, merged like a grid.

:func:`run_sharded` is the space-parallel sibling of
:func:`repro.experiments.parallel.run_grid`: it plans the partition
(:func:`repro.sim.shard.plan_shards`), wires a full mesh of
``multiprocessing`` pipes between the shards plus one result pipe each,
forks one :class:`~repro.sim.shard.ShardWorker` per shard (the
scheme/scenario are inherited by reference through a module-level spec,
exactly like the grid's fork table — nothing unpicklable ever crosses a
pipe going in), and merges the returned
:class:`~repro.sim.shard.ShardSummary` objects into the same
:class:`~repro.experiments.parallel.RunSummary` shape every sweep
consumer already reads.

The merge also closes the global conservation law the per-shard books
cannot see: for every ordered shard pair (A, B), the packets/bytes A
ledgered into its outbox for B must equal what B ledgered out of its
inbox from A — exactly, not approximately.  A mismatch is recorded as a
``shard-handoff-conservation`` violation on the combined validation
report (or raised outright when the run is not validated, since nobody
would otherwise see it).

``n_shards == 1`` runs the worker in-process — no fork, no pipes — and
is the bit-identity anchor: its per-flow FCTs must equal the plain
serial runner's.  On platforms without ``fork``, multi-shard runs raise
instead of silently degrading (a one-shard "sharded" run would report
misleading scaling numbers).
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass
from multiprocessing.connection import wait as _conn_wait
from typing import Dict, List, Optional, Tuple

from ..metrics.fct import FctStats
from ..obs.telemetry import TelemetrySummary
from ..sim.shard import ShardPlan, ShardSummary, ShardWorker, plan_shards
from ..transport.base import Flow, Scheme
from ..validate import ValidationReport
from ..validate.report import Violation
from .parallel import RunSummary, _fork_available
from .runner import RunHealth, Scenario


class ShardError(RuntimeError):
    """A shard worker failed; carries the worker-side traceback.

    Same contract as :class:`~repro.experiments.parallel.GridTaskError`:
    pickles via :meth:`__reduce__` and names the failing shard, so the
    parent's stack trace points at the right process.
    """

    def __init__(self, shard_id: int, cause: str,
                 worker_traceback: str) -> None:
        self.shard_id = shard_id
        self.cause = cause
        self.worker_traceback = worker_traceback
        message = f"shard {shard_id} failed: {cause}"
        if worker_traceback:
            message += f"\n--- worker traceback ---\n{worker_traceback}"
        super().__init__(message)

    def __reduce__(self):
        return (type(self), (self.shard_id, self.cause,
                             self.worker_traceback))


@dataclass
class DistributedResult:
    """What a sharded run hands back.

    ``summary`` is the grid-shaped digest (scheme, scenario,
    ``params={"shards": n}``, merged stats/health/telemetry/validation);
    ``flows`` is the full deterministic flow list with finish times
    applied from the owning shards; ``shards`` keeps every per-shard
    summary for anyone who wants the partition-level story.
    """

    summary: RunSummary
    flows: List[Flow]
    stats: FctStats
    health: RunHealth
    shards: List[ShardSummary]
    plan: ShardPlan
    conservation_ok: bool


# Spec inherited by forked shard workers (scheme/scenario close over
# unpicklable builders); only the shard index crosses the pipe going in.
# Never mutated while workers are alive.
_SHARD_SPEC: Optional[tuple] = None


def _shard_entry(shard_id: int) -> None:
    plan, scheme, scenario, mesh, result_conns, observe, validate = \
        _SHARD_SPEC
    conn = result_conns[shard_id]
    try:
        conns = {}
        for (i, j), (end_i, end_j) in mesh.items():
            if shard_id == i:
                conns[j] = end_i
            elif shard_id == j:
                conns[i] = end_j
        worker = ShardWorker(shard_id, plan, scheme, scenario, conns,
                             observe=observe, validate=validate)
        conn.send(("ok", worker.run()))
    except BaseException as exc:  # noqa: BLE001 - must cross the pipe
        try:
            conn.send(("error", repr(exc), traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


def _check_scenario(scheme: Scheme, scenario: Scenario, topo) -> None:
    """Reject feature combinations the shard protocol cannot carry.

    Runs in the parent, on the reference build, so a bad combination
    fails with one clear error instead of n worker tracebacks.
    """
    if scenario.faults is not None:
        raise ValueError(
            "sharded runs do not support fault plans (cross-shard fault "
            "windows have no deterministic-merge semantics yet)")
    if scenario.hybrid is not None and scenario.hybrid.enabled:
        raise ValueError(
            "sharded runs do not support the hybrid fast path "
            "(abstract flows have no boundary-crossing packets)")
    if topo.network.pfc_controllers:
        raise ValueError(
            "sharded runs do not support PFC (pause frames cross shard "
            "boundaries outside the data-packet protocol)")


def run_sharded(
    scheme: Scheme,
    scenario: Scenario,
    n_shards: int,
    *,
    observe: bool = False,
    validate: object = False,
    timeout: float = 900.0,
) -> DistributedResult:
    """Run ``scenario`` space-partitioned across ``n_shards`` processes.

    Deterministic-merge contract: per-flow FCTs are bit-identical to the
    serial runner's on the same scenario, for any shard count the
    topology admits (see ``docs/sharding.md``).  ``observe``/``validate``
    mirror the runner's flags; each worker carries its own telemetry /
    auditor and only the picklable digests cross the result pipes.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    # Reference build: yields the plan, the parent's flow list for the
    # merge, and an early home for the unsupported-combo checks.
    ref = scenario.build_topology()
    scheme.configure_network(ref.network)
    _check_scenario(scheme, scenario, ref)
    plan = plan_shards(ref, n_shards)
    flow_source = scenario.build_flows(ref)
    flows = (flow_source if isinstance(flow_source, list)
             else flow_source.materialize())

    if n_shards == 1:
        worker = ShardWorker(0, plan, scheme, scenario, {},
                             observe=observe, validate=validate)
        shard_summaries = [worker.run()]
    else:
        if not _fork_available():
            raise RuntimeError(
                "sharded execution requires the 'fork' start method; "
                f"this platform offers "
                f"{multiprocessing.get_start_method()!r} — run with "
                "--shards 1 or use the serial runner")
        shard_summaries = _run_forked(plan, scheme, scenario,
                                      observe, validate, timeout)

    return _merge(scheme, scenario, plan, shard_summaries, flows,
                  observe=observe, validate=validate)


def _run_forked(plan: ShardPlan, scheme: Scheme, scenario: Scenario,
                observe: bool, validate: object,
                timeout: float) -> List[ShardSummary]:
    n_shards = plan.n_shards
    ctx = multiprocessing.get_context("fork")
    # Full mesh of duplex window pipes, keyed (i, j) with i < j, plus a
    # one-way result pipe per shard — all created before the forks so
    # every child inherits every end it needs.
    mesh: Dict[Tuple[int, int], tuple] = {}
    for i in range(n_shards):
        for j in range(i + 1, n_shards):
            mesh[(i, j)] = ctx.Pipe(True)
    result_pipes = [ctx.Pipe(False) for _ in range(n_shards)]

    global _SHARD_SPEC
    previous = _SHARD_SPEC
    _SHARD_SPEC = (plan, scheme, scenario, mesh,
                   [send for _recv, send in result_pipes],
                   observe, validate)
    procs = []
    summaries: List[Optional[ShardSummary]] = [None] * n_shards
    try:
        for i in range(n_shards):
            proc = ctx.Process(target=_shard_entry, args=(i,), daemon=True)
            proc.start()
            procs.append(proc)
        pending = {result_pipes[i][0]: i for i in range(n_shards)}
        deadline = time.monotonic() + timeout
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                stuck = sorted(pending.values())
                raise ShardError(
                    stuck[0],
                    f"no result after {timeout:.0f}s "
                    f"(shards still pending: {stuck})", "")
            for conn in _conn_wait(list(pending), timeout=remaining):
                shard_id = pending.pop(conn)
                try:
                    message = conn.recv()
                except EOFError:
                    raise ShardError(
                        shard_id, "worker died without reporting "
                        "(killed or crashed hard)", "") from None
                if message[0] == "error":
                    raise ShardError(shard_id, message[1], message[2])
                summaries[shard_id] = message[1]
        for proc in procs:
            proc.join(timeout=30.0)
    finally:
        _SHARD_SPEC = previous
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for ends in mesh.values():
            for end in ends:
                end.close()
        for ends in result_pipes:
            for end in ends:
                end.close()
    return summaries  # type: ignore[return-value]


def _merge(scheme: Scheme, scenario: Scenario, plan: ShardPlan,
           shard_summaries: List[ShardSummary], flows: List[Flow],
           *, observe: bool, validate: object) -> DistributedResult:
    by_id = {f.flow_id: f for f in flows}
    for shard in shard_summaries:
        for flow_id, finish_time in shard.fcts.items():
            by_id[flow_id].finish_time = finish_time
    stats = FctStats.from_flows(flows)

    health = RunHealth(n_flows=len(flows))
    # completion is receiver-side, so each flow is counted by exactly
    # one shard and the sum is the global completion count
    health.completed = sum(s.completed for s in shard_summaries)
    health.events_run = sum(s.events_run for s in shard_summaries)
    health.sim_time = max((s.sim_time for s in shard_summaries),
                          default=0.0)
    health.peak_pending = max((s.peak_pending for s in shard_summaries),
                              default=0)
    health.live_pending = sum(s.live_pending for s in shard_summaries)
    health.retransmits_total = sum(s.retransmits_total
                                   for s in shard_summaries)
    health.rtos_total = sum(s.rtos_total for s in shard_summaries)
    for shard in shard_summaries:
        for flow_id, rtx in shard.retransmits_by_flow.items():
            health.retransmits_by_flow[flow_id] = (
                health.retransmits_by_flow.get(flow_id, 0) + rtx)
    health.event_budget_exceeded = any(s.outcome == "budget"
                                       for s in shard_summaries)
    if (any(s.outcome == "dead" for s in shard_summaries)
            and health.completed < health.n_flows):
        health.stalled = True
        health.stall_time = health.sim_time
        health.stall_reason = (
            f"all shard heaps empty with "
            f"{health.n_flows - health.completed} flow(s) incomplete")

    # global handoff conservation: A.exported_to[B] == B.imported_from[A]
    mismatches = []
    pairs_checked = 0
    for a in shard_summaries:
        for b_id, sent in sorted(a.ledger["exported_to"].items()):
            pairs_checked += 1
            received = shard_summaries[b_id].ledger["imported_from"].get(
                a.shard_id, [0, 0])
            if list(sent) != list(received):
                mismatches.append((a.shard_id, b_id, tuple(sent),
                                   tuple(received)))
    conservation_ok = not mismatches

    validation = None
    if validate:
        validation = ValidationReport.combine(
            [s.validation for s in shard_summaries])
        validation.strict = (validate == "strict")
        validation.checks_run += pairs_checked
        for a_id, b_id, sent, received in mismatches:
            validation.record(Violation(
                law="shard-handoff-conservation",
                subject=f"shard{a_id}->shard{b_id}",
                sim_time=health.sim_time,
                message=(f"shard {a_id} exported {sent[0]} pkts / "
                         f"{sent[1]} bytes to shard {b_id}, which "
                         f"imported {received[0]} pkts / "
                         f"{received[1]} bytes"),
                details={"exported": list(sent),
                         "imported": list(received)},
            ))
    elif mismatches:
        a_id, b_id, sent, received = mismatches[0]
        raise RuntimeError(
            f"cross-shard handoff conservation violated "
            f"({len(mismatches)} pair(s)); first: shard {a_id} exported "
            f"{sent} to shard {b_id}, which imported {received}")

    telemetry = None
    if observe:
        parts = [s.telemetry for s in shard_summaries
                 if s.telemetry is not None]
        telemetry = TelemetrySummary.combine(parts) if parts else None

    summary = RunSummary(
        scheme=scheme.name,
        scenario=scenario.name,
        params={"shards": plan.n_shards},
        stats=stats,
        health=health,
        completed=health.completed,
        n_flows=len(flows),
        wall_events=health.events_run,
        telemetry=telemetry,
        validation=validation,
    )
    return DistributedResult(
        summary=summary,
        flows=flows,
        stats=stats,
        health=health,
        shards=shard_summaries,
        plan=plan,
        conservation_ok=conservation_ok,
    )
