"""repro.validate — opt-in runtime invariant auditing.

Turn it on with ``run(scheme, scenario, validate=True)`` (audit mode:
violations accumulate into ``result.validation``), ``validate="strict"``
(first violation raises :class:`InvariantViolation`), or pass a
preconfigured :class:`RunAuditor`.  From the CLI: ``--validate`` /
``--validate-strict``.  ``python -m repro.validate.matrix`` audits the
default scenario matrix and doubles as the bare-vs-validated
bit-identity check CI runs.

See ``docs/validation.md`` for the law catalogue.
"""

from .auditor import RunAuditor, audit_mux
from .equivalence import (
    EquivalenceReport,
    compare_fct_distributions,
    ks_distance,
)
from .report import InvariantViolation, ValidationReport, Violation

__all__ = [
    "RunAuditor", "audit_mux",
    "InvariantViolation", "ValidationReport", "Violation",
    "EquivalenceReport", "compare_fct_distributions", "ks_distance",
]
