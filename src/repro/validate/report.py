"""Structured results of a validated run: violations and the report.

A :class:`Violation` is one broken law, captured with the offending
counters and the simulated time it was detected at.  In **strict** mode
the auditor wraps the first violation in an :class:`InvariantViolation`
and raises it on the spot; in **audit** mode (the default) violations
accumulate into a :class:`ValidationReport` that rides the
:class:`~repro.experiments.runner.RunResult` (and, being plain data,
crosses worker-pool pipes inside a
:class:`~repro.experiments.parallel.RunSummary`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class Violation:
    """One broken invariant: which law, where, when, and the evidence.

    ``details`` holds only plain values (ints, floats, strings) so the
    violation pickles and serialises cleanly.
    """

    law: str
    subject: str
    sim_time: float
    message: str
    details: Dict[str, object] = field(default_factory=dict)

    def describe(self) -> str:
        extra = ""
        if self.details:
            extra = " (" + ", ".join(
                f"{k}={v}" for k, v in sorted(self.details.items())) + ")"
        return (f"[{self.law}] {self.subject} @ t={self.sim_time:.9f}: "
                f"{self.message}{extra}")


class InvariantViolation(AssertionError):
    """Raised in strict mode the moment a law breaks.

    Carries the structured :class:`Violation` (``.violation``) plus the
    law name, subject and sim time as direct attributes, so handlers can
    dispatch without parsing the message.
    """

    def __init__(self, violation: Violation) -> None:
        super().__init__(violation.describe())
        self.violation = violation
        self.law = violation.law
        self.subject = violation.subject
        self.sim_time = violation.sim_time
        self.details = violation.details

    def __reduce__(self):
        # Default exception pickling would replay __init__ with the
        # formatted message instead of the Violation; strict-mode
        # failures cross worker-pool pipes, so rebuild from the
        # structured record.
        return (InvariantViolation, (self.violation,))


@dataclass
class ValidationReport:
    """Everything a validated run learned; picklable plain data.

    ``violations`` keeps at most ``max_kept`` full records (a broken
    invariant usually breaks on every subsequent check, and millions of
    identical records help nobody); ``counts`` and ``violations_seen``
    stay exact regardless.
    """

    strict: bool = False
    checks_run: int = 0
    violations_seen: int = 0
    counts: Dict[str, int] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)
    max_kept: int = 200

    @property
    def ok(self) -> bool:
        return self.violations_seen == 0

    def record(self, violation: Violation) -> None:
        """Tally ``violation``; raise instead when strict."""
        if self.strict:
            raise InvariantViolation(violation)
        self.violations_seen += 1
        self.counts[violation.law] = self.counts.get(violation.law, 0) + 1
        if len(self.violations) < self.max_kept:
            self.violations.append(violation)

    def describe(self) -> str:
        if self.ok:
            return f"ok ({self.checks_run} checks)"
        laws = ", ".join(f"{law}×{n}" for law, n in sorted(self.counts.items()))
        return (f"{self.violations_seen} violation(s) over "
                f"{self.checks_run} checks: {laws}")

    @classmethod
    def combine(cls, reports: List["ValidationReport"]) -> "ValidationReport":
        """Merge several runs' reports (sweep rollup); order-independent."""
        total = cls()
        for report in reports:
            if report is None:
                continue
            total.checks_run += report.checks_run
            total.violations_seen += report.violations_seen
            for law, n in report.counts.items():
                total.counts[law] = total.counts.get(law, 0) + n
            room = total.max_kept - len(total.violations)
            if room > 0:
                total.violations.extend(report.violations[:room])
        return total
