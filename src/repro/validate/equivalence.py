"""FCT-distribution equivalence gate: hybrid runs vs the packet oracle.

The hybrid fast path (:mod:`repro.sim.hybrid`) is only trustworthy if
the FCT *distribution* it produces matches the pure packet model's on
the same scenario.  This module quantifies that match three ways and
gates on all of them:

* per-bucket (small / large / overall) **mean** relative difference,
* per-bucket **p99** relative difference,
* the **Kolmogorov-Smirnov distance** between the two overall FCT
  empirical CDFs (catches shape drift that bucket summaries miss).

The oracle side is always the denominator of a relative difference, so
tolerances read as "hybrid may be off by X of the packet-model truth".
Tolerances are the caller's: the test suite gates at the values
calibrated in ``tests/test_hybrid.py``; ``docs/hybrid.md`` explains why
they are looser than bit-identity (the abstraction deliberately skips
slow-start and per-packet queueing noise).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..metrics.fct import SMALL_FLOW_BYTES, mean, percentile
from ..transport.base import Flow


def ks_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sample Kolmogorov-Smirnov statistic: the max vertical gap
    between the empirical CDFs.  0 = identical samples, 1 = disjoint
    supports.  Either side empty -> 1.0 (nothing to compare is the
    opposite of equivalent)."""
    if not a or not b:
        return 1.0
    xs = sorted(a)
    ys = sorted(b)
    i = j = 0
    gap = 0.0
    n, m = len(xs), len(ys)
    while i < n and j < m:
        # advance past every sample at the current jump point on BOTH
        # sides before comparing, so tied values (identical samples)
        # contribute zero gap
        v = xs[i] if xs[i] <= ys[j] else ys[j]
        while i < n and xs[i] <= v:
            i += 1
        while j < m and ys[j] <= v:
            j += 1
        diff = abs(i / n - j / m)
        if diff > gap:
            gap = diff
    return gap


def _rel_diff(oracle: float, candidate: float) -> float:
    if oracle == 0.0:
        return 0.0 if candidate == 0.0 else float("inf")
    return abs(candidate - oracle) / oracle


@dataclass
class BucketComparison:
    """One FCT bucket's oracle-vs-hybrid summary."""

    name: str
    n_oracle: int
    n_hybrid: int
    mean_rel: float     # |mean_h - mean_o| / mean_o
    p99_rel: float      # |p99_h - p99_o| / p99_o
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


@dataclass
class EquivalenceReport:
    """The gate's verdict plus everything needed to read a failure."""

    buckets: List[BucketComparison]
    ks: float
    ks_bound: float
    mean_tol: float
    p99_tol: float

    @property
    def ok(self) -> bool:
        return self.ks <= self.ks_bound and all(b.ok for b in self.buckets)

    def describe(self) -> str:
        parts = [f"ks={self.ks:.3f}<={self.ks_bound:g}"
                 if self.ks <= self.ks_bound
                 else f"KS {self.ks:.3f} EXCEEDS {self.ks_bound:g}"]
        for bucket in self.buckets:
            if bucket.ok:
                parts.append(f"{bucket.name}: mean±{bucket.mean_rel:.1%} "
                             f"p99±{bucket.p99_rel:.1%}")
            else:
                parts.append(f"{bucket.name}: " + "; ".join(bucket.problems))
        return ("equivalent " if self.ok else "NOT equivalent ") \
            + " | ".join(parts)


def _fcts(flows, small_threshold: int):
    overall: List[float] = []
    small: List[float] = []
    large: List[float] = []
    for flow in flows:
        fct = flow.fct
        if fct is None:
            continue
        overall.append(fct)
        (small if flow.size <= small_threshold else large).append(fct)
    return overall, small, large


def compare_fct_distributions(
    oracle_flows: Sequence[Flow],
    hybrid_flows: Sequence[Flow],
    *,
    mean_tol: float = 0.25,
    p99_tol: float = 0.35,
    ks_bound: float = 0.30,
    small_threshold: int = SMALL_FLOW_BYTES,
) -> EquivalenceReport:
    """Gate ``hybrid_flows`` against the packet-model ``oracle_flows``.

    Both sides must have completed the same number of flows per bucket
    (the scenarios are identical, so a count mismatch means flows were
    lost, which no tolerance excuses).  Empty buckets on both sides
    compare equal trivially.
    """
    o_all, o_small, o_large = _fcts(oracle_flows, small_threshold)
    h_all, h_small, h_large = _fcts(hybrid_flows, small_threshold)

    buckets = []
    for name, o, h in (("overall", o_all, h_all),
                       ("small", o_small, h_small),
                       ("large", o_large, h_large)):
        problems: List[str] = []
        mean_rel = p99_rel = 0.0
        if len(o) != len(h):
            problems.append(f"count mismatch oracle={len(o)} hybrid={len(h)}")
        elif o:
            mean_rel = _rel_diff(mean(o), mean(h))
            p99_rel = _rel_diff(percentile(o, 99.0), percentile(h, 99.0))
            if mean_rel > mean_tol:
                problems.append(f"mean off by {mean_rel:.1%} (> {mean_tol:g})")
            if p99_rel > p99_tol:
                problems.append(f"p99 off by {p99_rel:.1%} (> {p99_tol:g})")
        buckets.append(BucketComparison(
            name=name, n_oracle=len(o), n_hybrid=len(h),
            mean_rel=mean_rel, p99_rel=p99_rel, problems=problems))

    ks = ks_distance(o_all, h_all) if (o_all or h_all) else 0.0
    return EquivalenceReport(buckets=buckets, ks=ks, ks_bound=ks_bound,
                             mean_tol=mean_tol, p99_tol=p99_tol)
