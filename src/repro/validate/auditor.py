"""The runtime invariant auditor.

:class:`RunAuditor` piggybacks on the same places :mod:`repro.obs` does —
the drain-slice boundary in :func:`repro.experiments.runner.run` and a
per-send-burst hook in :class:`~repro.transport.window.WindowSender` —
and *only reads* simulator state.  It schedules no events, pops no heap
entries (engine inspection goes through the non-destructive
:meth:`~repro.sim.engine.Simulator.audit_heap`) and mutates nothing in
the fabric, which is what makes a validated run bit-identical to a bare
one.

Laws checked (see ``docs/validation.md`` for the full catalogue and the
paper grounding of each):

* **engine** — the clock never goes backwards across slices, and no live
  heap entry is ever timestamped before ``sim.now``;
* **queue** — per-:class:`~repro.sim.queues.PriorityMux` occupancy
  equals both the per-priority ledger and the byte-sum of the actual
  queued packets, plus the admission/occupancy conservation laws over
  :class:`~repro.sim.queues.QueueStats`;
* **port** — dequeues equal completed transmissions plus the packet on
  the wire;
* **transport** — per-flow transmission accounting, cum/delivered
  bounds, window discipline after every send burst, and a never-stale
  RTO deadline while armed;
* **end-to-end** — every packet (and byte) injected by any sender is
  delivered, dropped, trimmed away or still in flight — nothing is
  created or destroyed by the fabric.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from ..sim.network import Network
from ..sim.queues import PriorityMux
from ..transport.window import WindowReceiver, WindowSender
from .report import InvariantViolation, ValidationReport, Violation

# Absolute slack for float time comparisons (an RTO deadline stored as
# ``now + (deadline - now)`` can differ from ``deadline`` by an ulp).
TIME_EPS = 1e-9


def audit_mux(mux: PriorityMux) -> List[Tuple[str, str, dict]]:
    """Check every queue law on one mux; returns ``(law, message,
    details)`` tuples (empty list = healthy).

    Standalone so the randomized property tests can drive a bare mux
    through enqueue/dequeue/flush/trim/selective-drop sequences and
    audit it after every operation, without a simulator in sight.
    """
    problems: List[Tuple[str, str, dict]] = []
    stats = mux.stats

    per_queue_bytes = [sum(p.size for p in q) for q in mux.queues]
    packet_bytes = sum(per_queue_bytes)
    lp_bytes = sum(p.size for q in mux.queues for p in q if p.lcp)
    still_queued = sum(len(q) for q in mux.queues)

    if mux.occupancy != sum(mux.queue_occupancy):
        problems.append((
            "mux-occupancy-sum",
            "occupancy ledger disagrees with per-priority ledger",
            {"occupancy": mux.occupancy,
             "queue_occupancy_sum": sum(mux.queue_occupancy)}))
    if mux.occupancy != packet_bytes:
        problems.append((
            "mux-occupancy-bytes",
            "occupancy ledger disagrees with byte-sum of queued packets",
            {"occupancy": mux.occupancy, "packet_bytes": packet_bytes}))
    for priority, (ledger, actual) in enumerate(
            zip(mux.queue_occupancy, per_queue_bytes)):
        if ledger != actual:
            problems.append((
                "mux-queue-occupancy",
                f"priority {priority} ledger disagrees with queued packets",
                {"priority": priority, "ledger": ledger, "actual": actual}))
    if mux.lp_occupancy != lp_bytes:
        problems.append((
            "mux-lp-occupancy",
            "lp_occupancy ledger disagrees with queued LP packets",
            {"lp_occupancy": mux.lp_occupancy, "lp_bytes": lp_bytes}))
    # The hot-path incremental ledgers (ISSUE 5) are pure mirrors of
    # derivable state; any divergence means an enqueue/dequeue/flush
    # path forgot to maintain one of them.
    if mux.hp_occupancy != sum(per_queue_bytes[0:4]):
        problems.append((
            "mux-hp-occupancy",
            "hp_occupancy ledger disagrees with queued P0-3 packets",
            {"hp_occupancy": mux.hp_occupancy,
             "actual": sum(per_queue_bytes[0:4])}))
    actual_mask = 0
    for priority, queue in enumerate(mux.queues):
        if queue:
            actual_mask |= 1 << priority
    if mux.nonempty_mask != actual_mask:
        problems.append((
            "mux-nonempty-mask",
            "non-empty-queue bitmask disagrees with actual queues",
            {"nonempty_mask": mux.nonempty_mask, "actual": actual_mask}))
    if mux.pkt_count != still_queued:
        problems.append((
            "mux-pkt-count",
            "pkt_count ledger disagrees with queued packets",
            {"pkt_count": mux.pkt_count, "actual": still_queued}))
    pfc = mux.pfc
    headroom = pfc.headroom_bytes if pfc is not None else 0
    if mux.occupancy > mux.buffer_bytes + headroom:
        problems.append((
            "mux-buffer-cap",
            "occupancy exceeds the shared buffer plus PFC headroom",
            {"occupancy": mux.occupancy, "buffer_bytes": mux.buffer_bytes,
             "headroom_bytes": headroom}))
    if pfc is not None:
        # PFC state laws: XOFF only on lossless classes, hysteresis
        # respected both ways, and — the whole point of lossless
        # Ethernet — no lossless-class packet was ever dropped.
        if pfc.xoff_state & ~pfc.lossless_mask:
            problems.append((
                "pfc-xoff-lossless",
                "XOFF asserted for a priority outside the lossless set",
                {"xoff_state": pfc.xoff_state,
                 "lossless_mask": pfc.lossless_mask}))
        for priority in range(len(mux.queues)):
            bit = 1 << priority
            if not (pfc.lossless_mask & bit):
                continue
            depth = mux.queue_occupancy[priority]
            if (pfc.xoff_state & bit) and depth <= pfc.xon_bytes:
                problems.append((
                    "pfc-hysteresis",
                    f"priority {priority} still XOFF below the XON mark",
                    {"priority": priority, "depth": depth,
                     "xon_bytes": pfc.xon_bytes}))
            if not (pfc.xoff_state & bit) and depth > pfc.xoff_bytes:
                problems.append((
                    "pfc-hysteresis",
                    f"priority {priority} above XOFF without asserting it",
                    {"priority": priority, "depth": depth,
                     "xoff_bytes": pfc.xoff_bytes}))
        if pfc.lossless_drops:
            problems.append((
                "pfc-lossless-drop",
                "a lossless-class packet was dropped (headroom too small)",
                {"lossless_drops": pfc.lossless_drops}))

    pre_drops = stats.dropped - stats.dropped_after_enqueue
    if stats.offered != stats.enqueued + pre_drops:
        problems.append((
            "mux-admission-conservation",
            "arrivals != admitted + rejected",
            {"offered": stats.offered, "enqueued": stats.enqueued,
             "pre_enqueue_drops": pre_drops}))
    pre_drop_bytes = stats.bytes_dropped - stats.bytes_dropped_after_enqueue
    if stats.bytes_offered != (stats.bytes_enqueued + stats.bytes_trimmed
                               + pre_drop_bytes):
        problems.append((
            "mux-admission-conservation-bytes",
            "arrival bytes != admitted + trimmed-away + rejected bytes",
            {"bytes_offered": stats.bytes_offered,
             "bytes_enqueued": stats.bytes_enqueued,
             "bytes_trimmed": stats.bytes_trimmed,
             "pre_enqueue_drop_bytes": pre_drop_bytes}))
    if stats.enqueued != (stats.dequeued + stats.dropped_after_enqueue
                          + still_queued):
        problems.append((
            "mux-occupancy-conservation",
            "enqueued != dequeued + dropped_after_enqueue + still-queued",
            {"enqueued": stats.enqueued, "dequeued": stats.dequeued,
             "dropped_after_enqueue": stats.dropped_after_enqueue,
             "still_queued": still_queued}))
    if stats.bytes_enqueued != (stats.bytes_dequeued
                                + stats.bytes_dropped_after_enqueue
                                + mux.occupancy):
        problems.append((
            "mux-occupancy-conservation-bytes",
            "admitted bytes != dequeued + flushed + still-queued bytes",
            {"bytes_enqueued": stats.bytes_enqueued,
             "bytes_dequeued": stats.bytes_dequeued,
             "bytes_dropped_after_enqueue": stats.bytes_dropped_after_enqueue,
             "occupancy": mux.occupancy}))
    return problems


class RunAuditor:
    """Observes one run and checks its invariants.

    ``strict=True`` raises :class:`InvariantViolation` at the first
    broken law; the default audit mode accumulates everything into
    ``self.report``.  One auditor audits one run — reusing an instance
    would conflate two runs' clocks and ledgers.
    """

    def __init__(self, *, strict: bool = False, max_kept: int = 200) -> None:
        self.report = ValidationReport(strict=strict, max_kept=max_kept)
        self.sim = None
        self.network: Optional[Network] = None
        self.ctx = None
        self.attached = False
        self._last_now = -math.inf
        self._finalized = False

    # -- wiring -----------------------------------------------------------

    def attach(self, sim, network: Network, ctx=None) -> "RunAuditor":
        """Bind to a run's simulator/fabric; called by ``run(validate=)``
        before any flow starts.  ``ctx`` (when given) gets its
        ``auditor`` attribute set so senders install the burst hook."""
        if self.attached:
            raise RuntimeError("RunAuditor is single-run; already attached")
        self.attached = True
        self.sim = sim
        self.network = network
        self._last_now = sim.now
        if ctx is not None:
            ctx.auditor = self
            # kept so per-slice laws can reach run-scoped extras (the
            # hybrid controller lives at ctx.extra["hybrid"])
            self.ctx = ctx
        return self

    # -- recording --------------------------------------------------------

    def _violate(self, law: str, subject: str, message: str, **details) -> None:
        self.report.record(Violation(
            law=law, subject=subject,
            sim_time=float(self.sim.now) if self.sim is not None else -1.0,
            message=message, details=details))

    def _check(self, ok: bool, law: str, subject: str, message: str,
               **details) -> None:
        self.report.checks_run += 1
        if not ok:
            self._violate(law, subject, message, **details)

    # -- per-slice checks -------------------------------------------------

    def on_slice(self) -> None:
        """Engine, queue, port and RTO laws; runs at every drain-slice
        boundary (and once more inside :meth:`finalize`)."""
        sim = self.sim
        self._check(sim.now >= self._last_now,
                    "engine-clock-monotonic", "engine",
                    "clock went backwards across slices",
                    now=sim.now, previous=self._last_now)
        self._last_now = sim.now
        live, min_live = sim.audit_heap()
        self._check(min_live is None or min_live >= sim.now,
                    "engine-no-past-event", "engine",
                    "a live event is scheduled before the current clock",
                    min_live_time=min_live, now=sim.now, live_pending=live)
        for port in self.network.ports:
            self._audit_mux(port)
            self._audit_port(port)
        for controller in getattr(self.network, "pfc_controllers", []):
            self._audit_pfc_controller(controller)
        for switch in self.network.switches:
            if getattr(switch, "lb", None) is not None:
                self._audit_lb(switch)
        for sender in self._endpoints(WindowSender):
            self._audit_rto(sender)
        self._audit_hybrid()

    def on_restore(self) -> None:
        """Re-certify a run restored from a :mod:`repro.resilience`
        checkpoint before it is allowed to continue.

        A resumed graph is only trustworthy if the deserialized engine
        still satisfies the same laws the live engine did: no live event
        behind the restored clock, every queue ledger internally
        consistent, every armed RTO ahead of now.  That is exactly the
        per-slice audit — re-run against the restored state — plus a
        clock re-baseline, since ``_last_now`` from the checkpointed
        auditor already equals the restored ``sim.now`` and must not
        trip the monotonicity law spuriously.
        """
        self._last_now = min(self._last_now, self.sim.now)
        self.on_slice()

    def _audit_hybrid(self) -> None:
        """Laws of the flow-level fast path (:mod:`repro.sim.hybrid`).

        The controller keeps its own wire-byte ledger — everything a
        flow *offered* at admission must be accounted for as delivered
        (banked analytic progress), still remaining in the abstract
        set, or handed back to the packet model at demotion.  On top of
        that, the waterfilled rates must be feasible (no port's
        abstract aggregate above its raw capacity) and non-negative.
        """
        hybrid = None
        if self.ctx is not None:
            hybrid = self.ctx.extra.get("hybrid")
        if hybrid is None:
            return
        offered = hybrid.offered_wire_bytes
        delivered = hybrid.delivered_wire_bytes
        demoted = hybrid.demoted_wire_bytes
        remaining = hybrid.remaining_wire_bytes()
        tolerance = 1e-6 * (offered + 1.0)
        self._check(
            abs(offered - (delivered + remaining + demoted)) <= tolerance,
            "hybrid-byte-conservation", "hybrid",
            "offered wire bytes != delivered + remaining + demoted",
            offered=offered, delivered=delivered, remaining=remaining,
            demoted=demoted)
        port_rates: dict = {}
        for af in hybrid.abstract.values():
            self._check(af.wire_remaining >= 0.0,
                        "hybrid-remaining-nonnegative",
                        f"flow-{af.flow.flow_id}",
                        "abstract flow has negative remaining bytes",
                        remaining=af.wire_remaining)
            self._check(af.rate >= 0.0,
                        "hybrid-rate-nonnegative",
                        f"flow-{af.flow.flow_id}",
                        "abstract flow has a negative rate",
                        rate=af.rate)
            for port in af.path:
                port_rates[port] = port_rates.get(port, 0.0) + af.rate
        for port, total in port_rates.items():
            # rates were waterfilled against *available* capacity, which
            # never exceeds the raw link rate — so the raw rate bounds
            # the abstract aggregate regardless of measurement staleness
            capacity = port.rate_bps / 8.0
            self._check(total <= capacity * (1.0 + 1e-9) + 1e-6,
                        "hybrid-rate-feasible", port.name,
                        "abstract rate aggregate exceeds link capacity",
                        aggregate_rate=total, capacity=capacity)

    def _audit_mux(self, port) -> None:
        for law, message, details in audit_mux(port.mux):
            self._violate(law, port.name, message, **details)
        self.report.checks_run += 1

    def _audit_port(self, port) -> None:
        stats = port.mux.stats
        on_wire = 1 if port.busy else 0
        self._check(stats.dequeued == port.pkts_sent + on_wire,
                    "port-serialization", port.name,
                    "dequeues != completed transmissions + packet on wire",
                    dequeued=stats.dequeued, pkts_sent=port.pkts_sent,
                    busy=port.busy)
        in_serial = stats.bytes_dequeued - port.bytes_sent
        self._check(in_serial > 0 if port.busy else in_serial == 0,
                    "port-serialization-bytes", port.name,
                    "in-serialization bytes disagree with busy state",
                    in_serialization_bytes=in_serial, busy=port.busy)
        refs = port._pause_refs
        if refs is not None or port.paused_mask:
            mask = 0
            negative = 0
            for priority, count in enumerate(refs or ()):
                if count > 0:
                    mask |= 1 << priority
                elif count < 0:
                    negative += 1
            self._check(mask == port.paused_mask and negative == 0,
                        "pfc-pause-consistency", port.name,
                        "paused_mask disagrees with the pause ref-counts",
                        paused_mask=port.paused_mask, ref_mask=mask,
                        negative_refs=negative)

    def _audit_pfc_controller(self, controller) -> None:
        """Pause-state consistency between a switch's egress muxes, the
        controller's command ledger and the upstream ports it pauses."""
        subject = f"pfc@{controller.switch.name}"
        expected = 0
        for port in controller.switch.ports():
            pfc = port.mux.pfc
            if pfc is not None and pfc.controller is controller:
                expected |= pfc.xoff_state
        self._check(controller.commanded_mask == expected,
                    "pfc-command-consistency", subject,
                    "commanded pause mask disagrees with egress XOFF states",
                    commanded_mask=controller.commanded_mask,
                    egress_xoff_union=expected)
        self._check(controller.pending_ops >= 0,
                    "pfc-command-consistency", subject,
                    "negative in-flight PAUSE/RESUME count",
                    pending_ops=controller.pending_ops)
        if controller.pending_ops == 0:
            # quiescent command plane: every upstream transmitter must
            # hold exactly the commanded pauses (a PFC-storm injector
            # may add refs of its own, hence subset, not equality,
            # against the port's total paused_mask)
            for index, port in enumerate(controller.ingress_ports):
                delivered = controller.delivered_masks[index]
                self._check(delivered == controller.commanded_mask,
                            "pfc-pause-consistency", port.name,
                            "delivered pause mask trails the command "
                            "with nothing in flight",
                            delivered_mask=delivered,
                            commanded_mask=controller.commanded_mask)
                self._check(delivered & ~port.paused_mask == 0,
                            "pfc-pause-consistency", port.name,
                            "port dropped a pause the controller delivered",
                            delivered_mask=delivered,
                            paused_mask=port.paused_mask)

    def _audit_lb(self, switch) -> None:
        """Load-balancer state sanity: flowlet timestamps never come
        from the future and per-flow state stays well-formed."""
        now = self.sim.now
        subject = f"lb@{switch.name}"
        stale = 0
        bad_state = 0
        for state in switch.lb._flows.values():
            if state[0] > now + TIME_EPS:
                stale += 1
            if state[1] < 0:
                bad_state += 1
        self._check(stale == 0, "lb-flowlet-times", subject,
                    "flowlet last-seen timestamps in the future",
                    future_entries=stale, tracked_flows=len(switch.lb._flows))
        self._check(bad_state == 0, "lb-flowlet-state", subject,
                    "negative flowlet id / path index in balancer state",
                    bad_entries=bad_state)

    def _audit_rto(self, sender: WindowSender) -> None:
        event = sender._rto_event
        if sender.finished or event is None or event.cancelled:
            return
        subject = f"flow{sender.flow.flow_id}"
        now = self.sim.now
        self._check(sender._rto_deadline >= now - TIME_EPS,
                    "rto-deadline", subject,
                    "RTO armed with a deadline in the past",
                    deadline=sender._rto_deadline, now=now)
        self._check(event.time <= sender._rto_deadline + TIME_EPS,
                    "rto-deadline", subject,
                    "RTO timer scheduled after its own deadline",
                    event_time=event.time, deadline=sender._rto_deadline)

    # -- per-burst check (hooked from WindowSender.try_send) ---------------

    def on_send_burst(self, sender: WindowSender, pre_burst: int) -> None:
        """``len(outstanding) <= max(pre_burst, ceil(cwnd))`` after every
        send burst: a burst may top the window up to ``ceil(cwnd)`` but
        never overshoot it (a window *cut* below the current in-flight
        count legitimately leaves ``pre_burst`` outstanding — the burst
        then must not add anything on top)."""
        bound = max(pre_burst, math.ceil(sender.cwnd))
        self._check(len(sender.outstanding) <= bound,
                    "window-burst-bound", f"flow{sender.flow.flow_id}",
                    "send burst overshot the congestion window",
                    outstanding=len(sender.outstanding), cwnd=sender.cwnd,
                    pre_burst=pre_burst)

    # -- drain-end checks -------------------------------------------------

    def _endpoints(self, cls):
        seen = set()
        for host in self.network.hosts.values():
            for endpoint in host.endpoints.values():
                if id(endpoint) in seen or not isinstance(endpoint, cls):
                    continue
                seen.add(id(endpoint))
                yield endpoint

    @staticmethod
    def _secondary_outstanding(sender: WindowSender) -> dict:
        """Seqs a second loop (PPT's LCP, RC3's LP filler, the oracle
        filler) has in flight; these count toward ``pkts_transmitted``
        without going through :meth:`WindowSender.transmit`."""
        extra = {}
        lcp = getattr(sender, "lcp", None)
        if lcp is not None and hasattr(lcp, "outstanding"):
            extra.update(lcp.outstanding)
        lp = getattr(sender, "lp_outstanding", None)
        if lp is not None:
            extra.update(lp)
        return extra

    def _audit_sender(self, sender: WindowSender) -> None:
        subject = f"flow{sender.flow.flow_id}"
        now = self.sim.now
        delivered = sender.delivered
        n = sender.n_packets

        self._check(sender.cum <= n, "flow-cum-bound", subject,
                    "cumulative ack beyond the flow's packet count",
                    cum=sender.cum, n_packets=n)
        self._check(len(delivered) <= n, "flow-cum-bound", subject,
                    "more delivered seqs than the flow has packets",
                    delivered=len(delivered), n_packets=n)
        overlap = len([s for s in sender.outstanding if s in delivered])
        self._check(overlap == 0, "flow-outstanding-disjoint", subject,
                    "seqs simultaneously delivered and outstanding",
                    overlap=overlap)
        late = [s for s, t in sender.outstanding.items() if t > now + TIME_EPS]
        self._check(not late, "flow-outstanding-times", subject,
                    "outstanding send times in the future",
                    future_entries=len(late))

        # pkts_transmitted == delivered + in-flight + retransmit waste,
        # with waste necessarily >= 0: each delivered seq and each
        # in-flight undelivered seq accounts for at least one distinct
        # transmission.
        in_flight = set(sender.outstanding)
        in_flight.update(self._secondary_outstanding(sender))
        in_flight_new = sum(1 for s in in_flight if s not in delivered)
        waste = sender.pkts_transmitted - len(delivered) - in_flight_new
        self._check(waste >= 0, "flow-tx-conservation", subject,
                    "transmissions < delivered + in-flight "
                    "(packets created from nothing)",
                    pkts_transmitted=sender.pkts_transmitted,
                    delivered=len(delivered), in_flight=in_flight_new,
                    retransmit_waste=waste)

    def _audit_receiver(self, receiver: WindowReceiver) -> None:
        subject = f"flow{receiver.flow.flow_id}"
        n = receiver.n_packets
        self._check(receiver.cum <= n, "recv-cum-bound", subject,
                    "receiver cum beyond the flow's packet count",
                    cum=receiver.cum, n_packets=n)
        missing = [s for s in range(receiver.cum) if s not in receiver.delivered]
        self._check(not missing, "recv-cum-bound", subject,
                    "cum advanced past undelivered seqs",
                    missing_below_cum=len(missing))
        self._check(receiver.data_pkts_received
                    == len(receiver.delivered) + receiver.dup_pkts_received,
                    "recv-counting", subject,
                    "data arrivals != unique deliveries + duplicates",
                    data_pkts_received=receiver.data_pkts_received,
                    delivered=len(receiver.delivered),
                    dup_pkts_received=receiver.dup_pkts_received)

    def _audit_fabric_conservation(self) -> None:
        """End-to-end conservation over the whole fabric (packet and
        byte ledgers).  Every law is an exact equality: since the
        pipelined wire model, each port's in-flight packets live in its
        wire deque, so the in-propagation residual must equal the deque
        contents packet-for-packet and byte-for-byte (the historical
        check could only bound it by the heap size)."""
        net = self.network
        ports = net.ports
        hosts = net.hosts.values()
        switches = net.switches

        # Shard handoff ledger (repro.sim.shard): in a sharded run,
        # exports leave a boundary port's book after pkts_sent but never
        # arrive locally, imports arrive at a switch without a local
        # send, and replica hosts count sends the fabric never carries
        # (stopped at the InertPort).  All terms are zero in every
        # serial run (ledger is None).
        ledger = getattr(net, "shard_ledger", None)
        if ledger is not None:
            inert_drops = ledger.inert_drops
            inert_drop_bytes = ledger.inert_drop_bytes
            exported = ledger.exported_pkts
            exported_bytes = ledger.exported_bytes
            injected = ledger.injected_pkts
            injected_bytes = ledger.injected_bytes
        else:
            inert_drops = inert_drop_bytes = 0
            exported = exported_bytes = injected = injected_bytes = 0

        offered = sum(p.mux.stats.offered for p in ports)
        admit_killed = sum(p.fault_admit_drops for p in ports)
        host_sends = sum(h.pkts_to_fabric for h in hosts)
        forwarded = sum(s.pkts_forwarded for s in switches)
        self._check(host_sends + forwarded
                    == offered + admit_killed + inert_drops,
                    "fabric-offer-conservation", "fabric",
                    "port offers != host sends + switch forwards",
                    host_sends=host_sends, switch_forwards=forwarded,
                    port_offers=offered, fault_admit_drops=admit_killed,
                    inert_drops=inert_drops)

        bytes_offered = sum(p.mux.stats.bytes_offered for p in ports)
        admit_killed_bytes = sum(p.fault_admit_drop_bytes for p in ports)
        host_send_bytes = sum(h.bytes_to_fabric for h in hosts)
        forwarded_bytes = sum(s.bytes_forwarded for s in switches)
        self._check(host_send_bytes + forwarded_bytes
                    == bytes_offered + admit_killed_bytes
                    + inert_drop_bytes,
                    "fabric-offer-conservation-bytes", "fabric",
                    "port offer bytes != host send + switch forward bytes",
                    host_send_bytes=host_send_bytes,
                    switch_forward_bytes=forwarded_bytes,
                    port_offer_bytes=bytes_offered,
                    fault_admit_drop_bytes=admit_killed_bytes,
                    inert_drop_bytes=inert_drop_bytes)

        sent = sum(p.pkts_sent for p in ports)
        wire_killed = sum(p.fault_wire_drops for p in ports)
        arrivals = forwarded + sum(h.pkts_from_fabric for h in hosts)
        in_propagation = sent - wire_killed - arrivals
        on_wire = sum(len(p.wire) for p in ports)
        self._check(in_propagation == on_wire + exported - injected,
                    "fabric-packet-conservation", "fabric",
                    "in-propagation residual disagrees with the wire deques",
                    pkts_sent=sent, fault_wire_drops=wire_killed,
                    arrivals=arrivals, in_propagation=in_propagation,
                    on_wire=on_wire, exported_pkts=exported,
                    injected_pkts=injected)

        sent_bytes = sum(p.bytes_sent for p in ports)
        wire_killed_bytes = sum(p.fault_wire_drop_bytes for p in ports)
        arrival_bytes = forwarded_bytes + sum(h.bytes_from_fabric
                                              for h in hosts)
        in_prop_bytes = sent_bytes - wire_killed_bytes - arrival_bytes
        on_wire_bytes = sum(p.wire.in_flight_bytes for p in ports)
        self._check(in_prop_bytes
                    == on_wire_bytes + exported_bytes - injected_bytes,
                    "fabric-byte-conservation", "fabric",
                    "in-propagation byte residual disagrees with the "
                    "wire deques",
                    bytes_sent=sent_bytes,
                    fault_wire_drop_bytes=wire_killed_bytes,
                    arrival_bytes=arrival_bytes,
                    in_propagation_bytes=in_prop_bytes,
                    on_wire_bytes=on_wire_bytes,
                    exported_bytes=exported_bytes,
                    injected_bytes=injected_bytes)

    def _audit_live_counter(self) -> None:
        """The engine's incremental live-event counter must agree with a
        full heap scan.  O(heap), so only run once per audit (finalize),
        not per slice — the per-slice checks read the counter itself."""
        sim = self.sim
        scanned = sum(1 for _t, _s, event in sim._heap if not event.cancelled)
        self._check(sim.live_pending == scanned,
                    "engine-live-counter", "engine",
                    "incremental live-event counter disagrees with heap scan",
                    live_pending=sim.live_pending, scanned=scanned)

    def finalize(self, flows=None) -> ValidationReport:
        """Drain-end harvest: one last slice check, then the transport
        and end-to-end conservation laws.  Idempotent."""
        if self._finalized:
            return self.report
        self._finalized = True
        self.on_slice()
        self._audit_live_counter()
        for sender in self._endpoints(WindowSender):
            self._audit_sender(sender)
        for receiver in self._endpoints(WindowReceiver):
            self._audit_receiver(receiver)
        self._audit_fabric_conservation()
        return self.report
