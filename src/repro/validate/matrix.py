"""The validation matrix: every scheme on every canonical topology.

``python -m repro.validate.matrix`` runs each registered transport
scheme over the star, dumbbell and (scaled) leaf-spine fabrics twice —
once bare, once with the :class:`~repro.validate.RunAuditor` attached —
and demands two things of every cell:

1. **zero invariant violations** in audit mode, and
2. **bit-identical results**: the validated run's :class:`FctStats`,
   events-run count and run health must equal the bare run's, proving
   the auditor observes without perturbing.

Exit status is non-zero if either property fails anywhere, which is how
CI consumes this module.  Cells fan out over a worker pool
(``--jobs``); each (scheme, topology) pair becomes two
:class:`~repro.experiments.parallel.GridTask` cells so the bare/validated
halves of a comparison run under identical conditions.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..cli import SCHEME_FACTORIES
from ..experiments.distributed import run_sharded
from ..experiments.parallel import GridTask, _fork_available, run_grid
from ..experiments.runner import format_table
from ..experiments.scenarios import (
    SIM_PFC,
    all_to_all_scenario,
    dumbbell_scenario,
    shard_gate_scenario,
    sim_fabric,
    star_fabric,
)
from ..sim.hybrid import HybridConfig
from ..workloads.distributions import WEB_SEARCH

DEFAULT_FLOWS = 24
DEFAULT_EVENT_BUDGET = 3_000_000


def _star_scenario(*, n_flows: int) -> object:
    return all_to_all_scenario(
        "validate-star", WEB_SEARCH, n_flows=n_flows,
        fabric=star_fabric(6), seed=101,
        event_budget=DEFAULT_EVENT_BUDGET)


def _dumbbell_scenario(*, n_flows: int) -> object:
    return dumbbell_scenario(
        "validate-dumbbell", WEB_SEARCH, n_flows=n_flows, seed=102,
        event_budget=DEFAULT_EVENT_BUDGET)


def _leaf_spine_scenario(*, n_flows: int) -> object:
    return all_to_all_scenario(
        "validate-leaf-spine", WEB_SEARCH, n_flows=n_flows,
        fabric=sim_fabric(n_leaf=2, n_spine=2, hosts_per_leaf=4), seed=103,
        event_budget=DEFAULT_EVENT_BUDGET)


def _leaf_spine_pfc_scenario(*, n_flows: int) -> object:
    return all_to_all_scenario(
        "validate-leaf-spine-pfc", WEB_SEARCH, n_flows=n_flows,
        fabric=sim_fabric(n_leaf=2, n_spine=2, hosts_per_leaf=4), seed=104,
        event_budget=DEFAULT_EVENT_BUDGET, pfc=True, pfc_config=SIM_PFC)


def _leaf_spine_flowlet_scenario(*, n_flows: int) -> object:
    return all_to_all_scenario(
        "validate-leaf-spine-flowlet", WEB_SEARCH, n_flows=n_flows,
        fabric=sim_fabric(n_leaf=2, n_spine=2, hosts_per_leaf=4), seed=105,
        event_budget=DEFAULT_EVENT_BUDGET, lb="flowlet")


def _leaf_spine_conga_scenario(*, n_flows: int) -> object:
    return all_to_all_scenario(
        "validate-leaf-spine-conga", WEB_SEARCH, n_flows=n_flows,
        fabric=sim_fabric(n_leaf=2, n_spine=2, hosts_per_leaf=4), seed=106,
        event_budget=DEFAULT_EVENT_BUDGET, lb="conga")


def _leaf_spine_hybrid_off_scenario(*, n_flows: int) -> object:
    # deliberately identical to _leaf_spine_scenario (same fabric, same
    # seed): a disabled HybridConfig must be bit-identical to never
    # mentioning hybrid at all — run_matrix cross-checks the two cells
    return all_to_all_scenario(
        "validate-leaf-spine", WEB_SEARCH, n_flows=n_flows,
        fabric=sim_fabric(n_leaf=2, n_spine=2, hosts_per_leaf=4), seed=103,
        event_budget=DEFAULT_EVENT_BUDGET,
        hybrid=HybridConfig(enabled=False))


def _shard_gate_scenario(*, n_flows: int) -> object:
    # n_flows deliberately ignored: the gate's parameters are pinned to
    # the collision-audited configuration (see shard_gate_scenario) —
    # running it at another flow count would void the bit-identity
    # guarantee the sharded cross-cell checks
    del n_flows
    return shard_gate_scenario("validate-shard-gate")


def _leaf_spine_hybrid_scenario(*, n_flows: int) -> object:
    return all_to_all_scenario(
        "validate-leaf-spine-hybrid", WEB_SEARCH, n_flows=n_flows,
        fabric=sim_fabric(n_leaf=2, n_spine=2, hosts_per_leaf=4), seed=107,
        event_budget=DEFAULT_EVENT_BUDGET,
        hybrid=HybridConfig(size_threshold=200_000))


TOPOLOGIES = {
    "star": _star_scenario,
    "dumbbell": _dumbbell_scenario,
    "leaf-spine": _leaf_spine_scenario,
}

#: Feature cells: (scenario factory, schemes that exercise the feature).
#: PFC pairs with the RoCEv2 schemes it exists for; the load balancers
#: pair with the paper's baseline and headline transports.
FEATURE_CELLS = {
    "leaf-spine-pfc": (_leaf_spine_pfc_scenario, ("dcqcn", "hpcc")),
    "leaf-spine-flowlet": (_leaf_spine_flowlet_scenario, ("dctcp", "ppt")),
    "leaf-spine-conga": (_leaf_spine_conga_scenario, ("dctcp", "ppt")),
    "leaf-spine-hybrid-off": (_leaf_spine_hybrid_off_scenario,
                              ("dctcp", "ppt")),
    "leaf-spine-hybrid": (_leaf_spine_hybrid_scenario, ("dctcp", "ppt")),
    "shard-gate": (_shard_gate_scenario, ("dctcp", "ppt")),
}

#: Schemes whose shard-gate serial cell is cross-checked against a
#: space-sharded run of the same scenario (2-way when fork is
#: available, degraded to the in-process 1-shard worker otherwise).
SHARD_CROSS_SCHEMES = ("dctcp", "ppt")


def run_matrix(schemes: Optional[List[str]] = None, *,
               flows: int = DEFAULT_FLOWS, jobs: int = -1,
               out=sys.stdout) -> int:
    """Run the matrix; print one row per cell; return the exit status."""
    schemes = schemes or sorted(SCHEME_FACTORIES)
    tasks: List[GridTask] = []
    for topo_name, scenario_factory in TOPOLOGIES.items():
        for scheme in schemes:
            for validate in (False, True):
                tasks.append(GridTask(
                    scheme_factory=SCHEME_FACTORIES[scheme],
                    scenario_factory=scenario_factory,
                    params={"n_flows": flows},
                    label=f"{scheme}@{topo_name}"
                          f"{'+validate' if validate else ''}",
                    scheme_key=scheme,
                    validate=validate))

    for topo_name, (scenario_factory, cell_schemes) in FEATURE_CELLS.items():
        for scheme in cell_schemes:
            if scheme not in schemes:
                continue
            for validate in (False, True):
                tasks.append(GridTask(
                    scheme_factory=SCHEME_FACTORIES[scheme],
                    scenario_factory=scenario_factory,
                    params={"n_flows": flows},
                    label=f"{scheme}@{topo_name}"
                          f"{'+validate' if validate else ''}",
                    scheme_key=scheme,
                    validate=validate))

    summaries = run_grid(tasks, jobs=jobs)

    rows = []
    failures = 0
    for i in range(0, len(tasks), 2):
        bare, validated = summaries[i], summaries[i + 1]
        report = validated.validation
        identical = (bare.stats == validated.stats
                     and bare.wall_events == validated.wall_events
                     and bare.completed == validated.completed)
        ok = identical and report is not None and report.ok
        if not ok:
            failures += 1
        problems = []
        if not identical:
            problems.append("NOT bit-identical")
        if report is None:
            problems.append("no report")
        elif not report.ok:
            problems.append(report.describe())
        rows.append({
            "cell": tasks[i].label,
            "flows": f"{validated.completed}/{validated.n_flows}",
            "events": validated.wall_events,
            "checks": report.checks_run if report is not None else 0,
            "result": "ok" if ok else "; ".join(problems),
        })
        if report is not None and not report.ok:
            for violation in report.violations[:5]:
                print(f"  {tasks[i].label}: {violation.describe()}",
                      file=sys.stderr)

    # cross-cell law: a scenario carrying HybridConfig(enabled=False)
    # must be bit-identical to one that never mentioned hybrid — the
    # feature's whole off-switch contract, checked bare-half to
    # bare-half since the two cells share fabric, seed and flow count
    bare_by_label = {tasks[i].label: summaries[i]
                     for i in range(0, len(tasks), 2)}
    for scheme in FEATURE_CELLS["leaf-spine-hybrid-off"][1]:
        plain = bare_by_label.get(f"{scheme}@leaf-spine")
        off = bare_by_label.get(f"{scheme}@leaf-spine-hybrid-off")
        if plain is None or off is None:
            continue
        identical = (plain.stats == off.stats
                     and plain.wall_events == off.wall_events
                     and plain.completed == off.completed)
        if not identical:
            failures += 1
        rows.append({
            "cell": f"{scheme}@hybrid-off==plain",
            "flows": f"{off.completed}/{off.n_flows}",
            "events": off.wall_events,
            "checks": 0,
            "result": "ok" if identical else "NOT bit-identical to plain",
        })

    # cross-cell law: a space-sharded run must merge to the serial
    # oracle's FCT statistics bit-for-bit on the collision-audited gate
    # scenario, with global handoff conservation closed and zero shard
    # invariant violations.  Events-run is deliberately NOT compared —
    # the windowed drain legitimately executes a different number of
    # engine events than the serial slice loop.
    n_shards = 2 if _fork_available() else 1
    for scheme in SHARD_CROSS_SCHEMES:
        serial = bare_by_label.get(f"{scheme}@shard-gate")
        if serial is None:
            continue
        sharded = run_sharded(SCHEME_FACTORIES[scheme](),
                              shard_gate_scenario("validate-shard-gate"),
                              n_shards, validate=True)
        report = sharded.summary.validation
        identical = (sharded.stats == serial.stats
                     and sharded.health.completed == serial.completed
                     and sharded.summary.n_flows == serial.n_flows)
        ok = (identical and sharded.conservation_ok
              and report is not None and report.ok)
        if not ok:
            failures += 1
        problems = []
        if not identical:
            problems.append("NOT bit-identical to serial")
        if not sharded.conservation_ok:
            problems.append("handoff conservation open")
        if report is not None and not report.ok:
            problems.append(report.describe())
        rows.append({
            "cell": f"{scheme}@sharded-{n_shards}==serial",
            "flows": f"{sharded.health.completed}/{sharded.summary.n_flows}",
            "events": sharded.health.events_run,
            "checks": report.checks_run if report is not None else 0,
            "result": "ok" if ok else "; ".join(problems),
        })

    print(format_table(rows), file=out)
    checks = sum(r["checks"] for r in rows)
    print(f"\n{len(rows)} cells, {checks} invariant checks, "
          f"{failures} failing cell(s)", file=out)
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.validate.matrix",
        description="audit every scheme on every canonical topology and "
                    "check validated runs are bit-identical to bare ones")
    parser.add_argument("--schemes", nargs="+", default=None,
                        choices=sorted(SCHEME_FACTORIES))
    parser.add_argument("--flows", type=int, default=DEFAULT_FLOWS)
    parser.add_argument("--jobs", type=int, default=-1,
                        help="worker processes (-1 = one per core)")
    args = parser.parse_args(argv)
    return run_matrix(args.schemes, flows=args.flows, jobs=args.jobs)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
