"""Versioned simulator checkpoints: snapshot a run mid-drain, resume later.

A checkpoint is a pickle of the *entire* run graph — the
:class:`~repro.sim.engine.Simulator` (heap, pipelined
:class:`~repro.sim.link.Wire` in-flight deques,
:class:`~repro.sim.engine.EventChain` timers), every transport
endpoint's window/RTO state, the queue ledgers, the fault injectors'
RNG streams, the telemetry trace and the invariant auditor — wrapped in
a :class:`RunState` that also carries the drain loop's own position
(current slice time, watchdog progress signature).  Because the whole
graph is one pickle, shared references survive intact, which is what
makes a resumed run **bit-identical** to a straight-through one (gated
by ``tests/test_resilience.py`` the same way
``Wire.PIPELINED_DEFAULT`` equivalence is gated).

Three deliberate exclusions keep snapshots both lean and loadable:

* the engine's event **free-list** is dropped (dead pooled objects;
  whether an Event is recycled or freshly allocated cannot change
  behaviour — see :meth:`~repro.sim.engine.Simulator.__getstate__`);
* the :class:`~repro.experiments.runner.Scenario` **builders** are NOT
  stored (they are arbitrary closures); a checkpoint instead records
  the scalar drain limits it needs (``max_time``, ``stall_slices``,
  ``event_budget``, ``max_rto``) plus the scheme/scenario names for
  compatibility checks at resume time;
* bound-callback caches (``Port._tx_cb``, ``Wire._deliver_cb``) are
  rebuilt on restore.

File format
-----------

Two consecutive pickles: a small plain-``dict`` header (format tag,
version, scheme/scenario names, sim time, events run) followed by the
:class:`RunState`.  :func:`inspect_checkpoint` reads only the header,
so listing/validating checkpoint files never pays for — or trusts —
the full graph.  Writes are atomic (temp file + ``os.replace``): a
run SIGKILLed mid-write leaves the previous checkpoint intact.

Versioning rules: ``CHECKPOINT_VERSION`` bumps whenever the snapshot
graph changes shape (new engine fields, new transport state).  A
loader refuses mismatched versions with :class:`CheckpointError` —
resuming across versions would deserialize silently-wrong state.

Trust model: checkpoints are pickles.  Load only files you (or your
own runs) wrote.
"""

from __future__ import annotations

import io
import os
import pickle
from dataclasses import dataclass, field
from typing import Any, Optional

CHECKPOINT_FORMAT = "repro-checkpoint"
# v2: RunState grew ``total_flows`` (streaming flow sources — ``flows``
# now only holds what a stream has already emitted, and the lazy start
# chain, with its half-consumed FlowStream, rides inside the sim graph)
# v3: RunState grew ``hybrid`` (the flow-level fast path's controller —
# abstract-flow set, rate assignments and the armed epoch event — so a
# mid-epoch resume is bit-identical)
CHECKPOINT_VERSION = 3


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, malformed, or incompatible."""


@dataclass
class RunState:
    """The picklable snapshot of one run, taken at a drain-slice boundary.

    Everything :func:`repro.experiments.runner.run` needs to finish the
    run lives here: the live object graph (``topo`` owns the simulator
    and fabric; ``ctx``/``flows``/``faults``/``telemetry``/``auditor``
    share references into it) plus the drain loop's scalar state.
    """

    # identity (checked against the caller's scheme/scenario at resume)
    scheme_name: str = ""
    scenario_name: str = ""

    # the live run graph — one shared-reference pickle
    topo: Any = None
    ctx: Any = None
    flows: list = field(default_factory=list)
    faults: Any = None
    telemetry: Any = None
    auditor: Any = None
    # the HybridController when the run uses the flow-level fast path
    # (None otherwise); shares references into the sim graph, so the
    # abstract set and its armed RearmableEvent pickle consistently
    hybrid: Any = None

    # the run's flow target: len(flows) for a materialized workload,
    # the FlowStream's declared total for a streamed one (``flows``
    # then only holds the prefix pulled so far — the un-consumed stream
    # itself travels inside the sim graph via the lazy start chain),
    # None for an unbounded stream
    total_flows: Optional[int] = None

    # drain limits copied off the Scenario (builders are not picklable)
    max_time: float = 10.0
    stall_slices: int = 40
    event_budget: Optional[int] = None
    max_rto: float = 0.25

    # drain-loop position
    t: float = 0.0
    last_signature: Optional[tuple] = None
    last_progress_t: float = 0.0
    last_checkpoint_t: float = 0.0
    checkpoints_taken: int = 0

    @property
    def sim(self):
        return self.topo.sim

    def header(self) -> dict:
        """The plain-data header written ahead of the state pickle."""
        return {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "scheme": self.scheme_name,
            "scenario": self.scenario_name,
            "sim_time": self.sim.now,
            "events_run": self.sim.events_run,
            "completed": len(self.ctx.completed),
            "n_flows": (self.total_flows if self.total_flows is not None
                        else len(self.flows)),
            "checkpoints_taken": self.checkpoints_taken,
        }


def save_checkpoint(state: RunState, path) -> dict:
    """Atomically write ``state`` to ``path``; returns the header dict.

    The write goes to a sibling temp file first and is published with
    ``os.replace``, so a crash mid-write can never corrupt an existing
    checkpoint — the resume path always sees either the old snapshot or
    the new one, complete.
    """
    path = os.fspath(path)
    header = state.header()
    buf = io.BytesIO()
    pickle.dump(header, buf, protocol=pickle.HIGHEST_PROTOCOL)
    pickle.dump(state, buf, protocol=pickle.HIGHEST_PROTOCOL)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        fh.write(buf.getvalue())
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return header


def inspect_checkpoint(path) -> dict:
    """Read and validate only a checkpoint's header (cheap, graph-free)."""
    with open(path, "rb") as fh:
        try:
            header = pickle.load(fh)
        except Exception as exc:
            raise CheckpointError(f"{path}: not a checkpoint file: {exc}") from exc
    _validate_header(header, path)
    return header


def load_checkpoint(path) -> RunState:
    """Load a full :class:`RunState`; raises :class:`CheckpointError` on
    a missing file, a foreign format, or a version mismatch."""
    try:
        fh = open(path, "rb")
    except OSError as exc:
        raise CheckpointError(f"cannot open checkpoint {path}: {exc}") from exc
    with fh:
        try:
            header = pickle.load(fh)
        except Exception as exc:
            raise CheckpointError(f"{path}: not a checkpoint file: {exc}") from exc
        _validate_header(header, path)
        try:
            state = pickle.load(fh)
        except Exception as exc:
            raise CheckpointError(
                f"{path}: checkpoint body failed to deserialize: {exc}") from exc
    if not isinstance(state, RunState):
        raise CheckpointError(
            f"{path}: checkpoint body is {type(state).__name__}, "
            f"expected RunState")
    return state


def _validate_header(header: object, path) -> None:
    if not isinstance(header, dict) or header.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(f"{path}: not a {CHECKPOINT_FORMAT} file")
    version = header.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint version {version} is incompatible with "
            f"this build (expected {CHECKPOINT_VERSION}); re-run from "
            f"scratch instead of resuming")
