"""repro.resilience — supervised execution for long-horizon runs.

Two layers (see ``docs/robustness.md``):

* **checkpoint/resume** (:mod:`repro.resilience.checkpoint`) — versioned
  snapshots of a running simulation, written periodically from the
  runner's drain-slice loop; ``run(resume=...)`` restores one such that
  the resumed run is bit-identical to a straight-through run;
* **the grid supervisor** (:mod:`repro.resilience.supervisor`) — per-cell
  wall-clock timeouts, crash/hang detection, retry with exponential
  backoff and quarantine of repeatedly-failing cells into structured
  :class:`FailedTask` records, with deterministic partial merges.

Supervisor names are imported lazily (PEP 562) because the supervisor
pulls in :mod:`repro.experiments.parallel`, which itself imports the
runner — which imports this package for the checkpoint types.
"""

from .checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    CheckpointError,
    RunState,
    inspect_checkpoint,
    load_checkpoint,
    save_checkpoint,
)

_SUPERVISOR_NAMES = (
    "FailedTask",
    "SupervisedResult",
    "backoff_delay",
    "supervise_grid",
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "RunState",
    "inspect_checkpoint",
    "load_checkpoint",
    "save_checkpoint",
    *_SUPERVISOR_NAMES,
]


def __getattr__(name: str):
    if name in _SUPERVISOR_NAMES:
        from . import supervisor

        return getattr(supervisor, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
