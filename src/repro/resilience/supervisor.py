"""Supervised grid execution: timeouts, retry with backoff, quarantine.

:func:`repro.experiments.parallel.run_grid` assumes every worker
finishes; one hung or SIGKILLed process loses the whole sweep.  This
module runs the same :class:`~repro.experiments.parallel.GridTask`
cells under a **supervisor** that owns one process per in-flight cell
(no shared pool — a dead worker cannot poison its neighbours) and
provides:

* a per-cell **wall-clock timeout** — a hung worker is killed and the
  cell retried;
* **crash detection** — a worker that dies without reporting (SIGKILL,
  OOM-kill, segfault) is detected by process exit, not by a pipe
  hang;
* **retry with exponential backoff** — each failed attempt waits
  ``backoff_base * 2**(failures-1)`` seconds (capped at
  ``backoff_max``) before relaunching, up to ``retries`` retries;
* **quarantine** — a cell that exhausts its retry budget becomes a
  structured :class:`FailedTask` (scheme, params, attempts, reason,
  worker traceback) instead of aborting the sweep;
* **deterministic partial merges** — completed cells land at their
  grid index, so the merge order of whatever completed is identical
  to an undisturbed sweep's.

Determinism note: every cell builds a fresh scenario from its own
seeds, so a retried attempt replays the identical simulation — retry
changes *when* a summary arrives, never *what* it contains.  That is
what lets the chaos benchmark assert a SIGKILLed sweep merges
bit-identically to an undisturbed one.

Workers are forked, exactly like ``run_grid``: only the task index
crosses the pipe inbound and only the summary (or a structured error
payload) crosses outbound.  On platforms without ``fork`` the grid
degrades to in-process execution with retry-on-exception semantics
(timeout and crash recovery need real processes and are disabled).
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..experiments.parallel import GridTask, RunSummary, default_jobs

# Supervisor poll cadence.  Coarse enough to stay invisible in profiles,
# fine enough that a finished worker never idles long.
POLL_INTERVAL = 0.02


@dataclass
class FailedTask:
    """A quarantined grid cell: every retry failed.

    Carries everything a post-mortem needs — which cell (grid index,
    label, scheme, params), how it died (``reason`` is ``"timeout"``,
    ``"crashed"`` or ``"exception"``), the worker's traceback when one
    was reported, and the exit code when the process died.
    """

    index: int
    label: str
    scheme: str
    params: Dict[str, object] = field(default_factory=dict)
    attempts: int = 0
    reason: str = ""
    detail: str = ""
    exitcode: Optional[int] = None
    elapsed: float = 0.0

    def describe(self) -> str:
        parts = [f"cell {self.index} ({self.label or self.scheme})",
                 f"{self.attempts} attempt(s)", self.reason]
        if self.exitcode is not None:
            parts.append(f"exit {self.exitcode}")
        return ": ".join((", ".join(parts), self.detail.strip().splitlines()[-1]
                          if self.detail else "no detail"))


@dataclass
class SupervisedResult:
    """Outcome of a supervised grid: summaries in grid order, failures
    quarantined.

    ``summaries[i]`` is the i-th task's :class:`RunSummary`, or ``None``
    when that cell was quarantined (its :class:`FailedTask` is in
    ``failed``, also ordered by grid index).  ``attempts_total`` counts
    every process launched, so ``attempts_total - len(tasks)`` is the
    number of retries the sweep needed.
    """

    summaries: List[Optional[RunSummary]] = field(default_factory=list)
    failed: List[FailedTask] = field(default_factory=list)
    attempts_total: int = 0

    @property
    def ok(self) -> bool:
        return not self.failed

    def completed(self) -> List[RunSummary]:
        """The summaries that exist, still in deterministic grid order."""
        return [s for s in self.summaries if s is not None]


# Task table inherited by forked workers (same pattern as
# parallel._FORK_TASKS); indexed by the integers that cross the pipe.
_SUPERVISED_TASKS: Optional[Sequence[GridTask]] = None


def _supervised_entry(index: int, conn) -> None:
    """Worker side: run one cell, report ``("ok", summary)`` or a
    structured ``("error", context, traceback)`` tuple.  A worker that
    dies before sending anything (SIGKILL, segfault) is detected by the
    supervisor through process exit instead."""
    try:
        summary = _SUPERVISED_TASKS[index].execute()
        payload = ("ok", summary)
    except BaseException as exc:  # noqa: BLE001 - the whole point
        task = _SUPERVISED_TASKS[index]
        context = {
            "label": task.label,
            "scheme": task.scheme_key or type(exc).__name__,
            "params": dict(task.params),
            "exception": repr(exc),
        }
        payload = ("error", context, traceback.format_exc())
    try:
        conn.send(payload)
    except Exception:
        # an unpicklable summary/exception must still fail loudly: the
        # supervisor sees the nonzero exit and books a crash
        os._exit(70)
    finally:
        conn.close()


class _Attempt:
    """One in-flight worker process for one cell."""

    __slots__ = ("index", "number", "process", "conn", "started")

    def __init__(self, index: int, number: int, ctx) -> None:
        self.index = index
        self.number = number
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        self.conn = parent_conn
        self.process = ctx.Process(
            target=_supervised_entry, args=(index, child_conn), daemon=True)
        self.started = time.monotonic()
        self.process.start()
        child_conn.close()  # the child owns its end now

    def elapsed(self) -> float:
        return time.monotonic() - self.started

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.kill()
        self.process.join()
        self.conn.close()

    def reap(self) -> None:
        self.process.join()
        self.conn.close()


def backoff_delay(failures: int, base: float, cap: float) -> float:
    """Exponential backoff after ``failures`` failed attempts."""
    if failures <= 0:
        return 0.0
    return min(cap, base * (2.0 ** (failures - 1)))


def supervise_grid(
    tasks: Sequence[GridTask],
    *,
    jobs: Optional[int] = None,
    task_timeout: Optional[float] = None,
    retries: int = 2,
    backoff_base: float = 0.25,
    backoff_max: float = 5.0,
    progress: Optional[Callable[[str], None]] = None,
) -> SupervisedResult:
    """Execute every task under supervision; never raises for a cell
    failure.

    ``jobs`` follows :func:`~repro.experiments.parallel.run_grid`
    semantics (``None``/``0``/``1`` serial, ``-1`` one per core).
    ``task_timeout`` is wall-clock seconds per attempt (``None`` = no
    limit).  ``retries`` is the per-cell retry budget *after* the first
    attempt.  ``progress`` fires once per task in grid order after the
    sweep settles, like ``run_grid``'s parallel path.

    Without ``fork`` (or serial), cells run in-process: exceptions are
    retried with the same backoff and budget, but timeout/crash
    recovery — which require a killable process — are unavailable.
    """
    tasks = list(tasks)
    result = SupervisedResult(summaries=[None] * len(tasks))
    if not tasks:
        return result
    if jobs is not None and jobs < 0:
        jobs = default_jobs()
    n_workers = min(jobs or 1, len(tasks))

    if n_workers <= 1 or "fork" not in multiprocessing.get_all_start_methods():
        _supervise_serial(tasks, result, retries, backoff_base, backoff_max)
    else:
        _supervise_forked(tasks, result, n_workers, task_timeout, retries,
                          backoff_base, backoff_max)

    result.failed.sort(key=lambda f: f.index)
    if progress is not None:
        for task in tasks:
            progress(task.label)
    return result


def _supervise_serial(tasks, result, retries, backoff_base, backoff_max) -> None:
    for index, task in enumerate(tasks):
        failures = 0
        started = time.monotonic()
        while True:
            result.attempts_total += 1
            try:
                result.summaries[index] = task.execute()
                break
            except Exception:  # noqa: BLE001 - quarantine, don't abort
                failures += 1
                if failures > retries:
                    result.failed.append(FailedTask(
                        index=index, label=task.label,
                        scheme=task.scheme_key, params=dict(task.params),
                        attempts=failures, reason="exception",
                        detail=traceback.format_exc(),
                        elapsed=time.monotonic() - started))
                    break
                time.sleep(backoff_delay(failures, backoff_base, backoff_max))


def _supervise_forked(tasks, result, n_workers, task_timeout, retries,
                      backoff_base, backoff_max) -> None:
    global _SUPERVISED_TASKS
    previous = _SUPERVISED_TASKS
    _SUPERVISED_TASKS = tasks
    ctx = multiprocessing.get_context("fork")
    failures: Dict[int, int] = {i: 0 for i in range(len(tasks))}
    last_error: Dict[int, tuple] = {}   # index -> (reason, detail, exitcode)
    spent: Dict[int, float] = {i: 0.0 for i in range(len(tasks))}
    ready: List[int] = list(range(len(tasks)))     # FIFO launch queue
    not_before: Dict[int, float] = {}              # backoff gate
    in_flight: Dict[int, _Attempt] = {}
    try:
        while ready or in_flight:
            now = time.monotonic()
            # launch every eligible cell into a free worker slot
            launchable = [i for i in ready if not_before.get(i, 0.0) <= now]
            while launchable and len(in_flight) < n_workers:
                index = launchable.pop(0)
                ready.remove(index)
                result.attempts_total += 1
                in_flight[index] = _Attempt(
                    index, failures[index] + 1, ctx)

            if not in_flight:
                # everything ready is gated behind backoff: sleep it off
                wake = min(not_before[i] for i in ready)
                time.sleep(max(0.0, wake - time.monotonic()) or POLL_INTERVAL)
                continue

            time.sleep(POLL_INTERVAL)
            for index, attempt in list(in_flight.items()):
                outcome = _poll_attempt(attempt, task_timeout)
                if outcome is None:
                    continue
                del in_flight[index]
                spent[index] += attempt.elapsed()
                kind = outcome[0]
                if kind == "ok":
                    result.summaries[index] = outcome[1]
                    continue
                # failed attempt: retry under budget, else quarantine
                failures[index] += 1
                last_error[index] = outcome
                if failures[index] > retries:
                    reason, detail, exitcode = last_error[index]
                    task = tasks[index]
                    result.failed.append(FailedTask(
                        index=index, label=task.label,
                        scheme=task.scheme_key, params=dict(task.params),
                        attempts=failures[index], reason=reason,
                        detail=detail, exitcode=exitcode,
                        elapsed=spent[index]))
                else:
                    ready.append(index)
                    not_before[index] = time.monotonic() + backoff_delay(
                        failures[index], backoff_base, backoff_max)
    finally:
        for attempt in in_flight.values():
            attempt.kill()
        _SUPERVISED_TASKS = previous


def _poll_attempt(attempt: _Attempt, task_timeout: Optional[float]):
    """Check one in-flight worker.  Returns ``None`` (still running),
    ``("ok", summary)``, or ``(reason, detail, exitcode)``."""
    try:
        if attempt.conn.poll():
            payload = attempt.conn.recv()
            attempt.reap()
            if payload[0] == "ok":
                return ("ok", payload[1])
            _kind, context, worker_tb = payload
            detail = (f"task {context['label'] or context['scheme']} "
                      f"params={context['params']} raised "
                      f"{context['exception']}\n{worker_tb}")
            return ("exception", detail, attempt.process.exitcode)
    except (EOFError, OSError):
        # pipe died with the worker mid-send
        attempt.reap()
        return ("crashed",
                f"worker pipe closed without a result "
                f"(exit {attempt.process.exitcode})",
                attempt.process.exitcode)

    if not attempt.process.is_alive():
        exitcode = attempt.process.exitcode
        attempt.reap()
        return ("crashed",
                f"worker exited without reporting a result "
                f"(exit {exitcode}; SIGKILL/OOM leaves -9)",
                exitcode)

    if task_timeout is not None and attempt.elapsed() > task_timeout:
        elapsed = attempt.elapsed()
        attempt.kill()
        return ("timeout",
                f"attempt exceeded task_timeout ({elapsed:.2f}s > "
                f"{task_timeout:.2f}s); worker killed",
                attempt.process.exitcode)
    return None
