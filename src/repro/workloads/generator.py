"""Poisson open-loop flow generation at a target network load.

The paper generates flows "following the Poisson process and controls
the inter-arrival time of flows to achieve the desired network load"
(§6.1).  Network load is defined against the aggregate edge capacity of
the *sending* hosts: at load ``rho`` with ``S`` senders of edge rate
``C`` and mean flow size ``E[s]`` bytes, the flow arrival rate is::

    lambda = rho * S * C / (8 * E[s])      [flows per second]

For incast patterns the receiver's downlink is the bottleneck, so the
load is defined against that single link instead (``n_senders=1``
effectively).
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..transport.base import Flow
from .distributions import EmpiricalCdf
from .patterns import PairSampler


def poisson_flows(
    pattern: PairSampler,
    cdf: EmpiricalCdf,
    *,
    load: float,
    link_rate: float,
    n_flows: int,
    seed: int = 1,
    n_senders: int = 1,
    size_cap: Optional[int] = None,
    start_time: float = 0.0,
    first_flow_id: int = 0,
) -> List[Flow]:
    """Generate ``n_flows`` Poisson-arriving flows at the target load.

    Parameters
    ----------
    pattern:
        (src, dst) sampler.
    cdf:
        Flow size distribution.
    load:
        Target network load in (0, 1].
    link_rate:
        Edge link rate in bits/s the load is defined against.
    n_senders:
        Number of links the load aggregates over (1 for incast, the
        host count for all-to-all).
    size_cap:
        Optional cap on sampled sizes — used by the scaled-down benchmark
        scenarios.  The arrival rate is derived from the exact capped
        mean ``E[min(S, cap)]`` (see :meth:`EmpiricalCdf.mean`), so the
        *offered load* stays correct under capping.
    """
    if not 0.0 < load <= 1.5:
        raise ValueError(f"load out of range: {load}")
    if n_flows <= 0:
        raise ValueError("n_flows must be positive")
    rng = random.Random(seed)
    mean_size = cdf.mean(size_cap)
    rate = load * n_senders * link_rate / (8.0 * mean_size)  # flows/sec
    mean_gap = 1.0 / rate

    flows: List[Flow] = []
    now = start_time
    for i in range(n_flows):
        now += rng.expovariate(1.0 / mean_gap) if i else 0.0
        src, dst = pattern(rng)
        if src == dst:
            # every shipped pattern guarantees src != dst, but a
            # user-supplied sampler may not — a src==dst flow would sit
            # in the runner forever (the receiver is its own sender)
            raise ValueError(
                f"pattern produced src == dst == {src} for flow "
                f"{first_flow_id + i}")
        size = cdf.sample(rng, size_cap)
        flows.append(Flow(flow_id=first_flow_id + i, src=src, dst=dst,
                          size=size, start_time=now))
    return flows
