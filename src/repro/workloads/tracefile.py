"""Trace-file workloads: replay flows recorded outside the generator.

Production evaluations often replay measured traces rather than
synthetic Poisson arrivals.  This module reads and writes a simple
line-oriented format so users can bring their own traces:

* **CSV** — header ``flow_id,src,dst,size,start_time`` (extra columns
  ignored), or headerless with exactly those five columns;
* **JSONL** — one JSON object per line with the same keys
  (``flow_id`` optional: line number is used when absent).

``load_trace`` returns :class:`~repro.transport.base.Flow` objects ready
for a :class:`~repro.experiments.runner.Scenario`, and ``save_trace``
round-trips whatever a generator produced — useful for freezing a
Poisson draw into an artefact.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, List, Optional, Union

from ..transport.base import Flow

REQUIRED_FIELDS = ("src", "dst", "size", "start_time")

# Extensions both load_trace and save_trace treat as line-oriented JSON.
# Keeping the two dispatchers on ONE table is what guarantees a
# ``save_trace(flows, p); load_trace(p)`` round-trip for every suffix:
# they used to disagree on ``.json`` (saved as CSV, loaded as JSONL), so
# a ``.json`` round-trip failed to parse.
JSONL_SUFFIXES = (".jsonl", ".ndjson", ".json")


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed."""


def _flow_from_record(record: dict, default_id: int) -> Flow:
    missing = [f for f in REQUIRED_FIELDS if f not in record]
    if missing:
        raise TraceFormatError(f"record missing fields {missing}: {record}")
    try:
        return Flow(
            flow_id=int(record.get("flow_id", default_id)),
            src=int(record["src"]),
            dst=int(record["dst"]),
            size=int(record["size"]),
            start_time=float(record["start_time"]),
        )
    except (TypeError, ValueError) as exc:
        raise TraceFormatError(f"bad record {record}: {exc}") from exc


def _validate(flows: List[Flow]) -> List[Flow]:
    seen = set()
    for flow in flows:
        if flow.size <= 0:
            raise TraceFormatError(f"flow {flow.flow_id}: size must be > 0")
        if flow.start_time < 0:
            raise TraceFormatError(
                f"flow {flow.flow_id}: negative start time")
        if flow.src == flow.dst:
            raise TraceFormatError(
                f"flow {flow.flow_id}: src == dst == {flow.src}")
        if flow.flow_id in seen:
            raise TraceFormatError(f"duplicate flow id {flow.flow_id}")
        seen.add(flow.flow_id)
    flows.sort(key=lambda f: (f.start_time, f.flow_id))
    return flows


def load_trace(path: Union[str, Path]) -> List[Flow]:
    """Load a CSV or JSONL trace (dispatch on the file extension)."""
    path = Path(path)
    if path.suffix.lower() in JSONL_SUFFIXES:
        return load_jsonl(path)
    return load_csv(path)


def load_csv(path: Union[str, Path]) -> List[Flow]:
    flows: List[Flow] = []
    with open(path, newline="") as handle:
        sample = handle.read(256)
        handle.seek(0)
        has_header = any(field in sample.split("\n")[0]
                         for field in REQUIRED_FIELDS)
        if has_header:
            reader = csv.DictReader(handle)
            for i, record in enumerate(reader):
                flows.append(_flow_from_record(record, i))
        else:
            reader = csv.reader(handle)
            for i, row in enumerate(reader):
                if not row:
                    continue
                if len(row) != 5:
                    raise TraceFormatError(
                        f"line {i + 1}: expected 5 columns, got {len(row)}")
                record = dict(zip(("flow_id",) + REQUIRED_FIELDS, row))
                flows.append(_flow_from_record(record, i))
    return _validate(flows)


def load_jsonl(path: Union[str, Path]) -> List[Flow]:
    flows: List[Flow] = []
    with open(path) as handle:
        for i, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(f"line {i + 1}: {exc}") from exc
            flows.append(_flow_from_record(record, i))
    return _validate(flows)


def save_trace(flows: Iterable[Flow], path: Union[str, Path]) -> None:
    """Save flows as CSV (with header) or JSONL, dispatching on the file
    extension exactly as :func:`load_trace` does."""
    path = Path(path)
    flows = list(flows)
    if path.suffix.lower() in JSONL_SUFFIXES:
        with open(path, "w") as handle:
            for flow in flows:
                handle.write(json.dumps({
                    "flow_id": flow.flow_id, "src": flow.src,
                    "dst": flow.dst, "size": flow.size,
                    "start_time": flow.start_time}) + "\n")
        return
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(("flow_id",) + REQUIRED_FIELDS)
        for flow in flows:
            writer.writerow((flow.flow_id, flow.src, flow.dst, flow.size,
                             flow.start_time))


def trace_scenario_flows(path: Union[str, Path], n_hosts: int) -> List[Flow]:
    """Load a trace and check every endpoint exists on an n-host fabric."""
    flows = load_trace(path)
    for flow in flows:
        if not (0 <= flow.src < n_hosts and 0 <= flow.dst < n_hosts):
            raise TraceFormatError(
                f"flow {flow.flow_id}: endpoint outside [0, {n_hosts})")
    return flows
