"""Empirical flow-size distributions used throughout the paper.

* **Web Search** — the DCTCP production workload [Alizadeh et al. 2010;
  Roy et al. 2015].  Heavy-tailed: ~62% of flows are 0–100KB but most
  bytes come from multi-MB flows; average ~1.6MB (paper Table 2).
* **Data Mining** — the VL2 workload [Greenberg et al. 2009].  Extremely
  polarized: ~83% of flows under 100KB alongside flows up to 100MB+;
  average ~7.41MB (paper Table 2).
* **Memcached W1** — the Facebook Memcached workload used by Homa
  (paper §6.3.2): >70% of flows under 1000 bytes, all under 100KB.
* **ETC / YouTube HTTP** — message-size proxies for the §4.1
  identification-accuracy validation.

Each distribution is an :class:`EmpiricalCdf` of ``(size_bytes,
cumulative_probability)`` breakpoints transcribed from the literature,
sampled by inversion with linear interpolation between breakpoints.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Optional, Sequence, Tuple


class EmpiricalCdf:
    """Piecewise-linear inverse-CDF sampler over flow sizes."""

    def __init__(self, name: str, points: Sequence[Tuple[float, float]]):
        if len(points) < 2:
            raise ValueError("need at least two CDF points")
        sizes = [p[0] for p in points]
        probs = [p[1] for p in points]
        if sizes != sorted(sizes):
            raise ValueError("sizes must be non-decreasing")
        if probs != sorted(probs):
            raise ValueError("probabilities must be non-decreasing")
        if probs[0] != 0.0 or abs(probs[-1] - 1.0) > 1e-9:
            raise ValueError("CDF must start at 0 and end at 1")
        self.name = name
        self._sizes = [float(s) for s in sizes]
        self._probs = [float(p) for p in probs]

    def sample(self, rng: random.Random, cap: Optional[int] = None) -> int:
        """Draw one flow size in bytes (>= 1, optionally capped)."""
        u = rng.random()
        idx = bisect.bisect_left(self._probs, u)
        if idx == 0:
            size = self._sizes[0]
        else:
            p0, p1 = self._probs[idx - 1], self._probs[idx]
            s0, s1 = self._sizes[idx - 1], self._sizes[idx]
            if p1 == p0:
                size = s1
            else:
                size = s0 + (s1 - s0) * (u - p0) / (p1 - p0)
        size = max(1, int(size))
        if cap is not None:
            size = min(size, cap)
        return size

    def mean(self, cap: Optional[int] = None) -> float:
        """Analytic mean under linear interpolation (optionally capped).

        With a cap this is the exact ``E[min(S, cap)]`` of the sampler:
        sizes are uniform on each segment, so a segment the cap
        straddles contributes the uncapped trapezoid over the fraction
        ``f = (cap - s0) / (s1 - s0)`` below the cap plus ``cap`` itself
        over the remaining ``1 - f`` — clamping both trapezoid endpoints
        to the cap (the old code) under-counted the capped portion and
        made ``poisson_flows(size_cap=...)`` offer the wrong load.
        """
        total = 0.0
        for i in range(1, len(self._sizes)):
            p = self._probs[i] - self._probs[i - 1]
            s0, s1 = self._sizes[i - 1], self._sizes[i]
            if cap is None or cap >= s1:
                total += p * (s0 + s1) / 2.0
            elif cap <= s0:
                total += p * cap
            else:
                f = (cap - s0) / (s1 - s0)
                total += p * (f * (s0 + cap) / 2.0 + (1.0 - f) * cap)
        return total

    def fraction_below(self, size: float) -> float:
        """CDF value at ``size`` (linear interpolation)."""
        if size <= self._sizes[0]:
            return self._probs[0]
        if size >= self._sizes[-1]:
            return 1.0
        idx = bisect.bisect_right(self._sizes, size)
        s0, s1 = self._sizes[idx - 1], self._sizes[idx]
        p0, p1 = self._probs[idx - 1], self._probs[idx]
        if s1 == s0:
            return p1
        return p0 + (p1 - p0) * (size - s0) / (s1 - s0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EmpiricalCdf {self.name} mean={self.mean()/1e6:.2f}MB>"


WEB_SEARCH = EmpiricalCdf("web-search", [
    (1_000, 0.00),
    (6_000, 0.15),
    (13_000, 0.20),
    (19_000, 0.30),
    (33_000, 0.40),
    (53_000, 0.53),
    (100_000, 0.62),
    (667_000, 0.70),
    (1_333_000, 0.80),
    (3_333_000, 0.90),
    (6_667_000, 0.96),
    (30_000_000, 1.00),
])

DATA_MINING = EmpiricalCdf("data-mining", [
    (100, 0.00),
    (180, 0.10),
    (250, 0.20),
    (560, 0.30),
    (900, 0.40),
    (1_100, 0.50),
    (1_870, 0.60),
    (3_160, 0.70),
    (10_000, 0.80),
    (100_000, 0.83),
    (400_000, 0.90),
    (3_160_000, 0.95),
    (35_000_000, 0.98),
    (660_000_000, 1.00),
])

MEMCACHED_W1 = EmpiricalCdf("memcached-w1", [
    (64, 0.00),
    (128, 0.20),
    (256, 0.45),
    (512, 0.62),
    (1_000, 0.73),
    (2_000, 0.80),
    (5_000, 0.87),
    (10_000, 0.92),
    (30_000, 0.97),
    (100_000, 1.00),
])

# Memcached ETC value-size trace proxy (Atikoglu et al., SIGMETRICS 2012):
# mostly sub-KB values with a tail of multi-KB objects.
MEMCACHED_ETC = EmpiricalCdf("memcached-etc", [
    (24, 0.00),
    (100, 0.30),
    (300, 0.55),
    (700, 0.70),
    (1_000, 0.76),
    (2_000, 0.84),
    (5_000, 0.91),
    (10_000, 0.95),
    (50_000, 0.99),
    (500_000, 1.00),
])

# YouTube HTTP response-size proxy (Jorgensen et al. 2023): chunked video
# segments; responses from tens of KB to several MB.
YOUTUBE_HTTP = EmpiricalCdf("youtube-http", [
    (2_000, 0.00),
    (10_000, 0.15),
    (30_000, 0.35),
    (100_000, 0.55),
    (300_000, 0.72),
    (1_000_000, 0.87),
    (3_000_000, 0.95),
    (10_000_000, 1.00),
])

WORKLOADS = {
    cdf.name: cdf
    for cdf in (WEB_SEARCH, DATA_MINING, MEMCACHED_W1, MEMCACHED_ETC,
                YOUTUBE_HTTP)
}


def sample_sizes(cdf: EmpiricalCdf, n: int, seed: int = 0,
                 cap: Optional[int] = None) -> List[int]:
    """Convenience: draw ``n`` sizes with a private RNG."""
    rng = random.Random(seed)
    return [cdf.sample(rng, cap) for _ in range(n)]
