"""Constant-memory streaming flow sources.

:func:`~repro.workloads.generator.poisson_flows` materializes its whole
flow list, so memory scales with run length and multi-million-flow
"production traffic" runs are out of reach.  A :class:`FlowStream` is
the streaming replacement: a **picklable iterator** yielding
:class:`~repro.transport.base.Flow` objects in non-decreasing
start-time order, holding O(1) state regardless of how many flows it
will ever produce.  The runner pulls flows lazily (one look-ahead flow
at a time — see ``Simulator.schedule_lazy_chain``), so a streamed run's
resident memory stays flat.

The protocol's three contracts:

* **ordered** — ``start_time`` never decreases between consecutive
  flows (the k-way merge and the lazy scheduler both rely on it);
* **picklable mid-iteration** — the stream's RNG and cursor state
  survive ``pickle``, which is what lets a checkpoint snapshot carry a
  half-consumed stream and lets ``run(resume=)`` stay bit-identical
  (and lets sweep workers construct streams from a spec after the
  fork instead of shipping a flow list);
* **bit-identical to the list generator** — for any finite ``n_flows``,
  :class:`PoissonFlowStream` performs exactly the RNG draws
  :func:`poisson_flows` performs, in the same order, so
  ``list(stream) == poisson_flows(...)`` float for float.

On top of the single-class Poisson stream this module layers the
methodology of "Traffic Generation for Benchmarking Data Centre
Networks" (PAPERS.md): mixed tenant classes (per-class size CDF and
load share, merged by a k-way heap), load shapes (constant, diurnal
sine, on/off bursts) and open- vs closed-loop arrival modes.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..transport.base import Flow
from .distributions import WORKLOADS, EmpiricalCdf
from .patterns import PairSampler

__all__ = [
    "FlowStream", "MaterializedStream", "PoissonFlowStream",
    "ClosedLoopStream", "MergedStream", "TenantClass",
    "tenant_mix_stream", "flow_stream",
    "LoadShape", "ConstantShape", "DiurnalShape", "OnOffShape",
    "parse_load_shape", "parse_tenant_mix",
]


# ---------------------------------------------------------------------------
# load shapes
# ---------------------------------------------------------------------------


class LoadShape:
    """Time-varying multiplier on the base arrival rate.

    ``rate_at(t)`` returns the instantaneous rate factor at simulated
    time ``t``; a shape should average to ~1.0 over its period so the
    scenario's nominal ``load`` stays the *mean* offered load.  Shapes
    modulate the next inter-arrival gap by the factor at the previous
    arrival (piecewise-constant thinning — exact in the limit of gaps
    short against the shape's period, and free of extra RNG draws, so a
    constant shape stays bit-identical to the unshaped generator).
    """

    def rate_at(self, t: float) -> float:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class ConstantShape(LoadShape):
    """Flat load — the §6.1 default."""

    def rate_at(self, t: float) -> float:
        return 1.0

    def describe(self) -> str:
        return "constant"


class DiurnalShape(LoadShape):
    """A day/night sine: ``1 + depth * sin(2*pi*t / period)``.

    Mean 1.0 over a full period; ``depth`` in [0, 1) keeps the rate
    strictly positive.
    """

    def __init__(self, period: float = 86_400.0, depth: float = 0.5):
        if period <= 0.0:
            raise ValueError(f"period must be positive, got {period!r}")
        if not 0.0 <= depth < 1.0:
            raise ValueError(f"depth must be in [0, 1), got {depth!r}")
        self.period = float(period)
        self.depth = float(depth)

    def rate_at(self, t: float) -> float:
        return 1.0 + self.depth * math.sin(2.0 * math.pi * t / self.period)

    def describe(self) -> str:
        return f"diurnal(period={self.period:g}, depth={self.depth:g})"


class OnOffShape(LoadShape):
    """Square-wave bursts: ``on`` seconds at a high rate, ``off``
    seconds at ``off_level`` of it, normalized so the mean is 1.0."""

    def __init__(self, on: float = 1.0, off: float = 1.0,
                 off_level: float = 0.1):
        if on <= 0.0 or off < 0.0:
            raise ValueError(f"bad on/off durations: {on!r}/{off!r}")
        if not 0.0 < off_level <= 1.0:
            # a zero off-level would make the next gap infinite —
            # the stream could never advance past an off window
            raise ValueError(f"off_level must be in (0, 1], got {off_level!r}")
        self.on = float(on)
        self.off = float(off)
        self.off_level = float(off_level)
        period = self.on + self.off
        # solve on*high + off*(high*off_level) = period for mean 1.0
        self._high = period / (self.on + self.off * self.off_level)

    def rate_at(self, t: float) -> float:
        phase = t % (self.on + self.off)
        return self._high if phase < self.on else self._high * self.off_level

    def describe(self) -> str:
        return (f"onoff(on={self.on:g}, off={self.off:g}, "
                f"off_level={self.off_level:g})")


def parse_load_shape(spec: Optional[str]) -> Optional[LoadShape]:
    """Parse a CLI load-shape spec.

    ``constant`` | ``diurnal[:PERIOD[:DEPTH]]`` |
    ``onoff[:ON[:OFF[:OFF_LEVEL]]]``; ``None``/empty means no shape.
    """
    if not spec:
        return None
    parts = spec.split(":")
    kind, args = parts[0], parts[1:]
    try:
        if kind == "constant":
            if args:
                raise ValueError("constant takes no parameters")
            return ConstantShape()
        if kind == "diurnal":
            return DiurnalShape(*[float(a) for a in args[:2]])
        if kind == "onoff":
            return OnOffShape(*[float(a) for a in args[:3]])
    except (TypeError, ValueError) as exc:
        raise ValueError(f"bad load-shape spec {spec!r}: {exc}") from exc
    raise ValueError(
        f"unknown load shape {kind!r} (expected constant, diurnal or onoff)")


# ---------------------------------------------------------------------------
# the stream protocol
# ---------------------------------------------------------------------------


class FlowStream:
    """A picklable iterator of :class:`Flow` in start-time order.

    ``n_flows`` is the total the stream will yield, or ``None`` for an
    unbounded stream.  Streams are their own iterators — their cursor
    and RNG state ARE the object state, so pickling a half-consumed
    stream and resuming it elsewhere continues the exact sequence.
    """

    n_flows: Optional[int] = None

    def __iter__(self) -> Iterator[Flow]:
        return self

    def __next__(self) -> Flow:
        raise NotImplementedError

    def materialize(self, limit: Optional[int] = None) -> List[Flow]:
        """Drain (the rest of) the stream into a list.

        ``limit`` bounds the pull and is required for unbounded streams.
        """
        if limit is None:
            if self.n_flows is None:
                raise ValueError(
                    "materialize() on an unbounded stream needs limit=")
            return list(self)
        out: List[Flow] = []
        for flow in self:
            out.append(flow)
            if len(out) >= limit:
                break
        return out


class MaterializedStream(FlowStream):
    """Adapter presenting an existing flow list as a stream (the
    degenerate case — memory already spent)."""

    def __init__(self, flows: Sequence[Flow]):
        self._flows = list(flows)
        for a, b in zip(self._flows, self._flows[1:]):
            if b.start_time < a.start_time:
                raise ValueError("flows must be in start-time order")
        self.n_flows = len(self._flows)
        self._cursor = 0

    def __next__(self) -> Flow:
        if self._cursor >= len(self._flows):
            raise StopIteration
        flow = self._flows[self._cursor]
        self._cursor += 1
        return flow


class PoissonFlowStream(FlowStream):
    """Streaming twin of :func:`~repro.workloads.generator.poisson_flows`.

    Same parameters, same seeded RNG, same draw order — for a finite
    ``n_flows`` and no shape, ``list(PoissonFlowStream(...))`` equals
    ``poisson_flows(...)`` bit for bit (gated by
    ``tests/test_streams.py``).  ``n_flows=None`` streams forever.
    ``shape`` modulates the instantaneous arrival rate (a factor of
    exactly ``1.0`` leaves the expovariate argument untouched, so a
    :class:`ConstantShape` preserves bit-identity too).
    """

    def __init__(
        self,
        pattern: PairSampler,
        cdf: EmpiricalCdf,
        *,
        load: float,
        link_rate: float,
        n_flows: Optional[int],
        seed: int = 1,
        n_senders: int = 1,
        size_cap: Optional[int] = None,
        start_time: float = 0.0,
        first_flow_id: int = 0,
        shape: Optional[LoadShape] = None,
    ):
        if not 0.0 < load <= 1.5:
            raise ValueError(f"load out of range: {load}")
        if n_flows is not None and n_flows <= 0:
            raise ValueError("n_flows must be positive (None = unbounded)")
        self.pattern = pattern
        self.cdf = cdf
        self.size_cap = size_cap
        self.n_flows = n_flows
        self.first_flow_id = first_flow_id
        self.shape = shape
        self._rng = random.Random(seed)
        mean_size = cdf.mean(size_cap)
        rate = load * n_senders * link_rate / (8.0 * mean_size)  # flows/sec
        # keep poisson_flows' exact double-reciprocal arithmetic
        self._mean_gap = 1.0 / rate
        self._now = start_time
        self._emitted = 0

    def __next__(self) -> Flow:
        if self.n_flows is not None and self._emitted >= self.n_flows:
            raise StopIteration
        rng = self._rng
        if self._emitted:
            lambd = 1.0 / self._mean_gap
            if self.shape is not None:
                factor = self.shape.rate_at(self._now)
                if factor != 1.0:
                    lambd *= factor
            self._now += rng.expovariate(lambd)
        src, dst = self.pattern(rng)
        if src == dst:
            raise ValueError(
                f"pattern produced src == dst == {src} for flow "
                f"{self.first_flow_id + self._emitted}")
        size = self.cdf.sample(rng, self.size_cap)
        flow = Flow(flow_id=self.first_flow_id + self._emitted,
                    src=src, dst=dst, size=size, start_time=self._now)
        self._emitted += 1
        return flow


class ClosedLoopStream(FlowStream):
    """Closed-loop arrivals: a fixed pool of ``n_users`` request loops.

    Each user issues a flow, waits out a think time, then issues the
    next — so offered traffic self-limits instead of queueing without
    bound the way an open-loop process does at overload.  Because a
    pre-scheduled stream cannot observe real completions, the service
    half of the cycle uses the flow's ideal transfer time at the edge
    rate (``size * 8 / link_rate``) as a lower bound: a user never
    launches its next flow before the previous one *could* have
    finished at line rate.  Think times are exponential with mean
    ``n_users / lambda`` so the aggregate mean arrival rate matches the
    open-loop stream at the same nominal load.
    """

    def __init__(
        self,
        pattern: PairSampler,
        cdf: EmpiricalCdf,
        *,
        load: float,
        link_rate: float,
        n_flows: Optional[int],
        seed: int = 1,
        n_senders: int = 1,
        size_cap: Optional[int] = None,
        start_time: float = 0.0,
        first_flow_id: int = 0,
        shape: Optional[LoadShape] = None,
        n_users: int = 8,
    ):
        if not 0.0 < load <= 1.5:
            raise ValueError(f"load out of range: {load}")
        if n_flows is not None and n_flows <= 0:
            raise ValueError("n_flows must be positive (None = unbounded)")
        if n_users < 1:
            raise ValueError(f"n_users must be >= 1, got {n_users!r}")
        self.pattern = pattern
        self.cdf = cdf
        self.size_cap = size_cap
        self.n_flows = n_flows
        self.first_flow_id = first_flow_id
        self.shape = shape
        self.link_rate = link_rate
        mean_size = cdf.mean(size_cap)
        rate = load * n_senders * link_rate / (8.0 * mean_size)
        self.mean_think = n_users / rate
        self._rngs = [random.Random(_child_seed(seed, u))
                      for u in range(n_users)]
        # (next arrival time, user) — user index breaks exact-time ties
        self._heap: List[Tuple[float, int]] = [
            (start_time + self._rngs[u].expovariate(1.0 / self.mean_think), u)
            for u in range(n_users)]
        heapq.heapify(self._heap)
        self._emitted = 0

    def __next__(self) -> Flow:
        if self.n_flows is not None and self._emitted >= self.n_flows:
            raise StopIteration
        now, user = heapq.heappop(self._heap)
        rng = self._rngs[user]
        src, dst = self.pattern(rng)
        if src == dst:
            raise ValueError(
                f"pattern produced src == dst == {src} for flow "
                f"{self.first_flow_id + self._emitted}")
        size = self.cdf.sample(rng, self.size_cap)
        flow = Flow(flow_id=self.first_flow_id + self._emitted,
                    src=src, dst=dst, size=size, start_time=now)
        think = rng.expovariate(1.0 / self.mean_think)
        if self.shape is not None:
            factor = self.shape.rate_at(now)
            if factor != 1.0:
                think /= factor
        service = size * 8.0 / self.link_rate
        heapq.heappush(self._heap, (now + max(think, service), user))
        self._emitted += 1
        return flow


class MergedStream(FlowStream):
    """K-way heap merge of ordered streams into one ordered stream.

    Holds exactly one look-ahead flow per source; exact-time ties break
    by source index, so the merge is deterministic.  Raises if a source
    violates the ordered contract mid-stream.
    """

    def __init__(self, streams: Sequence[FlowStream]):
        self._streams = list(streams)
        if not self._streams:
            raise ValueError("MergedStream needs at least one source")
        total = 0
        for stream in self._streams:
            if stream.n_flows is None:
                total = None
                break
            total += stream.n_flows
        self.n_flows = total
        self._heap: List[Tuple[float, int, Flow]] = []
        for idx, stream in enumerate(self._streams):
            flow = next(stream, None)
            if flow is not None:
                self._heap.append((flow.start_time, idx, flow))
        heapq.heapify(self._heap)

    def __next__(self) -> Flow:
        if not self._heap:
            raise StopIteration
        time, idx, flow = heapq.heappop(self._heap)
        successor = next(self._streams[idx], None)
        if successor is not None:
            if successor.start_time < time:
                raise ValueError(
                    f"merged source {idx} went backwards in time "
                    f"({successor.start_time} < {time})")
            heapq.heappush(self._heap,
                           (successor.start_time, idx, successor))
        return flow


# ---------------------------------------------------------------------------
# tenant mixes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TenantClass:
    """One tenant class of a mixed workload: a size distribution plus
    the share of the total offered load it contributes.  ``size_cap``
    overrides the mix-wide cap for this class when set."""

    name: str
    cdf: EmpiricalCdf
    share: float
    size_cap: Optional[int] = None


def _child_seed(seed: int, index: int) -> int:
    """Deterministic, well-separated per-substream seed (golden-ratio
    increment; plain arithmetic so it never depends on PYTHONHASHSEED)."""
    return (seed * 1_000_003 + 0x9E3779B1 * (index + 1)) % (2 ** 63)


def _split_counts(n_flows: int, shares: Sequence[float]) -> List[int]:
    """Apportion ``n_flows`` across shares (largest remainder, total
    preserved exactly)."""
    total_share = sum(shares)
    quotas = [n_flows * s / total_share for s in shares]
    counts = [int(q) for q in quotas]
    remainder = n_flows - sum(counts)
    order = sorted(range(len(shares)), key=lambda i: quotas[i] - counts[i],
                   reverse=True)
    for i in order[:remainder]:
        counts[i] += 1
    return counts


def tenant_mix_stream(
    classes: Sequence[TenantClass],
    pattern: PairSampler,
    *,
    load: float,
    link_rate: float,
    n_flows: Optional[int],
    seed: int = 1,
    n_senders: int = 1,
    size_cap: Optional[int] = None,
    start_time: float = 0.0,
    first_flow_id: int = 0,
    shape: Optional[LoadShape] = None,
) -> MergedStream:
    """Mixed tenant classes merged into one ordered stream.

    Class ``c`` contributes ``load * share_c`` of the link load with its
    own size CDF (so its arrival rate follows from its own mean size),
    a private RNG stream (seeded from ``seed`` and the class index) and
    a contiguous, disjoint flow-id block.  ``n_flows`` is apportioned
    across classes by share (largest remainder) and must be finite —
    unbounded classes could not keep their id blocks disjoint.
    """
    classes = list(classes)
    if not classes:
        raise ValueError("tenant_mix_stream needs at least one class")
    if n_flows is None:
        raise ValueError("tenant mixes need a finite n_flows "
                         "(disjoint per-class flow-id blocks)")
    for cls in classes:
        if cls.share <= 0.0:
            raise ValueError(
                f"tenant class {cls.name!r}: share must be positive")
    total_share = sum(cls.share for cls in classes)
    counts = _split_counts(n_flows, [cls.share for cls in classes])
    streams: List[FlowStream] = []
    next_id = first_flow_id
    for idx, (cls, count) in enumerate(zip(classes, counts)):
        if count == 0:
            continue
        streams.append(PoissonFlowStream(
            pattern, cls.cdf,
            load=load * cls.share / total_share,
            link_rate=link_rate,
            n_flows=count,
            seed=_child_seed(seed, idx),
            n_senders=n_senders,
            size_cap=cls.size_cap if cls.size_cap is not None else size_cap,
            start_time=start_time,
            first_flow_id=next_id,
            shape=shape,
        ))
        next_id += count
    return MergedStream(streams)


def parse_tenant_mix(spec: Optional[str]) -> Optional[List[TenantClass]]:
    """Parse a CLI tenant-mix spec: ``name:share[,name:share...]`` with
    workload names from :data:`~repro.workloads.distributions.WORKLOADS`
    (e.g. ``web-search:0.7,memcached-w1:0.3``)."""
    if not spec:
        return None
    classes: List[TenantClass] = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        name, sep, share_text = item.partition(":")
        if not sep:
            raise ValueError(
                f"bad tenant-mix entry {item!r} (expected name:share)")
        if name not in WORKLOADS:
            raise ValueError(
                f"unknown workload {name!r} in tenant mix (choose from "
                f"{', '.join(sorted(WORKLOADS))})")
        try:
            share = float(share_text)
        except ValueError as exc:
            raise ValueError(
                f"bad share {share_text!r} for tenant {name!r}") from exc
        if share <= 0.0:
            raise ValueError(f"tenant {name!r}: share must be positive")
        classes.append(TenantClass(name=name, cdf=WORKLOADS[name],
                                   share=share))
    if not classes:
        raise ValueError(f"empty tenant-mix spec {spec!r}")
    return classes


# ---------------------------------------------------------------------------
# one front door
# ---------------------------------------------------------------------------


def flow_stream(
    pattern: PairSampler,
    cdf: EmpiricalCdf,
    *,
    load: float,
    link_rate: float,
    n_flows: Optional[int],
    seed: int = 1,
    n_senders: int = 1,
    size_cap: Optional[int] = None,
    start_time: float = 0.0,
    first_flow_id: int = 0,
    shape: Optional[LoadShape] = None,
    tenants: Optional[Sequence[TenantClass]] = None,
    arrivals: str = "open",
    closed_users: int = 8,
) -> FlowStream:
    """Build the right stream for a scenario's knobs.

    Plain open-loop single-class → :class:`PoissonFlowStream` (the
    bit-identical twin of ``poisson_flows``); ``tenants`` →
    :func:`tenant_mix_stream`; ``arrivals="closed"`` →
    :class:`ClosedLoopStream` (single class only — per-tenant closed
    loops would need per-class user pools, which nothing needs yet).
    """
    if arrivals not in ("open", "closed"):
        raise ValueError(
            f"arrivals must be 'open' or 'closed', got {arrivals!r}")
    if arrivals == "closed":
        if tenants:
            raise ValueError("closed-loop arrivals do not combine with "
                             "tenant mixes (open-loop only)")
        return ClosedLoopStream(
            pattern, cdf, load=load, link_rate=link_rate, n_flows=n_flows,
            seed=seed, n_senders=n_senders, size_cap=size_cap,
            start_time=start_time, first_flow_id=first_flow_id,
            shape=shape, n_users=closed_users)
    if tenants:
        return tenant_mix_stream(
            tenants, pattern, load=load, link_rate=link_rate,
            n_flows=n_flows, seed=seed, n_senders=n_senders,
            size_cap=size_cap, start_time=start_time,
            first_flow_id=first_flow_id, shape=shape)
    return PoissonFlowStream(
        pattern, cdf, load=load, link_rate=link_rate, n_flows=n_flows,
        seed=seed, n_senders=n_senders, size_cap=size_cap,
        start_time=start_time, first_flow_id=first_flow_id, shape=shape)
