"""Traffic patterns: who talks to whom.

A pattern is a callable ``(rng) -> (src, dst)`` drawing one
source/destination pair per flow.  The paper uses:

* **all-to-all** — §6.2 large-scale simulations and the 15-to-15 testbed
  pattern (every host both sends and receives),
* **N-to-1 incast** — the 14-to-1 testbed pattern (§6.1.2) and the
  Fig. 23 incast sweep (N = 32..256 senders to one receiver),
* **two-to-one** — the Fig. 1/20/28/29 microbenchmarks.
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence, Tuple

PairSampler = Callable[[random.Random], Tuple[int, int]]


def all_to_all(hosts: Sequence[int]) -> PairSampler:
    """Uniform random (src, dst) pairs with src != dst."""
    hosts = list(hosts)
    if len(hosts) < 2:
        raise ValueError("all_to_all needs at least two hosts")

    def sample(rng: random.Random) -> Tuple[int, int]:
        src = rng.choice(hosts)
        dst = rng.choice(hosts)
        while dst == src:
            dst = rng.choice(hosts)
        return src, dst

    return sample


def incast(senders: Sequence[int], receiver: int) -> PairSampler:
    """Random sender from ``senders``, fixed ``receiver``."""
    senders = [h for h in senders if h != receiver]
    if not senders:
        raise ValueError("incast needs at least one sender != receiver")

    def sample(rng: random.Random) -> Tuple[int, int]:
        return rng.choice(senders), receiver

    return sample


def fixed_pairs(pairs: Sequence[Tuple[int, int]]) -> PairSampler:
    """Draw uniformly from an explicit pair list (e.g. permutations)."""
    pairs = list(pairs)
    if not pairs:
        raise ValueError("fixed_pairs needs at least one pair")

    def sample(rng: random.Random) -> Tuple[int, int]:
        return pairs[rng.randrange(len(pairs))]

    return sample


def permutation(hosts: Sequence[int], seed: int = 0) -> PairSampler:
    """A fixed random permutation: host i always sends to perm(i)."""
    hosts = list(hosts)
    rng = random.Random(seed)
    shuffled = hosts[:]
    # derangement-ish: reshuffle until no fixed points (bounded retries)
    for _ in range(100):
        rng.shuffle(shuffled)
        if all(a != b for a, b in zip(hosts, shuffled)):
            break
    return fixed_pairs(list(zip(hosts, shuffled)))
