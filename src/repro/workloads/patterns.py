"""Traffic patterns: who talks to whom.

A pattern is a callable ``(rng) -> (src, dst)`` drawing one
source/destination pair per flow.  The paper uses:

* **all-to-all** — §6.2 large-scale simulations and the 15-to-15 testbed
  pattern (every host both sends and receives),
* **N-to-1 incast** — the 14-to-1 testbed pattern (§6.1.2) and the
  Fig. 23 incast sweep (N = 32..256 senders to one receiver),
* **two-to-one** — the Fig. 1/20/28/29 microbenchmarks.

Patterns are small picklable classes (the lowercase factory names are
aliases kept for the original closure-based API): a
:class:`~repro.workloads.streams.FlowStream` carries its pattern inside
checkpoint snapshots and across worker-process boundaries, so the
pattern must survive ``pickle`` — closures do not.  Every pattern is
guaranteed to never produce ``src == dst``; :func:`permutation` raises
instead of silently falling back to a mapping with fixed points.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence, Tuple

PairSampler = Callable[[random.Random], Tuple[int, int]]


class AllToAll:
    """Uniform random (src, dst) pairs with src != dst."""

    def __init__(self, hosts: Sequence[int]):
        self.hosts = list(hosts)
        if len(self.hosts) < 2:
            raise ValueError("all_to_all needs at least two hosts")

    def __call__(self, rng: random.Random) -> Tuple[int, int]:
        hosts = self.hosts
        src = rng.choice(hosts)
        dst = rng.choice(hosts)
        while dst == src:
            dst = rng.choice(hosts)
        return src, dst


class Incast:
    """Random sender from ``senders``, fixed ``receiver``."""

    def __init__(self, senders: Sequence[int], receiver: int):
        self.senders = [h for h in senders if h != receiver]
        self.receiver = receiver
        if not self.senders:
            raise ValueError("incast needs at least one sender != receiver")

    def __call__(self, rng: random.Random) -> Tuple[int, int]:
        return rng.choice(self.senders), self.receiver


class FixedPairs:
    """Draw uniformly from an explicit pair list (e.g. permutations)."""

    def __init__(self, pairs: Sequence[Tuple[int, int]]):
        self.pairs = list(pairs)
        if not self.pairs:
            raise ValueError("fixed_pairs needs at least one pair")
        for src, dst in self.pairs:
            if src == dst:
                raise ValueError(f"fixed_pairs: src == dst == {src}")

    def __call__(self, rng: random.Random) -> Tuple[int, int]:
        return self.pairs[rng.randrange(len(self.pairs))]


class Permutation(FixedPairs):
    """A fixed random permutation: host i always sends to perm(i).

    Raises :class:`ValueError` when fewer than two hosts are given or
    when no derangement is found within the retry budget — a mapping
    with fixed points would generate src==dst flows the runner can
    never complete.
    """

    RETRIES = 100

    def __init__(self, hosts: Sequence[int], seed: int = 0):
        hosts = list(hosts)
        if len(hosts) < 2:
            raise ValueError("permutation needs at least two hosts")
        rng = random.Random(seed)
        shuffled = hosts[:]
        for _ in range(self.RETRIES):
            rng.shuffle(shuffled)
            if all(a != b for a, b in zip(hosts, shuffled)):
                break
        else:
            raise ValueError(
                f"permutation: no derangement of {len(hosts)} hosts found "
                f"in {self.RETRIES} shuffles (seed={seed})")
        super().__init__(list(zip(hosts, shuffled)))


# Original factory-function API; each returns a picklable instance.
all_to_all = AllToAll
incast = Incast
fixed_pairs = FixedPairs
permutation = Permutation
