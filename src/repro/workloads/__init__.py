"""Workloads: flow-size distributions, traffic patterns, Poisson arrivals
(materialized via :func:`poisson_flows` or constant-memory via
:mod:`~repro.workloads.streams` — see ``docs/workloads.md``)."""

from .distributions import (
    DATA_MINING,
    MEMCACHED_ETC,
    MEMCACHED_W1,
    WEB_SEARCH,
    WORKLOADS,
    YOUTUBE_HTTP,
    EmpiricalCdf,
    sample_sizes,
)
from .generator import poisson_flows
from .streams import (
    ClosedLoopStream,
    ConstantShape,
    DiurnalShape,
    FlowStream,
    LoadShape,
    MaterializedStream,
    MergedStream,
    OnOffShape,
    PoissonFlowStream,
    TenantClass,
    flow_stream,
    parse_load_shape,
    parse_tenant_mix,
    tenant_mix_stream,
)
from .tracefile import (
    TraceFormatError,
    load_trace,
    save_trace,
    trace_scenario_flows,
)
from .patterns import all_to_all, fixed_pairs, incast, permutation

__all__ = [
    "EmpiricalCdf", "WEB_SEARCH", "DATA_MINING", "MEMCACHED_W1",
    "MEMCACHED_ETC", "YOUTUBE_HTTP", "WORKLOADS", "sample_sizes",
    "poisson_flows", "all_to_all", "incast", "fixed_pairs", "permutation",
    "load_trace", "save_trace", "trace_scenario_flows", "TraceFormatError",
    "FlowStream", "MaterializedStream", "PoissonFlowStream",
    "ClosedLoopStream", "MergedStream", "TenantClass", "tenant_mix_stream",
    "flow_stream", "LoadShape", "ConstantShape", "DiurnalShape",
    "OnOffShape", "parse_load_shape", "parse_tenant_mix",
]
