"""Unit helpers for the simulator.

Internally the simulator uses SI base units throughout:

* time    — seconds (float)
* size    — bytes (int)
* rate    — bits per second (float)

These helpers exist so that scenario code reads like the paper
("40 Gbps links, 120 KB buffers, 80 us RTT") instead of a soup of
magic exponents.
"""

from __future__ import annotations

# --- time -------------------------------------------------------------

SECONDS = 1.0
MILLISECONDS = 1e-3
MICROSECONDS = 1e-6
NANOSECONDS = 1e-9


def ms(value: float) -> float:
    """Milliseconds to seconds."""
    return value * MILLISECONDS


def us(value: float) -> float:
    """Microseconds to seconds."""
    return value * MICROSECONDS


def ns(value: float) -> float:
    """Nanoseconds to seconds."""
    return value * NANOSECONDS


# --- size -------------------------------------------------------------

BYTE = 1
KB = 1000
MB = 1000 * 1000
GB = 1000 * 1000 * 1000
KIB = 1024
MIB = 1024 * 1024


def kb(value: float) -> int:
    """Kilobytes (decimal) to bytes."""
    return int(value * KB)


def mb(value: float) -> int:
    """Megabytes (decimal) to bytes."""
    return int(value * MB)


# --- rate -------------------------------------------------------------

BPS = 1.0
KBPS = 1e3
MBPS = 1e6
GBPS = 1e9


def gbps(value: float) -> float:
    """Gigabits per second to bits per second."""
    return value * GBPS


def mbps(value: float) -> float:
    """Megabits per second to bits per second."""
    return value * MBPS


# --- derived quantities ------------------------------------------------


def serialization_delay(size_bytes: int, rate_bps: float) -> float:
    """Time to clock ``size_bytes`` onto a link of ``rate_bps``."""
    return size_bytes * 8.0 / rate_bps


def bdp_bytes(rate_bps: float, rtt_s: float) -> int:
    """Bandwidth-delay product in bytes."""
    return int(rate_bps * rtt_s / 8.0)


def bdp_packets(rate_bps: float, rtt_s: float, mtu_bytes: int) -> int:
    """Bandwidth-delay product in MTU-sized packets (at least 1)."""
    return max(1, bdp_bytes(rate_bps, rtt_s) // mtu_bytes)


def ecn_threshold_bytes(lam: float, rate_bps: float, rtt_s: float) -> int:
    """Paper Eq. (3): K = lambda * C * RTT, in bytes."""
    return int(lam * rate_bps * rtt_s / 8.0)
