"""Fault injection: deterministic network-misbehaviour schedules.

PPT's claim is that a pragmatic transport stays efficient when the
network misbehaves; this package lets every scenario in the suite be
re-run under link blackouts/flaps, seeded packet loss or corruption,
and port rate degradation — without subclassing any simulator
primitive.  See ``docs/fault-injection.md`` for the full catalogue.

Quick start::

    from repro.faults import FaultPlan, LinkDown

    scenario.faults = FaultPlan([LinkDown("leaf0->spine0", 0.005, 0.002)])
    result = run(Dctcp(), scenario)
    print(result.health.summary())
"""

from .injectors import (
    CorruptionInjector,
    Injector,
    LinkFaultInjector,
    LossInjector,
    PfcStormInjector,
    PortDegrader,
)
from .plan import (
    ActiveFaults,
    FaultPlan,
    LinkDown,
    LinkFlap,
    PacketCorruption,
    PacketLoss,
    PfcStorm,
    RateDegrade,
)

__all__ = [
    "ActiveFaults",
    "CorruptionInjector",
    "FaultPlan",
    "Injector",
    "LinkDown",
    "LinkFlap",
    "LinkFaultInjector",
    "LossInjector",
    "PacketCorruption",
    "PacketLoss",
    "PfcStorm",
    "PfcStormInjector",
    "PortDegrader",
    "RateDegrade",
]
