"""Deterministic, seeded fault schedules.

A :class:`FaultPlan` is a declarative list of fault events — link
blackouts, flaps, Bernoulli loss/corruption windows, rate degradations —
plus a seed.  ``apply()`` resolves each event's port pattern against a
freshly built network (exact name first, then an ``fnmatch`` glob over
``Port.name``, e.g. ``"leaf0->spine*"``), instantiates the matching
injectors from :mod:`repro.faults.injectors`, schedules every
transition, and returns an :class:`ActiveFaults` handle the experiment
harness uses for live diagnosis (which links are down *right now*, how
many packets the plan has eaten) and for the ``RunHealth`` report.

Determinism: per-injector RNGs are seeded from
``f"{plan.seed}:{event_index}:{port.name}"`` (string seeding is stable
across processes, unlike ``hash()``), and random numbers are drawn only
while a window is active — so a plan replayed over the same scenario is
bit-identical, and two injectors never share an RNG stream.

Plans can also be written as compact spec strings (one per event) for
CLI plumbing — see :meth:`FaultPlan.parse`::

    down:leaf0->spine0:0.005:0.002        # blackout at 5ms for 2ms
    flap:leaf0->spine0:0.005:0.002:0.004:3
    loss:host0->sw0:0.02                  # 2% loss, whole run
    corrupt:sw0->host1:0.01:0.001:0.01
    degrade:leaf*->spine0:0.1:0.002:0.01  # 10% of nominal rate
    pfcstorm:leaf0->host0:0.002:0.004     # pause P0 for 4ms (needs PFC)
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..sim.engine import Simulator
from ..sim.network import Network
from .injectors import (
    INFINITY,
    CorruptionInjector,
    Injector,
    LinkFaultInjector,
    LossInjector,
    PfcStormInjector,
    PortDegrader,
)


# ---------------------------------------------------------------------------
# fault event descriptions (pure data; resolved against a network on apply)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LinkDown:
    """One blackout: ``port`` goes dark at ``start`` for ``duration``."""

    port: str
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration

    def describe(self) -> str:
        return (f"down {self.port} "
                f"[{self.start:.6g}s, {self.end:.6g}s)")


@dataclass(frozen=True)
class LinkFlap:
    """A flapping link: ``cycles`` x (down ``down_time``, up ``up_time``)."""

    port: str
    start: float
    down_time: float
    up_time: float
    cycles: int = 1

    @property
    def end(self) -> float:
        return self.start + self.cycles * (self.down_time + self.up_time)

    def describe(self) -> str:
        return (f"flap {self.port} x{self.cycles} "
                f"({self.down_time:.6g}s down / {self.up_time:.6g}s up) "
                f"from {self.start:.6g}s")


@dataclass(frozen=True)
class PacketLoss:
    """Bernoulli drop of every packet offered to ``port`` in a window."""

    port: str
    rate: float
    start: float = 0.0
    end: float = INFINITY

    def describe(self) -> str:
        return f"loss {self.rate:.3g} {self.port} [{self.start:.6g}s, {self.end:.6g}s)"


@dataclass(frozen=True)
class PacketCorruption:
    """Bernoulli corruption of DATA packets leaving ``port`` in a window."""

    port: str
    rate: float
    start: float = 0.0
    end: float = INFINITY

    def describe(self) -> str:
        return (f"corrupt {self.rate:.3g} {self.port} "
                f"[{self.start:.6g}s, {self.end:.6g}s)")


@dataclass(frozen=True)
class RateDegrade:
    """Scale ``port``'s rate by ``factor`` (< 1) for a window."""

    port: str
    factor: float
    start: float
    end: float = INFINITY

    def describe(self) -> str:
        return (f"degrade x{self.factor:.3g} {self.port} "
                f"[{self.start:.6g}s, {self.end:.6g}s)")


@dataclass(frozen=True)
class PfcStorm:
    """A jammed receiver pausing ``priority`` on ``port`` for a window.

    Requires a PFC-enabled fabric to cascade (the paused port backs up
    into its switch, which pauses its own upstreams); on a lossy fabric
    it simply stalls the one port's lossless-priority drain.
    """

    port: str
    start: float
    duration: float
    priority: int = 0

    @property
    def end(self) -> float:
        return self.start + self.duration

    def describe(self) -> str:
        return (f"pfcstorm P{self.priority} {self.port} "
                f"[{self.start:.6g}s, {self.end:.6g}s)")


FaultEvent = (LinkDown, LinkFlap, PacketLoss, PacketCorruption, RateDegrade,
              PfcStorm)


# ---------------------------------------------------------------------------
# the plan
# ---------------------------------------------------------------------------


@dataclass
class FaultPlan:
    """A seeded, deterministic schedule of fault events."""

    events: List[object] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        seen = set()
        for index, event in enumerate(self.events):
            if not isinstance(event, FaultEvent):
                raise TypeError(f"not a fault event: {event!r}")
            _validate_event(event, index)
            # Injector identity is (event, port): two *identical* events
            # would stack two injectors with different RNG streams on the
            # same ports — almost certainly a copy-paste bug, and
            # impossible to tell apart in RunHealth's fault windows.
            if event in seen:
                raise ValueError(
                    f"events[{index}]: duplicate fault event "
                    f"{event.describe()!r} — each injector needs a "
                    f"distinct (kind, port, timing) identity")
            seen.add(event)

    # -- construction -----------------------------------------------------

    @classmethod
    def parse(cls, specs: Sequence[str], seed: int = 0) -> "FaultPlan":
        """Build a plan from compact colon-separated spec strings."""
        events: List[object] = []
        for spec in specs:
            fields = spec.split(":")
            kind, args = fields[0].lower(), fields[1:]
            try:
                events.append(_parse_one(kind, args))
            except (IndexError, ValueError) as exc:
                raise ValueError(f"bad fault spec {spec!r}: {exc}") from exc
        return cls(events, seed=seed)

    def describe(self) -> List[str]:
        """One human-readable line per event (the RunHealth fault windows)."""
        return [event.describe() for event in self.events]

    # -- application ------------------------------------------------------

    def apply(self, network: Network, sim: Simulator) -> "ActiveFaults":
        """Attach injectors for every event; returns the live handle."""
        active = ActiveFaults(self, sim)
        for index, event in enumerate(self.events):
            for port in network.find_ports(event.port):
                rng = random.Random(f"{self.seed}:{index}:{port.name}")
                if isinstance(event, LinkDown):
                    injector = LinkFaultInjector(sim, port).attach()
                    injector.schedule_blackout(event.start, event.duration)
                    active.link_injectors.append(injector)
                elif isinstance(event, LinkFlap):
                    injector = LinkFaultInjector(sim, port).attach()
                    injector.schedule_flap(event.start, event.down_time,
                                           event.up_time, event.cycles)
                    active.link_injectors.append(injector)
                elif isinstance(event, PacketLoss):
                    injector = LossInjector(sim, port, event.rate, rng,
                                            event.start, event.end).attach()
                elif isinstance(event, PacketCorruption):
                    injector = CorruptionInjector(
                        sim, port, event.rate, rng,
                        event.start, event.end).attach()
                elif isinstance(event, PfcStorm):
                    injector = PfcStormInjector(sim, port, event.priority)
                    injector.schedule(event.start, event.end)
                else:  # RateDegrade
                    injector = PortDegrader(sim, port, event.factor)
                    injector.schedule(event.start, event.end)
                active.injectors.append(injector)
                # every event type exposes start and end (field or property)
                active.windows.append((event.describe(), event.start, event.end))
        return active


def _validate_event(event, index: int) -> None:
    """Reject impossible fault timings/parameters at construction time,
    with errors that name the offending event — not at ``apply()`` time
    deep inside a sweep worker."""

    def bad(message: str) -> ValueError:
        return ValueError(
            f"events[{index}] ({event.describe()}): {message}")

    if event.start < 0.0:
        raise bad(f"start time {event.start!r} is negative")
    if isinstance(event, LinkDown):
        if event.duration <= 0.0:
            raise bad(f"duration {event.duration!r} must be positive")
    elif isinstance(event, LinkFlap):
        if event.down_time <= 0.0:
            raise bad(f"down_time {event.down_time!r} must be positive")
        if event.up_time < 0.0:
            raise bad(f"up_time {event.up_time!r} is negative")
        if event.cycles < 1:
            raise bad(f"cycles {event.cycles!r} must be >= 1")
    elif isinstance(event, (PacketLoss, PacketCorruption)):
        if not 0.0 <= event.rate <= 1.0:
            raise bad(f"rate {event.rate!r} is not a probability in [0, 1]")
        if event.end < event.start:
            raise bad(f"window ends ({event.end!r}) before it starts "
                      f"({event.start!r})")
    elif isinstance(event, PfcStorm):
        if event.duration <= 0.0:
            raise bad(f"duration {event.duration!r} must be positive")
        if not 0 <= event.priority < 8:
            raise bad(f"priority {event.priority!r} must be in [0, 8)")
    else:  # RateDegrade
        if not 0.0 < event.factor <= 1.0:
            raise bad(f"factor {event.factor!r} must be in (0, 1] — it "
                      f"scales the nominal rate down")
        if event.end < event.start:
            raise bad(f"window ends ({event.end!r}) before it starts "
                      f"({event.start!r})")


def _parse_one(kind: str, args: List[str]):
    if kind == "down":
        port, start, duration = args[0], float(args[1]), float(args[2])
        return LinkDown(port, start, duration)
    if kind == "flap":
        port = args[0]
        start, down_time, up_time = (float(a) for a in args[1:4])
        cycles = int(args[4]) if len(args) > 4 else 1
        return LinkFlap(port, start, down_time, up_time, cycles)
    if kind in ("loss", "corrupt"):
        port, rate = args[0], float(args[1])
        start = float(args[2]) if len(args) > 2 else 0.0
        end = float(args[3]) if len(args) > 3 else INFINITY
        cls = PacketLoss if kind == "loss" else PacketCorruption
        return cls(port, rate, start, end)
    if kind == "degrade":
        port, factor = args[0], float(args[1])
        start = float(args[2]) if len(args) > 2 else 0.0
        end = float(args[3]) if len(args) > 3 else INFINITY
        return RateDegrade(port, factor, start, end)
    if kind == "pfcstorm":
        port, start, duration = args[0], float(args[1]), float(args[2])
        priority = int(args[3]) if len(args) > 3 else 0
        return PfcStorm(port, start, duration, priority)
    raise ValueError(f"unknown fault kind {kind!r}")


# ---------------------------------------------------------------------------
# runtime state
# ---------------------------------------------------------------------------


class ActiveFaults:
    """Live view over a plan applied to one network build.

    The runner's watchdog consults this to tell a genuine stall from a
    fault the transport is expected to ride out, and the RunHealth
    report uses it to name the dead links at stall time.
    """

    def __init__(self, plan: FaultPlan, sim: Simulator) -> None:
        self.plan = plan
        self.sim = sim
        self.injectors: List[object] = []
        self.link_injectors: List[LinkFaultInjector] = []
        # (description, start, end) per injector, for diagnostics
        self.windows: List[Tuple[str, float, float]] = []

    # -- diagnosis --------------------------------------------------------

    def down_links(self) -> List[str]:
        """Names of ports that are down right now (deduplicated)."""
        names = []
        for injector in self.link_injectors:
            if injector.is_down and injector.port.name not in names:
                names.append(injector.port.name)
        return names

    def active_faults(self, now: Optional[float] = None) -> List[str]:
        """Descriptions of fault windows covering ``now``."""
        now = self.sim.now if now is None else now
        return [desc for desc, start, end in self.windows
                if start <= now < end]

    def any_active_or_recent(self, now: float, grace: float = 0.0) -> bool:
        """True while any fault window is open or ended < ``grace`` ago.

        The watchdog must not declare a stall while a fault is active
        (the whole point is surviving it) nor immediately after — the
        transport gets a grace period, sized around the RTO cap, to
        retransmit into the healed fabric.
        """
        for _desc, start, end in self.windows:
            if start <= now and now < end + grace:
                return True
        return False

    def last_fault_end(self) -> float:
        """Latest finite window end, or 0.0 for an eventless plan."""
        ends = [end for _d, _s, end in self.windows if end != INFINITY]
        return max(ends) if ends else 0.0

    # -- accounting -------------------------------------------------------

    @property
    def pkts_dropped(self) -> int:
        return sum(injector.pkts_dropped for injector in self.injectors)

    @property
    def pkts_corrupted(self) -> int:
        return sum(getattr(injector, "pkts_corrupted", 0)
                   for injector in self.injectors)

    def describe_windows(self) -> List[str]:
        return [desc for desc, _s, _e in self.windows]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ActiveFaults {len(self.injectors)} injectors, "
                f"{self.pkts_dropped} dropped>")
