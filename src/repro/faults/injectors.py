"""Fault injectors: objects that sit on a port's fault chain.

Every injector wraps an existing :class:`~repro.sim.link.Port` via the
two chain-of-responsibility hooks the port exposes (see
``Port.attach_fault``):

* ``admit(pkt)``    — packet offered to the port; returning False drops
  it before it is enqueued (ingress loss, dead link).
* ``transmit(pkt)`` — serialization just finished; returning False loses
  the packet on the wire (dead link), returning True after mutating the
  packet models on-the-wire corruption.

Injectors never subclass the simulator primitives and attach lazily, so
a run without faults pays nothing: ``Port.fault_chain`` stays ``None``
and the hot path takes a single predictable branch.

All randomness is drawn from per-injector ``random.Random`` instances
seeded by the :class:`~repro.faults.plan.FaultPlan`, and random numbers
are only consumed while the injector's window is active — so the same
plan over the same scenario reproduces the same packet-level behaviour.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..sim.engine import Simulator
from ..sim.link import Port
from ..sim.packet import DATA, Packet

INFINITY = float("inf")


class Injector:
    """Base injector: transparent on both hooks, tracks its port."""

    def __init__(self, sim: Simulator, port: Port) -> None:
        self.sim = sim
        self.port = port
        self.pkts_dropped = 0
        self.attached = False

    def attach(self) -> "Injector":
        if not self.attached:
            self.port.attach_fault(self)
            self.attached = True
        return self

    def detach(self) -> None:
        if self.attached:
            self.port.detach_fault(self)
            self.attached = False

    # -- chain hooks ------------------------------------------------------

    def admit(self, pkt: Packet) -> bool:
        return True

    def transmit(self, pkt: Packet) -> bool:
        return True

    def describe(self) -> str:
        return f"{type(self).__name__} on {self.port.name}"


class LinkFaultInjector(Injector):
    """Takes a port down and up on schedule (blackouts and flaps).

    While down, newly offered packets are dropped at admission, the
    packet being serialized (if any) is lost on the wire, everything
    waiting in the mux is flushed, and the bits already propagating on
    the link are lost with it — exactly what a yanked cable does.
    """

    def __init__(self, sim: Simulator, port: Port) -> None:
        super().__init__(sim, port)
        self.is_down = False
        self.down_intervals: List[List[float]] = []  # [start, end|inf]
        self.transitions = 0
        # Telemetry hook, fired as ``hook(port, is_down)`` on every
        # open/close transition; chain additional consumers with
        # :func:`repro.obs.hooks.chain` rather than assigning over it.
        self.transition_hook = None

    # -- schedule targets -------------------------------------------------

    def down(self) -> None:
        if self.is_down:
            return
        self.is_down = True
        self.transitions += 1
        self.down_intervals.append([self.sim.now, INFINITY])
        self.pkts_dropped += self.port.mux.flush()
        # in-flight packets die with the link; flush_wire books them as
        # wire-fault losses so fabric conservation stays exact
        self.pkts_dropped += self.port.flush_wire()
        if self.transition_hook is not None:
            self.transition_hook(self.port, True)

    def up(self) -> None:
        if not self.is_down:
            return
        self.is_down = False
        self.transitions += 1
        self.down_intervals[-1][1] = self.sim.now
        if self.transition_hook is not None:
            self.transition_hook(self.port, False)

    def schedule_blackout(self, start: float, duration: float) -> None:
        self.sim.schedule_at(start, self.down)
        self.sim.schedule_at(start + duration, self.up)

    def schedule_flap(self, start: float, down_time: float,
                      up_time: float, cycles: int) -> None:
        t = start
        for _ in range(cycles):
            self.sim.schedule_at(t, self.down)
            self.sim.schedule_at(t + down_time, self.up)
            t += down_time + up_time

    # -- chain hooks ------------------------------------------------------

    def admit(self, pkt: Packet) -> bool:
        if self.is_down:
            self.pkts_dropped += 1
            return False
        return True

    def transmit(self, pkt: Packet) -> bool:
        if self.is_down:
            self.pkts_dropped += 1
            return False
        return True

    def describe(self) -> str:
        state = "down" if self.is_down else "up"
        return f"link {self.port.name} {state}"


class LossInjector(Injector):
    """Seeded Bernoulli per-packet drop at a port within a time window."""

    def __init__(self, sim: Simulator, port: Port, rate: float,
                 rng: random.Random, start: float = 0.0,
                 end: float = INFINITY) -> None:
        super().__init__(sim, port)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.rng = rng
        self.start = start
        self.end = end

    def admit(self, pkt: Packet) -> bool:
        now = self.sim.now
        if self.start <= now < self.end and self.rng.random() < self.rate:
            self.pkts_dropped += 1
            return False
        return True

    def describe(self) -> str:
        return f"loss {self.rate:.3g} on {self.port.name}"


class CorruptionInjector(Injector):
    """Seeded Bernoulli per-packet corruption on the wire.

    Corrupted DATA packets still consume link capacity and propagation
    delay but are discarded by the receiving host's checksum
    (``Host.receive``), so the sender must recover via SACK/RTO.  Only
    payload-bearing packets are corrupted; 64-byte headers/control
    packets are far less exposed and keeping them clean avoids
    confounding NDP's trimming signal.
    """

    def __init__(self, sim: Simulator, port: Port, rate: float,
                 rng: random.Random, start: float = 0.0,
                 end: float = INFINITY) -> None:
        super().__init__(sim, port)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"corruption rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.rng = rng
        self.start = start
        self.end = end
        self.pkts_corrupted = 0

    def transmit(self, pkt: Packet) -> bool:
        now = self.sim.now
        if (pkt.kind == DATA and not pkt.corrupted
                and self.start <= now < self.end
                and self.rng.random() < self.rate):
            pkt.corrupted = True
            self.pkts_corrupted += 1
        return True

    def describe(self) -> str:
        return f"corrupt {self.rate:.3g} on {self.port.name}"


class PortDegrader:
    """Temporary rate reduction modelling a sick NIC or ASIC lane.

    Not a packet filter: it rescales ``Port.rate_bps`` for a window, so
    subsequent serializations slow down while a packet already on the
    wire finishes at the old rate.  Attaching costs nothing on the
    per-packet path.
    """

    def __init__(self, sim: Simulator, port: Port, factor: float) -> None:
        if factor <= 0:
            raise ValueError(f"degrade factor must be > 0, got {factor}")
        self.sim = sim
        self.port = port
        self.factor = factor
        self.active = False
        self._original_rate: Optional[float] = None
        self.pkts_dropped = 0  # uniform counter interface; always 0

    def degrade(self) -> None:
        if self.active:
            return
        self.active = True
        self._original_rate = self.port.rate_bps
        self.port.rate_bps = self._original_rate * self.factor

    def restore(self) -> None:
        if not self.active:
            return
        self.active = False
        self.port.rate_bps = self._original_rate

    def schedule(self, start: float, end: float) -> None:
        self.sim.schedule_at(start, self.degrade)
        if end != INFINITY:
            self.sim.schedule_at(end, self.restore)

    def describe(self) -> str:
        return f"degrade x{self.factor:.3g} on {self.port.name}"


class PfcStormInjector:
    """A malfunctioning receiver blasting PAUSE frames (PFC storm).

    Not a packet filter: for the window it holds one extra pause
    reference for ``priority`` on the port — exactly what an endless
    stream of XOFF quanta from a jammed NIC does.  On a PFC-enabled
    fabric the paused downlink backs traffic up into the switch, whose
    own lossless thresholds then pause *its* upstreams: the classic
    head-of-line-blocking cascade spreading from one sick host.
    """

    def __init__(self, sim: Simulator, port: Port, priority: int = 0) -> None:
        if not 0 <= priority < 8:
            raise ValueError(f"priority must be in [0, 8), got {priority}")
        self.sim = sim
        self.port = port
        self.priority = priority
        self.active = False
        self.pkts_dropped = 0  # uniform counter interface; always 0

    def storm(self) -> None:
        if self.active:
            return
        self.active = True
        self.port.pfc_pause(self.priority)

    def calm(self) -> None:
        if not self.active:
            return
        self.active = False
        self.port.pfc_resume(self.priority)

    def schedule(self, start: float, end: float) -> None:
        self.sim.schedule_at(start, self.storm)
        if end != INFINITY:
            self.sim.schedule_at(end, self.calm)

    def describe(self) -> str:
        return f"pfcstorm P{self.priority} on {self.port.name}"
