"""Network assembly: hosts + switches + links, plus the ideal reverse path.

The :class:`Network` wires devices together, owns the base-delay cache used
for RTT-derived parameters (BDP, ECN thresholds, pacing), and provides the
*ideal control path*: acknowledgements, grants and pulls are delivered after
the base path delay without queueing, a standard datacenter-simulator
shortcut (see DESIGN.md §2).  Forward data packets always traverse the full
queued fabric.
"""

from __future__ import annotations

import fnmatch
from collections import deque
from dataclasses import dataclass, field
from heapq import heappush
from typing import Dict, List, Optional, Tuple

from ..units import ecn_threshold_bytes, serialization_delay
from .engine import Event, Simulator
from .host import Host
from .link import Port
from .packet import HEADER_BYTES, NUM_PRIORITIES, Packet
from .queues import PfcConfig, PriorityMux
from .routing import ecmp_hash, make_balancer
from .switch import Switch


@dataclass
class QueueConfig:
    """Recipe for building one port's :class:`PriorityMux`.

    ECN thresholds can be given explicitly per priority, or derived from
    the paper's Eq. (3) ``K = lambda * C * RTT`` with separate lambdas for
    the high-priority half (P0-P3, HCP) and the low-priority half (P4-P7,
    LCP).  Setting everything to None disables marking.
    """

    buffer_bytes: int
    ecn_thresholds: Optional[List[Optional[int]]] = None
    ecn_lambda_high: Optional[float] = None
    ecn_lambda_low: Optional[float] = None
    base_rtt: Optional[float] = None
    ecn_mode: str = "paper"
    trim: bool = False
    selective_drop_threshold: Optional[int] = None
    lp_buffer_cap: Optional[int] = None
    # DT alpha 8 for the high-priority half, 1 for the lossy low-priority
    # half (see PriorityMux docstring); None = pure shared tail drop.
    dt_alpha: object = (8.0, 8.0, 8.0, 8.0, 1.0, 1.0, 1.0, 1.0)
    # PFC lossless-class thresholds; the controller side is wired by
    # Network.enable_pfc (which also fills this in when absent).
    pfc: Optional[PfcConfig] = None

    def build(self, rate_bps: float) -> PriorityMux:
        thresholds = self.ecn_thresholds
        if thresholds is None and self.ecn_lambda_high is not None:
            if self.base_rtt is None:
                raise ValueError("base_rtt required to derive ECN thresholds")
            k_high = ecn_threshold_bytes(self.ecn_lambda_high, rate_bps, self.base_rtt)
            lam_low = (
                self.ecn_lambda_low
                if self.ecn_lambda_low is not None
                else self.ecn_lambda_high
            )
            k_low = ecn_threshold_bytes(lam_low, rate_bps, self.base_rtt)
            thresholds = [k_high] * 4 + [k_low] * 4
        mux = PriorityMux(
            self.buffer_bytes,
            thresholds,
            ecn_mode=self.ecn_mode,
            trim=self.trim,
            selective_drop_threshold=self.selective_drop_threshold,
            lp_buffer_cap=self.lp_buffer_cap,
            dt_alpha=self.dt_alpha,
        )
        if self.pfc is not None:
            mux.pfc = self.pfc.make_state()
        return mux


class ControlPipe:
    """Ideal-path FIFO between one (src, dst) host pair.

    The control plane delivers after a *constant* per-pair base delay,
    so deliveries are FIFO exactly like a wire — one resident head
    event with reserved seqs replaces one heap event per in-flight
    control packet (see :class:`~repro.sim.link.Wire` for the
    determinism argument).
    """

    __slots__ = ("sim", "deliver", "pending", "head_event", "_fire_cb")

    def __init__(self, sim: Simulator, deliver) -> None:
        self.sim = sim
        self.deliver = deliver  # bound Host.receive_control
        self.pending: deque = deque()
        self.head_event = None
        self._fire_cb = self._fire  # bound once; installed per packet

    def send(self, delay: float, pkt: Packet) -> None:
        # reserve_seq + schedule_reserved, inlined — per-ACK hot path
        sim = self.sim
        arrival = sim.now + delay
        sim._seq += 1
        seq = sim._seq
        self.pending.append((arrival, seq, pkt))
        if self.head_event is None:
            free = sim._free
            if free:
                event = free.pop()
                event.time = arrival
                event.fn = self._fire_cb
                event.args = ()
                event.cancelled = False
            else:
                event = Event(arrival, self._fire_cb, (), sim)
            event.recycle = True
            sim._live += 1
            heap = sim._heap
            heappush(heap, (arrival, seq, event))
            if len(heap) > sim.peak_pending:
                sim.peak_pending = len(heap)
            self.head_event = event

    def _fire(self) -> None:
        pending = self.pending
        _arrival, _seq, pkt = pending.popleft()
        if pending:
            arrival, seq, _pkt = pending[0]
            sim = self.sim
            free = sim._free
            if free:
                event = free.pop()
                event.time = arrival
                event.fn = self._fire_cb
                event.args = ()
                event.cancelled = False
            else:
                event = Event(arrival, self._fire_cb, (), sim)
            event.recycle = True
            sim._live += 1
            heap = sim._heap
            heappush(heap, (arrival, seq, event))
            if len(heap) > sim.peak_pending:
                sim.peak_pending = len(heap)
            self.head_event = event
        else:
            self.head_event = None
        self.deliver(pkt)

    def __len__(self) -> int:
        return len(self.pending)


class PfcController:
    """Per-switch PFC pause/resume fan-out.

    The data-plane trigger lives in the egress muxes (``PfcState``
    hysteresis); this controller turns each switch-level XOFF/XON edge
    into PAUSE/RESUME deliveries at every *upstream* transmitter feeding
    the switch, one link propagation delay later — the hop-by-hop,
    whole-ingress blast radius that makes PFC storms and head-of-line
    blocking possible.  Per-egress assertions are ref-counted
    (``xoff_count``): upstream ports resume only when the last congested
    egress queue has drained below XON.

    All state is plain data; the controller pickles inside checkpoints
    along with the network (in-flight deliveries are heap events holding
    bound methods, exactly like the wire/timer callbacks).
    """

    def __init__(self, sim: Simulator, switch: Switch,
                 ingress_ports: List[Port]) -> None:
        self.sim = sim
        self.switch = switch
        self.ingress_ports = ingress_ports
        self.xoff_count = [0] * NUM_PRIORITIES
        self.commanded_mask = 0
        # per-ingress-port mask of priorities whose latest command has
        # been delivered (trails commanded_mask by the in-flight ops)
        self.delivered_masks = [0] * len(ingress_ports)
        self.pending_ops = 0
        self.pauses_sent = 0
        self.resumes_sent = 0

    def on_xoff(self, priority: int) -> None:
        """An egress queue crossed XOFF: pause upstream (0 -> 1 edge)."""
        self.xoff_count[priority] += 1
        if self.xoff_count[priority] == 1:
            self.commanded_mask |= 1 << priority
            self._fan_out(priority, True)

    def on_xon(self, priority: int) -> None:
        """An egress queue drained below XON: last one lifts the pause."""
        self.xoff_count[priority] -= 1
        if self.xoff_count[priority] == 0:
            self.commanded_mask &= ~(1 << priority)
            self._fan_out(priority, False)

    def _fan_out(self, priority: int, pause: bool) -> None:
        sim = self.sim
        now = sim.now
        for index, port in enumerate(self.ingress_ports):
            # the PAUSE frame crosses the link back to the transmitter
            sim.schedule_at(now + port.prop_delay, self._deliver,
                            index, priority, pause)
            self.pending_ops += 1
            if pause:
                self.pauses_sent += 1
            else:
                self.resumes_sent += 1

    def _deliver(self, index: int, priority: int, pause: bool) -> None:
        self.pending_ops -= 1
        bit = 1 << priority
        port = self.ingress_ports[index]
        if pause:
            self.delivered_masks[index] |= bit
            port.pfc_pause(priority)
        else:
            self.delivered_masks[index] &= ~bit
            port.pfc_resume(priority)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<PfcController {self.switch.name} "
                f"commanded={self.commanded_mask:#x} "
                f"pauses={self.pauses_sent}>")


class Network:
    """The assembled fabric."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.hosts: Dict[int, Host] = {}
        self.switches: List[Switch] = []
        self.ports: List[Port] = []
        # adjacency: device -> [(peer_device, prop_delay, rate_bps)]
        self._adj: Dict[object, List[Tuple[object, float, float]]] = {}
        self._base_delay_cache: Dict[Tuple[int, int], float] = {}
        # slowest-link rate along the same min-hop path base_delay uses,
        # filled by the same BFS (ideal_fct and the hybrid fast path)
        self._path_min_rate_cache: Dict[Tuple[int, int], float] = {}
        # Control-path accounting (bytes that bypassed the queued fabric).
        self.control_pkts = 0
        self._control_pipes: Dict[Tuple[int, int], ControlPipe] = {}
        # PFC controllers, one per switch, populated by enable_pfc().
        self.pfc_controllers: List[PfcController] = []
        # Cross-shard handoff ledger, installed by repro.sim.shard when
        # this network is one shard of a partitioned run; None in every
        # serial run.  The invariant auditor adds its counters to the
        # fabric conservation laws so per-shard books still close.
        self.shard_ledger = None

    # -- construction ----------------------------------------------------

    def add_host(self, host_id: int) -> Host:
        host = Host(host_id)
        self.hosts[host_id] = host
        self._adj.setdefault(host, [])
        return host

    def add_switch(self, name: str = "") -> Switch:
        switch = Switch(len(self.switches), name)
        self.switches.append(switch)
        self._adj.setdefault(switch, [])
        return switch

    def _make_port(
        self, rate_bps: float, prop_delay: float, qcfg: QueueConfig, peer, name: str
    ) -> Port:
        port = Port(self.sim, rate_bps, prop_delay, qcfg.build(rate_bps), peer, name)
        self.ports.append(port)
        return port

    def connect_host(
        self,
        host: Host,
        switch: Switch,
        rate_bps: float,
        prop_delay: float,
        qcfg: QueueConfig,
        up_qcfg: Optional[QueueConfig] = None,
    ) -> Tuple[Port, Port]:
        """Bidirectional host <-> switch link; returns (up_port, down_port).

        ``qcfg`` builds the switch-side downlink queue; ``up_qcfg`` (the
        host NIC / qdisc model) defaults to the same config.
        """
        up = self._make_port(rate_bps, prop_delay, up_qcfg or qcfg, switch,
                             f"{host.name}->{switch.name}")
        down = self._make_port(rate_bps, prop_delay, qcfg, host,
                               f"{switch.name}->{host.name}")
        host.uplink = up
        switch.add_route(host.host_id, down)
        self._adj[host].append((switch, prop_delay, rate_bps))
        self._adj[switch].append((host, prop_delay, rate_bps))
        return up, down

    def connect_switches(
        self,
        a: Switch,
        b: Switch,
        rate_bps: float,
        prop_delay: float,
        qcfg: QueueConfig,
    ) -> Tuple[Port, Port]:
        """Bidirectional switch <-> switch link; routes added by the caller."""
        ab = self._make_port(rate_bps, prop_delay, qcfg, b, f"{a.name}->{b.name}")
        ba = self._make_port(rate_bps, prop_delay, qcfg, a, f"{b.name}->{a.name}")
        self._adj[a].append((b, prop_delay, rate_bps))
        self._adj[b].append((a, prop_delay, rate_bps))
        return ab, ba

    def set_spray(self, enabled: bool) -> None:
        """Enable per-packet spraying on every switch (NDP mode)."""
        for switch in self.switches:
            switch.spray = enabled

    def set_load_balancer(self, mode: str, gap: Optional[float] = None) -> None:
        """Install a load balancer on every switch.

        ``mode`` is ``"ecmp"`` (the stateless default), ``"flowlet"`` or
        ``"conga"``; each switch gets its own balancer instance so
        flowlet state never leaks between hops.  Call after the topology
        is fully built.
        """
        for switch in self.switches:
            switch.lb = make_balancer(mode, gap)

    def enable_pfc(self, config: Optional[PfcConfig] = None) -> None:
        """Turn on PFC at every switch (idempotent per switch).

        Egress muxes that were not already built lossless (via
        ``QueueConfig.pfc``) get thresholds from ``config`` — or
        :meth:`PfcConfig.for_buffer` defaults — and every egress state
        is wired to a per-switch :class:`PfcController` that pauses all
        the switch's upstream transmitters.  Host NIC muxes are never
        made lossless themselves: a host is a traffic *source*, it gets
        paused from downstream but has nobody upstream to pause (its
        multi-MB NIC buffer absorbs the backlog).
        """
        if self.pfc_controllers:
            return  # already enabled
        for switch in self.switches:
            ingress = [p for p in self.ports if p.peer is switch]
            controller = PfcController(self.sim, switch, ingress)
            for port in switch.ports():
                mux = port.mux
                if mux.pfc is None:
                    cfg = config or PfcConfig.for_buffer(mux.buffer_bytes)
                    mux.pfc = cfg.make_state()
                if mux.pfc.controller is None:
                    mux.pfc.controller = controller
            self.pfc_controllers.append(controller)

    # -- ideal control path ----------------------------------------------

    def base_delay(self, src_host: int, dst_host: int) -> float:
        """One-way base delay between two hosts: propagation plus one
        header serialization per hop, no queueing."""
        if src_host == dst_host:
            return 0.0
        key = (src_host, dst_host)
        cached = self._base_delay_cache.get(key)
        if cached is not None:
            return cached
        src = self.hosts[src_host]
        dst = self.hosts[dst_host]
        # BFS for the minimum-hop path, accumulating delay and tracking
        # the slowest link rate seen along it (cached for path_min_rate).
        best: Dict[object, float] = {src: 0.0}
        frontier = deque([(src, 0.0, 0, float("inf"))])
        result = None
        result_rate = None
        best_hops: Dict[object, int] = {src: 0}
        while frontier:
            node, delay, hops, min_rate = frontier.popleft()
            if node is dst:
                result = delay
                result_rate = min_rate
                break
            for peer, prop, rate in self._adj[node]:
                d = delay + prop + serialization_delay(HEADER_BYTES, rate)
                if peer not in best_hops or hops + 1 < best_hops[peer]:
                    best_hops[peer] = hops + 1
                    best[peer] = d
                    frontier.append((peer, d, hops + 1,
                                     rate if rate < min_rate else min_rate))
        if result is None:
            raise KeyError(f"no path from host {src_host} to host {dst_host}")
        self._base_delay_cache[key] = result
        self._path_min_rate_cache[key] = result_rate
        return result

    def path_min_rate(self, src_host: int, dst_host: int) -> float:
        """Capacity (bits/sec) of the slowest link on the minimum-hop
        path between two hosts — the true serialization bottleneck for
        an unloaded transfer on an oversubscribed fabric.  Computed by
        the same BFS as :meth:`base_delay` and cached alongside it."""
        if src_host == dst_host:
            return self.hosts[src_host].uplink.rate_bps
        key = (src_host, dst_host)
        rate = self._path_min_rate_cache.get(key)
        if rate is None:
            self.base_delay(src_host, dst_host)  # fills both caches
            rate = self._path_min_rate_cache[key]
        return rate

    def resolve_path(self, flow_id: int, src_host: int,
                     dst_host: int) -> List[Port]:
        """The exact port sequence ``flow_id``'s data packets traverse
        under default deterministic forwarding.

        Mirrors :meth:`Switch.receive`'s candidate selection (single
        candidate, else per-flow ECMP hash).  Only meaningful when no
        switch sprays or runs a stateful load balancer — the hybrid
        fast path checks that once at bind time and falls back to the
        packet model otherwise.
        """
        if src_host == dst_host:
            return []
        port = self.hosts[src_host].uplink
        if port is None:
            raise KeyError(f"host {src_host} has no uplink")
        dst = self.hosts[dst_host]
        path = [port]
        device = port.peer
        for _hop in range(64):
            if device is dst:
                return path
            candidates = device.table.get(dst_host)
            if not candidates:
                raise KeyError(f"{device.name}: no route to host {dst_host}")
            if len(candidates) == 1:
                port = candidates[0]
            else:
                port = candidates[ecmp_hash(flow_id, device.switch_id,
                                            len(candidates))]
            path.append(port)
            device = port.peer
        raise RuntimeError(
            f"routing loop resolving host {src_host} -> host {dst_host}")

    def base_rtt(self, src_host: int, dst_host: int) -> float:
        """Round-trip base delay between two hosts."""
        return self.base_delay(src_host, dst_host) + self.base_delay(dst_host, src_host)

    def control_pipe(self, src: int, dst: int) -> ControlPipe:
        """The (lazily created) ideal-path FIFO from ``src`` to ``dst``.

        Endpoints with a fixed reverse path (the window receiver's ACK
        stream) cache the pipe and the pair's base delay to skip the
        per-packet lookups in :meth:`send_control`.
        """
        key = (src, dst)
        pipe = self._control_pipes.get(key)
        if pipe is None:
            pipe = ControlPipe(self.sim, self.hosts[dst].receive_control)
            self._control_pipes[key] = pipe
        return pipe

    def send_control(self, pkt: Packet) -> None:
        """Deliver a control packet over the ideal (unqueued) reverse path."""
        self.control_pkts += 1
        self.hosts[pkt.src].ops_sent += 1
        pipe = self.control_pipe(pkt.src, pkt.dst)
        pipe.send(self.base_delay(pkt.src, pkt.dst), pkt)

    # -- flow endpoint wiring ---------------------------------------------

    def attach(self, flow_id: int, src_host: int, dst_host: int,
               sender, receiver) -> None:
        """Register a sender at ``src_host`` and receiver at ``dst_host``."""
        self.hosts[src_host].register(flow_id, sender)
        self.hosts[dst_host].register(flow_id, receiver)

    def detach(self, flow_id: int, src_host: int, dst_host: int) -> None:
        self.hosts[src_host].unregister(flow_id)
        self.hosts[dst_host].unregister(flow_id)

    # -- introspection ----------------------------------------------------

    def find_ports(self, pattern: str) -> List[Port]:
        """Ports whose name matches ``pattern`` (exact or fnmatch glob).

        Matches are returned in construction order, which is
        deterministic, so fault plans resolved against the result are
        reproducible.  Raises KeyError when nothing matches — a fault
        plan naming a non-existent link is a configuration bug, not a
        no-op.
        """
        matched = [p for p in self.ports if p.name == pattern]
        if not matched:
            matched = [p for p in self.ports
                       if fnmatch.fnmatchcase(p.name, pattern)]
        if not matched:
            raise KeyError(f"no port matches {pattern!r}")
        return matched

    def port_named(self, name: str) -> Port:
        """The unique port with exactly this name."""
        for port in self.ports:
            if port.name == name:
                return port
        raise KeyError(f"no port named {name!r}")

    def port_to_host(self, host_id: int) -> Port:
        """The last-hop switch port feeding ``host_id`` (its downlink)."""
        for switch in self.switches:
            for port in switch.table.get(host_id, []):
                if port.peer is self.hosts[host_id]:
                    return port
        raise KeyError(f"no downlink port to host {host_id}")

    def total_drops(self) -> int:
        return sum(port.mux.stats.dropped for port in self.ports)

    def total_marked(self) -> int:
        return sum(port.mux.stats.marked for port in self.ports)

    def total_in_flight(self) -> int:
        """Packets currently propagating on any wire in the fabric.

        Reads the wire deques directly (the authoritative in-flight
        record under the pipelined wire model); the invariant auditor
        holds this equal to the transmitted-minus-arrived residual.
        """
        return sum(len(port.wire) for port in self.ports)


class LinkLedger:
    """Per-port capacity ledger shared between the hybrid fast path's
    abstract rate shares and the packet model's occupancy.

    Abstract flows never enqueue packets, so a tracked port's
    ``bytes_sent`` delta between two congestion epochs measures *pure
    packet-model* traffic; whatever is left of the link rate is the
    capacity the waterfiller may hand to abstract flows.  The
    packet-flow refcounts come from the hybrid controller's path
    bookkeeping and make "shares a bottleneck with a packet flow" an
    O(path) test.  Plain data throughout — the ledger pickles inside
    checkpoints along with the network.
    """

    __slots__ = ("tracked", "packet_flows", "last_time")

    def __init__(self) -> None:
        # port -> [bytes_sent at last measurement, measured bytes/sec]
        self.tracked: Dict[Port, list] = {}
        # port -> number of live packet-mode flows routed through it
        self.packet_flows: Dict[Port, int] = {}
        self.last_time: Optional[float] = None

    def track(self, port: Port) -> None:
        if port not in self.tracked:
            self.tracked[port] = [port.bytes_sent, 0.0]

    def measure(self, now: float) -> None:
        """Refresh measured packet throughput from the port counters."""
        last = self.last_time
        self.last_time = now
        if last is None or now <= last:
            return
        inv_dt = 1.0 / (now - last)
        for port, state in self.tracked.items():
            sent = port.bytes_sent
            state[1] = (sent - state[0]) * inv_dt
            state[0] = sent

    def add_packet_flow(self, path: List[Port]) -> None:
        flows = self.packet_flows
        for port in path:
            flows[port] = flows.get(port, 0) + 1

    def remove_packet_flow(self, path: List[Port]) -> None:
        flows = self.packet_flows
        for port in path:
            left = flows.get(port, 0) - 1
            if left > 0:
                flows[port] = left
            else:
                flows.pop(port, None)

    def shared_with_packets(self, path: List[Port]) -> bool:
        flows = self.packet_flows
        for port in path:
            if port in flows:
                return True
        return False

    def available_bps(self, port: Port) -> float:
        """Link rate minus measured packet throughput, in bits/sec."""
        state = self.tracked.get(port)
        measured = state[1] * 8.0 if state is not None else 0.0
        rest = port.rate_bps - measured
        return rest if rest > 0.0 else 0.0

    def contended(self, port: Port, fraction: float) -> bool:
        """True when ``port`` is unsafe to back an abstract rate share:
        PFC-paused, fault-chained, shared with a live packet flow,
        visibly transmitting, or measurably carrying more than
        ``fraction`` of its capacity in packet traffic."""
        if port.paused_mask or port.fault_chain is not None:
            return True
        if port in self.packet_flows:
            return True
        if port.busy or port.mux.pkt_count:
            return True
        state = self.tracked.get(port)
        return (state is not None
                and state[1] * 8.0 > fraction * port.rate_bps)
