"""Switch and NIC output queues.

The paper only needs commodity-switch features (§2.2): strict-priority
queueing, RED/ECN marking with a single threshold K (Eq. 3), and a shared
per-port buffer.  Two research features used by baselines are also here:

* **NDP packet trimming** — when the queue is full, cut the payload and
  enqueue the 64-byte header in the highest-priority queue instead of
  dropping.
* **Aeolus selective dropping** — drop *unscheduled* (pre-credit) packets
  as soon as occupancy exceeds a threshold, so that first-RTT blasts cannot
  push out scheduled traffic.

A :class:`PriorityMux` owns eight FIFO queues sharing one buffer pool and
dequeues in strict-priority order.  The attached :class:`~repro.sim.link.Link`
drains it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..obs.hooks import chain
from .packet import HEADER, HEADER_BYTES, NUM_PRIORITIES, Packet


@dataclass(frozen=True)
class PfcConfig:
    """Priority Flow Control (IEEE 802.1Qbb) thresholds for one port.

    A lossless priority's queue crossing ``xoff_bytes`` sends PAUSE
    upstream; draining back below ``xon_bytes`` sends RESUME.  The
    hysteresis band (xon < xoff) stops pause/resume flapping.
    ``headroom_bytes`` is buffer *beyond* the shared pool reserved for
    in-flight bytes that arrive after XOFF was sent but before the
    upstream sender actually stopped (one link RTT plus a full-size
    packet per upstream port, in real ASICs); with adequate headroom a
    lossless class never drops.
    """

    xoff_bytes: int
    xon_bytes: int
    headroom_bytes: int
    priorities: Tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        if not 0 <= self.xon_bytes <= self.xoff_bytes:
            raise ValueError(
                f"need 0 <= xon ({self.xon_bytes}) <= xoff "
                f"({self.xoff_bytes})")
        if self.headroom_bytes < 0:
            raise ValueError("headroom_bytes must be >= 0")
        for p in self.priorities:
            if not 0 <= p < NUM_PRIORITIES:
                raise ValueError(f"lossless priority out of range: {p}")

    @property
    def lossless_mask(self) -> int:
        mask = 0
        for p in self.priorities:
            mask |= 1 << p
        return mask

    @classmethod
    def for_buffer(cls, buffer_bytes: int,
                   priorities: Tuple[int, ...] = (0,)) -> "PfcConfig":
        """Conventional thresholds scaled to the shared-buffer size:
        XOFF at a third of the pool, XON at a sixth, headroom equal to
        the pool (worst case every upstream port keeps blasting for a
        full pause-propagation window)."""
        return cls(xoff_bytes=buffer_bytes // 3,
                   xon_bytes=buffer_bytes // 6,
                   headroom_bytes=buffer_bytes,
                   priorities=priorities)

    def make_state(self) -> "PfcState":
        return PfcState(self)


class PfcState:
    """Mutable per-mux PFC state built from a :class:`PfcConfig`.

    ``xoff_state`` is a bitmask of priorities currently asserting XOFF;
    the attached controller (wired by ``Network.enable_pfc``) turns the
    on/off edges into PAUSE/RESUME deliveries to upstream ports.
    ``lossless_drops`` must stay zero — the validate layer enforces it.
    """

    __slots__ = ("xoff_bytes", "xon_bytes", "headroom_bytes",
                 "lossless_mask", "xoff_state", "lossless_drops",
                 "controller")

    def __init__(self, config: PfcConfig) -> None:
        self.xoff_bytes = config.xoff_bytes
        self.xon_bytes = config.xon_bytes
        self.headroom_bytes = config.headroom_bytes
        self.lossless_mask = config.lossless_mask
        self.xoff_state = 0
        self.lossless_drops = 0
        self.controller = None


class QueueStats:
    """Counters every queue keeps; cheap enough to always collect.

    Conservation laws (asserted by :mod:`repro.validate`):

    * every arrival is exactly one of admitted or rejected:
      ``offered == enqueued + (dropped - dropped_after_enqueue)``;
    * admitted packets leave exactly once:
      ``enqueued == dequeued + dropped_after_enqueue + still-queued``;
    * byte-exact variants of both, with ``bytes_trimmed`` carrying the
      payload a trim cut between arrival and admission.

    ``dropped`` / ``bytes_dropped`` remain the *total* loss counters
    (pre-admission tail/selective drops plus post-enqueue flushes);
    ``dropped_after_enqueue`` isolates the flush share so the admission
    ledger and the occupancy ledger each balance exactly.
    """

    __slots__ = (
        "offered", "enqueued", "dequeued", "dropped", "trimmed", "marked",
        "dropped_after_enqueue",
        "bytes_offered", "bytes_enqueued", "bytes_dequeued", "bytes_dropped",
        "bytes_dropped_after_enqueue", "bytes_trimmed",
    )

    def __init__(self) -> None:
        self.offered = 0
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0
        self.trimmed = 0
        self.marked = 0
        self.dropped_after_enqueue = 0
        self.bytes_offered = 0
        self.bytes_enqueued = 0
        self.bytes_dequeued = 0
        self.bytes_dropped = 0
        self.bytes_dropped_after_enqueue = 0
        self.bytes_trimmed = 0


class PriorityMux:
    """Eight strict-priority FIFOs over a shared buffer pool.

    Parameters
    ----------
    buffer_bytes:
        Total buffer shared by all priority queues of this port.
    ecn_thresholds:
        Per-priority ECN marking threshold in bytes (None = no marking for
        that priority).  The paper marks against the *queue's own*
        occupancy, mirroring per-queue RED with min==max==K.
    ecn_mode:
        What occupancy a packet's ECN threshold is compared against:

        * ``"paper"`` (default) — high-priority packets (P0-P3) mark on
          the *high-priority half's* occupancy, so LP bytes never inflate
          DCTCP's congestion signal; low-priority packets (P4-P7) mark on
          the *total* port occupancy, because "all data packets
          essentially share the switch buffer" (§3.2) and the LCP loop
          must sense both normal-blocks-opportunistic and
          opportunistic-impacts-normal situations.
        * ``"queue"`` — per-queue WRED (each queue marks on its own depth).
        * ``"total"`` — everything marks on total port occupancy.
    trim:
        Enable NDP trimming on overflow.
    selective_drop_threshold:
        If set, drop packets with ``unscheduled=True`` whenever total
        occupancy exceeds this many bytes (Aeolus).
    lp_buffer_cap:
        If set, cap the bytes that low-priority (``lcp=True``) packets may
        occupy (used for the Fig. 24 RC3-variant experiment).
    dt_alpha:
        Broadcom-style dynamic-threshold buffer sharing: a packet is
        dropped when its priority queue already holds more than
        ``alpha * (buffer - occupancy)`` bytes.  May be a single number
        or a per-priority sequence; the default scenario configuration
        uses alpha=8 for the high-priority queues and alpha=1 for the
        lossy low-priority queues, the common commodity setting — a
        greedy opportunistic queue then stabilises at half the free pool
        and can never squeeze out high-priority arrivals.  None = pure
        shared tail drop.
    """

    __slots__ = (
        "buffer_bytes", "ecn_thresholds", "ecn_mode", "trim",
        "trim_threshold_bytes",
        "selective_drop_threshold", "lp_buffer_cap", "dt_alphas",
        "queues", "occupancy", "queue_occupancy", "lp_occupancy",
        "hp_occupancy", "nonempty_mask", "pkt_count", "pfc",
        "stats", "drop_hook", "mark_hook", "trim_hook",
    )

    def __init__(
        self,
        buffer_bytes: int,
        ecn_thresholds: Optional[List[Optional[int]]] = None,
        *,
        ecn_mode: str = "paper",
        trim: bool = False,
        selective_drop_threshold: Optional[int] = None,
        lp_buffer_cap: Optional[int] = None,
        dt_alpha=None,
    ) -> None:
        self.buffer_bytes = buffer_bytes
        if ecn_thresholds is None:
            ecn_thresholds = [None] * NUM_PRIORITIES
        if len(ecn_thresholds) != NUM_PRIORITIES:
            raise ValueError("ecn_thresholds must have 8 entries")
        self.ecn_thresholds = list(ecn_thresholds)
        if ecn_mode not in ("paper", "queue", "total"):
            raise ValueError(f"unknown ecn_mode: {ecn_mode!r}")
        self.ecn_mode = ecn_mode
        self.trim = trim
        self.selective_drop_threshold = selective_drop_threshold
        self.lp_buffer_cap = lp_buffer_cap
        if dt_alpha is None:
            self.dt_alphas: Optional[List[float]] = None
        elif isinstance(dt_alpha, (int, float)):
            self.dt_alphas = [float(dt_alpha)] * NUM_PRIORITIES
        else:
            alphas = [float(a) for a in dt_alpha]
            if len(alphas) != NUM_PRIORITIES:
                raise ValueError("dt_alpha sequence must have 8 entries")
            self.dt_alphas = alphas
        # NDP trims a data packet once its queue exceeds this (None = only
        # on buffer exhaustion); trimmed headers use the whole buffer,
        # modelling NDP's separate tiny header queue.
        self.trim_threshold_bytes: Optional[int] = None
        self.queues: List[deque] = [deque() for _ in range(NUM_PRIORITIES)]
        self.occupancy = 0
        self.queue_occupancy = [0] * NUM_PRIORITIES
        self.lp_occupancy = 0
        # Incremental ledgers mirroring derivable state so the hot path
        # never recomputes it: high-priority (P0-3) bytes for the
        # paper-mode ECN comparison, a bitmask of non-empty queues for
        # O(1) strict-priority dequeue, and the total packet count.
        # All integer arithmetic — exact by construction; audit_mux in
        # repro.validate asserts agreement with the recomputed sums.
        self.hp_occupancy = 0
        self.nonempty_mask = 0
        self.pkt_count = 0
        # Optional PFC lossless-class state (PfcState); None = lossy
        # port, and exactly one attribute test on the hot enqueue path.
        self.pfc: Optional[PfcState] = None
        self.stats = QueueStats()
        # Optional per-event hooks (None = nobody listening, one branch
        # on the hot path).  Attach via add_*_hook, which *chains*
        # callbacks — a second consumer never displaces the first.
        self.drop_hook: Optional[Callable[[Packet], None]] = None
        self.mark_hook: Optional[Callable[[Packet], None]] = None
        self.trim_hook: Optional[Callable[[Packet], None]] = None

    # -- hook wiring ------------------------------------------------------

    def add_drop_hook(self, fn: Callable[[Packet], None]) -> None:
        """Chain ``fn`` onto the drop hook (fired per dropped packet)."""
        self.drop_hook = chain(self.drop_hook, fn)

    def add_mark_hook(self, fn: Callable[[Packet], None]) -> None:
        """Chain ``fn`` onto the ECN-mark hook (fired per CE mark)."""
        self.mark_hook = chain(self.mark_hook, fn)

    def add_trim_hook(self, fn: Callable[[Packet], None]) -> None:
        """Chain ``fn`` onto the trim hook (fired per admitted trim)."""
        self.trim_hook = chain(self.trim_hook, fn)

    # -- enqueue ---------------------------------------------------------

    def enqueue(self, pkt: Packet) -> bool:
        """Admit ``pkt``; returns False when it was dropped.

        Trimmed packets (NDP) count as admitted — the header survives.
        Accounting invariant: every arrival ends up as exactly one of
        ``enqueued`` or ``dropped`` (a trimmed-then-dropped packet is a
        drop, not a trim), and a dropped packet's ``bytes_dropped``
        reflect its size *on arrival*, before any trim shrank it.
        """
        stats = self.stats
        arrival_size = pkt.size
        occupancy = self.occupancy
        stats.offered += 1
        stats.bytes_offered += arrival_size
        pfc = self.pfc
        if pfc is not None and (pfc.lossless_mask >> pkt.priority) & 1:
            return self._enqueue_lossless(pkt, arrival_size, pfc)
        trimmed = False
        # Aeolus selective dropping of pre-credit packets.
        if (
            self.selective_drop_threshold is not None
            and pkt.unscheduled
            and occupancy > self.selective_drop_threshold
        ):
            self._drop(pkt, arrival_size)
            return False

        # RC3 variant: cap buffer available to the low-priority loop.
        if self.lp_buffer_cap is not None and pkt.lcp:
            if self.lp_occupancy + pkt.size > self.lp_buffer_cap:
                self._drop(pkt, arrival_size)
                return False

        # NDP trimming: cut the payload as soon as the data queue exceeds
        # the (small) trim threshold; the surviving header is tiny and
        # rides the highest priority.
        if (
            self.trim
            and pkt.kind != HEADER
            and pkt.size > HEADER_BYTES
            and self.trim_threshold_bytes is not None
            and self.queue_occupancy[pkt.priority] + pkt.size
            > self.trim_threshold_bytes
        ):
            pkt.trim()
            trimmed = True

        size = pkt.size
        priority = pkt.priority
        buffer_bytes = self.buffer_bytes
        queue_occupancy = self.queue_occupancy
        # shared tail drop, then per-queue dynamic threshold (DT); the DT
        # product is only evaluated when the cheap shared check passes
        over = occupancy + size > buffer_bytes
        if not over:
            alphas = self.dt_alphas
            over = (
                alphas is not None
                and pkt.kind != HEADER
                and queue_occupancy[priority] + size
                > alphas[priority] * (buffer_bytes - occupancy)
            )
        if over:
            if self.trim and pkt.kind != HEADER and size > HEADER_BYTES:
                # buffer exhausted: last-resort trim
                pkt.trim()
                trimmed = True
                size = pkt.size
                priority = pkt.priority
                if occupancy + size > buffer_bytes:
                    self._drop(pkt, arrival_size)
                    return False
            else:
                self._drop(pkt, arrival_size)
                return False

        # ECN marking on arrival (RED with min == max == K, per Eq. 3).
        threshold = self.ecn_thresholds[priority]
        if threshold is not None and pkt.ecn_capable:
            mode = self.ecn_mode
            if mode == "paper":
                level = self.hp_occupancy if priority < 4 else occupancy
            elif mode == "total":
                level = occupancy
            else:
                level = queue_occupancy[priority]
            if level >= threshold:
                pkt.ecn_ce = True
                stats.marked += 1
                if self.mark_hook is not None:
                    self.mark_hook(pkt)

        if trimmed:
            # counted only now that the header actually survived
            stats.trimmed += 1
            stats.bytes_trimmed += arrival_size - size
            if self.trim_hook is not None:
                self.trim_hook(pkt)
        self.queues[priority].append(pkt)
        self.occupancy = occupancy + size
        queue_occupancy[priority] += size
        if priority < 4:
            self.hp_occupancy += size
        if pkt.lcp:
            self.lp_occupancy += size
        self.nonempty_mask |= 1 << priority
        self.pkt_count += 1
        stats.enqueued += 1
        stats.bytes_enqueued += size
        return True

    def _enqueue_lossless(self, pkt: Packet, arrival_size: int,
                          pfc: PfcState) -> bool:
        """Admit a packet of a PFC-protected priority.

        Lossless classes skip the lossy admission features (trim,
        Aeolus, DT) entirely: instead of dropping, crossing XOFF pauses
        the upstream senders, and ``headroom_bytes`` beyond the shared
        pool absorbs what is already in flight.  A drop here means the
        headroom was provisioned too small; it is counted separately so
        the validate layer can flag it.
        """
        occupancy = self.occupancy
        size = pkt.size
        priority = pkt.priority
        if occupancy + size > self.buffer_bytes + pfc.headroom_bytes:
            pfc.lossless_drops += 1
            self._drop(pkt, arrival_size)
            return False

        # ECN still marks lossless traffic — DCQCN's congestion signal
        # is CE marks on the very queues PFC protects.
        queue_occupancy = self.queue_occupancy
        threshold = self.ecn_thresholds[priority]
        if threshold is not None and pkt.ecn_capable:
            mode = self.ecn_mode
            if mode == "paper":
                level = self.hp_occupancy if priority < 4 else occupancy
            elif mode == "total":
                level = occupancy
            else:
                level = queue_occupancy[priority]
            if level >= threshold:
                pkt.ecn_ce = True
                self.stats.marked += 1
                if self.mark_hook is not None:
                    self.mark_hook(pkt)

        self.queues[priority].append(pkt)
        self.occupancy = occupancy + size
        queue_occupancy[priority] += size
        if priority < 4:
            self.hp_occupancy += size
        if pkt.lcp:
            self.lp_occupancy += size
        self.nonempty_mask |= 1 << priority
        self.pkt_count += 1
        self.stats.enqueued += 1
        self.stats.bytes_enqueued += size

        bit = 1 << priority
        if not (pfc.xoff_state & bit) \
                and queue_occupancy[priority] > pfc.xoff_bytes:
            pfc.xoff_state |= bit
            if pfc.controller is not None:
                pfc.controller.on_xoff(priority)
        return True

    def pfc_dequeue_check(self, priority: int) -> None:
        """XON when a paused priority drained below the resume mark.

        Called after every dequeue (including the inlined fast path in
        ``Port._start_next``) on PFC-enabled muxes only.
        """
        pfc = self.pfc
        bit = 1 << priority
        if pfc.xoff_state & bit \
                and self.queue_occupancy[priority] <= pfc.xon_bytes:
            pfc.xoff_state &= ~bit
            if pfc.controller is not None:
                pfc.controller.on_xon(priority)

    def _drop(self, pkt: Packet, size: Optional[int] = None) -> None:
        self.stats.dropped += 1
        self.stats.bytes_dropped += pkt.size if size is None else size
        if self.drop_hook is not None:
            self.drop_hook(pkt)

    # -- dequeue ---------------------------------------------------------

    def dequeue(self) -> Optional[Packet]:
        """Pop the head of the highest-priority non-empty queue."""
        mask = self.nonempty_mask
        if not mask:
            return None
        # lowest set bit == highest priority with packets waiting
        priority = (mask & -mask).bit_length() - 1
        queue = self.queues[priority]
        pkt = queue.popleft()
        if not queue:
            self.nonempty_mask = mask & (mask - 1)
        self.occupancy -= pkt.size
        self.queue_occupancy[priority] -= pkt.size
        if priority < 4:
            self.hp_occupancy -= pkt.size
        if pkt.lcp:
            self.lp_occupancy -= pkt.size
        self.pkt_count -= 1
        self.stats.dequeued += 1
        self.stats.bytes_dequeued += pkt.size
        if self.pfc is not None:
            self.pfc_dequeue_check(priority)
        return pkt

    def flush(self) -> int:
        """Drop every queued packet (link failure); returns the count.

        Flushed packets are accounted as drops, not dequeues — they
        never made it onto the wire.
        """
        flushed = 0
        stats = self.stats
        for priority, queue in enumerate(self.queues):
            while queue:
                pkt = queue.popleft()
                self.occupancy -= pkt.size
                self.queue_occupancy[priority] -= pkt.size
                if priority < 4:
                    self.hp_occupancy -= pkt.size
                if pkt.lcp:
                    self.lp_occupancy -= pkt.size
                self.pkt_count -= 1
                # a flushed packet was admitted (counted enqueued), so it
                # is a *post-enqueue* drop — split out so the admission
                # and occupancy ledgers both balance
                stats.dropped_after_enqueue += 1
                stats.bytes_dropped_after_enqueue += pkt.size
                self._drop(pkt)
                flushed += 1
        self.nonempty_mask = 0
        pfc = self.pfc
        if pfc is not None and pfc.xoff_state:
            # every queue is now empty (<= xon), so all pauses lift
            state = pfc.xoff_state
            pfc.xoff_state = 0
            if pfc.controller is not None:
                while state:
                    bit = state & -state
                    state ^= bit
                    pfc.controller.on_xon(bit.bit_length() - 1)
        return flushed

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        return self.pkt_count

    @property
    def empty(self) -> bool:
        return self.occupancy == 0

    def occupancy_split(self) -> Dict[str, int]:
        """Bytes held by the high-priority (P0-3) vs low-priority (P4-7) half."""
        return {"high": self.hp_occupancy,
                "low": self.occupancy - self.hp_occupancy}
