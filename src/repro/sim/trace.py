"""Packet-level tracing: hook drops/marks/forwarding for debugging.

The simulator keeps cheap aggregate counters everywhere; this module
adds *per-event* visibility when you need to answer questions like
"whose packets were dropped at which port, and when?".  Used by the
buffer-model benchmark and handy when developing new transports.

Usage::

    tracer = DropTracer.attach(network)
    ... run ...
    print(tracer.summary_by_priority())
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .network import Network
from .packet import KIND_NAMES, Packet


@dataclass
class DropRecord:
    """One dropped packet."""

    time: float
    port: str
    flow_id: int
    seq: int
    priority: int
    kind: int
    lcp: bool
    unscheduled: bool


class _DropHook:
    """One port's drop callback.  A picklable callable class (not a
    closure) so an instrumented run can be checkpointed — simulator
    snapshots (:mod:`repro.resilience`) pickle the hook sites along
    with the rest of the run graph."""

    __slots__ = ("tracer", "port")

    def __init__(self, tracer: "DropTracer", port) -> None:
        self.tracer = tracer
        self.port = port

    def __call__(self, pkt: Packet) -> None:
        port = self.port
        self.tracer.records.append(DropRecord(
            time=port.sim.now,
            port=port.name,
            flow_id=pkt.flow_id,
            seq=pkt.seq,
            priority=pkt.priority,
            kind=pkt.kind,
            lcp=pkt.lcp,
            unscheduled=pkt.unscheduled,
        ))

    def __getstate__(self):
        return (self.tracer, self.port)

    def __setstate__(self, state) -> None:
        self.tracer, self.port = state


class _MarkHook:
    """One port's ECN-mark callback; same picklability contract as
    :class:`_DropHook`."""

    __slots__ = ("tracer", "port_name")

    def __init__(self, tracer: "MarkTracer", port_name: str) -> None:
        self.tracer = tracer
        self.port_name = port_name

    def __call__(self, pkt: Packet) -> None:
        self.tracer._counts[self.port_name] += 1

    def __getstate__(self):
        return (self.tracer, self.port_name)

    def __setstate__(self, state) -> None:
        self.tracer, self.port_name = state


class DropTracer:
    """Records every drop in the fabric via the muxes' drop hooks."""

    def __init__(self) -> None:
        self.records: List[DropRecord] = []
        self._size_of: Optional[Callable[[int], Optional[int]]] = None

    @classmethod
    def attach(cls, network: Network) -> "DropTracer":
        """Chain this tracer onto every port's drop hook.

        Chaining (not assignment) means attaching a tracer never
        disables a previously installed hook — telemetry and multiple
        tracers observe the same drops side by side.
        """
        tracer = cls()
        for port in network.ports:
            port.mux.add_drop_hook(tracer._make_hook(port))
        return tracer

    def _make_hook(self, port) -> "_DropHook":
        return _DropHook(self, port)

    # -- summaries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def summary_by_priority(self) -> Dict[int, int]:
        return dict(Counter(r.priority for r in self.records))

    def summary_by_port(self) -> Dict[str, int]:
        return dict(Counter(r.port for r in self.records))

    def summary_by_kind(self) -> Dict[str, int]:
        return dict(Counter(KIND_NAMES.get(r.kind, str(r.kind))
                            for r in self.records))

    def lcp_share(self) -> float:
        """Fraction of drops that hit opportunistic (LCP) packets."""
        if not self.records:
            return float("nan")
        return sum(1 for r in self.records if r.lcp) / len(self.records)

    def drops_for_flow(self, flow_id: int) -> List[DropRecord]:
        return [r for r in self.records if r.flow_id == flow_id]


class MarkTracer:
    """Counts ECN marks per port from the muxes' chained mark hooks.

    Counting starts at construction (the old snapshot-delta semantics),
    but the counts now come from live hook callbacks, so several
    tracers — or a tracer plus a :class:`~repro.obs.Telemetry` — can
    watch the same ports concurrently.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self._counts: Counter = Counter()
        # kept for introspection/backwards compatibility: the counter
        # values at construction time
        self._baseline: Dict[str, int] = {
            port.name: port.mux.stats.marked for port in network.ports}
        for port in network.ports:
            port.mux.add_mark_hook(self._make_hook(port.name))

    def _make_hook(self, port_name: str) -> _MarkHook:
        return _MarkHook(self, port_name)

    def delta(self) -> Dict[str, int]:
        """Marks since construction, per port (zero entries omitted)."""
        return {name: count for name, count in self._counts.items() if count}

    def total(self) -> int:
        return sum(self._counts.values())
