"""Space-parallel sharded simulation: one process per pod group.

A leaf-spine fabric is cut along its pod structure: leaves (with their
hosts) and spines are dealt round-robin to ``n_shards`` shards, and each
shard runs a full copy of the topology in its own process but only
*simulates* the devices it owns.  The physics that makes this sound is
the same one the pipelined :class:`~repro.sim.link.Wire` models: a
packet finishing serialization on a cross-shard link cannot affect the
other side until one propagation delay later.  That delay — minimized
over every boundary link — is the run's **lookahead** ``L``, and the
synchronization protocol is the classic conservative (CMB null-message)
scheme built on it:

* every shard runs its simulator up to a window boundary ``T``, during
  which boundary ports divert finished transmissions into per-peer
  outboxes (an *egress stub* replacing the wire push) instead of
  delivering them locally;
* at the boundary, shards exchange outboxes plus a null message: their
  next local event time (raw ``peek_time``), the earliest arrival among
  their own exports, a local-completion flag and their event count;
* each shard then computes — from identical numbers, so identically —
  ``base``, the earliest unexecuted event anywhere, and advances to
  ``T' = min(base + L, max_time)``.  Any export produced by an event at
  ``t >= base`` arrives no earlier than ``t + L >= T'``, so an imported
  packet is never injected into a receiver's past;
* imports are injected at ``send_time + prop_delay`` through
  :meth:`~repro.sim.engine.Simulator.schedule_reserved` with a
  contiguous seq block, sorted by ``(arrival, source shard, batch
  index)`` — heap tie-breaking stays deterministic, so repeated runs
  merge identically.

Determinism contract: per-flow FCTs of a sharded run are bit-identical
to the serial run of the same scenario.  Arrival instants are computed
from the same floats (``sim.now + prop_delay`` at serialization end,
``now + base_delay`` for control), and windowing cannot reorder events
with distinct times; the only divergence channel is a same-float-time
tie between an imported event and an unrelated local one, which Poisson
workloads hit with probability zero.  ``docs/sharding.md`` spells out
the partitioning rules and the lookahead math.

Termination is symmetric: every stop decision ("done", "budget",
"dead", "horizon") is a function of the exchanged data only, so all
shards break out of the window loop in the same round and nobody blocks
on a pipe that will never be written.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..transport.base import TransportContext
from .host import Host
from .link import Port
from .network import Network
from .topology import Topology


class ShardLedger:
    """Cross-shard handoff accounting for one shard's network.

    The fabric conservation laws (:mod:`repro.validate`) are local to a
    shard's books, so every packet that leaves or enters through the
    shard boundary must be ledgered: exported data packets were
    transmitted but never arrive locally, injected ones arrive without
    a local transmission, and replica traffic neutralized at the source
    (see :class:`InertPort`, :class:`_ControlRouter`) was offered to the
    fabric but never enqueued.  ``exported_to``/``imported_from`` count
    per peer shard (data + control), and the supervisor closes the
    global law: shard A's ``exported_to[B]`` must equal shard B's
    ``imported_from[A]`` exactly.
    """

    __slots__ = ("exported_pkts", "exported_bytes",
                 "injected_pkts", "injected_bytes",
                 "inert_drops", "inert_drop_bytes",
                 "replica_control_drops",
                 "exported_to", "imported_from")

    def __init__(self) -> None:
        # data packets diverted into an outbox / delivered from an inbox
        self.exported_pkts = 0
        self.exported_bytes = 0
        self.injected_pkts = 0
        self.injected_bytes = 0
        # replica-sender data stopped at the (inert) NIC
        self.inert_drops = 0
        self.inert_drop_bytes = 0
        # replica-receiver control dropped by the router
        self.replica_control_drops = 0
        # peer shard -> [pkts, bytes], data AND control
        self.exported_to: Dict[int, List[int]] = {}
        self.imported_from: Dict[int, List[int]] = {}

    def digest(self) -> dict:
        """Plain-dict snapshot for pickling into a :class:`ShardSummary`."""
        return {
            "exported_pkts": self.exported_pkts,
            "exported_bytes": self.exported_bytes,
            "injected_pkts": self.injected_pkts,
            "injected_bytes": self.injected_bytes,
            "inert_drops": self.inert_drops,
            "inert_drop_bytes": self.inert_drop_bytes,
            "replica_control_drops": self.replica_control_drops,
            "exported_to": {k: list(v) for k, v in self.exported_to.items()},
            "imported_from": {k: list(v)
                              for k, v in self.imported_from.items()},
        }


class InertPort:
    """Stands in for a *replica* host's uplink.

    A flow whose receiver is local gets its sender endpoint built on the
    (remote-owned) source host replica too — schemes create both ends.
    That replica sender must never push data into this shard's fabric:
    the real packets are simulated in the owner shard and imported at
    the boundary.  Swapping the replica's uplink for an InertPort stops
    its traffic at the NIC through :meth:`Host.send`'s duck-type seam,
    after the host's offer counters were already incremented — the
    ledger's inert counters balance the offer law.

    Read-only queries (``rate_bps``, ``prop_delay``, ...) proxy to the
    replaced real port: transports size windows off the source uplink's
    rate (e.g. ``TransportContext.bdp_packets``), and those reads must
    return the same floats as serial.  Writes are not proxied — a
    transport mutating a replica's uplink would be a bug worth a loud
    AttributeError.
    """

    __slots__ = ("ledger", "port")

    def __init__(self, ledger: ShardLedger, port) -> None:
        self.ledger = ledger
        self.port = port

    def __getattr__(self, name):
        return getattr(self.port, name)

    def send(self, pkt) -> bool:
        ledger = self.ledger
        ledger.inert_drops += 1
        ledger.inert_drop_bytes += pkt.size
        return False


class _BoundaryEgress:
    """Serialization-complete callback for a cross-shard port.

    Installed as the port's ``_tx_cb``; mirrors
    :meth:`~repro.sim.link.Port._tx_done` exactly — counters, fault
    chain, next-dequeue — except the finished packet goes into the
    peer shard's outbox (timestamped with the arrival instant the wire
    would have produced: ``sim.now + prop_delay``, the very float the
    serial run computes) instead of onto the local wire.
    """

    __slots__ = ("port", "port_index", "dst_shard", "ledger", "outbox")

    def __init__(self, port: Port, port_index: int, dst_shard: int,
                 ledger: ShardLedger, outbox: list) -> None:
        self.port = port
        self.port_index = port_index
        self.dst_shard = dst_shard
        self.ledger = ledger
        self.outbox = outbox

    def __call__(self, pkt) -> None:
        port = self.port
        sim = port.sim
        port.bytes_sent += pkt.size
        port.pkts_sent += 1
        port.busy_time += sim.now - port._tx_start
        chain = port.fault_chain
        if chain is not None and not chain.transmit(pkt):
            port.fault_wire_drops += 1
            port.fault_wire_drop_bytes += pkt.size
            port._start_next()
            return
        ledger = self.ledger
        ledger.exported_pkts += 1
        ledger.exported_bytes += pkt.size
        pair = ledger.exported_to[self.dst_shard]
        pair[0] += 1
        pair[1] += pkt.size
        # (arrival, kind=0 data, ingress port index, packet)
        self.outbox.append((sim.now + port.prop_delay, 0,
                            self.port_index, pkt))
        if port.mux.nonempty_mask:
            port._start_next()
        else:
            port.busy = False


class _ControlRouter:
    """Shard-aware replacement for :meth:`Network.send_control`.

    Installed as an instance attribute on the shard's network, which
    every transport honours (the window receiver's ACK fast path checks
    for exactly this override before caching a pipe).  Routing is by
    the *emitting* host's locality:

    * remote source — a replica endpoint generated it (a receiver
      granting credit it never really earned); dropped and counted;
    * local source, local destination — the stock
      :meth:`Network.send_control`, unbound, so counters and delivery
      floats are bit-identical to serial;
    * local source, remote destination — serial's emit-side counters
      are mirrored, then the packet is exported with the arrival the
      ideal control path would have produced (``now + base_delay``;
      cross-shard pairs are cross-leaf, so that delay always exceeds
      the lookahead).
    """

    __slots__ = ("net", "shard_id", "shard_of_host", "ledger", "outboxes")

    def __init__(self, net: Network, shard_id: int,
                 shard_of_host: Dict[int, int], ledger: ShardLedger,
                 outboxes: Dict[int, list]) -> None:
        self.net = net
        self.shard_id = shard_id
        self.shard_of_host = shard_of_host
        self.ledger = ledger
        self.outboxes = outboxes

    def __call__(self, pkt) -> None:
        shard_of_host = self.shard_of_host
        me = self.shard_id
        if shard_of_host[pkt.src] != me:
            self.ledger.replica_control_drops += 1
            return
        dst_shard = shard_of_host[pkt.dst]
        net = self.net
        if dst_shard == me:
            Network.send_control(net, pkt)
            return
        net.control_pkts += 1
        net.hosts[pkt.src].ops_sent += 1
        pair = self.ledger.exported_to[dst_shard]
        pair[0] += 1
        pair[1] += pkt.size
        arrival = net.sim.now + net.base_delay(pkt.src, pkt.dst)
        # (arrival, kind=1 control, destination host, packet)
        self.outboxes[dst_shard].append((arrival, 1, pkt.dst, pkt))


@dataclass
class ShardPlan:
    """How a topology is cut: device -> shard maps plus the lookahead."""

    n_shards: int
    lookahead: float
    shard_of_host: Dict[int, int]
    shard_of_switch: Dict[int, int]

    def hosts_of(self, shard: int) -> List[int]:
        return sorted(h for h, s in self.shard_of_host.items() if s == shard)

    def describe(self) -> str:
        sizes = [len(self.hosts_of(s)) for s in range(self.n_shards)]
        return (f"{self.n_shards} shard(s), hosts per shard {sizes}, "
                f"lookahead {self.lookahead:.3g}s")


def _device_shard(device, plan: ShardPlan) -> int:
    if isinstance(device, Host):
        return plan.shard_of_host[device.host_id]
    return plan.shard_of_switch[device.switch_id]


def boundary_ports(net: Network,
                   plan: ShardPlan) -> List[Tuple[Port, int, int]]:
    """Every port whose transmitter and receiver live in different
    shards, as ``(port, owner_shard, peer_shard)`` in deterministic
    (construction) order.  A port belongs to the device that transmits
    on it: switch ports to their switch, host uplinks to their host.
    """
    out: List[Tuple[Port, int, int]] = []
    for switch in net.switches:
        owner = plan.shard_of_switch[switch.switch_id]
        for port in switch.ports():
            peer_shard = _device_shard(port.peer, plan)
            if peer_shard != owner:
                out.append((port, owner, peer_shard))
    for host in net.hosts.values():
        port = host.uplink
        if type(port) is not Port:
            continue
        owner = plan.shard_of_host[host.host_id]
        peer_shard = _device_shard(port.peer, plan)
        if peer_shard != owner:
            out.append((port, owner, peer_shard))
    return out


def plan_shards(topo: Topology, n_shards: int) -> ShardPlan:
    """Partition ``topo`` into ``n_shards`` pod groups.

    Leaves (each with its attached hosts) and spines are dealt
    round-robin by index, so hosts never straddle a boundary mid-leaf
    and the cut runs exclusively through leaf<->spine links — whose
    propagation delay becomes the lookahead.  Only fabrics built by
    :func:`~repro.sim.topology.leaf_spine` carry the partition
    metadata; anything else raises.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    net = topo.network
    if n_shards == 1:
        return ShardPlan(1, 0.0,
                         {h: 0 for h in net.hosts},
                         {s.switch_id: 0 for s in net.switches})
    if (topo.host_leaf is None or topo.leaf_switch_ids is None
            or topo.spine_switch_ids is None):
        raise ValueError(
            "topology carries no partition metadata; only leaf_spine() "
            "fabrics can be sharded (star/dumbbell/fat-tree have no pod "
            "structure to cut along)")
    n_leaf = len(topo.leaf_switch_ids)
    if n_shards > n_leaf:
        raise ValueError(
            f"cannot cut {n_leaf} leaves into {n_shards} shards; "
            f"use at most n_shards={n_leaf}")
    shard_of_switch: Dict[int, int] = {}
    for idx, switch_id in enumerate(topo.leaf_switch_ids):
        shard_of_switch[switch_id] = idx % n_shards
    for idx, switch_id in enumerate(topo.spine_switch_ids):
        shard_of_switch[switch_id] = idx % n_shards
    shard_of_host = {
        host_id: shard_of_switch[topo.leaf_switch_ids[leaf_idx]]
        for host_id, leaf_idx in topo.host_leaf.items()}
    plan = ShardPlan(n_shards, 0.0, shard_of_host, shard_of_switch)
    boundary = boundary_ports(net, plan)
    if not boundary:
        raise ValueError("partition produced no cross-shard links")
    plan.lookahead = min(port.prop_delay for port, _o, _p in boundary)
    return plan


@dataclass
class ShardSummary:
    """Everything a finished shard sends back to the supervisor.

    Plain data only — this crosses a process boundary by pickle.
    ``fcts`` holds finish times for flows whose *receiver* is local
    (completion is receiver-side, so each flow appears in exactly one
    shard's summary); retransmit counters likewise cover local-host
    endpoints only, so the per-shard sums partition the serial totals.
    """

    shard_id: int
    outcome: str  # "done" | "budget" | "dead" | "horizon"
    rounds: int
    n_local_flows: int
    completed: int
    completed_target: int
    fcts: Dict[int, float]
    events_run: int
    sim_time: float
    peak_pending: int
    live_pending: int
    retransmits_total: int
    rtos_total: int
    retransmits_by_flow: Dict[int, int]
    ledger: dict
    telemetry: Optional[object] = None   # TelemetrySummary when observed
    validation: Optional[object] = None  # ValidationReport when validated


class ShardWorker:
    """One shard's whole life: build, neutralize, synchronize, harvest.

    Constructed (in the child process) with the shard id, the plan, the
    scheme/scenario and a ``{peer shard id: Connection}`` map; ``run()``
    returns the picklable :class:`ShardSummary` the supervisor merges.
    """

    # A window exchange should take microseconds; a peer silent this
    # long has died (the supervisor also watches the result pipes).
    RECV_TIMEOUT = 300.0

    def __init__(self, shard_id: int, plan: ShardPlan, scheme, scenario,
                 conns: Dict[int, object], *,
                 observe: bool = False, validate: bool = False) -> None:
        self.shard_id = shard_id
        self.plan = plan
        self.scheme = scheme
        self.scenario = scenario
        self.conns = conns
        self.observe = observe
        self.validate = validate
        self.rounds = 0
        self.outcome = "horizon"

    # -- lifecycle --------------------------------------------------------

    def run(self) -> ShardSummary:
        self._setup()
        if self.conns:
            self._run_windows()
        else:
            self._run_solo()
        return self._harvest()

    def _setup(self) -> None:
        from ..obs.telemetry import Telemetry
        from ..validate import RunAuditor

        plan, me = self.plan, self.shard_id
        scenario, scheme = self.scenario, self.scheme
        if scenario.faults is not None:
            raise ValueError(
                "sharded runs do not support fault plans (cross-shard "
                "fault windows have no deterministic-merge semantics yet)")
        if scenario.hybrid is not None and scenario.hybrid.enabled:
            raise ValueError(
                "sharded runs do not support the hybrid fast path "
                "(abstract flows have no boundary-crossing packets)")
        topo = scenario.build_topology()
        self.topo = topo
        net, sim = topo.network, topo.sim
        scheme.configure_network(net)
        if net.pfc_controllers:
            raise ValueError(
                "sharded runs do not support PFC (pause frames cross "
                "shard boundaries outside the data-packet protocol)")

        flow_source = scenario.build_flows(topo)
        flows = (flow_source if isinstance(flow_source, list)
                 else flow_source.materialize())
        self.flows = flows
        shard_of_host = plan.shard_of_host
        local_flows = [f for f in flows
                       if shard_of_host[f.src] == me
                       or shard_of_host[f.dst] == me]
        self.local_flows = local_flows
        # completion is detected at the receiver, so a flow is *this*
        # shard's to finish exactly when its destination is local
        self.completed_target = sum(
            1 for f in local_flows if shard_of_host[f.dst] == me)

        telemetry = Telemetry() if self.observe else None
        on_complete = None
        if telemetry is not None:
            telemetry.attach(sim, net, None)
            on_complete = telemetry.on_flow_complete
        ctx = TransportContext(sim, net, scenario.config,
                               on_complete=on_complete)
        ctx.telemetry = telemetry
        self.ctx = ctx
        self.telemetry = telemetry
        auditor = None
        if self.validate:
            auditor = RunAuditor(strict=(self.validate == "strict"))
        if auditor is not None:
            auditor.attach(sim, net, ctx)
        self.auditor = auditor

        ledger = ShardLedger()
        for k in range(plan.n_shards):
            if k != me:
                ledger.exported_to[k] = [0, 0]
                ledger.imported_from[k] = [0, 0]
        net.shard_ledger = ledger
        self.ledger = ledger
        self.outboxes: Dict[int, list] = {k: [] for k in sorted(self.conns)}
        self._ports = net.ports
        self._hosts = net.hosts

        # Boundary stubbing needs the true port ownership, so it runs
        # BEFORE replica uplinks are swapped out.
        port_index = {id(p): i for i, p in enumerate(net.ports)}
        for port, owner, peer_shard in boundary_ports(net, plan):
            if owner != me:
                continue  # simulated (for real) by its own shard
            port._tx_cb = _BoundaryEgress(port, port_index[id(port)],
                                          peer_shard, ledger,
                                          self.outboxes[peer_shard])
        for host in net.hosts.values():
            if shard_of_host[host.host_id] != me:
                host.uplink = InertPort(ledger, host.uplink)
        net.send_control = _ControlRouter(net, me, shard_of_host, ledger,
                                          self.outboxes)

        # Start only flows with a local endpoint: the sender's shard
        # simulates the data path, the receiver's shard the completion;
        # pure-transit shards just forward imports.
        if telemetry is None:
            sim.schedule_chain((f.start_time, scheme.start_flow, (f, ctx))
                               for f in local_flows)
        else:
            def _observed(flow, _scheme=scheme, _ctx=ctx, _tel=telemetry):
                _tel.on_flow_start(flow)
                _scheme.start_flow(flow, _ctx)
            sim.schedule_chain((f.start_time, _observed, (f,))
                               for f in local_flows)

    # -- window loops -----------------------------------------------------

    def _run_solo(self) -> None:
        """Single-shard run: no peers, so the shard may advance to its
        own horizon (``peek + L``) each window — but never by less than
        a serial drain slice, or an L of one propagation delay would
        turn the run into step-by-step execution."""
        scenario = self.scenario
        sim = self.topo.sim
        ctx, auditor = self.ctx, self.auditor
        budget = scenario.event_budget
        max_time = scenario.max_time
        target = self.completed_target
        stride = max(self.plan.lookahead, max_time / 200.0, 1e-4)
        T = 0.0
        while True:
            max_events = None
            if budget is not None:
                remaining = budget - sim.events_run
                if remaining <= 0:
                    self.outcome = "budget"
                    break
                max_events = remaining
            sim.run(until=T, max_events=max_events)
            self.rounds += 1
            sim.sweep()
            if auditor is not None:
                auditor.on_slice()
            if budget is not None and sim.events_run >= budget:
                self.outcome = "budget"
                break
            if len(ctx.completed) >= target:
                self.outcome = "done"
                break
            horizon = sim.peek_horizon(self.plan.lookahead)
            if horizon is None:
                self.outcome = "dead"
                break
            if T >= max_time:
                self.outcome = "horizon"
                break
            T = min(max(horizon, T + stride), max_time)

    def _run_windows(self) -> None:
        """The conservative synchronization loop (module docstring).

        Exchange is pairwise over the full mesh in sorted-pair order
        (the lower shard id of each pair sends first), which is
        deadlock-free for blocking pipes; every termination predicate
        is computed from exchanged values only, so all shards leave the
        loop in the same round.
        """
        plan, me = self.plan, self.shard_id
        sim = self.topo.sim
        scenario = self.scenario
        ctx, auditor = self.ctx, self.auditor
        budget = scenario.event_budget
        max_time = scenario.max_time
        lookahead = plan.lookahead
        conns = self.conns
        peers = sorted(conns)
        outboxes = self.outboxes
        inf = float("inf")
        T = 0.0
        while True:
            sim.run(until=T)
            self.rounds += 1
            sim.sweep()
            if auditor is not None:
                auditor.on_slice()

            # own null-message signals — raw floats, so every shard
            # folds the identical numbers into ``base``
            peek = sim.peek_time()
            min_arrival = inf
            for batch in outboxes.values():
                for entry in batch:
                    if entry[0] < min_arrival:
                        min_arrival = entry[0]
            my_arrival = min_arrival if min_arrival < inf else None
            done_local = len(ctx.completed) >= self.completed_target
            my_events = sim.events_run

            base = inf if peek is None else peek
            if min_arrival < base:
                base = min_arrival
            all_done = done_local
            total_events = my_events
            imports_round: List[Tuple[int, list]] = []
            for k in peers:
                conn = conns[k]
                message = (outboxes[k], peek, my_arrival,
                           done_local, my_events)
                if me < k:
                    conn.send(message)
                    outboxes[k].clear()
                    theirs = self._recv(conn, k)
                else:
                    theirs = self._recv(conn, k)
                    conn.send(message)
                    outboxes[k].clear()
                imports, peer_peek, peer_arrival, peer_done, \
                    peer_events = theirs
                imports_round.append((k, imports))
                if peer_peek is not None and peer_peek < base:
                    base = peer_peek
                if peer_arrival is not None and peer_arrival < base:
                    base = peer_arrival
                all_done = all_done and peer_done
                total_events += peer_events

            self._inject(imports_round)

            # symmetric termination — exchanged data only
            if all_done:
                self.outcome = "done"
                break
            if budget is not None and total_events >= budget:
                self.outcome = "budget"
                break
            if base == inf:
                self.outcome = "dead"
                break
            if T >= max_time:
                self.outcome = "horizon"
                break
            T = min(base + lookahead, max_time)

    def _recv(self, conn, peer: int):
        if not conn.poll(self.RECV_TIMEOUT):
            raise RuntimeError(
                f"shard {self.shard_id}: no window message from shard "
                f"{peer} after {self.RECV_TIMEOUT:.0f}s (peer crashed?)")
        try:
            return conn.recv()
        except EOFError:
            raise RuntimeError(
                f"shard {self.shard_id}: pipe to shard {peer} closed "
                f"mid-run") from None

    def _inject(self, imports_round: List[Tuple[int, list]]) -> None:
        """Schedule this round's imports deterministically.

        Entries are ordered by ``(arrival, source shard, batch index)``
        and given a contiguous reserved seq block, so the heap's
        tie-break order is a pure function of the merged traffic — the
        same run shards the same way twice.  The lookahead guarantees
        ``arrival >= sim.now``; the clamp is belt-and-braces (scheduling
        into the past would drag the clock backwards).
        """
        entries = []
        for k, imports in imports_round:
            for idx, entry in enumerate(imports):
                entries.append((entry[0], k, idx, entry))
        if not entries:
            return
        entries.sort(key=lambda e: (e[0], e[1], e[2]))
        sim = self.topo.sim
        ledger = self.ledger
        now = sim.now
        first = sim.reserve_seq_block(len(entries))
        for offset, (arrival, k, _idx, entry) in enumerate(entries):
            _a, kind, ref, pkt = entry
            pair = ledger.imported_from[k]
            pair[0] += 1
            pair[1] += pkt.size
            if arrival < now:
                arrival = now
            if kind == 0:
                sim.schedule_reserved(arrival, first + offset,
                                      self._deliver_data, ref, pkt)
            else:
                sim.schedule_reserved(arrival, first + offset,
                                      self._deliver_control, pkt)

    def _deliver_data(self, port_index: int, pkt) -> None:
        """An imported data packet reaches the boundary port's peer —
        the exact callback the wire's head arrival would have run."""
        ledger = self.ledger
        ledger.injected_pkts += 1
        ledger.injected_bytes += pkt.size
        self._ports[port_index].peer.receive(pkt)

    def _deliver_control(self, pkt) -> None:
        self._hosts[pkt.dst].receive_control(pkt)

    # -- harvest ----------------------------------------------------------

    def _harvest(self) -> ShardSummary:
        plan, me = self.plan, self.shard_id
        net = self.topo.network
        sim = self.topo.sim
        shard_of_host = plan.shard_of_host
        fcts = {f.flow_id: f.finish_time for f in self.local_flows
                if shard_of_host[f.dst] == me and f.finish_time is not None}
        # Retransmit harvest over LOCAL hosts only: replica senders (on
        # remote host replicas) churn futile RTOs that serial never
        # sees, so per-shard sums over real endpoints partition the
        # serial totals exactly.
        rtx_by_flow: Dict[int, int] = {}
        rtx_total = 0
        rtos = 0
        seen = set()
        for host in net.hosts.values():
            if shard_of_host[host.host_id] != me:
                continue
            for flow_id, endpoint in host.endpoints.items():
                if id(endpoint) in seen:
                    continue
                seen.add(id(endpoint))
                rtx = getattr(endpoint, "pkts_retransmitted", None)
                if rtx is None:
                    continue
                rtx_by_flow[flow_id] = rtx_by_flow.get(flow_id, 0) + rtx
                rtx_total += rtx
                rtos += getattr(endpoint, "rtos_fired", 0)
        telemetry_summary = None
        if self.telemetry is not None:
            self.telemetry.finalize(net, self.local_flows)
            telemetry_summary = self.telemetry.summary()
        validation = (self.auditor.finalize(self.local_flows)
                      if self.auditor is not None else None)
        return ShardSummary(
            shard_id=me,
            outcome=self.outcome,
            rounds=self.rounds,
            n_local_flows=len(self.local_flows),
            completed=len(self.ctx.completed),
            completed_target=self.completed_target,
            fcts=fcts,
            events_run=sim.events_run,
            sim_time=sim.now,
            peak_pending=sim.peak_pending,
            live_pending=sim.live_pending,
            retransmits_total=rtx_total,
            rtos_total=rtos,
            retransmits_by_flow=rtx_by_flow,
            ledger=self.ledger.digest(),
            telemetry=telemetry_summary,
            validation=validation,
        )
