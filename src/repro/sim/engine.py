"""Discrete-event simulation engine.

A deliberately small, fast core: a binary heap of ``(time, seq, Event)``
entries.  ``seq`` is a monotonically increasing insertion counter so that
events scheduled for the same instant fire in insertion order, which makes
every simulation bit-for-bit reproducible.

Events are cancellable: :meth:`Event.cancel` marks the entry dead and the
run loop skips it (lazy deletion), which is the standard way to get O(log n)
cancellation out of ``heapq``.

Three hot-path mechanisms keep per-packet overhead down (see
``docs/architecture.md`` §"The hot path"):

* an **event free-list** — every ``schedule`` draws from a pool of dead
  Event objects; events scheduled through
  :meth:`Simulator.schedule_recycled` / :meth:`Simulator.schedule_reserved`
  are returned to the pool after firing, cutting allocation churn on the
  packet path.  Returning is opt-in because a recycled object may be
  handed out again: only call sites that provably drop their reference
  before the event fires (the port serializer, the wire head arrival)
  may use it.
* **reserved sequence numbers** — :meth:`Simulator.reserve_seq` hands out
  a tie-break seq *now* for an event inserted *later* via
  :meth:`Simulator.schedule_reserved`.  The pipelined wire uses this to
  keep exactly one heap entry per link while firing arrivals with the
  exact ``(time, seq)`` keys the legacy one-event-per-packet model would
  have used — which is what makes the wire model bit-identical.
* an **event chain** (:class:`EventChain`) — a batch of pre-declared
  future events (the runner's flow-start schedule) reserves all its seqs
  up front but keeps only its earliest entry resident in the heap; each
  firing arms the next.  Same determinism argument as the wire, applied
  to the control plane.
"""

from __future__ import annotations

import gc
import heapq
import sys
from typing import Any, Callable, Iterable, Optional, Tuple

# Events returned to the free-list beyond this are dropped to the GC; the
# pool only needs to cover the handful of port/wire events live at once.
FREE_LIST_MAX = 1024

_INF = float("inf")
_NO_BUDGET = sys.maxsize


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    The run loop re-uses ``cancelled`` as the fired marker (set just
    before the callback runs), so :meth:`cancel` is a no-op on an event
    that already went off — callers may keep a handle and cancel it
    late without corrupting the engine's live-event counter.
    """

    __slots__ = ("time", "fn", "args", "cancelled", "recycle", "_sim")

    def __init__(self, time: float, fn: Callable[..., Any], args: tuple,
                 sim: "Optional[Simulator]" = None):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        # opt-in free-list return (see module docstring)
        self.recycle = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once,
        and a no-op on an event that has already fired."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._live -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "dead" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.9f} {name} {state}>"


class Simulator:
    """The event loop.

    Usage::

        sim = Simulator()
        sim.schedule(1e-6, callback, arg1, arg2)
        sim.run(until=0.1)

    ``sim.now`` is the current simulation time in seconds.
    """

    __slots__ = ("now", "_heap", "_seq", "_events_run", "_running",
                 "_live", "_free", "peak_pending")

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list = []
        self._seq: int = 0
        self._events_run: int = 0
        self._running: bool = False
        # live (uncancelled, unfired) events — maintained incrementally
        # (schedule: +1, cancel/fire: -1) so diagnostics never scan.
        # The run loops settle their fires in one batch at exit, so the
        # counter may read high *during* a callback; every exact
        # consumer (watchdog, auditor) reads between runs.
        self._live: int = 0
        # dead-Event pool (see module docstring)
        self._free: list = []
        # high-water mark of raw heap entries, updated on every push
        self.peak_pending: int = 0

    # -- checkpointing ---------------------------------------------------

    def __getstate__(self) -> dict:
        """Snapshot for :mod:`repro.resilience` checkpoints.

        The free-list is deliberately excluded: pooled Events are dead
        objects whose only purpose is allocation reuse, and whether an
        event comes from the pool or a fresh allocation cannot change
        behaviour — dropping them keeps snapshots lean.  ``_running``
        is reset because checkpoints are only taken between drain
        slices, never from inside a callback.
        """
        if self._running:
            raise RuntimeError(
                "cannot snapshot a Simulator from inside a running callback; "
                "checkpoints must be taken between drain slices")
        return {
            "now": self.now,
            "_heap": self._heap,
            "_seq": self._seq,
            "_events_run": self._events_run,
            "_live": self._live,
            "peak_pending": self.peak_pending,
        }

    def __setstate__(self, state: dict) -> None:
        self.now = state["now"]
        self._heap = state["_heap"]
        self._seq = state["_seq"]
        self._events_run = state["_events_run"]
        self._live = state["_live"]
        self.peak_pending = state["peak_pending"]
        self._running = False
        self._free = []

    # -- scheduling -----------------------------------------------------

    # Delays more negative than this are genuine scheduling-into-the-past
    # bugs; anything closer to zero is floating-point residue from
    # ``schedule_at(time - now)`` and is clamped to "now".
    NEGATIVE_DELAY_TOLERANCE = -1e-12

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            if delay < self.NEGATIVE_DELAY_TOLERANCE:
                raise ValueError(f"cannot schedule into the past (delay={delay})")
            delay = 0.0
        time = self.now + delay
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.fn = fn
            event.args = args
            event.cancelled = False
            event.recycle = False
        else:
            event = Event(time, fn, args, self)
        self._seq += 1
        self._live += 1
        heap = self._heap
        heapq.heappush(heap, (time, self._seq, event))
        if len(heap) > self.peak_pending:
            self.peak_pending = len(heap)
        return event

    def schedule_recycled(self, delay: float, fn: Callable[..., Any],
                          *args: Any) -> Event:
        """Like :meth:`schedule`, but the event returns to the free-list
        after firing.  The caller MUST NOT keep a reference past the
        callback (the object may be handed out again by a later
        ``schedule``); cancelled events are never recycled."""
        # full copy of schedule() — this runs once per transmitted
        # packet, so it does not pay a delegation frame
        if delay < 0:
            if delay < self.NEGATIVE_DELAY_TOLERANCE:
                raise ValueError(f"cannot schedule into the past (delay={delay})")
            delay = 0.0
        time = self.now + delay
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.fn = fn
            event.args = args
            event.cancelled = False
        else:
            event = Event(time, fn, args, self)
        event.recycle = True
        self._seq += 1
        self._live += 1
        heap = self._heap
        heapq.heappush(heap, (time, self._seq, event))
        if len(heap) > self.peak_pending:
            self.peak_pending = len(heap)
        return event

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute simulated time ``time``."""
        return self.schedule(time - self.now, fn, *args)

    def reserve_seq(self) -> int:
        """Claim the next insertion-order seq without scheduling yet.

        Pair with :meth:`schedule_reserved`.  The pipelined wire reserves
        a seq the moment a packet finishes serializing (exactly when the
        legacy model would have scheduled its arrival), then inserts the
        head event later — so same-instant tie-breaking is unchanged.
        """
        self._seq += 1
        return self._seq

    def reserve_seq_block(self, n: int) -> int:
        """Claim ``n`` consecutive seqs at once; returns the first.

        The streaming flow scheduler (:class:`LazyEventChain` with a
        declared ``count``) reserves its whole seq block up front —
        exactly the counter values a materialized :class:`EventChain`
        over the same entries would have claimed — then consumes them
        one by one as the stream is pulled.  That is what makes a
        streamed run bit-identical to a materialized one: same-instant
        tie-breaking cannot tell the two apart.
        """
        if n < 0:
            raise ValueError(f"cannot reserve {n} seqs")
        first = self._seq + 1
        self._seq += n
        return first

    def schedule_reserved(self, time: float, seq: int,
                          fn: Callable[..., Any], *args: Any) -> Event:
        """Insert an event at absolute ``time`` with a pre-reserved seq.

        ``time`` must not lie in the past and ``seq`` must come from
        :meth:`reserve_seq`; the event is free-list recycled after it
        fires.  No new seq is consumed, so surrounding ``schedule``
        calls see the exact counter values they would have seen had the
        event been inserted at reservation time.
        """
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.fn = fn
            event.args = args
            event.cancelled = False
        else:
            event = Event(time, fn, args, self)
        event.recycle = True
        self._live += 1
        heap = self._heap
        heapq.heappush(heap, (time, seq, event))
        if len(heap) > self.peak_pending:
            self.peak_pending = len(heap)
        return event

    def schedule_chain(self, entries: Iterable[Tuple]) -> "EventChain":
        """Declare a batch of future events held as ONE heap entry.

        ``entries`` yields ``(absolute_time, fn, args)`` tuples; each
        claims a seq in iteration order — exactly what a loop of
        ``schedule_at`` calls would have consumed — so scheduling a
        chain is bit-identical to scheduling the events individually.
        """
        return EventChain(self, entries)

    def schedule_lazy_chain(self, entries: Iterable[Tuple],
                            count: Optional[int] = None) -> "LazyEventChain":
        """Like :meth:`schedule_chain`, but ``entries`` is pulled lazily.

        Entries must arrive in non-decreasing time order (the
        materialized chain sorts; a lazy one cannot).  ``count``, when
        given, must be the exact number of entries the source will
        yield: the chain pre-reserves that many seqs so firing order is
        bit-identical to the materialized chain over the same entries.
        ``count=None`` claims seqs lazily — for unbounded sources,
        where no materialized counterpart exists to be identical to.
        """
        return LazyEventChain(self, entries, count)

    # -- execution ------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain the event heap.

        Stops when the heap is empty, when simulated time would pass
        ``until``, or after ``max_events`` events.  Returns the number of
        events executed by this call.
        """
        self._running = True
        # The loop allocates heavily (heap entries, packets, ACKs) but
        # creates no reference cycles, so the generational collector
        # only burns time scanning survivors — suspend it for the drain.
        # (~1k gen-0 collections per medium run otherwise.)
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if max_events is None:
                if until is None:
                    executed = self._run_unbounded()
                else:
                    executed = self._run_until(until)
            else:
                executed = self._run_bounded(until, max_events)
        finally:
            self._running = False
            if gc_was_enabled:
                gc.enable()
        if until is not None and self.now < until:
            # Fast-forward the clock only when the heap really was drained
            # up to ``until``.  If the loop broke on ``max_events`` there
            # are still live events at or before ``until``; jumping past
            # them would make the next slice run with a clock *behind*
            # ``self.now`` — time must never go backwards.
            next_time = self.peek_time()
            if next_time is None or next_time > until:
                self.now = until
        self._events_run += executed
        return executed

    def _run_unbounded(self) -> int:
        """Drain everything: no bound checks anywhere in the loop."""
        heap = self._heap
        pop = heapq.heappop
        free = self._free
        executed = 0
        while heap:
            time, _seq, event = pop(heap)
            if event.cancelled:
                continue
            event.cancelled = True  # fired; late cancel() is now a no-op
            self.now = time
            executed += 1
            event.fn(*event.args)
            if event.recycle:
                event.fn = None
                event.args = None  # drop packet refs before pooling
                if len(free) < FREE_LIST_MAX:
                    free.append(event)
        self._live -= executed
        return executed

    def _run_until(self, until: float) -> int:
        """Time-sliced drain with no event budget — the common slice loop
        (the runner drains in ~200 slices per run), so it carries no
        per-iteration budget compare.  An overshooting head is pushed
        straight back (same key — order is untouched)."""
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        free = self._free
        executed = 0
        while heap:
            entry = pop(heap)
            event = entry[2]
            if event.cancelled:
                continue
            time = entry[0]
            if time > until:
                push(heap, entry)
                break
            event.cancelled = True  # fired; late cancel() is now a no-op
            self.now = time
            executed += 1
            event.fn(*event.args)
            if event.recycle:
                event.fn = None
                event.args = None  # drop packet refs before pooling
                if len(free) < FREE_LIST_MAX:
                    free.append(event)
        self._live -= executed
        return executed

    def _run_bounded(self, until: Optional[float],
                     max_events: Optional[int]) -> int:
        """Slice drain: ``None`` bounds become +inf/maxsize sentinels so
        the loop compares plain numbers instead of branching on None.
        An overshooting head is pushed straight back (same key — order
        is untouched) rather than peeked at every iteration."""
        heap = self._heap
        pop = heapq.heappop
        free = self._free
        until_f = _INF if until is None else until
        budget = _NO_BUDGET if max_events is None else max_events
        executed = 0
        while heap and executed < budget:
            entry = pop(heap)
            event = entry[2]
            if event.cancelled:
                continue
            time = entry[0]
            if time > until_f:
                heapq.heappush(heap, entry)
                break
            event.cancelled = True
            self.now = time
            executed += 1
            event.fn(*event.args)
            if event.recycle:
                event.fn = None
                event.args = None
                if len(free) < FREE_LIST_MAX:
                    free.append(event)
        self._live -= executed
        return executed

    def step(self) -> bool:
        """Execute exactly one pending event.  Returns False if none remain."""
        heap = self._heap
        while heap:
            time, _seq, event = heapq.heappop(heap)
            if event.cancelled:
                continue
            event.cancelled = True
            self._live -= 1
            self.now = time
            event.fn(*event.args)
            self._events_run += 1
            if event.recycle:
                event.fn = None
                event.args = None
                if len(self._free) < FREE_LIST_MAX:
                    self._free.append(event)
            return True
        return False

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None when the heap is empty.

        Pure read: unlike the historical implementation this never pops
        lazily-cancelled entries, so callers polling between slices (the
        runner watchdog) observe engine state without mutating it.  Use
        :meth:`compact` when you actually want corpses swept.
        """
        heap = self._heap
        if heap:
            head = heap[0]
            if not head[2].cancelled:
                return head[0]
        if self._live == 0:
            return None
        # cancelled head: scan for the earliest live entry (rare — the
        # run loop pops corpses for free as it drains)
        best: Optional[float] = None
        for time, _seq, event in heap:
            if not event.cancelled and (best is None or time < best):
                best = time
        return best

    def peek_horizon(self, lookahead: float) -> Optional[float]:
        """Earliest time any *new* cross-boundary effect of the next
        event could land: ``peek_time() + lookahead``, or None when the
        heap is dead.

        This is the conservative window bound a sharded run
        (:mod:`repro.sim.shard`) may safely advance to on its own: every
        export produced by events at ``t >= peek_time()`` arrives at a
        peer no earlier than ``t + lookahead``.  Pure read, like
        :meth:`peek_time`.
        """
        next_time = self.peek_time()
        if next_time is None:
            return None
        return next_time + lookahead

    def compact(self) -> int:
        """Explicitly pop cancelled entries off the heap head; returns
        how many corpses were removed.  Never required for correctness —
        the run loop skips corpses lazily — but callers that just
        cancelled a large batch can reclaim the memory eagerly."""
        heap = self._heap
        removed = 0
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            removed += 1
        return removed

    def sweep(self) -> int:
        """Drop every cancelled entry (not just head corpses) and
        restore the heap invariant; returns how many were removed.

        Determinism-safe: entries are totally ordered by their unique
        ``(time, seq)`` keys, so any valid heap over the same live
        entries pops in exactly the same order.  Must not be called
        from inside a running callback (the run loops hold the heap
        list as a local); the experiment runner sweeps between drain
        slices so long-dead timers stop inflating ``pending``.
        """
        heap = self._heap
        if len(heap) == self._live:
            return 0
        live = [entry for entry in heap if not entry[2].cancelled]
        removed = len(heap) - len(live)
        if removed:
            heapq.heapify(live)
            self._heap = live
        return removed

    def audit_heap(self) -> tuple:
        """``(live_count, min_live_time)`` without touching engine state.

        ``live_count`` reads the incremental counter (O(1));
        ``min_live_time`` is the head entry when it is live (the common
        case) and falls back to a scan only when the head is a corpse.
        ``min_live_time`` is None when no live event is pending.
        """
        heap = self._heap
        if heap and not heap[0][2].cancelled:
            return self._live, heap[0][0]
        if self._live == 0:
            return 0, None
        min_time: Optional[float] = None
        for time, _seq, event in heap:
            if event.cancelled:
                continue
            if min_time is None or time < min_time:
                min_time = time
        return self._live, min_time

    @property
    def pending(self) -> int:
        """Number of heap entries, including cancelled ones."""
        return len(self._heap)

    @property
    def live_pending(self) -> int:
        """Number of pending events that will actually fire.

        ``pending`` counts raw heap entries, which with lazy deletion
        includes already-cancelled timers; diagnostics (the run-health
        watchdog, stall reports) should use this count instead.
        Maintained incrementally — schedule increments, cancel and fire
        decrement — so reading it is O(1) (``tests/test_engine.py`` and
        ``validate.RunAuditor`` cross-check it against a full heap scan).
        """
        return self._live

    @property
    def events_run(self) -> int:
        """Total events executed over the simulator's lifetime."""
        return self._events_run


class EventChain:
    """A batch of pre-declared events held as one resident heap entry.

    The reserve-then-arm trick of the pipelined wire, generalised: every
    entry claims its tie-break seq at declaration time (in iteration
    order, exactly as individual ``schedule_at`` calls would), the
    entries are sorted by ``(time, seq)`` — the heap's own order — and
    only the earliest is scheduled; each firing arms its successor.  A
    run that pre-declares N flow starts therefore keeps 1 heap entry
    for them instead of N, with bit-identical firing order.

    Entries cannot be cancelled individually (nothing in the repo needs
    to); drop the chain wholesale with :meth:`cancel`.
    """

    __slots__ = ("sim", "_entries", "_next", "head_event")

    def __init__(self, sim: Simulator, entries: Iterable[Tuple]) -> None:
        self.sim = sim
        tolerance = sim.NEGATIVE_DELAY_TOLERANCE
        resolved = []
        for time, fn, args in entries:
            delay = time - sim.now
            if delay < 0:
                if delay < tolerance:
                    raise ValueError(
                        f"cannot schedule into the past (delay={delay})")
                delay = 0.0
            sim._seq += 1
            resolved.append((sim.now + delay, sim._seq, fn, args))
        resolved.sort(key=lambda entry: (entry[0], entry[1]))
        self._entries = resolved
        self._next = 0
        self.head_event: Optional[Event] = None
        if resolved:
            time, seq, _fn, _args = resolved[0]
            self.head_event = sim.schedule_reserved(time, seq, self._fire)

    def _fire(self) -> None:
        # arm the successor BEFORE the callback so a non-empty chain
        # always has its head in the heap, exactly like the wire
        entries = self._entries
        index = self._next
        _time, _seq, fn, args = entries[index]
        index += 1
        self._next = index
        if index < len(entries):
            time, seq, _fn, _args = entries[index]
            self.head_event = self.sim.schedule_reserved(time, seq, self._fire)
        else:
            self.head_event = None
            self._entries = []  # drop callback/arg refs once exhausted
            self._next = 0      # keep __len__ at 0 for the empty list
        fn(*args)

    def cancel(self) -> None:
        """Stop the chain: no remaining entry will fire."""
        if self.head_event is not None:
            self.head_event.cancel()
            self.head_event = None
        self._entries = []
        self._next = 0

    def __len__(self) -> int:
        """Entries still to fire."""
        return len(self._entries) - self._next


class LazyEventChain:
    """An :class:`EventChain` whose entries are pulled on demand.

    The chain holds ONE look-ahead entry (armed in the heap) plus the
    un-consumed source iterator — constant memory no matter how many
    entries the source will ever yield.  This is what lets the runner
    drive a multi-million-flow :class:`~repro.workloads.FlowStream`
    without materializing the start schedule.

    Determinism: with a declared ``count`` the chain reserves its whole
    seq block at construction (see :meth:`Simulator.reserve_seq_block`),
    so every entry fires with the exact ``(time, seq)`` key the
    materialized chain would have used.  Without a count, seqs are
    claimed at arm time — still deterministic run to run, but only
    comparable to another lazy run.

    The source must be picklable if the run is to be checkpointed: the
    chain sits in the simulator's object graph (via its armed head
    event), so a snapshot carries the iterator — and its RNG/cursor
    state — along, and a resumed run continues the stream exactly where
    it stopped.
    """

    __slots__ = ("sim", "_entries", "_next_seq", "_seqs_left", "_current",
                 "_last_time", "head_event")

    def __init__(self, sim: Simulator, entries: Iterable[Tuple],
                 count: Optional[int] = None) -> None:
        self.sim = sim
        self._entries = iter(entries)
        if count is not None:
            self._next_seq = sim.reserve_seq_block(count)
            self._seqs_left = count
        else:
            self._next_seq = None
            self._seqs_left = None
        self._current: Optional[Tuple] = None
        self._last_time: Optional[float] = None
        self.head_event: Optional[Event] = None
        self._arm()

    def _arm(self) -> None:
        source = self._entries
        entry = None if source is None else next(source, None)
        if entry is None:
            if self._seqs_left:
                raise ValueError(
                    f"lazy chain source ended {self._seqs_left} entries "
                    f"short of its declared count")
            self._current = None
            self._entries = None
            self.head_event = None
            return
        time, fn, args = entry
        sim = self.sim
        delay = time - sim.now
        if delay < 0:
            if delay < sim.NEGATIVE_DELAY_TOLERANCE:
                raise ValueError(
                    f"cannot schedule into the past (delay={delay})")
            time = sim.now
        if self._last_time is not None and time < self._last_time:
            raise ValueError(
                f"lazy chain entries must be non-decreasing in time "
                f"({time} < {self._last_time})")
        self._last_time = time
        if self._seqs_left is not None:
            if self._seqs_left == 0:
                raise ValueError(
                    "lazy chain source yielded more entries than its "
                    "declared count")
            seq = self._next_seq
            self._next_seq += 1
            self._seqs_left -= 1
        else:
            seq = sim.reserve_seq()
        self._current = (fn, args)
        self.head_event = sim.schedule_reserved(time, seq, self._fire)

    def _fire(self) -> None:
        # arm the successor BEFORE the callback, exactly like EventChain:
        # a non-exhausted chain always has its head in the heap
        fn, args = self._current
        self._arm()
        fn(*args)

    def cancel(self) -> None:
        """Stop the chain: no remaining entry will fire, the source is
        dropped un-consumed."""
        if self.head_event is not None:
            self.head_event.cancel()
            self.head_event = None
        self._current = None
        self._entries = None
        self._seqs_left = 0 if self._seqs_left is not None else None

    @property
    def exhausted(self) -> bool:
        """True once the source has been fully consumed and fired."""
        return self.head_event is None


class RearmableEvent:
    """A single re-armable heap entry for coarse *epoch* work.

    The hybrid fast path advances abstract flows at congestion epochs —
    irregular instants recomputed every time the flow set or the fabric
    changes.  Holding one of these per controller instead of scheduling
    ad-hoc events keeps the bookkeeping simple: at most ONE live entry
    exists at a time; re-arming lazily cancels the resident entry (a
    corpse the heap sweeps later, exactly like timer churn) and
    schedules a replacement.  The events are plain non-recycled
    ``schedule_at`` entries — the holder keeps a reference across
    firings, so they must never enter the free list — which lets epoch
    events coexist with the recycled wire/timer events and the
    reserved-seq chains without aliasing.

    Plain data + bound methods throughout: a RearmableEvent pickles
    inside checkpoints along with the simulator heap, and a resumed run
    fires the restored entry at the identical (time, seq) slot.
    """

    __slots__ = ("sim", "fn", "event")

    def __init__(self, sim: Simulator, fn) -> None:
        self.sim = sim
        self.fn = fn
        self.event: Optional[Event] = None

    def set_at(self, time: float) -> None:
        """Arm (or move) the single entry to fire at ``time``."""
        if self.event is not None:
            self.event.cancel()
        self.event = self.sim.schedule_at(time, self._fire)
        self.event.recycle = False  # holder keeps a reference

    def clear(self) -> None:
        """Disarm without firing."""
        if self.event is not None:
            self.event.cancel()
            self.event = None

    def _fire(self) -> None:
        self.event = None
        self.fn()

    @property
    def armed(self) -> bool:
        return self.event is not None

    @property
    def time(self) -> Optional[float]:
        """Scheduled fire time of the live entry, or None."""
        return self.event.time if self.event is not None else None
