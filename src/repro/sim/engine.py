"""Discrete-event simulation engine.

A deliberately small, fast core: a binary heap of ``(time, seq, Event)``
entries.  ``seq`` is a monotonically increasing insertion counter so that
events scheduled for the same instant fire in insertion order, which makes
every simulation bit-for-bit reproducible.

Events are cancellable: :meth:`Event.cancel` marks the entry dead and the
run loop skips it (lazy deletion), which is the standard way to get O(log n)
cancellation out of ``heapq``.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`."""

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: float, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.9f} {name} {state}>"


class Simulator:
    """The event loop.

    Usage::

        sim = Simulator()
        sim.schedule(1e-6, callback, arg1, arg2)
        sim.run(until=0.1)

    ``sim.now`` is the current simulation time in seconds.
    """

    __slots__ = ("now", "_heap", "_seq", "_events_run", "_running")

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list = []
        self._seq: int = 0
        self._events_run: int = 0
        self._running: bool = False

    # -- scheduling -----------------------------------------------------

    # Delays more negative than this are genuine scheduling-into-the-past
    # bugs; anything closer to zero is floating-point residue from
    # ``schedule_at(time - now)`` and is clamped to "now".
    NEGATIVE_DELAY_TOLERANCE = -1e-12

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            if delay < self.NEGATIVE_DELAY_TOLERANCE:
                raise ValueError(f"cannot schedule into the past (delay={delay})")
            delay = 0.0
        event = Event(self.now + delay, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, (event.time, self._seq, event))
        return event

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute simulated time ``time``."""
        return self.schedule(time - self.now, fn, *args)

    # -- execution ------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain the event heap.

        Stops when the heap is empty, when simulated time would pass
        ``until``, or after ``max_events`` events.  Returns the number of
        events executed by this call.
        """
        executed = 0
        heap = self._heap
        self._running = True
        try:
            while heap:
                time, _seq, event = heap[0]
                if event.cancelled:
                    heapq.heappop(heap)
                    continue
                if until is not None and time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                heapq.heappop(heap)
                self.now = time
                event.fn(*event.args)
                executed += 1
        finally:
            self._running = False
        if until is not None and self.now < until:
            # Fast-forward the clock only when the heap really was drained
            # up to ``until``.  If the loop broke on ``max_events`` there
            # are still live events at or before ``until``; jumping past
            # them would make the next slice run with a clock *behind*
            # ``self.now`` — time must never go backwards.
            next_time = self.peek_time()
            if next_time is None or next_time > until:
                self.now = until
        self._events_run += executed
        return executed

    def step(self) -> bool:
        """Execute exactly one pending event.  Returns False if none remain."""
        heap = self._heap
        while heap:
            time, _seq, event = heap[0]
            heapq.heappop(heap)
            if event.cancelled:
                continue
            self.now = time
            event.fn(*event.args)
            self._events_run += 1
            return True
        return False

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None when the heap is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def audit_heap(self) -> tuple:
        """``(live_count, min_live_time)`` in one non-destructive pass.

        Unlike :meth:`peek_time` this never pops lazily-cancelled
        entries, so the invariant auditor can call it without touching
        engine state at all.  ``min_live_time`` is None when no live
        event is pending.
        """
        live = 0
        min_time: Optional[float] = None
        for time, _seq, event in self._heap:
            if event.cancelled:
                continue
            live += 1
            if min_time is None or time < min_time:
                min_time = time
        return live, min_time

    @property
    def pending(self) -> int:
        """Number of heap entries, including cancelled ones."""
        return len(self._heap)

    @property
    def live_pending(self) -> int:
        """Number of pending events that will actually fire.

        ``pending`` counts raw heap entries, which with lazy deletion
        includes already-cancelled timers; diagnostics (the run-health
        watchdog, stall reports) should use this count instead.
        """
        return sum(1 for _, _, event in self._heap if not event.cancelled)

    @property
    def events_run(self) -> int:
        """Total events executed over the simulator's lifetime."""
        return self._events_run
