"""Output port: a strict-priority mux drained by a point-to-point link.

A :class:`Port` is the unit of contention in the simulator.  Every device
(host NIC or switch port) owns one Port per outgoing link.  When a packet is
enqueued and the transmitter is idle, transmission begins immediately;
otherwise the packet waits in the mux.  Completion of a transmission hands
the packet to the port's :class:`Wire`, which delivers it to the peer after
the propagation delay, and pulls the next packet from the mux.

The wire is a *pipelined* FIFO modelled after htsim's pipe: a deque of
in-flight ``(arrival_time, seq, pkt)`` entries with exactly **one**
scheduled head-arrival event per link, instead of one heap event per
in-flight packet.  FIFO delivery is exact — the port serializes in order
and ``prop_delay`` is constant, so arrival times are strictly increasing —
and bit-identity with the legacy one-event-per-packet model is guaranteed
by reserving each arrival's tie-break seq at serialization-completion time
(see :meth:`~repro.sim.engine.Simulator.reserve_seq`).
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import List, Optional

from .engine import Event, Simulator
from .packet import NUM_PRIORITIES, Packet
from .queues import PriorityMux


class FaultChain:
    """Chain-of-responsibility over a port's attached fault injectors.

    An injector is any object exposing ``admit(pkt) -> bool`` (called
    when a packet is offered to the port; False = drop before enqueue)
    and ``transmit(pkt) -> bool`` (called when serialization completes;
    False = the packet is lost on the wire and never reaches the peer).
    Ports carry no chain at all (``fault_chain is None``) until the
    first injector attaches, so the fault machinery costs nothing when
    unused.
    """

    __slots__ = ("injectors",)

    def __init__(self) -> None:
        self.injectors: list = []

    def admit(self, pkt: Packet) -> bool:
        for injector in self.injectors:
            if not injector.admit(pkt):
                return False
        return True

    def transmit(self, pkt: Packet) -> bool:
        for injector in self.injectors:
            if not injector.transmit(pkt):
                return False
        return True


class Wire:
    """The propagation pipe between a port and its peer.

    ``pending`` holds every in-flight packet as ``(arrival_time, seq,
    pkt, event)`` in FIFO order.  In pipelined mode (the default) only
    the head has a scheduled event (``event`` is None in the tuples;
    the single head event lives in ``head_event``) and delivering the
    head arms the next entry with its *reserved* seq.  Legacy mode
    schedules one event per packet — the historical model, kept so the
    equivalence suite can pin bit-identity between the two.

    Either way the deque is the authoritative record of what is on the
    wire: the invariant auditor reads it for the fabric in-propagation
    residual, and :meth:`flush` (link failure mid-flight) drops exactly
    its contents.
    """

    # Flip to False to build new wires in legacy one-event-per-packet
    # mode (tests/test_wire_equivalence.py monkeypatches this).
    PIPELINED_DEFAULT = True

    __slots__ = ("sim", "port", "pending", "head_event", "pipelined",
                 "_deliver_cb", "_recv_cb")

    def __init__(self, sim: Simulator, port: "Port",
                 pipelined: Optional[bool] = None) -> None:
        self.sim = sim
        self.port = port
        self.pending: deque = deque()
        self.head_event = None
        self.pipelined = (self.PIPELINED_DEFAULT if pipelined is None
                          else pipelined)
        # bound once: the head-arrival callback is installed once per
        # packet, and binding it per install shows up in profiles
        self._deliver_cb = self._deliver
        # peer.receive, bound lazily on first delivery (the peer is
        # fixed after Port construction — nothing ever reassigns it)
        self._recv_cb = None

    def __getstate__(self) -> dict:
        """Checkpoint snapshot: the bound-callback caches are rebuilt on
        restore instead of being pickled (pickling them would only
        duplicate the bound-method objects in the snapshot)."""
        return {
            "sim": self.sim,
            "port": self.port,
            "pending": self.pending,
            "head_event": self.head_event,
            "pipelined": self.pipelined,
        }

    def __setstate__(self, state: dict) -> None:
        self.sim = state["sim"]
        self.port = state["port"]
        self.pending = state["pending"]
        self.head_event = state["head_event"]
        self.pipelined = state["pipelined"]
        self._deliver_cb = self._deliver
        self._recv_cb = None  # rebound lazily on first delivery

    def push(self, pkt: Packet) -> None:
        """Put a freshly serialized packet onto the wire.

        Called at serialization-completion time; the seq reserved here is
        exactly the one the legacy model's ``schedule`` would have
        consumed, so heap tie-breaking is unchanged.
        """
        sim = self.sim
        arrival = sim.now + self.port.prop_delay
        sim._seq += 1  # reserve_seq(), sans the call frame — hot path
        seq = sim._seq
        if self.pipelined:
            self.pending.append((arrival, seq, pkt, None))
            if self.head_event is None:
                self.head_event = sim.schedule_reserved(
                    arrival, seq, self._deliver)
        else:
            event = sim.schedule_reserved(arrival, seq, self._deliver_legacy)
            self.pending.append((arrival, seq, pkt, event))

    def _deliver(self) -> None:
        """Head arrival: hand the packet to the peer, re-arm for the next.

        The next entry is armed *before* the peer callback runs so that
        whenever any other event executes, a non-empty wire always has
        its head in the heap — the same visibility the legacy model
        provides to heap-inspecting diagnostics.
        """
        pending = self.pending
        _arrival, _seq, pkt, _event = pending.popleft()
        if pending:
            # schedule_reserved, inlined (hot: once per pipelined packet)
            arrival, seq, _pkt, _ = pending[0]
            sim = self.sim
            free = sim._free
            if free:
                event = free.pop()
                event.time = arrival
                event.fn = self._deliver_cb
                event.args = ()
                event.cancelled = False
            else:
                event = Event(arrival, self._deliver_cb, (), sim)
            event.recycle = True
            sim._live += 1
            heap = sim._heap
            heappush(heap, (arrival, seq, event))
            if len(heap) > sim.peak_pending:
                sim.peak_pending = len(heap)
            self.head_event = event
        else:
            self.head_event = None
        recv = self._recv_cb
        if recv is None:
            recv = self._recv_cb = self.port.peer.receive
        recv(pkt)

    def _deliver_legacy(self) -> None:
        # events fire in arrival order and arrivals are FIFO, so the
        # head of the deque is always the packet this event carries
        _arrival, _seq, pkt, _event = self.pending.popleft()
        self.port.peer.receive(pkt)

    def flush(self) -> List[Packet]:
        """Drop every in-flight packet (yanked cable); returns them.

        The caller is responsible for accounting — see
        :meth:`Port.flush_wire`, which books them as wire-fault losses.
        """
        if self.head_event is not None:
            self.head_event.cancel()
            self.head_event = None
        flushed: List[Packet] = []
        for _arrival, _seq, pkt, event in self.pending:
            if event is not None:
                event.cancel()
            flushed.append(pkt)
        self.pending.clear()
        return flushed

    def __len__(self) -> int:
        return len(self.pending)

    @property
    def in_flight_bytes(self) -> int:
        return sum(entry[2].size for entry in self.pending)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "pipelined" if self.pipelined else "legacy"
        return f"<Wire {self.port.name} {mode} in_flight={len(self.pending)}>"


class Port:
    """A transmitter + queue attached to one end of a link.

    Parameters
    ----------
    sim:
        The simulation engine.
    rate_bps:
        Link capacity in bits per second.
    prop_delay:
        One-way propagation delay in seconds.
    mux:
        The priority mux buffering packets awaiting transmission.
    peer:
        The device at the other end; must expose ``receive(pkt)``.
    name:
        Human-readable identifier for tracing.
    """

    __slots__ = (
        "sim", "_rate_bps", "byte_time", "prop_delay", "mux", "peer", "name",
        "wire", "busy", "bytes_sent", "pkts_sent", "busy_time", "_tx_start",
        "_tx_cb", "fault_chain",
        "fault_admit_drops", "fault_admit_drop_bytes",
        "fault_wire_drops", "fault_wire_drop_bytes",
        "paused_mask", "pause_hook", "pauses_received", "pause_seconds",
        "_pause_refs", "_pause_started",
    )

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        prop_delay: float,
        mux: PriorityMux,
        peer=None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self._rate_bps = rate_bps
        self.byte_time = 8.0 / rate_bps
        self.prop_delay = prop_delay
        self.mux = mux
        self.peer = peer
        self.name = name
        self.wire = Wire(sim, self)
        self.busy = False
        self.bytes_sent = 0
        self.pkts_sent = 0
        self.busy_time = 0.0
        self._tx_start = 0.0
        self._tx_cb = self._tx_done  # bound once; installed per packet
        self.fault_chain: Optional[FaultChain] = None
        # Conservation-ledger counters (repro.validate): packets a fault
        # chain killed before the mux saw them vs. on the wire after
        # serialization.  Injectors keep their own totals; these split
        # the loss by *where* it happened, which the injector totals
        # (admit + wire + flush combined) cannot.
        self.fault_admit_drops = 0
        self.fault_admit_drop_bytes = 0
        self.fault_wire_drops = 0
        self.fault_wire_drop_bytes = 0
        # PFC pause state: a bitmask of priorities this port must not
        # drain.  Ref-counted per priority (several downstream muxes —
        # or a PFC-storm injector — may pause the same class at once);
        # the lazy lists keep the common lossy port at two None slots.
        self.paused_mask = 0
        self.pause_hook = None  # fn(port, priority, paused: bool)
        self.pauses_received = 0
        self.pause_seconds = 0.0
        self._pause_refs: Optional[list] = None
        self._pause_started: Optional[list] = None

    def __getstate__(self) -> dict:
        """Checkpoint snapshot: same contract as :meth:`Wire.__getstate__`
        — the ``_tx_cb`` bound-callback cache is rebuilt on restore."""
        return {name: getattr(self, name) for name in self.__slots__
                if name != "_tx_cb"}

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._tx_cb = self._tx_done

    @property
    def rate_bps(self) -> float:
        """Link capacity; assignable (the port degrader rescales it) —
        the setter keeps the cached per-byte serialization time fresh."""
        return self._rate_bps

    @rate_bps.setter
    def rate_bps(self, value: float) -> None:
        self._rate_bps = value
        self.byte_time = 8.0 / value

    # -- fault injection --------------------------------------------------

    def attach_fault(self, injector) -> None:
        """Add a fault injector to this port's chain (created lazily)."""
        if self.fault_chain is None:
            self.fault_chain = FaultChain()
        self.fault_chain.injectors.append(injector)

    def detach_fault(self, injector) -> None:
        """Remove ``injector``; drops the chain when it empties."""
        chain = self.fault_chain
        if chain is None:
            return
        if injector in chain.injectors:
            chain.injectors.remove(injector)
        if not chain.injectors:
            self.fault_chain = None

    def flush_wire(self) -> int:
        """Drop every packet propagating on this link (dead link).

        Flushed packets already counted as transmitted (``pkts_sent``)
        but will never arrive, so they are booked as wire-fault losses —
        the same ledger a ``transmit()`` veto feeds — keeping the
        fabric's packet/byte conservation laws exact.
        """
        flushed = self.wire.flush()
        for pkt in flushed:
            self.fault_wire_drops += 1
            self.fault_wire_drop_bytes += pkt.size
        return len(flushed)

    # -- PFC pause/resume -------------------------------------------------

    def pfc_pause(self, priority: int) -> None:
        """A PAUSE frame for ``priority`` arrived: stop draining it.

        Ref-counted — the priority resumes only once every pauser has
        sent its RESUME.  An in-progress transmission is never aborted
        (real PFC is also packet-granular); the pause takes effect at
        the next dequeue decision.
        """
        refs = self._pause_refs
        if refs is None:
            refs = self._pause_refs = [0] * NUM_PRIORITIES
            self._pause_started = [0.0] * NUM_PRIORITIES
        self.pauses_received += 1
        refs[priority] += 1
        if refs[priority] == 1:
            self.paused_mask |= 1 << priority
            self._pause_started[priority] = self.sim.now
            if self.pause_hook is not None:
                self.pause_hook(self, priority, True)

    def pfc_resume(self, priority: int) -> None:
        """A RESUME (PAUSE with zero quanta) arrived: drop one pause ref."""
        refs = self._pause_refs
        if refs is None or refs[priority] == 0:
            return
        refs[priority] -= 1
        if refs[priority] == 0:
            self.paused_mask &= ~(1 << priority)
            self.pause_seconds += self.sim.now - self._pause_started[priority]
            if self.pause_hook is not None:
                self.pause_hook(self, priority, False)
            if not self.busy and self.mux.nonempty_mask & ~self.paused_mask:
                self._start_next()

    def total_pause_seconds(self, now: float) -> float:
        """Cumulative paused time across priorities, open intervals included."""
        total = self.pause_seconds
        if self.paused_mask:
            mask = self.paused_mask
            started = self._pause_started
            while mask:
                bit = mask & -mask
                mask ^= bit
                total += now - started[bit.bit_length() - 1]
        return total

    # -- transmission -----------------------------------------------------

    def send(self, pkt: Packet) -> bool:
        """Enqueue ``pkt`` for transmission.  Returns False if dropped."""
        chain = self.fault_chain
        if chain is not None and not chain.admit(pkt):
            self.fault_admit_drops += 1
            self.fault_admit_drop_bytes += pkt.size
            return False
        pkt.queue_delay -= self.sim.now  # finalized on dequeue
        if not self.mux.enqueue(pkt):
            pkt.queue_delay += self.sim.now  # undo; packet is gone anyway
            return False
        if not self.busy:
            self._start_next()
        return True

    def _start_next(self) -> None:
        # PriorityMux.dequeue + Simulator.schedule_recycled, inlined:
        # this is the single hottest function after the run loop (once
        # per serialized packet), and at that rate the two call frames
        # and re-checked branches are measurable.  The mux ledger
        # updates below MUST mirror PriorityMux.dequeue exactly (the
        # invariant auditor cross-checks them every run).
        mux = self.mux
        mask = mux.nonempty_mask
        if self.paused_mask:
            mask &= ~self.paused_mask  # PFC: skip paused priorities
        if not mask:
            self.busy = False
            return
        priority = (mask & -mask).bit_length() - 1
        queue = mux.queues[priority]
        pkt = queue.popleft()
        if not queue:
            # same integer as ``mask & (mask - 1)`` when nothing is
            # paused (priority is then nonempty_mask's lowest set bit)
            mux.nonempty_mask &= ~(1 << priority)
        size = pkt.size
        mux.occupancy -= size
        mux.queue_occupancy[priority] -= size
        if priority < 4:
            mux.hp_occupancy -= size
        if pkt.lcp:
            mux.lp_occupancy -= size
        mux.pkt_count -= 1
        stats = mux.stats
        stats.dequeued += 1
        stats.bytes_dequeued += size
        if mux.pfc is not None:
            mux.pfc_dequeue_check(priority)
        sim = self.sim
        now = sim.now
        pkt.queue_delay += now  # time spent waiting in the mux
        self.busy = True
        self._tx_start = now
        # Inlined units.serialization_delay.  Deliberately NOT
        # ``pkt.size * self.byte_time``: the cached reciprocal double-
        # rounds (~25-40% of sizes differ in the last ulp), which would
        # break bit-identical reproduction; a single division keeps the
        # exact float the simulator has always produced.
        time = now + size * 8.0 / self._rate_bps
        free = sim._free
        if free:
            event = free.pop()
            event.time = time
            event.fn = self._tx_cb
            event.args = (pkt,)
            event.cancelled = False
        else:
            event = Event(time, self._tx_cb, (pkt,), sim)
        event.recycle = True
        sim._seq += 1
        sim._live += 1
        heap = sim._heap
        heappush(heap, (time, sim._seq, event))
        if len(heap) > sim.peak_pending:
            sim.peak_pending = len(heap)

    def _tx_done(self, pkt: Packet) -> None:
        self.bytes_sent += pkt.size
        self.pkts_sent += 1
        self.busy_time += self.sim.now - self._tx_start
        chain = self.fault_chain
        if chain is not None and not chain.transmit(pkt):
            self.fault_wire_drops += 1
            self.fault_wire_drop_bytes += pkt.size
            self._start_next()  # lost on the wire (link down, ...)
            return
        if self.peer is not None:
            # Wire.push, inlined (once per transmitted packet): reserve
            # the arrival's tie-break seq now, append to the in-flight
            # deque, arm the head event only when the wire was idle.
            wire = self.wire
            sim = self.sim
            arrival = sim.now + self.prop_delay
            sim._seq += 1
            seq = sim._seq
            if wire.pipelined:
                wire.pending.append((arrival, seq, pkt, None))
                if wire.head_event is None:
                    # schedule_reserved, inlined (see _start_next)
                    free = sim._free
                    if free:
                        event = free.pop()
                        event.time = arrival
                        event.fn = wire._deliver_cb
                        event.args = ()
                        event.cancelled = False
                    else:
                        event = Event(arrival, wire._deliver_cb, (), sim)
                    event.recycle = True
                    sim._live += 1
                    heap = sim._heap
                    heappush(heap, (arrival, seq, event))
                    if len(heap) > sim.peak_pending:
                        sim.peak_pending = len(heap)
                    wire.head_event = event
            else:
                wire.pending.append((arrival, seq, pkt, sim.schedule_reserved(
                    arrival, seq, wire._deliver_legacy)))
        # _start_next's idle fast path, hoisted: after a transmission the
        # mux is empty more often than not, and the frame is measurable
        if self.mux.nonempty_mask:
            self._start_next()
        else:
            self.busy = False

    @property
    def backlog_bytes(self) -> int:
        """Bytes waiting in the mux (excludes packets on the wire)."""
        return self.mux.occupancy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Port {self.name} rate={self._rate_bps/1e9:.0f}Gbps busy={self.busy}>"
