"""Output port: a strict-priority mux drained by a point-to-point link.

A :class:`Port` is the unit of contention in the simulator.  Every device
(host NIC or switch port) owns one Port per outgoing link.  When a packet is
enqueued and the transmitter is idle, transmission begins immediately;
otherwise the packet waits in the mux.  Completion of a transmission
schedules the arrival at the peer after the propagation delay and pulls the
next packet from the mux.
"""

from __future__ import annotations

from typing import Optional

from ..units import serialization_delay
from .engine import Simulator
from .packet import Packet
from .queues import PriorityMux


class FaultChain:
    """Chain-of-responsibility over a port's attached fault injectors.

    An injector is any object exposing ``admit(pkt) -> bool`` (called
    when a packet is offered to the port; False = drop before enqueue)
    and ``transmit(pkt) -> bool`` (called when serialization completes;
    False = the packet is lost on the wire and never reaches the peer).
    Ports carry no chain at all (``fault_chain is None``) until the
    first injector attaches, so the fault machinery costs nothing when
    unused.
    """

    __slots__ = ("injectors",)

    def __init__(self) -> None:
        self.injectors: list = []

    def admit(self, pkt: Packet) -> bool:
        for injector in self.injectors:
            if not injector.admit(pkt):
                return False
        return True

    def transmit(self, pkt: Packet) -> bool:
        for injector in self.injectors:
            if not injector.transmit(pkt):
                return False
        return True


class Port:
    """A transmitter + queue attached to one end of a link.

    Parameters
    ----------
    sim:
        The simulation engine.
    rate_bps:
        Link capacity in bits per second.
    prop_delay:
        One-way propagation delay in seconds.
    mux:
        The priority mux buffering packets awaiting transmission.
    peer:
        The device at the other end; must expose ``receive(pkt)``.
    name:
        Human-readable identifier for tracing.
    """

    __slots__ = (
        "sim", "rate_bps", "prop_delay", "mux", "peer", "name",
        "busy", "bytes_sent", "pkts_sent", "busy_time", "_tx_start",
        "fault_chain",
        "fault_admit_drops", "fault_admit_drop_bytes",
        "fault_wire_drops", "fault_wire_drop_bytes",
    )

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        prop_delay: float,
        mux: PriorityMux,
        peer=None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.rate_bps = rate_bps
        self.prop_delay = prop_delay
        self.mux = mux
        self.peer = peer
        self.name = name
        self.busy = False
        self.bytes_sent = 0
        self.pkts_sent = 0
        self.busy_time = 0.0
        self._tx_start = 0.0
        self.fault_chain: Optional[FaultChain] = None
        # Conservation-ledger counters (repro.validate): packets a fault
        # chain killed before the mux saw them vs. on the wire after
        # serialization.  Injectors keep their own totals; these split
        # the loss by *where* it happened, which the injector totals
        # (admit + wire + flush combined) cannot.
        self.fault_admit_drops = 0
        self.fault_admit_drop_bytes = 0
        self.fault_wire_drops = 0
        self.fault_wire_drop_bytes = 0

    # -- fault injection --------------------------------------------------

    def attach_fault(self, injector) -> None:
        """Add a fault injector to this port's chain (created lazily)."""
        if self.fault_chain is None:
            self.fault_chain = FaultChain()
        self.fault_chain.injectors.append(injector)

    def detach_fault(self, injector) -> None:
        """Remove ``injector``; drops the chain when it empties."""
        chain = self.fault_chain
        if chain is None:
            return
        if injector in chain.injectors:
            chain.injectors.remove(injector)
        if not chain.injectors:
            self.fault_chain = None

    # -- transmission -----------------------------------------------------

    def send(self, pkt: Packet) -> bool:
        """Enqueue ``pkt`` for transmission.  Returns False if dropped."""
        chain = self.fault_chain
        if chain is not None and not chain.admit(pkt):
            self.fault_admit_drops += 1
            self.fault_admit_drop_bytes += pkt.size
            return False
        pkt.queue_delay -= self.sim.now  # finalized on dequeue
        if not self.mux.enqueue(pkt):
            pkt.queue_delay += self.sim.now  # undo; packet is gone anyway
            return False
        if not self.busy:
            self._start_next()
        return True

    def _start_next(self) -> None:
        pkt = self.mux.dequeue()
        if pkt is None:
            self.busy = False
            return
        pkt.queue_delay += self.sim.now  # time spent waiting in the mux
        self.busy = True
        self._tx_start = self.sim.now
        tx_time = serialization_delay(pkt.size, self.rate_bps)
        self.sim.schedule(tx_time, self._tx_done, pkt)

    def _tx_done(self, pkt: Packet) -> None:
        self.bytes_sent += pkt.size
        self.pkts_sent += 1
        self.busy_time += self.sim.now - self._tx_start
        chain = self.fault_chain
        if chain is not None and not chain.transmit(pkt):
            self.fault_wire_drops += 1
            self.fault_wire_drop_bytes += pkt.size
            self._start_next()  # lost on the wire (link down, ...)
            return
        if self.peer is not None:
            self.sim.schedule(self.prop_delay, self.peer.receive, pkt)
        self._start_next()

    @property
    def backlog_bytes(self) -> int:
        """Bytes waiting in the mux (excludes the packet on the wire)."""
        return self.mux.occupancy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Port {self.name} rate={self.rate_bps/1e9:.0f}Gbps busy={self.busy}>"
