"""Topology builders.

Three shapes cover every experiment in the paper:

* :func:`star` — N hosts on one switch.  Stands in for the CloudLab
  testbed (15 hosts, one Dell S4048) and for the 2-sender microbenchmarks
  of Figs. 1, 20, 28 and 29 (the bottleneck is the receiver's downlink).
* :func:`leaf_spine` — the 1.4:1 oversubscribed 144-host fabric of §6.2
  (9 leaves x 16 hosts, 4 spines, 40G edge / 100G core), parameterised so
  the 100/400G variant (Fig. 22) and the non-oversubscribed variant
  (appendix E: 10G edge / 40G core, 16 hosts per leaf) are one call away.
* :func:`dumbbell` — two hosts through two switches over one bottleneck
  link, handy for unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from ..units import gbps, us
from .engine import Simulator
from .network import Network, QueueConfig
from .queues import PfcConfig


@dataclass
class Topology:
    """A built fabric plus the parameters it was built with."""

    sim: Simulator
    network: Network
    n_hosts: int
    edge_rate: float
    core_rate: float
    base_rtt: float  # worst-case (cross-leaf) base round-trip time
    # Space-partitioning metadata (see repro.sim.shard): which leaf each
    # host hangs off, and which switch_ids are leaves vs. spines.  Only
    # the two-tier builder fills these in; shapes without a pod
    # structure leave them None and cannot be sharded.
    host_leaf: Optional[Dict[int, int]] = None
    leaf_switch_ids: Optional[List[int]] = None
    spine_switch_ids: Optional[List[int]] = None

    def host_ids(self):
        return list(self.network.hosts.keys())

    def enable_pfc(self, config: Optional[PfcConfig] = None) -> "Topology":
        """Lossless Ethernet: PFC on every switch (see Network.enable_pfc)."""
        self.network.enable_pfc(config)
        return self

    def set_load_balancer(self, mode: str,
                          gap: Optional[float] = None) -> "Topology":
        """Install flowlet/CONGA/ECMP balancing on every switch."""
        self.network.set_load_balancer(mode, gap)
        return self


def _default_qcfg(buffer_bytes: int, base_rtt: float) -> QueueConfig:
    return QueueConfig(
        buffer_bytes=buffer_bytes,
        ecn_lambda_high=0.17,
        ecn_lambda_low=0.1,
        base_rtt=base_rtt,
    )


# Host NIC egress queues model the Linux qdisc: megabytes of buffering,
# no ECN marking (DCTCP's signal comes from switches) and no dynamic
# threshold.  Slow-start overshoot queues at the sender instead of being
# dropped by a 120KB switch-sized buffer that no NIC actually has.
HOST_BUFFER_BYTES = 4_000_000


def _host_qcfg(buffer_bytes: int = HOST_BUFFER_BYTES) -> QueueConfig:
    return QueueConfig(buffer_bytes=buffer_bytes, dt_alpha=None)


def star(
    n_hosts: int,
    *,
    rate: float = gbps(10),
    prop_delay: float = us(20),
    buffer_bytes: int = 500_000,
    qcfg: Optional[QueueConfig] = None,
    sim: Optional[Simulator] = None,
) -> Topology:
    """N hosts attached to a single switch."""
    sim = sim or Simulator()
    net = Network(sim)
    switch = net.add_switch("sw0")
    # host -> switch -> host: 2 links each way.
    base_rtt = 4 * prop_delay + 4 * (1500 * 8.0 / rate)
    if qcfg is None:
        qcfg = _default_qcfg(buffer_bytes, base_rtt)
    host_qcfg = _host_qcfg()
    for host_id in range(n_hosts):
        host = net.add_host(host_id)
        net.connect_host(host, switch, rate, prop_delay, qcfg,
                         up_qcfg=host_qcfg)
    return Topology(sim, net, n_hosts, rate, rate, base_rtt)


def dumbbell(
    *,
    rate: float = gbps(10),
    bottleneck_rate: Optional[float] = None,
    prop_delay: float = us(10),
    buffer_bytes: int = 250_000,
    qcfg: Optional[QueueConfig] = None,
    sim: Optional[Simulator] = None,
) -> Topology:
    """host0 - sw0 - sw1 - host1 with a possibly slower middle link."""
    sim = sim or Simulator()
    net = Network(sim)
    bottleneck_rate = bottleneck_rate or rate
    base_rtt = 6 * prop_delay + 6 * (1500 * 8.0 / min(rate, bottleneck_rate))
    if qcfg is None:
        qcfg = _default_qcfg(buffer_bytes, base_rtt)
    sw0 = net.add_switch("sw0")
    sw1 = net.add_switch("sw1")
    h0 = net.add_host(0)
    h1 = net.add_host(1)
    host_qcfg = _host_qcfg()
    net.connect_host(h0, sw0, rate, prop_delay, qcfg, up_qcfg=host_qcfg)
    net.connect_host(h1, sw1, rate, prop_delay, qcfg, up_qcfg=host_qcfg)
    p01, p10 = net.connect_switches(sw0, sw1, bottleneck_rate, prop_delay, qcfg)
    sw0.add_route(1, p01)
    sw1.add_route(0, p10)
    return Topology(sim, net, 2, rate, bottleneck_rate, base_rtt)


def leaf_spine(
    *,
    n_leaf: int = 9,
    n_spine: int = 4,
    hosts_per_leaf: int = 16,
    edge_rate: float = gbps(40),
    core_rate: float = gbps(100),
    prop_delay: float = us(1),
    buffer_bytes: int = 120_000,
    qcfg: Optional[QueueConfig] = None,
    sim: Optional[Simulator] = None,
) -> Topology:
    """Two-tier leaf-spine fabric (defaults = the paper's §6.2 topology).

    Every leaf connects to every spine.  Cross-leaf traffic hashes (or
    sprays) over the spines; intra-leaf traffic turns around at the leaf.
    """
    sim = sim or Simulator()
    net = Network(sim)
    # Worst path: host-leaf-spine-leaf-host = 4 links each way.
    base_rtt = 8 * prop_delay + 8 * (1500 * 8.0 / edge_rate)
    if qcfg is None:
        qcfg = _default_qcfg(buffer_bytes, base_rtt)

    leaves = [net.add_switch(f"leaf{i}") for i in range(n_leaf)]
    spines = [net.add_switch(f"spine{i}") for i in range(n_spine)]

    # hosts
    host_leaf = {}
    host_id = 0
    host_qcfg = _host_qcfg()
    for leaf_idx, leaf in enumerate(leaves):
        for _ in range(hosts_per_leaf):
            host = net.add_host(host_id)
            net.connect_host(host, leaf, edge_rate, prop_delay, qcfg,
                             up_qcfg=host_qcfg)
            host_leaf[host_id] = leaf_idx
            host_id += 1

    # core links and routes
    up_ports = {}    # (leaf_idx, spine_idx) -> port
    down_ports = {}  # (spine_idx, leaf_idx) -> port
    for leaf_idx, leaf in enumerate(leaves):
        for spine_idx, spine in enumerate(spines):
            up, down = net.connect_switches(leaf, spine, core_rate, prop_delay, qcfg)
            up_ports[(leaf_idx, spine_idx)] = up
            down_ports[(spine_idx, leaf_idx)] = down

    for dst in range(host_id):
        dst_leaf = host_leaf[dst]
        # Leaves: local hosts already routed by connect_host; remote hosts
        # go up to every spine (ECMP candidates).
        for leaf_idx in range(n_leaf):
            if leaf_idx != dst_leaf:
                for spine_idx in range(n_spine):
                    leaves[leaf_idx].add_route(dst, up_ports[(leaf_idx, spine_idx)])
        # Spines: down to the destination's leaf.
        for spine_idx in range(n_spine):
            spines[spine_idx].add_route(dst, down_ports[(spine_idx, dst_leaf)])

    return Topology(sim, net, host_id, edge_rate, core_rate, base_rtt,
                    host_leaf=host_leaf,
                    leaf_switch_ids=[leaf.switch_id for leaf in leaves],
                    spine_switch_ids=[spine.switch_id for spine in spines])


def paper_oversubscribed(**overrides) -> Topology:
    """The §6.2 topology: 144 hosts, 9 leaves, 4 spines, 40/100G, 1.4:1."""
    params = dict(n_leaf=9, n_spine=4, hosts_per_leaf=16,
                  edge_rate=gbps(40), core_rate=gbps(100))
    params.update(overrides)
    return leaf_spine(**params)


def paper_non_oversubscribed(**overrides) -> Topology:
    """Appendix E topology: 10G edge, 40G core, fully provisioned."""
    params = dict(n_leaf=9, n_spine=4, hosts_per_leaf=16,
                  edge_rate=gbps(10), core_rate=gbps(40))
    params.update(overrides)
    return leaf_spine(**params)


def fat_tree(
    *,
    k: int = 4,
    host_rate: float = gbps(10),
    fabric_rate: float = gbps(10),
    prop_delay: float = us(1),
    buffer_bytes: int = 120_000,
    qcfg: Optional[QueueConfig] = None,
    sim: Optional[Simulator] = None,
) -> Topology:
    """Canonical k-ary fat-tree (Al-Fares et al.): k pods, each with k/2
    edge and k/2 aggregation switches, (k/2)^2 core switches, k^3/4
    hosts, full bisection bandwidth when ``fabric_rate == host_rate``.

    Not used by any of the paper's experiments (which are two-tier), but
    a standard substrate for datacenter transport studies; routing is
    ECMP at every up-stage, exact downward.
    """
    if k < 2 or k % 2:
        raise ValueError("fat-tree requires an even k >= 2")
    sim = sim or Simulator()
    net = Network(sim)
    half = k // 2
    # Worst path: host-edge-agg-core-agg-edge-host = 6 links each way.
    base_rtt = 12 * prop_delay + 12 * (1500 * 8.0 / min(host_rate,
                                                        fabric_rate))
    if qcfg is None:
        qcfg = _default_qcfg(buffer_bytes, base_rtt)
    host_qcfg = _host_qcfg()

    edges = [[net.add_switch(f"edge{p}.{e}") for e in range(half)]
             for p in range(k)]
    aggs = [[net.add_switch(f"agg{p}.{a}") for a in range(half)]
            for p in range(k)]
    cores = [[net.add_switch(f"core{a}.{c}") for c in range(half)]
             for a in range(half)]

    # hosts
    host_pod = {}
    host_edge = {}
    host_id = 0
    for p in range(k):
        for e in range(half):
            for _ in range(half):
                host = net.add_host(host_id)
                net.connect_host(host, edges[p][e], host_rate, prop_delay,
                                 qcfg, up_qcfg=host_qcfg)
                host_pod[host_id] = p
                host_edge[host_id] = e
                host_id += 1

    # edge <-> agg (full mesh within a pod)
    edge_up = {}
    agg_down = {}
    for p in range(k):
        for e in range(half):
            for a in range(half):
                up, down = net.connect_switches(edges[p][e], aggs[p][a],
                                                fabric_rate, prop_delay, qcfg)
                edge_up[(p, e, a)] = up
                agg_down[(p, a, e)] = down

    # agg <-> core: agg a of every pod connects to core row a
    agg_up = {}
    core_down = {}
    for p in range(k):
        for a in range(half):
            for c in range(half):
                up, down = net.connect_switches(aggs[p][a], cores[a][c],
                                                fabric_rate, prop_delay, qcfg)
                agg_up[(p, a, c)] = up
                core_down[(a, c, p)] = down

    # routes
    for dst in range(host_id):
        dp, de = host_pod[dst], host_edge[dst]
        for p in range(k):
            for e in range(half):
                if p == dp and e == de:
                    continue  # local: routed by connect_host
                for a in range(half):
                    edges[p][e].add_route(dst, edge_up[(p, e, a)])
        for p in range(k):
            for a in range(half):
                if p == dp:
                    aggs[p][a].add_route(dst, agg_down[(p, a, de)])
                else:
                    for c in range(half):
                        aggs[p][a].add_route(dst, agg_up[(p, a, c)])
        for a in range(half):
            for c in range(half):
                cores[a][c].add_route(dst, core_down[(a, c, dp)])

    return Topology(sim, net, host_id, host_rate, fabric_rate, base_rtt)
