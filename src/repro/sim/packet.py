"""Packet model.

One :class:`Packet` instance is one on-the-wire packet.  The class is a
plain ``__slots__`` object (no dataclass machinery) because the simulator
creates millions of these and attribute access is on the hot path.

Priorities follow the paper's Fig. 6 numbering: ``P0`` is the *highest*
priority and ``P7`` the lowest.  HCP (normal DCTCP) traffic uses P0..P3 and
LCP (opportunistic) traffic uses P4..P7.  Control packets default to P0.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

# Packet kinds.  Integers, compared with ``is``-free equality on the hot path.
DATA = 0          # payload-carrying data packet
ACK = 1           # cumulative/selective acknowledgement
GRANT = 2         # Homa/Aeolus receiver grant
PULL = 3          # NDP pull
HEADER = 4        # NDP trimmed header (payload cut)
NACK = 5          # NDP trimmed-header notification from receiver
CONTROL = 6       # generic control (e.g., HPCC probe)

KIND_NAMES = {
    DATA: "DATA",
    ACK: "ACK",
    GRANT: "GRANT",
    PULL: "PULL",
    HEADER: "HEADER",
    NACK: "NACK",
    CONTROL: "CONTROL",
}

HEADER_BYTES = 64          # size of a trimmed header / bare control packet
ACK_BYTES = 64             # size of an acknowledgement on the wire

HIGHEST_PRIORITY = 0
LOWEST_PRIORITY = 7
NUM_PRIORITIES = 8


class Packet:
    """A single packet.

    Attributes
    ----------
    flow_id:
        Identifier of the flow this packet belongs to.
    src, dst:
        Host ids of the transmitting and receiving endpoints.
    seq:
        Packet index within the flow (0-based, MSS-sized segments).
    size:
        Bytes on the wire, including header.
    kind:
        One of the module-level kind constants (DATA, ACK, ...).
    priority:
        Strict-priority class, 0 (highest) .. 7 (lowest).
    ecn_capable / ecn_ce:
        ECN negotiation and congestion-experienced mark.
    lcp:
        True for PPT/RC3 low-priority-loop packets (data or ACKs).
    unscheduled:
        True for Homa/Aeolus pre-credit packets (eligible for Aeolus's
        selective drop).
    retransmit:
        True if this packet is a retransmission.
    corrupted:
        True once a fault injector has flipped bits in the packet; the
        receiving host discards it (failed checksum) instead of
        dispatching it to a transport endpoint.
    sack / ack_seq / meta:
        Transport-specific payload: SACK blocks, cumulative ack, or any
        other per-packet state a transport needs to carry.
    int_records:
        HPCC in-band telemetry, appended at every hop as
        ``(qlen_bytes, tx_bytes, timestamp, link_rate)`` tuples.
    sent_at:
        Timestamp when the packet left the sender (for RTT / delay
        measurement).  Echoed into ACKs by receivers.
    hops:
        Number of switch hops traversed so far (for delay-based transports'
        target-delay scaling).
    """

    __slots__ = (
        "flow_id", "src", "dst", "seq", "size", "kind", "priority",
        "ecn_capable", "ecn_ce", "lcp", "unscheduled", "retransmit",
        "corrupted", "ack_seq", "sack", "meta", "int_records", "sent_at",
        "hops", "queue_delay",
    )

    def __init__(
        self,
        flow_id: int,
        src: int,
        dst: int,
        seq: int,
        size: int,
        kind: int = DATA,
        priority: int = 0,
        ecn_capable: bool = True,
    ) -> None:
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.seq = seq
        self.size = size
        self.kind = kind
        self.priority = priority
        self.ecn_capable = ecn_capable
        self.ecn_ce = False
        self.lcp = False
        self.unscheduled = False
        self.retransmit = False
        self.corrupted = False
        self.ack_seq: int = -1
        self.sack: Optional[Tuple[int, ...]] = None
        self.meta = None
        self.int_records: Optional[List[tuple]] = None
        self.sent_at: float = 0.0
        self.hops: int = 0
        self.queue_delay: float = 0.0

    def trim(self) -> None:
        """NDP packet trimming: cut the payload, keep the header."""
        self.kind = HEADER
        self.size = HEADER_BYTES
        self.priority = HIGHEST_PRIORITY

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = KIND_NAMES.get(self.kind, str(self.kind))
        return (
            f"<Packet {kind} flow={self.flow_id} seq={self.seq} "
            f"size={self.size} prio=P{self.priority}"
            f"{' CE' if self.ecn_ce else ''}{' lcp' if self.lcp else ''}>"
        )


def make_ack(
    data_pkt: Packet,
    ack_seq: int,
    *,
    size: int = ACK_BYTES,
    priority: Optional[int] = None,
) -> Packet:
    """Build an ACK for ``data_pkt`` travelling the reverse direction.

    The ACK echoes the data packet's CE mark (ECN-Echo) and its ``sent_at``
    timestamp so the sender can measure RTT.
    """
    # positional construction — this runs once per delivered data packet
    ack = Packet(
        data_pkt.flow_id,
        data_pkt.dst,
        data_pkt.src,
        data_pkt.seq,
        size,
        ACK,
        data_pkt.priority if priority is None else priority,
    )
    ack.ack_seq = ack_seq
    ack.ecn_ce = data_pkt.ecn_ce
    ack.lcp = data_pkt.lcp
    ack.sent_at = data_pkt.sent_at
    # Snapshot, never alias: HPCC's Algorithm 1 assumes the INT list an
    # ACK carries describes the *forward* path only.  Sharing the data
    # packet's list would let any hop that later touches either packet
    # pollute the other's records.
    ack.int_records = (None if data_pkt.int_records is None
                       else list(data_pkt.int_records))
    ack.queue_delay = data_pkt.queue_delay
    ack.hops = data_pkt.hops
    return ack
