"""End host: NIC egress port plus per-flow transport endpoint dispatch.

Each host owns exactly one uplink :class:`~repro.sim.link.Port` (to its
ToR/leaf switch, or to the single switch in the star topology).  Transport
endpoints (senders and receivers) register themselves per flow id; packets
arriving at the host are dispatched to the endpoint registered for that
flow.

The host also carries simple datapath counters used by the Fig. 19 CPU
overhead experiment: every packet sent or received and every timer fire
counts as one datapath operation, which is the work a kernel would do.
"""

from __future__ import annotations

from typing import Dict, Optional

from .link import Port
from .packet import Packet


class Host:
    """A server attached to the fabric."""

    __slots__ = ("host_id", "name", "uplink", "endpoints", "ops_sent",
                 "ops_received", "corrupt_discards", "default_endpoint",
                 "pkts_to_fabric", "bytes_to_fabric",
                 "pkts_from_fabric", "bytes_from_fabric")

    def __init__(self, host_id: int, name: str = "") -> None:
        self.host_id = host_id
        self.name = name or f"host{host_id}"
        self.uplink: Optional[Port] = None
        self.endpoints: Dict[int, object] = {}
        self.ops_sent = 0
        self.ops_received = 0
        self.corrupt_discards = 0
        # Conservation-ledger counters (repro.validate): packets/bytes
        # this host offered to its NIC port and packets/bytes that
        # arrived off the queued fabric.  Ideal-control-path deliveries
        # (:meth:`receive_control`) are deliberately excluded — they
        # never traverse a port, so they are not part of the fabric's
        # byte ledger.
        self.pkts_to_fabric = 0
        self.bytes_to_fabric = 0
        self.pkts_from_fabric = 0
        self.bytes_from_fabric = 0
        # Fallback receiver for packets of unregistered flows (unused in
        # normal operation; lets tests inject raw packets).
        self.default_endpoint = None

    def register(self, flow_id: int, endpoint) -> None:
        """Attach ``endpoint`` (must expose ``on_packet``) for ``flow_id``."""
        self.endpoints[flow_id] = endpoint

    def unregister(self, flow_id: int) -> None:
        self.endpoints.pop(flow_id, None)

    def send(self, pkt: Packet) -> bool:
        """Push a packet into the NIC egress queue."""
        self.ops_sent += 1
        self.pkts_to_fabric += 1
        self.bytes_to_fabric += pkt.size
        port = self.uplink
        if port is None:
            raise RuntimeError(f"{self.name} has no uplink attached")
        if type(port) is not Port:
            # test doubles substitute duck-typed ports for the uplink;
            # only the real Port gets the inlined fast path below
            return port.send(pkt)
        # Port.send, inlined: one NIC admission per transmitted packet
        chain = port.fault_chain
        if chain is not None and not chain.admit(pkt):
            port.fault_admit_drops += 1
            port.fault_admit_drop_bytes += pkt.size
            return False
        now = port.sim.now
        pkt.queue_delay -= now  # finalized on dequeue
        if not port.mux.enqueue(pkt):
            pkt.queue_delay += now  # undo; packet is gone anyway
            return False
        if not port.busy:
            port._start_next()
        return True

    def receive(self, pkt: Packet) -> None:
        """Dispatch a packet arriving off the queued fabric."""
        self.ops_received += 1
        self.pkts_from_fabric += 1
        self.bytes_from_fabric += pkt.size
        if pkt.corrupted:
            # failed checksum: the NIC discards it before the transport
            # ever sees it — recovery is the sender's problem
            self.corrupt_discards += 1
            return
        # _dispatch, inlined: this runs once per delivered data packet
        endpoint = self.endpoints.get(pkt.flow_id)
        if endpoint is not None:
            endpoint.on_packet(pkt)
        elif self.default_endpoint is not None:
            self.default_endpoint.on_packet(pkt)

    def receive_control(self, pkt: Packet) -> None:
        """Dispatch a packet delivered over the ideal control path.

        Same dispatch as :meth:`receive` (one datapath op), but outside
        the fabric ledger: control packets never crossed a port, so
        counting them as fabric arrivals would break byte conservation.
        Corruption cannot happen here — injectors sit on ports.
        """
        self.ops_received += 1
        # _dispatch, inlined: this runs once per delivered control packet
        endpoint = self.endpoints.get(pkt.flow_id)
        if endpoint is not None:
            endpoint.on_packet(pkt)
        elif self.default_endpoint is not None:
            self.default_endpoint.on_packet(pkt)

    def _dispatch(self, pkt: Packet) -> None:
        endpoint = self.endpoints.get(pkt.flow_id)
        if endpoint is not None:
            endpoint.on_packet(pkt)
        elif self.default_endpoint is not None:
            self.default_endpoint.on_packet(pkt)
        # else: flow already torn down; late packet is silently discarded,
        # exactly like a closed socket.

    @property
    def datapath_ops(self) -> int:
        """Total datapath operations (CPU-overhead proxy)."""
        return self.ops_sent + self.ops_received

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.name} flows={len(self.endpoints)}>"
