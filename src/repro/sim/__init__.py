"""Packet-level discrete-event simulation substrate."""

from .engine import Event, Simulator
from .host import Host
from .link import Port
from .network import Network, QueueConfig
from .packet import (
    ACK,
    ACK_BYTES,
    CONTROL,
    DATA,
    GRANT,
    HEADER,
    HEADER_BYTES,
    NACK,
    NUM_PRIORITIES,
    PULL,
    Packet,
    make_ack,
)
from .queues import PriorityMux, QueueStats
from .switch import Switch
from .topology import (
    Topology,
    dumbbell,
    fat_tree,
    leaf_spine,
    paper_non_oversubscribed,
    paper_oversubscribed,
    star,
)

__all__ = [
    "Event", "Simulator", "Host", "Port", "Network", "QueueConfig",
    "Packet", "make_ack", "PriorityMux", "QueueStats", "Switch",
    "Topology", "dumbbell", "fat_tree", "leaf_spine", "star",
    "paper_oversubscribed", "paper_non_oversubscribed",
    "DATA", "ACK", "GRANT", "PULL", "HEADER", "NACK", "CONTROL",
    "ACK_BYTES", "HEADER_BYTES", "NUM_PRIORITIES",
]
