"""Output-queued switch with strict-priority ports and ECMP forwarding.

A switch holds a forwarding table mapping destination host id to one or
more candidate output :class:`~repro.sim.link.Port` objects.  Multiple
candidates mean equal-cost paths; the switch picks one by per-flow ECMP
hash, or round-robin spraying when the network runs in spray mode (NDP).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .link import Port
from .packet import DATA, HEADER, Packet
from .routing import SprayCounter, ecmp_hash


class Switch:
    """A single switch.

    Attributes
    ----------
    switch_id:
        Unique id among switches (used to decorrelate ECMP hashes).
    table:
        ``dst_host_id -> [Port, ...]`` — candidate output ports.
    spray:
        When True, pick among candidates round-robin per packet (NDP).
    """

    __slots__ = ("switch_id", "name", "table", "spray", "_spray_counter",
                 "lb", "pkts_forwarded", "bytes_forwarded")

    def __init__(self, switch_id: int, name: str = "") -> None:
        self.switch_id = switch_id
        self.name = name or f"switch{switch_id}"
        self.table: Dict[int, List[Port]] = {}
        self.spray = False
        self._spray_counter = SprayCounter()
        # Optional stateful load balancer (FlowletBalancer /
        # CongaBalancer); None means stateless per-flow ECMP.  The hash
        # is a few integer ops, cheaper than a dict probe — no memo.
        self.lb = None
        self.pkts_forwarded = 0
        self.bytes_forwarded = 0

    def add_route(self, dst_host: int, port: Port) -> None:
        """Register ``port`` as a candidate next hop towards ``dst_host``."""
        self.table.setdefault(dst_host, []).append(port)

    def receive(self, pkt: Packet) -> None:
        """Forward an arriving packet towards its destination."""
        candidates = self.table.get(pkt.dst)
        if not candidates:
            raise KeyError(
                f"{self.name}: no route to host {pkt.dst} (flow {pkt.flow_id})"
            )
        if len(candidates) == 1:
            port = candidates[0]
        elif self.spray:
            port = candidates[self._spray_counter.next(len(candidates))]
        elif self.lb is not None:
            port = candidates[self.lb.choose(
                pkt.flow_id, candidates, candidates[0].sim.now,
                self.switch_id)]
        else:
            port = candidates[ecmp_hash(
                pkt.flow_id, self.switch_id, len(candidates))]
        pkt.hops += 1
        self.pkts_forwarded += 1
        self.bytes_forwarded += pkt.size
        if pkt.int_records is not None and (pkt.kind == DATA
                                            or pkt.kind == HEADER):
            # HPCC INT: stamp queue length, cumulative tx bytes, time, rate.
            # Data-plane packets only — ACK/control kinds carry a snapshot
            # of the forward path and must not accumulate reverse-path hops.
            pkt.int_records.append(
                (port.mux.occupancy, port.bytes_sent, port.sim.now, port.rate_bps)
            )
        # Port.send, inlined: one forwarding decision per switch hop
        chain = port.fault_chain
        if chain is not None and not chain.admit(pkt):
            port.fault_admit_drops += 1
            port.fault_admit_drop_bytes += pkt.size
            return
        now = port.sim.now
        pkt.queue_delay -= now  # finalized on dequeue
        if not port.mux.enqueue(pkt):
            pkt.queue_delay += now  # undo; packet is gone anyway
            return
        if not port.busy:
            port._start_next()

    def ports(self) -> List[Port]:
        """All distinct output ports of this switch."""
        seen = []
        for candidates in self.table.values():
            for port in candidates:
                if port not in seen:
                    seen.append(port)
        return seen

    def port_named(self, name: str) -> Port:
        """The output port with exactly this name (fault-injection hook)."""
        for port in self.ports():
            if port.name == name:
                return port
        raise KeyError(f"{self.name}: no output port named {name!r}")

    def attach_fault(self, injector, dst_host: Optional[int] = None) -> None:
        """Attach ``injector`` to every output port, or only to the
        candidates towards ``dst_host`` when given."""
        targets = self.table.get(dst_host, []) if dst_host is not None \
            else self.ports()
        if not targets:
            raise KeyError(f"{self.name}: no ports towards {dst_host}")
        for port in targets:
            port.attach_fault(injector)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Switch {self.name} routes={len(self.table)}>"
