"""Routing helpers: deterministic per-flow ECMP and per-packet spraying.

Commodity switches hash the 5-tuple to pick among equal-cost uplinks.  We
model the 5-tuple with the flow id and mix in the switch id so different
switches make independent choices, exactly like independent ASIC hash seeds.

NDP instead sprays packets across all equal-cost paths packet-by-packet; a
per-switch round-robin counter reproduces that.
"""

from __future__ import annotations

_GOLDEN = 0x9E3779B97F4A7C15
_MASK = (1 << 64) - 1


def ecmp_hash(flow_id: int, switch_id: int, n_choices: int) -> int:
    """Deterministic ECMP choice for ``flow_id`` at ``switch_id``.

    A 64-bit Fibonacci/SplitMix-style mixer: cheap, stateless, and
    well-distributed for sequential flow ids (which is what the workload
    generator produces).
    """
    if n_choices <= 1:
        return 0
    x = (flow_id * _GOLDEN + switch_id * 0xBF58476D1CE4E5B9) & _MASK
    x ^= x >> 31
    x = (x * 0x94D049BB133111EB) & _MASK
    x ^= x >> 29
    return x % n_choices


class SprayCounter:
    """Per-switch round-robin counter for NDP-style packet spraying."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0

    def next(self, n_choices: int) -> int:
        if n_choices <= 1:
            return 0
        choice = self._value % n_choices
        self._value += 1
        return choice
