"""Routing helpers: ECMP, NDP spray, flowlet switching, CONGA.

Commodity switches hash the 5-tuple to pick among equal-cost uplinks.  We
model the 5-tuple with the flow id and mix in the switch id so different
switches make independent choices, exactly like independent ASIC hash seeds.

NDP instead sprays packets across all equal-cost paths packet-by-packet; a
per-switch round-robin counter reproduces that.

On top of the stateless per-flow hash this module offers two stateful
load balancers, pluggable into :class:`~repro.sim.switch.Switch` via the
``lb`` attribute:

* :class:`FlowletBalancer` — flowlet switching: a flow's packets follow
  one path while they arrive back to back; a gap longer than the flowlet
  idle threshold starts a new flowlet, which may re-hash onto a different
  path without reordering the flow (the gap exceeds the path-delay skew).
* :class:`CongaBalancer` — CONGA-style least-congested-path choice: each
  new flowlet picks the candidate port whose output queue currently holds
  the fewest bytes (local congestion-aware, leaf-local CONGA flavour).
"""

from __future__ import annotations

import math
from typing import Dict, List

_GOLDEN = 0x9E3779B97F4A7C15
_MASK = (1 << 64) - 1

# lcm(1..16): any candidate count that divides this wraps the spray
# counter without perturbing ``value % n``.  Fabrics with more than 16
# equal-cost uplinks extend the modulus lazily via math.lcm below.
_SPRAY_MODULUS = 720720


def ecmp_hash(flow_id: int, switch_id: int, n_choices: int) -> int:
    """Deterministic ECMP choice for ``flow_id`` at ``switch_id``.

    A 64-bit Fibonacci/SplitMix-style mixer: cheap, stateless, and
    well-distributed for sequential flow ids (which is what the workload
    generator produces).
    """
    if n_choices <= 1:
        return 0
    x = (flow_id * _GOLDEN + switch_id * 0xBF58476D1CE4E5B9) & _MASK
    x ^= x >> 31
    x = (x * 0x94D049BB133111EB) & _MASK
    x ^= x >> 29
    return x % n_choices


def flowlet_hash(flow_id: int, switch_id: int, flowlet_id: int,
                 n_choices: int) -> int:
    """ECMP mixer with the flowlet id folded in.

    ``flowlet_id == 0`` reproduces :func:`ecmp_hash` exactly, so a flow
    that never goes idle (or a balancer with an infinite gap) is
    bit-identical to per-flow ECMP.
    """
    if n_choices <= 1:
        return 0
    x = (flow_id * _GOLDEN + switch_id * 0xBF58476D1CE4E5B9
         + flowlet_id * 0xD6E8FEB86659FD93) & _MASK
    x ^= x >> 31
    x = (x * 0x94D049BB133111EB) & _MASK
    x ^= x >> 29
    return x % n_choices


class SprayCounter:
    """Per-switch round-robin counter for NDP-style packet spraying.

    The counter wraps modulo a common multiple of every candidate count
    it has seen (seeded with lcm(1..16) = 720720), so the choice
    sequence is bit-identical to an unbounded counter while the stored
    integer — and thus checkpoint size — stays bounded over arbitrarily
    long soaks.
    """

    __slots__ = ("_value", "_modulus")

    def __init__(self) -> None:
        self._value = 0
        self._modulus = _SPRAY_MODULUS

    def next(self, n_choices: int) -> int:
        if n_choices <= 1:
            return 0
        if self._modulus % n_choices:
            # A candidate count > 16 that does not divide the current
            # modulus: widen it.  Choices made before the widening are
            # unaffected; ones after match the unbounded counter unless
            # the counter had already wrapped (unreachable with in-repo
            # topologies, which never exceed 16 equal-cost paths).
            self._modulus = math.lcm(self._modulus, n_choices)
        choice = self._value % n_choices
        self._value = (self._value + 1) % self._modulus
        return choice


class FlowletBalancer:
    """Flowlet switching: re-pin a flow to a new path after an idle gap.

    State per active flow is ``[last_seen_time, flowlet_id]``.  A packet
    arriving more than ``gap`` seconds after the flow's previous packet
    starts a new flowlet (``flowlet_id += 1``), which re-hashes the path
    choice.  ``flowlet_id == 0`` hashes identically to per-flow ECMP, so
    ``gap=inf`` is bit-identical to the default balancer.

    Entries idle longer than the gap are evicted lazily every
    ``_SWEEP_EVERY`` choices, keeping state proportional to the number
    of *concurrently active* flows, not total flows seen — an evicted
    flow that returns simply starts at flowlet 0 again, which is a
    legitimate re-pin (its gap was by definition exceeded).
    """

    _SWEEP_EVERY = 4096

    __slots__ = ("gap", "repins", "_flows", "_calls")

    def __init__(self, gap: float) -> None:
        if gap <= 0:
            raise ValueError(f"flowlet gap must be > 0, got {gap}")
        self.gap = gap
        self.repins = 0
        self._flows: Dict[int, List] = {}
        self._calls = 0

    def choose(self, flow_id: int, candidates: list, now: float,
               switch_id: int) -> int:
        gap = self.gap
        state = self._flows.get(flow_id)
        if state is None:
            state = self._flows[flow_id] = [now, 0]
        else:
            if now - state[0] > gap:
                state[1] += 1
                self.repins += 1
            state[0] = now
        if gap != math.inf:
            self._calls += 1
            if self._calls >= self._SWEEP_EVERY:
                self._calls = 0
                cutoff = now - gap
                flows = self._flows
                for fid in [f for f, s in flows.items() if s[0] < cutoff]:
                    del flows[fid]
        return flowlet_hash(flow_id, switch_id, state[1], len(candidates))


class CongaBalancer:
    """CONGA-style congestion-aware path choice at flowlet granularity.

    Each new flowlet (first packet of a flow, idle gap exceeded, or the
    candidate set changing size because routes were added) picks the
    candidate output port with the smallest queue occupancy, breaking
    ties towards the lowest index.  Within a flowlet the choice is
    sticky, so packets are not reordered.
    """

    _SWEEP_EVERY = 4096

    __slots__ = ("gap", "repins", "_flows", "_calls")

    def __init__(self, gap: float) -> None:
        if gap <= 0:
            raise ValueError(f"flowlet gap must be > 0, got {gap}")
        self.gap = gap
        self.repins = 0
        # flow_id -> [last_seen_time, chosen_index, n_candidates]
        self._flows: Dict[int, List] = {}
        self._calls = 0

    def choose(self, flow_id: int, candidates: list, now: float,
               switch_id: int) -> int:
        gap = self.gap
        n = len(candidates)
        state = self._flows.get(flow_id)
        if state is None or now - state[0] > gap or state[2] != n:
            idx = min(range(n),
                      key=lambda i: (candidates[i].mux.occupancy, i))
            if state is None:
                self._flows[flow_id] = [now, idx, n]
            else:
                self.repins += 1
                state[0] = now
                state[1] = idx
                state[2] = n
        else:
            state[0] = now
            idx = state[1]
        self._calls += 1
        if self._calls >= self._SWEEP_EVERY:
            self._calls = 0
            cutoff = now - gap
            flows = self._flows
            for fid in [f for f, s in flows.items() if s[0] < cutoff]:
                del flows[fid]
        return idx


#: Default flowlet idle gap (seconds).  Must exceed the worst-case
#: path-delay skew between equal-cost paths so re-pinning cannot reorder
#: a flow; 500us is ~100x the in-repo leaf-spine propagation delay.
DEFAULT_FLOWLET_GAP = 500e-6

LB_MODES = ("ecmp", "flowlet", "conga")


def make_balancer(mode: str, gap: float = None):
    """Build a load balancer for ``mode``; ``None`` means default ECMP."""
    if gap is None:
        gap = DEFAULT_FLOWLET_GAP
    if mode == "ecmp":
        return None
    if mode == "flowlet":
        return FlowletBalancer(gap)
    if mode == "conga":
        return CongaBalancer(gap)
    raise ValueError(f"unknown load-balancer mode {mode!r} "
                     f"(expected one of {LB_MODES})")
