"""Hybrid flow-level / packet-level fast path.

Long-lived bulk flows dominate event counts but carry almost no
scheduling information once they reach steady state: their throughput is
just their max-min fair share of the path.  This module advances such
flows *analytically* — no packets, no per-MTU events — while short or
contended flows keep the full packet model.  The decomposition is the
one m4 ("A Learned Flow-level Network Simulator") learns and DCSim
motivates at datacenter scale, done here exactly:

* **Classification at admission.**  :meth:`HybridController.start_flow`
  admits a flow to the *abstract* set when it is large enough
  (``size_threshold``), expected to live long enough on its bottleneck
  (``min_duration``), and its deterministically resolved port path is
  currently uncontended.  Everything else goes to the wrapped packet
  scheme untouched.
* **Congestion epochs.**  Abstract flows advance at *epochs* — abstract
  arrival/departure, packet-flow arrival/departure on a shared port,
  fault transitions, and a bounded re-measure interval while packet
  traffic coexists — via a single
  :class:`~repro.sim.engine.RearmableEvent` heap entry.  Each epoch
  banks ``rate * dt`` of progress per flow, re-measures packet
  occupancy through the shared :class:`~repro.sim.network.LinkLedger`,
  and re-runs progressive waterfilling for new max-min rates.
* **Demotion.**  An abstract flow whose path becomes contended (shares
  a bottleneck port with a packet flow, a PFC-paused priority, or a
  fault chain) is demoted: its undelivered remainder restarts as a
  packet-mode *tail flow* under the same flow id, and its eventual
  finish time is copied back to the original Flow object so FCT
  statistics see one flow with the true completion time.

The pure packet model stays the equivalence oracle: with the controller
absent (or ``enabled=False``) the run is bit-identical to the plain
tree, and hybrid runs must match packet-mode FCT distributions within
the gated tolerance (``repro.validate.equivalence``).  See
``docs/hybrid.md`` for the accuracy envelope — in particular when *not*
to trust hybrid numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .engine import RearmableEvent, Simulator
from .link import Port
from .network import LinkLedger, Network
from .packet import HEADER_BYTES

# An abstract flow with less than half a wire byte outstanding is done;
# epoch events are scheduled exactly at predicted completion instants,
# so the residual is float rounding, never real payload.
_DONE_BYTES = 0.5


@dataclass
class HybridConfig:
    """Knobs for the hybrid fast path.

    ``enabled=False`` builds no controller at all — the run takes the
    identical code path (and is bit-identical to) a run that never
    mentioned hybrid mode.
    """

    enabled: bool = True
    # admission: flows at least this big are abstract candidates ...
    size_threshold: int = 1_000_000
    # ... provided the unloaded transfer would outlive this ("age"
    # threshold: seconds of serialization at the path bottleneck)
    min_duration: float = 0.0
    # demote when measured packet traffic claims more than this
    # fraction of a path port's capacity (belt and braces on top of the
    # packet-flow path refcounts, which catch sharing exactly)
    contention_fraction: float = 0.02
    # upper bound on the inter-epoch interval while packet-mode flows
    # coexist (stands in for per-ACK cwnd-inflection triggers, which
    # would put a hook on the packet hot path)
    max_epoch: float = 0.005


def waterfill(paths: Sequence[Sequence[int]],
              capacities: Sequence[float],
              ) -> Tuple[List[float], List[Optional[int]]]:
    """Progressive max-min waterfilling.

    ``paths[i]`` lists the port indices flow ``i`` traverses;
    ``capacities[j]`` is port ``j``'s available rate.  Returns
    ``(rates, bottlenecks)`` where ``bottlenecks[i]`` is the saturated
    port index that froze flow ``i`` (flows with empty paths stay at
    rate 0 with bottleneck None; admission never produces them).

    Pure function over plain data so the hypothesis property suite can
    hammer it directly: the result is feasible (no port over capacity)
    and max-min fair (every flow's rate is maximal among the flows
    crossing its bottleneck).
    """
    n = len(paths)
    rates = [0.0] * n
    bottlenecks: List[Optional[int]] = [None] * n
    # per-port active-flow counts, insertion-ordered for determinism
    counts: Dict[int, int] = {}
    for path in paths:
        for j in path:
            counts[j] = counts.get(j, 0) + 1
    remaining = list(capacities)
    active = [bool(path) for path in paths]
    n_active = sum(active)
    while n_active:
        # the tightest port sets this round's uniform increment
        increment = None
        for j, c in counts.items():
            share = remaining[j] / c
            if increment is None or share < increment:
                increment = share
        if increment is None:  # no active flow crosses any port
            break
        if increment < 0.0:
            increment = 0.0
        for i in range(n):
            if active[i]:
                rates[i] += increment
                for j in paths[i]:
                    remaining[j] -= increment
        # freeze every flow crossing a saturated port
        saturated = {j for j, c in counts.items()
                     if remaining[j] <= 1e-9 * (capacities[j] + 1.0)}
        if not saturated:  # float dust: force the tightest port closed
            tightest = min(counts, key=lambda j: remaining[j] / counts[j])
            saturated = {tightest}
        for i in range(n):
            if not active[i]:
                continue
            hit = None
            for j in paths[i]:
                if j in saturated:
                    hit = j
                    break
            if hit is not None:
                active[i] = False
                n_active -= 1
                bottlenecks[i] = hit
                for j in paths[i]:
                    left = counts.get(j)
                    if left is not None:
                        if left > 1:
                            counts[j] = left - 1
                        else:
                            del counts[j]
    return rates, bottlenecks


class AbstractFlow:
    """Book-keeping for one analytically advanced flow."""

    __slots__ = ("flow", "path", "wire_total", "wire_remaining",
                 "rate", "bottleneck", "last_update")

    def __init__(self, flow, path: List[Port], wire_total: float,
                 now: float) -> None:
        self.flow = flow
        self.path = path
        self.wire_total = wire_total          # payload + per-packet headers
        self.wire_remaining = wire_total
        self.rate = 0.0                       # bytes/sec, set by waterfill
        self.bottleneck: Optional[Port] = None
        self.last_update = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<AbstractFlow {self.flow.flow_id} "
                f"remaining={self.wire_remaining:.0f}B "
                f"rate={self.rate * 8e-9:.3f}Gbps>")


class HybridController:
    """Scheme wrapper that owns the abstract flow set.

    Wraps any :class:`~repro.transport.base.Scheme`; the runner
    substitutes it when a scenario carries an enabled
    :class:`HybridConfig`.  Every flow start routes through
    :meth:`start_flow`, which either admits the flow to the abstract
    set or hands it to the wrapped scheme unchanged (tracking its port
    path so sharing checks are exact).  Plain data + bound methods
    throughout: the controller pickles inside checkpoints (it rides
    ``RunState.hybrid`` and the engine heap), and a mid-epoch resume is
    bit-identical.
    """

    def __init__(self, scheme, config: HybridConfig) -> None:
        self.scheme = scheme
        self.config = config
        self.sim: Optional[Simulator] = None
        self.network: Optional[Network] = None
        self.ctx = None
        self.ledger = LinkLedger()
        self.abstract: Dict[int, AbstractFlow] = {}
        self.epoch_event: Optional[RearmableEvent] = None
        # abstraction is only sound under deterministic per-flow
        # routing; spray / stateful LB disables it wholesale (bind time)
        self.abstraction_ok = False
        self._packet_paths: Dict[int, List[Port]] = {}
        # demoted-tail flow id -> the original Flow awaiting its FCT
        self._tail_map: Dict[int, object] = {}
        self.packet_active = 0
        self._inner_on_complete = None
        self._in_abstract_complete = False
        self._in_epoch = False
        # ledger counters (wire bytes; the auditor's conservation law)
        self.flows_abstracted = 0
        self.flows_demoted = 0
        self.epochs = 0
        self.offered_wire_bytes = 0.0
        self.delivered_wire_bytes = 0.0
        self.demoted_wire_bytes = 0.0

    # -- Scheme facade -----------------------------------------------------

    @property
    def name(self) -> str:
        return self.scheme.name

    def configure_network(self, network) -> None:
        self.scheme.configure_network(network)

    def start_flow(self, flow, ctx) -> None:
        if self.ctx is not ctx:
            self._bind(ctx)
        af = self._classify(flow)
        if af is not None:
            self._admit(af)
        else:
            self._start_packet(flow)

    # -- wiring ------------------------------------------------------------

    def _bind(self, ctx) -> None:
        self.ctx = ctx
        self.sim = ctx.sim
        self.network = ctx.network
        self.epoch_event = RearmableEvent(self.sim, self._epoch)
        self.abstraction_ok = not any(
            switch.spray or switch.lb is not None
            for switch in self.network.switches)
        # observe every completion: tail-flow finish-time mapping and
        # packet-departure epoch triggers
        self._inner_on_complete = ctx._on_complete
        ctx._on_complete = self._on_any_complete
        ctx.extra["hybrid"] = self

    # -- classification & admission ----------------------------------------

    def _classify(self, flow) -> Optional[AbstractFlow]:
        cfg = self.config
        if not self.abstraction_ok or flow.size < cfg.size_threshold \
                or flow.src == flow.dst:
            return None
        network = self.network
        path = network.resolve_path(flow.flow_id, flow.src, flow.dst)
        min_rate = min(port.rate_bps for port in path)
        wire_total = float(
            flow.size
            + flow.n_packets(self.ctx.config.mss) * HEADER_BYTES)
        if wire_total * 8.0 / min_rate < cfg.min_duration:
            return None
        ledger = self.ledger
        fraction = cfg.contention_fraction
        for port in path:
            if ledger.contended(port, fraction):
                return None
        return AbstractFlow(flow, path, wire_total, self.sim.now)

    def _admit(self, af: AbstractFlow) -> None:
        self.abstract[af.flow.flow_id] = af
        self.flows_abstracted += 1
        self.offered_wire_bytes += af.wire_total
        for port in af.path:
            self.ledger.track(port)
        self._epoch()  # arrival is a congestion epoch: recompute now

    def _start_packet(self, flow) -> None:
        if self.abstraction_ok:
            path = self.network.resolve_path(flow.flow_id, flow.src, flow.dst)
            if path:
                self._packet_paths[flow.flow_id] = path
                self.ledger.add_packet_flow(path)
                if self.abstract and any(
                        not set(af.path).isdisjoint(path)
                        for af in self.abstract.values()):
                    # the newcomer shares a bottleneck: demote BEFORE its
                    # first packet flies so it contends with real traffic
                    self._epoch()
        self.packet_active += 1
        self.scheme.start_flow(flow, self.ctx)

    # -- the congestion epoch ----------------------------------------------

    def _epoch(self) -> None:
        """Advance, measure, demote, waterfill, re-arm — one epoch.

        Re-entrancy guard: demotion starts packet tails, whose path
        registration would recursively trigger another epoch; the
        running epoch's own demotion sweep already sees the updated
        ledger, so the nested trigger is simply suppressed.
        """
        if self._in_epoch:
            return
        self._in_epoch = True
        try:
            self._run_epoch()
        finally:
            self._in_epoch = False

    def _run_epoch(self) -> None:
        now = self.sim.now
        self.epochs += 1
        telemetry = self.ctx.telemetry
        if telemetry is not None:
            telemetry.record("hybrid_epoch", now,
                             detail=f"abstract={len(self.abstract)}")
        abstract = self.abstract
        finished: List[AbstractFlow] = []
        for af in abstract.values():
            dt = now - af.last_update
            if dt > 0.0 and af.rate > 0.0:
                delivered = af.rate * dt
                if delivered > af.wire_remaining:
                    delivered = af.wire_remaining
                af.wire_remaining -= delivered
                self.delivered_wire_bytes += delivered
            af.last_update = now
            if af.wire_remaining <= _DONE_BYTES:
                finished.append(af)
        for af in finished:
            del abstract[af.flow.flow_id]
            # bank the float residue so the conservation ledger closes
            self.delivered_wire_bytes += af.wire_remaining
            af.wire_remaining = 0.0
            flow = af.flow
            # last byte still crosses the fabric: completion lands one
            # one-way base delay after the transfer drains
            self.sim.schedule(self.network.base_delay(flow.src, flow.dst),
                              self._complete_abstract, flow)
        self.ledger.measure(now)
        if abstract:
            fraction = self.config.contention_fraction
            ledger = self.ledger
            for af in list(abstract.values()):
                for port in af.path:
                    if ledger.contended(port, fraction):
                        self._demote(af, now)
                        break
            self._assign_rates()
        self._arm(now)

    def _assign_rates(self) -> None:
        flows = list(self.abstract.values())
        if not flows:
            return
        port_index: Dict[Port, int] = {}
        capacities: List[float] = []
        paths: List[List[int]] = []
        available = self.ledger.available_bps
        for af in flows:
            indices = []
            for port in af.path:
                j = port_index.get(port)
                if j is None:
                    j = port_index[port] = len(capacities)
                    capacities.append(available(port) / 8.0)
                indices.append(j)
            paths.append(indices)
        rates, bottlenecks = waterfill(paths, capacities)
        ports = list(port_index)
        for af, rate, bn in zip(flows, rates, bottlenecks):
            af.rate = rate
            af.bottleneck = ports[bn] if bn is not None else None

    def _arm(self, now: float) -> None:
        abstract = self.abstract
        if not abstract:
            if self.epoch_event is not None:
                self.epoch_event.clear()
            return
        next_time = math.inf
        for af in abstract.values():
            if af.rate > 0.0:
                done = now + af.wire_remaining / af.rate
                if done < next_time:
                    next_time = done
        if self.packet_active > 0:
            # coexisting packet traffic: bound measurement staleness
            cap = now + self.config.max_epoch
            if cap < next_time:
                next_time = cap
        if next_time != math.inf:
            self.epoch_event.set_at(next_time)
        else:
            self.epoch_event.clear()

    # -- demotion & completion ---------------------------------------------

    def _demote(self, af: AbstractFlow, now: float) -> None:
        """Hand an abstract flow's remainder back to the packet model."""
        flow = af.flow
        del self.abstract[flow.flow_id]
        self.flows_demoted += 1
        self.demoted_wire_bytes += af.wire_remaining
        delivered = af.wire_total - af.wire_remaining
        telemetry = self.ctx.telemetry
        if telemetry is not None:
            telemetry.record("hybrid_demote", now, flow_id=flow.flow_id,
                             detail=f"delivered={delivered:.0f}B")
        if delivered <= _DONE_BYTES:
            # nothing delivered yet: the original flow starts fresh
            af.wire_remaining = 0.0
            self._start_packet(flow)
            return
        payload_left = int(math.ceil(
            af.wire_remaining * (flow.size / af.wire_total)))
        payload_left = min(max(payload_left, 1), flow.size)
        af.wire_remaining = 0.0
        tail = type(flow)(flow_id=flow.flow_id, src=flow.src, dst=flow.dst,
                          size=payload_left, start_time=now)
        self._tail_map[flow.flow_id] = flow
        self._start_packet(tail)

    def _complete_abstract(self, flow) -> None:
        self._in_abstract_complete = True
        try:
            self.ctx.on_complete(flow)
        finally:
            self._in_abstract_complete = False

    def _on_any_complete(self, flow) -> None:
        inner = self._inner_on_complete
        if inner is not None:
            inner(flow)
        if self._in_abstract_complete:
            return
        # a packet-mode flow finished: release its path refcounts and —
        # since capacity was freed — make the next instant an epoch
        self.packet_active -= 1
        path = self._packet_paths.pop(flow.flow_id, None)
        if path is not None:
            self.ledger.remove_packet_flow(path)
        original = self._tail_map.pop(flow.flow_id, None)
        if original is not None and original is not flow:
            original.finish_time = flow.finish_time
        if self.abstract:
            event = self.epoch_event
            if event.time is None or event.time > self.sim.now:
                event.set_at(self.sim.now)

    # -- fault coupling ----------------------------------------------------

    def on_fault_transition(self, port, is_down: bool) -> None:
        """Chained onto fault injectors: every transition is an epoch.

        The epoch's own demotion sweep handles flows crossing the port
        (a chained port is always :meth:`LinkLedger.contended`), after
        first banking their progress at pre-transition rates.
        """
        if self.sim is None or not self.abstract:
            return  # no flow ever started, or nothing abstract to react
        self._epoch()

    # -- introspection ------------------------------------------------------

    def remaining_wire_bytes(self) -> float:
        return sum(af.wire_remaining for af in self.abstract.values())

    def progress_probe(self, now: float) -> tuple:
        """Monotone progress signature for the run-health watchdog.

        Projects banked progress forward to ``now`` so long analytic
        epochs (hours of simulated transfer, zero heap events between)
        still register as progress every health slice.
        """
        projected = self.delivered_wire_bytes
        for af in self.abstract.values():
            projected += af.rate * (now - af.last_update)
        return (self.epochs, self.flows_demoted, self.packet_active,
                int(projected))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<HybridController {self.scheme.name} "
                f"abstract={len(self.abstract)} demoted={self.flows_demoted} "
                f"epochs={self.epochs}>")
