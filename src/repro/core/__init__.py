"""PPT: the paper's primary contribution."""

from .hypothetical import HypotheticalDctcp, MwRecordingDctcp
from .identification import (
    MEMCACHED_APP,
    WEB_SERVER_APP,
    AppWriteModel,
    identification_accuracy,
    identify_large,
)
from .lcp import LcpController
from .ppt import Ppt, PptReceiver, PptSender
from .ppt_hpcc import PptHpcc, PptHpccSender
from .ppt_swift import PptSwift, PptSwiftSender
from .tagging import MirrorTagger

__all__ = [
    "Ppt", "PptSender", "PptReceiver", "PptSwift", "PptSwiftSender",
    "PptHpcc", "PptHpccSender",
    "LcpController", "MirrorTagger",
    "identify_large", "identification_accuracy", "AppWriteModel",
    "MEMCACHED_APP", "WEB_SERVER_APP",
    "HypotheticalDctcp", "MwRecordingDctcp",
]
