"""PPT — the assembled pragmatic transport (§2.3 "putting it all together").

A PPT flow is one flow split in two: the HCP loop (plain DCTCP) sends
normal packets in order from the first byte of the send buffer, while the
LCP loop (:mod:`repro.core.lcp`) sends opportunistic packets from the very
last byte.  The buffer-aware scheduler tags HCP packets P0–P3 and LCP
packets P4–P7 (:mod:`repro.core.tagging`), with large flows identified at
the first syscall (:mod:`repro.core.identification`).

The receiver isolates the two loops (§5.2): high-priority packets go
through the standard per-packet ACK path feeding DCTCP; opportunistic
packets are counted and acknowledged with one low-priority ACK per *two*
LP data packets, carrying SACK tags for both and the ECN-Echo of either.
When the ACK for LP data advances past the HCP loop's next sequence, the
sender simply advances its head ("tweak the ACK processing by advancing
the send queue's head"), implemented here by the shared delivered set that
the HCP head pointer skips over.

Ablation flags reproduce the §6.3.1 variants:

* ``lcp_ecn=False``   — Fig. 15 (no ECN for the LCP loop),
* ``ewd=False``       — Fig. 16 (line-rate LCP instead of EWD),
* ``scheduling=False``— Fig. 17 (all flows share one priority per loop),
* ``identification=False`` — Fig. 18 (every flow treated as unidentified),
* ``lcp_enabled=False``    — degenerates to plain DCTCP + scheduling.
"""

from __future__ import annotations

from ..sim.packet import ACK, DATA, Packet, make_ack
from ..transport.base import Flow, Scheme, TransportContext
from ..transport.dctcp import DctcpSender
from ..transport.window import WindowReceiver, _DeliveredAll
from .identification import identify_large
from .lcp import LcpController
from .tagging import MirrorTagger


class PptSender(DctcpSender):
    """HCP (DCTCP) sender with the LCP controller and mirror tagging."""

    def __init__(self, flow: Flow, ctx: TransportContext, scheme: "Ppt") -> None:
        super().__init__(flow, ctx)
        self.scheme = scheme
        cfg = ctx.config
        self.identified_large = bool(
            scheme.identification
            and identify_large(flow.first_syscall_bytes or 0,
                               cfg.identification_threshold)
        )
        self.tagger = MirrorTagger(self.identified_large,
                                   cfg.demotion_thresholds)
        self.lcp = LcpController(
            self,
            ecn=scheme.lcp_ecn,
            ewd=scheme.ewd,
            scheduling=scheme.scheduling,
            delay_large_first_loop=scheme.identification,
        )
        self.on_window_update = self._window_update_hook

    def _window_update_hook(self, _sender) -> None:
        if self.scheme.lcp_enabled:
            self.lcp.on_window_update()

    # -- scheme hooks --------------------------------------------------------

    def priority_for(self, seq: int) -> int:
        if not self.scheme.scheduling:
            return 0
        bytes_sent = seq * self.cfg.payload_per_packet()
        return self.tagger.hcp_priority(bytes_sent)

    # NOTE: the HCP loop does *not* skip packets the LCP loop has in
    # flight (default ``claimed_elsewhere`` = False).  Exactly like the
    # kernel prototype, the head keeps transmitting in order and only
    # advances past bytes the receiver has already acknowledged via
    # LP-ACKs (§5.2's snd_nxt tweak, realised through the shared
    # ``delivered`` set).  The occasional duplicate costs only spare
    # low-priority bandwidth; gating completion on a queued P4-P7 packet
    # would cost latency.

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        super().start()
        if self.scheme.lcp_enabled:
            self.lcp.on_flow_start()

    def stop(self) -> None:
        super().stop()
        self.lcp.shutdown()

    # -- packet dispatch ----------------------------------------------------------

    def on_packet(self, pkt: Packet) -> None:
        if pkt.kind != ACK or self.finished:
            return
        if pkt.lcp:
            self.lcp.on_lp_ack(pkt)
        else:
            self.handle_ack(pkt)


class PptReceiver(WindowReceiver):
    """Receiver with the 2:1 low-priority ACK rule (§3.2, §5.2).

    An LP data packet with no pair yet is *pending*: its ACK rides the
    next LP arrival.  The pending entry must never be stranded — the
    final LP packet of an odd-count batch used to sit un-acked until the
    sender's RTO re-sent it.  Two flushes close that hole: a short
    delayed-ACK timer (``config.lp_ack_delay``), and an immediate flush
    when the flow completes (via either loop).
    """

    def __init__(self, flow: Flow, ctx: TransportContext) -> None:
        super().__init__(flow, ctx)
        self._lp_pending: list = []
        self._lp_pending_ce = False
        self._lp_last_pkt: Packet = None
        self._lp_flush_event = None
        self.lp_pkts_received = 0
        self.lp_acks_sent = 0

    def on_packet(self, pkt: Packet) -> None:
        if pkt.kind == DATA and pkt.lcp:
            self._on_lp_data(pkt)
            return
        super().on_packet(pkt)
        if self._done:
            # flow completed through the HP path with an odd LP packet
            # still pending — acknowledge it now, not at the sender's RTO
            self._flush_lp_pending()

    def _on_lp_data(self, pkt: Packet) -> None:
        self.data_pkts_received += 1
        self.lp_pkts_received += 1
        if pkt.seq in self.delivered:
            self.dup_pkts_received += 1
        else:
            self.delivered.add(pkt.seq)
            while self.cum in self.delivered:
                self.cum += 1
        self._lp_pending.append(pkt.seq)
        self._lp_pending_ce = self._lp_pending_ce or pkt.ecn_ce
        self._lp_last_pkt = pkt
        if len(self._lp_pending) >= 2:
            self._send_lp_ack(pkt)
        elif self._lp_flush_event is None:
            self._lp_flush_event = self.ctx.sim.schedule(
                self.ctx.config.lp_ack_delay, self._lp_delayed_flush)
        if not self._done and len(self.delivered) >= self.n_packets:
            self._done = True
            self._flush_lp_pending()
            # finished receivers hold {0..n-1} exactly; release the
            # per-seq hash set (see window._DeliveredAll)
            self.delivered = _DeliveredAll(self.n_packets)
            self.ctx.on_complete(self.flow)

    def _send_lp_ack(self, pkt: Packet) -> None:
        ack = make_ack(pkt, ack_seq=self.cum, priority=7)
        ack.lcp = True
        ack.ecn_ce = self._lp_pending_ce
        ack.sack = tuple(self._lp_pending)
        self._lp_pending = []
        self._lp_pending_ce = False
        self._cancel_lp_flush()
        self.lp_acks_sent += 1
        self.ctx.network.send_control(ack)

    # -- pending-tail flushes ---------------------------------------------

    def _cancel_lp_flush(self) -> None:
        if self._lp_flush_event is not None:
            self._lp_flush_event.cancel()
            self._lp_flush_event = None

    def _lp_delayed_flush(self) -> None:
        """Delayed-ACK timer: acknowledge a pending odd LP packet."""
        self._lp_flush_event = None
        if self._lp_pending:
            self._send_lp_ack(self._lp_last_pkt)

    def _flush_lp_pending(self) -> None:
        """Immediately acknowledge whatever is pending (flow done)."""
        self._cancel_lp_flush()
        if self._lp_pending:
            self._send_lp_ack(self._lp_last_pkt)


class Ppt(Scheme):
    """The pragmatic transport.  See module docstring for the flags."""

    name = "ppt"

    def __init__(
        self,
        *,
        lcp_enabled: bool = True,
        lcp_ecn: bool = True,
        ewd: bool = True,
        scheduling: bool = True,
        identification: bool = True,
    ) -> None:
        self.lcp_enabled = lcp_enabled
        self.lcp_ecn = lcp_ecn
        self.ewd = ewd
        self.scheduling = scheduling
        self.identification = identification
        suffix = []
        if not lcp_enabled:
            suffix.append("nolcp")
        if not lcp_ecn:
            suffix.append("noecn")
        if not ewd:
            suffix.append("noewd")
        if not scheduling:
            suffix.append("nosched")
        if not identification:
            suffix.append("noident")
        if suffix:
            self.name = "ppt-" + "-".join(suffix)

    def start_flow(self, flow: Flow, ctx: TransportContext) -> None:
        sender = PptSender(flow, ctx, self)
        receiver = PptReceiver(flow, ctx)
        ctx.network.attach(flow.flow_id, flow.src, flow.dst, sender, receiver)
        sender.start()
