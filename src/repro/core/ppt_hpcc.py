"""PPT over HPCC — the integration sketched in the paper's appendix B.

    "PPT's design may also be used as a building block for INT-based
    transport like HPCC.  For example, one may open a PPT LCP loop to
    send low-priority opportunistic packets whenever HPCC's estimated
    in-flight bytes are smaller than BDP, and use PPT's buffer-aware
    scheduling to prioritize small flows over large ones."

This module implements exactly that extension (the paper leaves it as a
suggestion, so this is an *extension*, not a reproduced experiment):

* primary loop = :class:`~repro.transport.hpcc.HpccSender` (INT-driven
  window, all the telemetry machinery intact);
* LCP trigger — once per RTT, if the INT-estimated utilisation of the
  path's most-loaded hop is below the target (i.e. in-flight below BDP),
  open/refresh the LCP loop with the window gap to BDP;
* PPT's mirror-symmetric scheduling and buffer-aware identification
  apply to both loops.

``benchmarks/bench_ext_ppt_hpcc.py`` compares it against plain HPCC.
"""

from __future__ import annotations

from typing import Optional

from ..sim.packet import ACK, Packet
from ..transport.base import Flow, Scheme, TransportContext
from ..transport.hpcc import HpccSender
from .identification import identify_large
from .lcp import LcpController
from .ppt import PptReceiver
from .tagging import MirrorTagger


class PptHpccSender(HpccSender):
    """HPCC sender carrying PPT's LCP loop and scheduler."""

    # The LCP trigger threshold on the smoothed INT utilisation: below
    # this, the path has spare capacity worth filling.
    SPARE_UTILISATION = 0.85

    def __init__(self, flow: Flow, ctx: TransportContext,
                 scheme: "PptHpcc") -> None:
        super().__init__(flow, ctx)
        self.scheme = scheme
        cfg = ctx.config
        self.identified_large = identify_large(
            flow.first_syscall_bytes or 0, cfg.identification_threshold)
        self.tagger = MirrorTagger(self.identified_large,
                                   cfg.demotion_thresholds)
        self.lcp = LcpController(self, ecn=True, ewd=True, scheduling=True)
        self._last_u: Optional[float] = None
        self._check_event = None

    # LcpController interface shims (it was written against DctcpSender)
    startup_done = True

    @property
    def wmax(self) -> float:
        return self.max_cwnd_seen

    def priority_for(self, seq: int) -> int:
        bytes_sent = seq * self.cfg.payload_per_packet()
        return self.tagger.hcp_priority(bytes_sent)

    def start(self) -> None:
        super().start()
        self._check_event = self.sim.schedule(self.base_rtt,
                                              self._spare_check)

    def stop(self) -> None:
        super().stop()
        self.lcp.shutdown()
        if self._check_event is not None:
            self._check_event.cancel()
            self._check_event = None

    def _utilisation(self, records):
        u = super()._utilisation(records)
        if u is not None:
            self._last_u = u
        return u

    def _spare_check(self) -> None:
        """Once per RTT: open the LCP loop while INT says the path has
        spare capacity (in-flight below BDP)."""
        self._check_event = None
        if self.finished:
            return
        if (not self.lcp.active and self._last_u is not None
                and self._last_u < self.SPARE_UTILISATION):
            gap = self.ctx.bdp_packets(self.flow) - self.cwnd
            self.lcp.open_loop(gap)
        self._check_event = self.sim.schedule(
            max(self.srtt, self.base_rtt), self._spare_check)

    def on_packet(self, pkt: Packet) -> None:
        if pkt.kind != ACK or self.finished:
            return
        if pkt.lcp:
            self.lcp.on_lp_ack(pkt)
        else:
            self.handle_ack(pkt)


class PptHpcc(Scheme):
    """Extension: PPT's dual loop + scheduling grafted onto HPCC."""

    name = "ppt-hpcc"

    def start_flow(self, flow: Flow, ctx: TransportContext) -> None:
        sender = PptHpccSender(flow, ctx, self)
        receiver = PptReceiver(flow, ctx)
        ctx.network.attach(flow.flow_id, flow.src, flow.dst, sender, receiver)
        sender.start()
