"""PPT over a delay-based transport (§6.2 "working with delay-based
transport", Fig. 14).

The paper demonstrates that PPT's design is a building block, not a
DCTCP-only trick, by attaching it to a Swift-like transport: "this
variant starts an LCP loop whenever a flow's transmission delay falls
below the target delay and closes it when it does not receive ACKs for
two consecutive RTTs.  Moreover, this variant uses the same flow
scheduling method as PPT."

Implementation: a :class:`~repro.transport.swift.SwiftSender` carrying an
:class:`~repro.core.lcp.LcpController`.  The case-1/case-2 alpha triggers
are replaced by a per-RTT check of ``srtt < target_delay``; the loop's
initial window fills the gap from the current window to the path BDP.
"""

from __future__ import annotations

from ..sim.packet import ACK, Packet
from ..transport.base import Flow, Scheme, TransportContext
from ..transport.swift import SwiftSender
from .identification import identify_large
from .lcp import LcpController
from .ppt import PptReceiver
from .tagging import MirrorTagger


class PptSwiftSender(SwiftSender):
    """Swift sender + LCP loop + mirror-symmetric scheduling."""

    def __init__(self, flow: Flow, ctx: TransportContext,
                 scheme: "PptSwift") -> None:
        super().__init__(flow, ctx)
        self.scheme = scheme
        cfg = ctx.config
        self.identified_large = identify_large(
            flow.first_syscall_bytes or 0, cfg.identification_threshold)
        self.tagger = MirrorTagger(self.identified_large,
                                   cfg.demotion_thresholds)
        self.lcp = LcpController(self, ecn=True, ewd=True, scheduling=True)
        self._check_event = None

    # LcpController consumes these DCTCP-ish attributes; provide them.
    startup_done = True

    @property
    def wmax(self) -> float:
        return self.max_cwnd_seen

    def priority_for(self, seq: int) -> int:
        bytes_sent = seq * self.cfg.payload_per_packet()
        return self.tagger.hcp_priority(bytes_sent)

    # Like PptSender, the primary loop does not skip LCP-in-flight
    # packets: completion must never be gated on a queued P4-P7 copy.

    def start(self) -> None:
        super().start()
        self._check_event = self.sim.schedule(self.base_rtt, self._delay_check)

    def stop(self) -> None:
        super().stop()
        self.lcp.shutdown()
        if self._check_event is not None:
            self._check_event.cancel()
            self._check_event = None

    def _delay_check(self) -> None:
        """Once per RTT: open an LCP loop while delay is under target."""
        self._check_event = None
        if self.finished:
            return
        if not self.lcp.active and self.below_target:
            gap = self.ctx.bdp_packets(self.flow) - self.cwnd
            self.lcp.open_loop(gap)
        self._check_event = self.sim.schedule(
            max(self.srtt, self.base_rtt), self._delay_check)

    def on_packet(self, pkt: Packet) -> None:
        if pkt.kind != ACK or self.finished:
            return
        if pkt.lcp:
            self.lcp.on_lp_ack(pkt)
        else:
            self.handle_ack(pkt)


class PptSwift(Scheme):
    """PPT's dual loop + scheduling grafted onto the Swift-like transport."""

    name = "ppt-swift"

    def start_flow(self, flow: Flow, ctx: TransportContext) -> None:
        sender = PptSwiftSender(flow, ctx, self)
        receiver = PptReceiver(flow, ctx)
        ctx.network.attach(flow.flow_id, flow.src, flow.dst, sender, receiver)
        sender.start()
