"""The *hypothetical* DCTCP of §2.3 (Figs. 2, 3, 20).

Construction follows the paper exactly: "We first run the default DCTCP
and record each flow's maximum window (MW).  Then, we run the
hypothetical DCTCP that sends just enough opportunistic packets to fill
the gap to MW for each flow in each RTT."

:class:`MwRecordingDctcp` is pass one — plain DCTCP that stores each
flow's maximum congestion window in a shared table keyed by flow id.
:class:`HypotheticalDctcp` is pass two — DCTCP plus an oracle filler that
every RTT tops up low-priority in-flight opportunistic packets to
``fill_factor * MW - cwnd`` (``fill_factor`` sweeps Fig. 3's 50%–150%).
Opportunistic packets ride P4 so they never displace normal traffic, and
are paced over the RTT.  The oracle is deliberately ECN-blind — it fills
to the target no matter what, which is exactly what makes the Fig. 3
overfill sweep hurt.

Experiment drivers use :func:`two_pass` from
:mod:`repro.experiments.runner` to run both passes with the same seed.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.packet import ACK, Packet
from ..transport.base import Flow, Scheme, TransportContext
from ..transport.dctcp import Dctcp, DctcpSender
from ..transport.window import WindowReceiver


class _RecordingSender(DctcpSender):
    def __init__(self, flow: Flow, ctx: TransportContext,
                 table: Dict[int, float]) -> None:
        super().__init__(flow, ctx)
        self._table = table

    def stop(self) -> None:
        # Footnote 3: only congestion-avoidance windows count towards MW;
        # a flow that never left startup reports its final window instead
        # of the slow-start overshoot peak.
        if self.startup_done and self.wmax > 0:
            mw = self.wmax
        else:
            mw = min(self.max_cwnd_seen, self.cwnd + self.cfg.init_cwnd)
        self._table[self.flow.flow_id] = mw
        super().stop()


class MwRecordingDctcp(Scheme):
    """Pass one: default DCTCP, recording each flow's maximum window."""

    name = "dctcp-recording"

    def __init__(self) -> None:
        self.mw_table: Dict[int, float] = {}

    def start_flow(self, flow: Flow, ctx: TransportContext) -> None:
        sender = _RecordingSender(flow, ctx, self.mw_table)
        receiver = WindowReceiver(flow, ctx)
        ctx.network.attach(flow.flow_id, flow.src, flow.dst, sender, receiver)
        sender.start()


class _HypotheticalSender(DctcpSender):
    """DCTCP + per-RTT oracle gap filler."""

    def __init__(self, flow: Flow, ctx: TransportContext,
                 mw: float, fill_factor: float) -> None:
        super().__init__(flow, ctx)
        # Filling beyond the path's capacity (BDP plus about one marking
        # threshold of buffer) is pure loss — exactly what Fig. 3 shows
        # for fill factors above 1.
        mw = min(mw, 2.0 * ctx.bdp_packets(flow))
        self.target_window = fill_factor * mw
        self.lp_outstanding: Dict[int, float] = {}
        self.lp_sent = 0
        self._fill_timer = None

    def start(self) -> None:
        super().start()
        self._fill_round()

    def stop(self) -> None:
        super().stop()
        if self._fill_timer is not None:
            self._fill_timer.cancel()
            self._fill_timer = None

    def _fill_round(self) -> None:
        self._fill_timer = None
        if self.finished:
            return
        # purge presumed-lost opportunistic packets
        horizon = self.sim.now - 2.0 * max(self.srtt, self.base_rtt)
        for seq in [s for s, t in self.lp_outstanding.items() if t < horizon]:
            del self.lp_outstanding[seq]
        gap = int(self.target_window - self.cwnd - len(self.lp_outstanding))
        rtt = max(self.base_rtt, 1e-9)
        if gap > 0:
            interval = rtt / gap
            for i in range(gap):
                self.sim.schedule(i * interval, self._fill_one)
        self._fill_timer = self.sim.schedule(max(self.srtt, rtt),
                                             self._fill_round)

    def _fill_one(self) -> None:
        if self.finished:
            return
        seq = self._pick_tail_seq()
        if seq is None:
            return
        pkt = self.build_packet(seq)
        pkt.lcp = True
        pkt.priority = 4
        pkt.sent_at = self.sim.now
        self.lp_outstanding[seq] = self.sim.now
        self.lp_sent += 1
        self.pkts_transmitted += 1
        self.host.send(pkt)

    def _pick_tail_seq(self) -> Optional[int]:
        seq = self.buffer_end() - 1
        while seq >= 0:
            if seq <= self.send_ptr:
                return None
            if (seq not in self.delivered and seq not in self.outstanding
                    and seq not in self.lp_outstanding):
                return seq
            seq -= 1
        return None

    # Like PPT's HCP (see repro.core.ppt), the primary loop does not skip
    # packets the filler has in flight: completion must never be gated on
    # a queued low-priority copy.

    def on_packet(self, pkt: Packet) -> None:
        if pkt.kind != ACK or self.finished:
            return
        if pkt.lcp:
            self.delivered.add(pkt.seq)
            self.lp_outstanding.pop(pkt.seq, None)
            if pkt.ack_seq > self.cum:
                for s in range(self.cum, pkt.ack_seq):
                    self.delivered.add(s)
                    self.outstanding.pop(s, None)
                self.cum = pkt.ack_seq
            if len(self.delivered) >= self.n_packets:
                self.stop()
                return
            self.try_send()
            return
        self.handle_ack(pkt)


class HypotheticalDctcp(Scheme):
    """Pass two: fill each flow's window gap to ``fill_factor * MW``."""

    name = "hypothetical-dctcp"

    def __init__(self, mw_table: Dict[int, float], fill_factor: float = 1.0):
        self.mw_table = mw_table
        self.fill_factor = fill_factor
        if fill_factor != 1.0:
            self.name = f"hypothetical-dctcp-{int(fill_factor * 100)}"

    def start_flow(self, flow: Flow, ctx: TransportContext) -> None:
        mw = self.mw_table.get(flow.flow_id, float(ctx.config.init_cwnd))
        sender = _HypotheticalSender(flow, ctx, mw, self.fill_factor)
        receiver = WindowReceiver(flow, ctx)
        ctx.network.attach(flow.flow_id, flow.src, flow.dst, sender, receiver)
        sender.start()
