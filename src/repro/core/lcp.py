"""LCP — PPT's low-priority control loop (§3).

The controller lives beside a window sender (the HCP loop) and sends
*opportunistic* packets from the tail of the send buffer.  Two unusual
techniques, exactly as the paper describes:

**Intermittent loop initialization (§3.1).**  A loop opens

* *case 1* — when the flow starts, with initial window
  ``I = BDP - init_cwnd`` (delayed to the 2nd RTT for flows the
  buffer-aware approach identified as large, so first-RTT small flows are
  protected);
* *case 2* — after startup, whenever DCTCP's ``alpha`` takes the minimum
  value over the recent windows, with ``I = (1/2 - alpha_min) * W_max``
  (Eq. 2) — at most half the historical maximum window, and less when the
  minimum congestion level is higher.

**Exponential window decreasing (§3.2).**  The sender paces the initial
``I`` packets over one RTT.  The *receiver* returns one low-priority ACK
per two opportunistic data packets, and each non-ECE LP-ACK releases
exactly one new opportunistic packet — so the opportunistic rate halves
every RTT, gracefully vacating the bandwidth as HCP ramps back up.  An
ECE-marked LP-ACK is ignored (no new packet): either normal packets are
blocking opportunistic ones or vice versa, and in both cases LCP must
yield.  A loop terminates after 2 RTTs without LP-ACKs, after which the
controller goes back to watching for spare bandwidth.

Ablation switches (used by Figs. 15/16): ``ecn=False`` makes opportunistic
packets non-ECN-capable and removes the ECE suppression; ``ewd=False``
sends the loop's window at line rate every RTT instead of the paced,
halving schedule.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.engine import Event
from ..sim.packet import Packet

_EPS = 1e-9


class LcpController:
    """Low-priority control loop attached to one PPT sender."""

    def __init__(
        self,
        sender,
        *,
        ecn: bool = True,
        ewd: bool = True,
        scheduling: bool = True,
        delay_large_first_loop: bool = True,
    ) -> None:
        self.sender = sender
        self.sim = sender.sim
        self.ecn = ecn
        self.ewd = ewd
        self.scheduling = scheduling
        self.delay_large_first_loop = delay_large_first_loop

        self.active = False
        self.outstanding: Dict[int, float] = {}   # seq -> send time
        self.last_lp_ack = -1.0
        self.initial_window = 0

        # statistics
        self.loops_opened = 0
        self.lp_pkts_sent = 0
        self.lp_acks_received = 0
        self.lp_acks_suppressed = 0

        self._pace_events: list = []
        self._term_event: Optional[Event] = None

    # -- lifecycle ---------------------------------------------------------

    def on_flow_start(self) -> None:
        """Case 1: open the first loop at flow start (or the 2nd RTT for
        identified-large flows)."""
        delay = 0.0
        if self.sender.identified_large and self.delay_large_first_loop:
            delay = self.sender.base_rtt
        self.sim.schedule(delay, self._open_case1)

    def _open_case1(self) -> None:
        if self.sender.finished or self.active:
            return
        bdp = self.sender.ctx.bdp_packets(self.sender.flow)
        self.open_loop(bdp - self.sender.cfg.init_cwnd)

    def on_window_update(self) -> None:
        """Case 2: DCTCP just finished a window; (re)initialise a loop
        whenever alpha is at its running minimum (Eq. 2).

        The paper's invariant is per-RTT: "LCP ensures its window plus the
        current HCP's one does not exceed the maximum window for each flow
        in every RTT" — so an already-open loop whose EWD schedule has
        decayed is topped back up to the Eq. 2 window, counting what is
        still in flight."""
        sender = self.sender
        if sender.finished or not sender.startup_done:
            return
        alpha_min = sender.alpha_min
        if sender.alpha <= alpha_min + _EPS:
            gap = (0.5 - alpha_min) * sender.wmax - len(self.outstanding)
            self.open_loop(gap)

    def shutdown(self) -> None:
        self._cancel_timers()
        self.active = False
        self.outstanding.clear()

    def _cancel_timers(self) -> None:
        for event in self._pace_events:
            event.cancel()
        self._pace_events.clear()
        if self._term_event is not None:
            self._term_event.cancel()
            self._term_event = None

    # -- loop control --------------------------------------------------------

    def open_loop(self, initial_window: float) -> bool:
        """(Re)initialise the LCP loop with ``initial_window`` packets;
        False if the window is not positive or the flow has nothing left
        to fill.  An already-active loop is re-paced (its in-flight
        packets stay out; the caller accounts for them)."""
        if self.sender.finished:
            return False
        window = int(min(initial_window, self.sender.n_packets))
        if window < 1:
            return False
        for event in self._pace_events:
            event.cancel()
        self._pace_events.clear()
        self.active = True
        self.loops_opened += 1
        self.initial_window = window
        self.last_lp_ack = self.sim.now
        rtt = max(self.sender.base_rtt, 1e-9)
        if self.ewd:
            # pace I packets over one RTT: rate I/RTT (§3.2)
            interval = rtt / window
            for i in range(window):
                self._pace_events.append(
                    self.sim.schedule(i * interval, self._paced_send))
        else:
            # ablation (Fig. 16): line-rate burst, repeated every RTT
            for _ in range(window):
                if not self._send_one():
                    break
        if self._term_event is None:
            self._term_event = self.sim.schedule(rtt, self._termination_check)
        return True

    def close_loop(self) -> None:
        self._cancel_timers()
        self.active = False
        self.outstanding.clear()

    def _termination_check(self) -> None:
        self._term_event = None
        if not self.active or self.sender.finished:
            return
        rtt = max(self.sender.srtt, self.sender.base_rtt)
        # purge presumed-lost opportunistic packets so the HCP loop can
        # cover those holes (LCP never retransmits)
        horizon = self.sim.now - 2.0 * rtt
        for seq in [s for s, t in self.outstanding.items() if t < horizon]:
            del self.outstanding[seq]
        if self.sim.now - self.last_lp_ack > 2.0 * rtt:
            self.close_loop()
            return
        if not self.ewd:
            # the no-EWD variant keeps blasting its window every RTT
            for _ in range(self.initial_window - len(self.outstanding)):
                if not self._send_one():
                    break
        self._term_event = self.sim.schedule(rtt, self._termination_check)

    # -- sending ----------------------------------------------------------------

    def _paced_send(self) -> None:
        if self.active and not self.sender.finished:
            self._send_one()

    def _pick_tail_seq(self) -> Optional[int]:
        """Highest buffered packet index not yet delivered or in flight.

        Returns None when the loops have crossed (nothing left above the
        HCP loop's pointer), which also closes the loop.
        """
        sender = self.sender
        seq = sender.buffer_end() - 1
        delivered = sender.delivered
        hcp_outstanding = sender.outstanding
        while seq >= 0:
            if seq <= sender.send_ptr:
                return None  # crossed with the HCP loop
            if (seq not in delivered and seq not in hcp_outstanding
                    and seq not in self.outstanding):
                return seq
            seq -= 1
        return None

    def _send_one(self) -> bool:
        sender = self.sender
        seq = self._pick_tail_seq()
        if seq is None:
            self.close_loop()
            return False
        pkt = sender.build_packet(seq)
        pkt.lcp = True
        pkt.ecn_capable = self.ecn
        if self.scheduling:
            bytes_sent = seq * sender.cfg.payload_per_packet()
            pkt.priority = sender.tagger.lcp_priority(bytes_sent)
        else:
            pkt.priority = 4
        pkt.sent_at = self.sim.now
        self.outstanding[seq] = self.sim.now
        self.lp_pkts_sent += 1
        sender.pkts_transmitted += 1
        sender.host.send(pkt)
        return True

    # -- LP-ACK handling -----------------------------------------------------------

    def on_lp_ack(self, pkt: Packet) -> None:
        """Receiver sent one LP-ACK per two opportunistic packets."""
        sender = self.sender
        self.lp_acks_received += 1
        self.last_lp_ack = self.sim.now
        sacked = pkt.sack or (pkt.seq,)
        for seq in sacked:
            sender.delivered.add(seq)
            self.outstanding.pop(seq, None)
            sender.outstanding.pop(seq, None)
        if pkt.ack_seq > sender.cum:
            for s in range(sender.cum, pkt.ack_seq):
                sender.delivered.add(s)
                sender.outstanding.pop(s, None)
            sender.cum = pkt.ack_seq
        if len(sender.delivered) >= sender.n_packets:
            sender.stop()
            return
        if self.active:
            if self.ecn and pkt.ecn_ce:
                # Congestion on the low-priority path: yield (§3.2
                # remarks).  Besides not releasing a new packet, cancel
                # whatever remains of the paced initial window — "sense
                # congestion and decrease the sending rate early".
                self.lp_acks_suppressed += 1
                for event in self._pace_events:
                    event.cancel()
                self._pace_events.clear()
            elif self.ewd:
                self._send_one()
        sender.try_send()
