"""Mirror-symmetric packet tagging (§4.2, Fig. 6).

Eight strict priorities are split in half: P0–P3 carry HCP (normal)
packets, P4–P7 carry LCP (opportunistic) packets.  Each half applies the
same rule:

* a flow **identified as large** by the buffer-aware approach uses the
  half's lowest priority (P3 / P7) from its very first packet;
* an **unidentified** flow starts at the half's highest priority (P0 /
  P4) and is demoted one level at a time as it sends more bytes
  (PIAS-style aging over the remaining three levels).

Because the two halves demote "at the same pace" (P_i and P_{i+4}), LCP
traffic of *any* flow is always strictly below all HCP traffic — the
property §4.3 relies on for HCP protection and large-flow non-starvation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

HCP_LOWEST = 3
LCP_OFFSET = 4


@dataclass
class MirrorTagger:
    """Per-flow priority assigner.

    Parameters
    ----------
    identified_large:
        Result of buffer-aware identification at flow start.
    demotion_thresholds:
        Bytes-sent boundaries for demotion through the three high levels
        (unidentified flows only).  Must be non-decreasing.
    """

    identified_large: bool
    demotion_thresholds: Sequence[int] = (100_000, 1_000_000, 10_000_000)

    def __post_init__(self) -> None:
        thresholds = tuple(self.demotion_thresholds)
        if list(thresholds) != sorted(thresholds):
            raise ValueError("demotion thresholds must be non-decreasing")
        if len(thresholds) != HCP_LOWEST:
            raise ValueError("exactly three demotion thresholds required "
                             "(levels P0->P1->P2->P3)")
        self.demotion_thresholds = thresholds

    def hcp_priority(self, bytes_sent: int) -> int:
        """Priority for a normal (HCP) packet after ``bytes_sent`` bytes."""
        if self.identified_large:
            return HCP_LOWEST
        for level, threshold in enumerate(self.demotion_thresholds):
            if bytes_sent < threshold:
                return level
        return HCP_LOWEST

    def lcp_priority(self, bytes_sent: int) -> int:
        """Priority for an opportunistic (LCP) packet — the mirror image."""
        return self.hcp_priority(bytes_sent) + LCP_OFFSET
