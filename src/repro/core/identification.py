"""Buffer-aware flow identification (§4.1).

The mechanism: applications copy data into the kernel send buffer via
``send()`` syscalls; with an adequately sized buffer, a flow whose *first*
syscall injects more than a threshold is identified as large at the very
start of transmission.  Identification can miss flows whose applications
write a small framing chunk first (protocol headers, chunked encoders) —
the paper measures 86.7% accuracy for Memcached (>1KB flows, 1KB
threshold) and 84.3% for a web server (>10KB flows, 10KB threshold).

This module provides:

* :func:`identify_large` — the kernel-side check itself,
* application *write models* reproducing the first-syscall behaviour of
  Memcached-style and HTTP-server-style applications, used by the §4.1
  accuracy experiment (``benchmarks/bench_identification_accuracy.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Tuple


def identify_large(first_syscall_bytes: int, threshold: int) -> bool:
    """Kernel check: did the first ``send()`` exceed the threshold?"""
    return first_syscall_bytes >= threshold


@dataclass
class AppWriteModel:
    """How an application chops a message into ``send()`` syscalls.

    ``framing_probability`` is the chance the application writes a small
    protocol-framing chunk (header, length prefix) as its *first* syscall
    before the body — the behaviour that defeats buffer-aware
    identification.  ``framing_bytes`` bounds that first chunk.
    """

    name: str
    framing_probability: float
    framing_bytes: Tuple[int, int]  # uniform range for the framing chunk

    def first_syscall(self, message_bytes: int, send_buffer: int,
                      rng: random.Random) -> int:
        if rng.random() < self.framing_probability:
            low, high = self.framing_bytes
            return min(message_bytes, rng.randint(low, high))
        return min(message_bytes, send_buffer)


# Memcached responses are assembled and written in (nearly) one syscall;
# a minority go out with the protocol header flushed first.
MEMCACHED_APP = AppWriteModel("memcached", framing_probability=0.13,
                              framing_bytes=(24, 100))

# HTTP servers frequently write status-line + headers before the body.
WEB_SERVER_APP = AppWriteModel("web-server", framing_probability=0.16,
                               framing_bytes=(200, 800))


def identification_accuracy(
    sizes: List[int],
    app: AppWriteModel,
    *,
    threshold: int,
    send_buffer: int,
    seed: int = 1,
) -> float:
    """Fraction of >threshold flows correctly identified as large.

    Reproduces the §4.1 validation: replay a trace of message sizes
    through the app's write model and check the first-syscall test.
    """
    rng = random.Random(seed)
    large = [s for s in sizes if s > threshold]
    if not large:
        return 1.0
    hits = 0
    for size in large:
        first = app.first_syscall(size, send_buffer, rng)
        if identify_large(first, threshold):
            hits += 1
    return hits / len(large)
