"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list-schemes``
    Show every available transport scheme.
``list-workloads``
    Show the flow-size distributions and their summary statistics.
``run``
    Run one or more schemes on a configurable scenario and print the
    FCT statistics table.
``figure``
    Regenerate one of the paper's figures by name (fig01 .. fig29,
    sec41) and print its rows.
``tables``
    Print Tables 1-3.

Examples
--------

    python -m repro run --schemes ppt dctcp --workload web-search --load 0.5
    python -m repro run --schemes ppt dctcp homa swift --jobs 4
    python -m repro run --schemes ppt dctcp \
        --fault flap:leaf0->spine0:0.005:0.002:0.004:3 --health
    python -m repro run --schemes ppt --stream --flows 20000 \
        --tenant-mix web-search:3,memcached-w1:1 --load-shape diurnal
    python -m repro figure fig12 --workload data-mining
    python -m repro list-schemes
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from .core.ppt import Ppt
from .core.ppt_hpcc import PptHpcc
from .core.ppt_swift import PptSwift
from .experiments import figures, tables
from .faults import FaultPlan
from .experiments.distributed import ShardError, run_sharded
from .experiments.parallel import GridTask, GridTaskError, RunSummary, run_grid
from .experiments.runner import format_table, run
from .experiments.scenarios import (
    HOMA_RTT_BYTES_SIM,
    SIM_PFC,
    all_to_all_scenario,
    incast_scenario,
    soak_scenario,
)
from .resilience import CheckpointError, supervise_grid
from .sim.hybrid import HybridConfig
from .sim.routing import DEFAULT_FLOWLET_GAP, LB_MODES
from .transport.aeolus import Aeolus
from .transport.d2tcp import D2tcp
from .transport.dcqcn import Dcqcn
from .transport.dctcp import Dctcp
from .transport.expresspass import ExpressPass
from .transport.halfback import Halfback
from .transport.homa import Homa
from .transport.hpcc import Hpcc
from .transport.ndp import Ndp
from .transport.pias import Pias
from .transport.rc3 import Rc3
from .transport.swift import Swift
from .transport.tcp10 import Tcp10
from .transport.timely import Timely
from .validate import InvariantViolation
from .workloads.distributions import WORKLOADS
from .workloads.streams import parse_load_shape, parse_tenant_mix

SCHEME_FACTORIES: Dict[str, Callable[[], object]] = {
    "ppt": Ppt,
    "ppt-swift": PptSwift,
    "ppt-hpcc": PptHpcc,
    "dctcp": Dctcp,
    "d2tcp": D2tcp,
    "dcqcn": Dcqcn,
    "pias": Pias,
    "rc3": Rc3,
    "swift": Swift,
    "timely": Timely,
    "hpcc": Hpcc,
    "tcp10": Tcp10,
    "halfback": Halfback,
    "homa": lambda: Homa(rtt_bytes=HOMA_RTT_BYTES_SIM),
    "aeolus": lambda: Aeolus(rtt_bytes=HOMA_RTT_BYTES_SIM),
    "ndp": lambda: Ndp(rtt_bytes=HOMA_RTT_BYTES_SIM),
    "expresspass": ExpressPass,
}

FIGURES: Dict[str, Callable[..., dict]] = {
    "fig01": figures.fig01_link_utilization,
    "fig02": figures.fig02_hypothetical,
    "fig03": figures.fig03_fill_factor,
    "fig08": figures.fig08_09_testbed_15to15,
    "fig10": figures.fig10_11_testbed_14to1,
    "fig12": figures.fig12_13_largescale,
    "fig14": figures.fig14_delay_based,
    "fig15": figures.fig15_ablation_lcp_ecn,
    "fig16": figures.fig16_ablation_ewd,
    "fig17": figures.fig17_ablation_scheduling,
    "fig18": figures.fig18_ablation_identification,
    "fig19": figures.fig19_cpu_overhead,
    "fig20": figures.fig20_link_utilization,
    "fig21": figures.fig21_memcached,
    "fig22": figures.fig22_100_400g,
    "fig23": figures.fig23_incast_sweep,
    "fig24": figures.fig24_rc3_lp_buffer,
    "fig25": figures.fig25_pias_hpcc,
    "fig26": figures.fig26_non_oversubscribed,
    "fig27": figures.fig27_send_buffer,
    "fig28": figures.fig28_buffer_occupancy,
    "fig29": figures.fig29_transfer_efficiency,
    "sec41": figures.sec41_identification_accuracy,
}

# figure drivers accepting a workload argument
_WORKLOAD_FIGURES = {"fig08", "fig10", "fig12"}


def _cmd_list_schemes(_args) -> int:
    rows = [{"scheme": name} for name in sorted(SCHEME_FACTORIES)]
    print(format_table(rows))
    return 0


def _cmd_list_workloads(_args) -> int:
    rows = []
    for name, cdf in sorted(WORKLOADS.items()):
        rows.append({
            "workload": name,
            "mean_bytes": int(cdf.mean()),
            "pct_le_100KB": f"{cdf.fraction_below(100_000) * 100:.0f}%",
        })
    print(format_table(rows))
    return 0


def _health_label(health) -> str:
    if health.stalled:
        return "STALLED"
    if health.event_budget_exceeded:
        return "BUDGET"
    if health.completed < health.n_flows:
        return "PARTIAL"
    return "ok"


def _trace_out_path(template: str, scheme: str, multi: bool) -> str:
    """Per-scheme trace path: insert the scheme name before the suffix
    when more than one scheme runs, so files do not clobber each other."""
    if not multi:
        return template
    if "." in template.rsplit("/", 1)[-1]:
        stem, suffix = template.rsplit(".", 1)
        return f"{stem}.{scheme}.{suffix}"
    return f"{template}.{scheme}"


def _summary_rows(schemes, summaries, *, faults, health_flag):
    rows = []
    for name, summary in zip(schemes, summaries):
        if summary is None:
            rows.append({"scheme": name, "flows": "FAILED"})
            continue
        stats = summary.stats
        # fct_summary_row renders empty small/large buckets as explicit
        # "n=0" markers instead of printing nan
        fct_row = tables.fct_summary_row(stats)
        row = {
            "scheme": name,
            "flows": f"{summary.completed}/{summary.n_flows}",
            "overall_avg_ms": fct_row["overall_avg_ms"],
            "small_avg_ms": fct_row["small_avg_ms"],
            "small_p99_ms": fct_row["small_p99_ms"],
            "large_avg_ms": fct_row["large_avg_ms"],
        }
        if faults is not None or health_flag:
            row["rtx"] = summary.health.retransmits_total
            row["rtos"] = summary.health.rtos_total
            row["health"] = _health_label(summary.health)
        rows.append(row)
        print(f"done: {name} ({summary.health.summary()})", file=sys.stderr)
        if summary.health.stalled:
            print(f"  stall: {summary.health.stall_reason}", file=sys.stderr)
        if summary.telemetry is not None:
            print(f"  trace: {summary.telemetry.describe()}", file=sys.stderr)
    return rows


def _report_validation(schemes, summaries) -> bool:
    broken = False
    for name, summary in zip(schemes, summaries):
        report = summary.validation if summary is not None else None
        if report is None:
            continue
        print(f"validate: {name}: {report.describe()}", file=sys.stderr)
        if not report.ok:
            broken = True
            for violation in report.violations[:10]:
                print(f"  {violation.describe()}", file=sys.stderr)
    return broken


def _cmd_resume(args) -> int:
    """``--resume``: finish a checkpointed run, bit-identical to one
    that never stopped."""
    try:
        result = run(resume=args.resume,
                     checkpoint_every=args.checkpoint_every,
                     checkpoint_path=args.checkpoint or args.resume)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except InvariantViolation as exc:
        print(f"invariant violation: {exc}", file=sys.stderr)
        return 3
    summary = RunSummary.from_result(result)
    schemes = [result.scheme_name]
    rows = _summary_rows(schemes, [summary], faults=None,
                         health_flag=args.health)
    broken = _report_validation(schemes, [summary])
    print(format_table(rows))
    return 1 if broken else 0


def _cmd_run(args) -> int:
    cdf = WORKLOADS[args.workload]
    if args.resume:
        return _cmd_resume(args)
    observe = bool(args.trace or args.trace_out)
    validate = False
    if args.validate_strict:
        validate = "strict"
    elif args.validate:
        validate = True
    if args.trace_out and args.jobs not in (None, 0, 1):
        # the full event trace never crosses the worker pipe (only the
        # TelemetrySummary digest does), so exporting requires the
        # in-process serial path
        print("error: --trace-out requires --jobs 1", file=sys.stderr)
        return 2
    if args.shards is not None:
        # one run split across processes composes with neither the
        # scheme-level pool nor the serial-only machinery
        if args.shards < 1:
            print("error: --shards must be >= 1", file=sys.stderr)
            return 2
        if args.jobs not in (None, 0, 1):
            print("error: --shards supplies its own parallelism; "
                  "use --jobs 1", file=sys.stderr)
            return 2
        if args.trace_out or args.checkpoint or args.resume:
            print("error: --shards is incompatible with --trace-out and "
                  "checkpoint/resume (both need the serial runner)",
                  file=sys.stderr)
            return 2
        if args.task_timeout is not None or args.retries is not None:
            print("error: --shards does not run under grid supervision",
                  file=sys.stderr)
            return 2
    if args.checkpoint and (args.jobs not in (None, 0, 1)
                            or len(args.schemes) != 1):
        # one checkpoint file describes one run
        print("error: --checkpoint requires --jobs 1 and a single scheme",
              file=sys.stderr)
        return 2
    if args.checkpoint and args.checkpoint_every is None:
        print("error: --checkpoint needs --checkpoint-every SIM_SECONDS",
              file=sys.stderr)
        return 2
    faults = None
    if args.fault:
        try:
            faults = FaultPlan.parse(args.fault, seed=args.fault_seed)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        load_shape = (parse_load_shape(args.load_shape)
                      if args.load_shape else None)
        tenants = (parse_tenant_mix(args.tenant_mix)
                   if args.tenant_mix else None)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # The streamed source and the materialized list are bit-identical,
    # so --stream composes freely with checkpoints, faults and --jobs
    # (each worker builds its own stream from the picklable spec).
    streaming = dict(stream=args.stream, load_shape=load_shape,
                     tenants=tenants, arrivals=args.arrivals)
    # PFC + load-balancer features; all-defaults leaves the fabric
    # builder untouched so existing invocations stay bit-identical
    features = dict(lb=args.lb, lb_gap=args.lb_gap, pfc=args.pfc,
                    pfc_config=SIM_PFC if args.pfc else None)
    hybrid = None
    if args.hybrid:
        hybrid = HybridConfig(size_threshold=args.hybrid_size_threshold,
                              max_epoch=args.hybrid_epoch)
    features["hybrid"] = hybrid

    def make_scenario():
        if args.soak is not None:
            return soak_scenario(
                "cli-soak", cdf, horizon=args.soak, seed=args.seed,
                faults=faults, event_budget=args.event_budget,
                **streaming, **features)
        if args.pattern == "incast":
            return incast_scenario(
                "cli", cdf, n_senders=args.incast_senders, load=args.load,
                n_flows=args.flows, size_cap=args.size_cap, seed=args.seed,
                faults=faults, event_budget=args.event_budget,
                **streaming, **features)
        return all_to_all_scenario(
            "cli", cdf, load=args.load, n_flows=args.flows,
            size_cap=args.size_cap, seed=args.seed,
            faults=faults, event_budget=args.event_budget,
            **streaming, **features)

    supervised = args.task_timeout is not None or args.retries is not None
    failed_cells = []
    try:
        if args.trace_out or args.checkpoint:
            # serial, in-process: keep the full Telemetry so the event
            # trace can be exported / write checkpoints from the drain
            summaries = []
            multi = len(args.schemes) > 1
            for name in args.schemes:
                result = run(SCHEME_FACTORIES[name](), make_scenario(),
                             observe=observe or bool(args.trace_out),
                             validate=validate,
                             checkpoint_every=args.checkpoint_every,
                             checkpoint_path=args.checkpoint)
                summary = RunSummary.from_result(result)
                summary.scheme = name
                summaries.append(summary)
                if args.trace_out:
                    path = _trace_out_path(args.trace_out, name, multi)
                    written = result.telemetry.export_jsonl(path)
                    print(f"trace: {name}: {written} events -> {path}",
                          file=sys.stderr)
        elif args.shards is not None:
            # space-parallel: one run per scheme, partitioned across
            # --shards worker processes with a deterministic merge
            summaries = []
            for name in args.schemes:
                result = run_sharded(SCHEME_FACTORIES[name](),
                                     make_scenario(), args.shards,
                                     observe=observe, validate=validate)
                summary = result.summary
                summary.scheme = name
                summaries.append(summary)
        else:
            tasks = [GridTask(scheme_factory=SCHEME_FACTORIES[name],
                              scenario_factory=make_scenario,
                              label=name, scheme_key=name,
                              observe=observe, validate=validate)
                     for name in args.schemes]
            if supervised:
                outcome = supervise_grid(
                    tasks, jobs=args.jobs,
                    task_timeout=args.task_timeout,
                    retries=args.retries if args.retries is not None else 2)
                summaries = outcome.summaries
                failed_cells = outcome.failed
                for failure in failed_cells:
                    print(f"failed: {failure.describe()}", file=sys.stderr)
            else:
                summaries = run_grid(tasks, jobs=args.jobs)
    except KeyError as exc:
        # bad port name/glob in a fault spec surfaces at apply time
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except InvariantViolation as exc:
        print(f"invariant violation: {exc}", file=sys.stderr)
        return 3
    except GridTaskError as exc:
        # a worker died with full context attached; strict-validate
        # failures keep their dedicated exit code across the fork
        if "InvariantViolation" in exc.cause:
            print(f"invariant violation: {exc}", file=sys.stderr)
            return 3
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ShardError as exc:
        # a shard worker died; same exit-code contract as GridTaskError
        if "InvariantViolation" in exc.cause:
            print(f"invariant violation: {exc}", file=sys.stderr)
            return 3
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ValueError, RuntimeError) as exc:
        if args.shards is None:
            raise
        # unshardable topology / unsupported feature combination / no
        # fork start method — all user-addressable
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = _summary_rows(args.schemes, summaries, faults=faults,
                         health_flag=args.health)
    broken = _report_validation(args.schemes, summaries)
    print(format_table(rows))
    if failed_cells:
        return 1
    return 1 if broken else 0


def _cmd_figure(args) -> int:
    fn = FIGURES[args.name]
    kwargs = {}
    if args.name in _WORKLOAD_FIGURES and args.workload:
        kwargs["workload"] = args.workload
    result = fn(**kwargs)
    print(format_table(result["rows"]))
    return 0


def _cmd_tables(_args) -> int:
    print("Table 1 — design space")
    print(format_table(tables.table1()))
    print("\nTable 2 — workload statistics")
    print(format_table(tables.table2()))
    print("\nTable 3 — testbed parameters")
    print(format_table(tables.table3()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="PPT (SIGCOMM 2024) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-schemes").set_defaults(fn=_cmd_list_schemes)
    sub.add_parser("list-workloads").set_defaults(fn=_cmd_list_workloads)

    run_p = sub.add_parser("run", help="run schemes on a scenario")
    run_p.add_argument("--schemes", nargs="+", default=["ppt", "dctcp"],
                       choices=sorted(SCHEME_FACTORIES))
    run_p.add_argument("--workload", default="web-search",
                       choices=sorted(WORKLOADS))
    run_p.add_argument("--load", type=float, default=0.5)
    run_p.add_argument("--flows", type=int, default=150)
    run_p.add_argument("--size-cap", type=int, default=2_000_000)
    run_p.add_argument("--seed", type=int, default=7)
    run_p.add_argument("--pattern", choices=["all-to-all", "incast"],
                       default="all-to-all")
    run_p.add_argument("--incast-senders", type=int, default=16)
    run_p.add_argument("--stream", action="store_true",
                       help="generate flows lazily from a constant-memory "
                            "stream instead of materializing the list "
                            "(bit-identical results for the same seed)")
    run_p.add_argument("--load-shape", metavar="SPEC", default=None,
                       help="modulate the arrival rate over time: "
                            "constant, diurnal[:PERIOD[:DEPTH]] or "
                            "onoff[:ON[:OFF[:OFF_LEVEL]]]")
    run_p.add_argument("--tenant-mix", metavar="SPEC", default=None,
                       help="mix several workload classes, e.g. "
                            "'web-search:3,memcached-w1:1' "
                            "(NAME:SHARE pairs against list-workloads names)")
    run_p.add_argument("--arrivals", choices=["open", "closed"],
                       default="open",
                       help="open-loop Poisson arrivals (default) or a "
                            "closed-loop fixed user pool with think times")
    run_p.add_argument(
        "--fault", action="append", metavar="SPEC",
        help="fault spec (repeatable): down:PORT:START:DURATION, "
             "flap:PORT:START:DOWN:UP[:CYCLES], loss:PORT:RATE[:START[:END]], "
             "corrupt:PORT:RATE[:START[:END]], degrade:PORT:FACTOR:START[:END], "
             "pfcstorm:PORT:START:DURATION[:PRIORITY]; "
             "PORT is a name or glob like 'leaf0->spine*'")
    run_p.add_argument("--fault-seed", type=int, default=0)
    run_p.add_argument("--lb", choices=list(LB_MODES), default="ecmp",
                       help="switch load balancer: per-flow ECMP (default, "
                            "bit-identical to earlier releases), flowlet "
                            "switching, or CONGA-style least-congested-path")
    run_p.add_argument("--lb-gap", type=float, metavar="SECONDS",
                       default=None,
                       help="flowlet idle gap / CONGA re-pin gap in seconds "
                            f"(default {DEFAULT_FLOWLET_GAP:g})")
    run_p.add_argument("--pfc", action="store_true",
                       help="enable lossless Ethernet: per-priority PFC "
                            "XOFF/XON on every switch with headroom so the "
                            "lossless class never drops (RoCEv2-style; "
                            "pair with dcqcn/hpcc)")
    run_p.add_argument("--hybrid", action="store_true",
                       help="enable the flow-level fast path: large "
                            "uncontended flows advance analytically at "
                            "max-min fair rates instead of packet by packet "
                            "(see docs/hybrid.md for the accuracy envelope)")
    run_p.add_argument("--hybrid-size-threshold", type=int,
                       metavar="BYTES", default=1_000_000,
                       help="flows at least this big are candidates for "
                            "flow-level abstraction (default 1MB)")
    run_p.add_argument("--hybrid-epoch", type=float, metavar="SECONDS",
                       default=0.005,
                       help="max interval between hybrid congestion epochs "
                            "while packet traffic coexists (default 5ms)")
    run_p.add_argument("--event-budget", type=int, default=None,
                       help="abort a run after this many simulator events")
    run_p.add_argument("--jobs", type=int, default=1,
                       help="worker processes to fan the schemes across "
                            "(-1 = one per core); results are merged in "
                            "deterministic order, identical to --jobs 1")
    run_p.add_argument("--shards", type=int, default=None, metavar="N",
                       help="space-partition each run across N worker "
                            "processes (leaf-spine fabrics only; one pod "
                            "group per shard, conservative-lookahead "
                            "synchronization, deterministic merge — see "
                            "docs/sharding.md); incompatible with --jobs>1, "
                            "--trace-out, checkpoints, faults, --pfc and "
                            "--hybrid")
    run_p.add_argument("--health", action="store_true",
                       help="include run-health columns in the output table")
    run_p.add_argument("--trace", action="store_true",
                       help="run with repro.obs telemetry and print a "
                            "per-scheme trace summary")
    run_p.add_argument("--trace-out", metavar="PATH", default=None,
                       help="export the event trace as JSONL (implies "
                            "--trace; requires --jobs 1; with several "
                            "schemes the scheme name is appended to PATH)")
    run_p.add_argument("--validate", action="store_true",
                       help="run the repro.validate invariant auditor; "
                            "violations are reported per scheme and make "
                            "the command exit 1")
    run_p.add_argument("--validate-strict", action="store_true",
                       help="like --validate but abort at the first broken "
                            "invariant (exit 3)")
    run_p.add_argument("--soak", type=float, metavar="HORIZON", default=None,
                       help="run the long-horizon soak scenario for this "
                            "many simulated seconds (faults fire "
                            "periodically throughout; see docs/robustness.md)")
    run_p.add_argument("--checkpoint", metavar="PATH", default=None,
                       help="write periodic resumable snapshots to PATH "
                            "(requires --jobs 1, a single scheme and "
                            "--checkpoint-every)")
    run_p.add_argument("--checkpoint-every", type=float,
                       metavar="SIM_SECONDS", default=None,
                       help="simulated seconds between checkpoint writes")
    run_p.add_argument("--resume", metavar="PATH", default=None,
                       help="resume a checkpointed run from PATH and finish "
                            "it (bit-identical to a run that never stopped); "
                            "combine with --checkpoint-every to keep "
                            "checkpointing")
    run_p.add_argument("--task-timeout", type=float, metavar="SECONDS",
                       default=None,
                       help="supervise the grid: kill and retry any cell "
                            "whose attempt exceeds this wall-clock budget")
    run_p.add_argument("--retries", type=int, default=None,
                       help="supervise the grid: per-cell retry budget "
                            "after the first attempt (default 2 when "
                            "supervision is active); cells that exhaust it "
                            "are quarantined, not fatal")
    run_p.set_defaults(fn=_cmd_run)

    fig_p = sub.add_parser("figure", help="regenerate a paper figure")
    fig_p.add_argument("name", choices=sorted(FIGURES))
    fig_p.add_argument("--workload", default=None,
                       choices=["web-search", "data-mining", "memcached"])
    fig_p.set_defaults(fn=_cmd_figure)

    sub.add_parser("tables").set_defaults(fn=_cmd_tables)
    return parser


def main(argv: List[str] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
