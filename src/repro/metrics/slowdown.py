"""FCT slowdown: completion time normalised by the flow's ideal time.

The DCN literature (pFabric, Homa, Aeolus, ...) frequently reports
*slowdown* — ``FCT / ideal_FCT`` where the ideal is the unloaded
completion time over the flow's path (base RTT for the handshake-free
one-way delivery plus serialization of every byte at the bottleneck
rate).  Slowdown makes flows of different sizes comparable on one axis:
a slowdown of 1 is perfect, 10 means the flow took ten times its
unloaded optimum.

The PPT paper reports absolute FCTs, so the reproduction's benchmarks
use those; this module is provided for analysis parity with the wider
literature and is exercised by the sweep example and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..sim.network import Network
from ..transport.base import Flow
from .fct import SMALL_FLOW_BYTES, mean, percentile


def ideal_fct(flow: Flow, network: Network, *,
              header_overhead: float = 64.0 / 1436.0) -> float:
    """Unloaded completion time: one-way base delay + serialization of
    the whole message (with per-packet header overhead) at the slowest
    link on the flow's actual path.

    On an oversubscribed fabric the bottleneck is the core link, not
    the source uplink — using the edge rate (the old behaviour) makes
    the ideal too fast and so *understates* every slowdown on
    leaf-spine topologies with core_rate < edge_rate.
    :meth:`Network.path_min_rate` is cached alongside ``base_delay``,
    so this stays two dict hits per flow.
    """
    bottleneck_rate = network.path_min_rate(flow.src, flow.dst)
    wire_bytes = flow.size * (1.0 + header_overhead)
    serialization = wire_bytes * 8.0 / bottleneck_rate
    return network.base_delay(flow.src, flow.dst) + serialization


@dataclass
class SlowdownStats:
    """Summary of per-flow slowdowns over a completed run.

    ``small_*`` / ``large_*`` are NaN when the corresponding bucket is
    empty; :meth:`row` renders those cells as explicit ``"n=0"``
    markers (the bucket counts disambiguate a NaN from a real value).
    """

    n_flows: int
    overall_avg: float
    overall_p99: float
    small_avg: float
    small_p99: float
    large_avg: float
    n_small: int = 0
    n_large: int = 0

    @classmethod
    def from_flows(cls, flows: Iterable[Flow], network: Network,
                   small_threshold: int = SMALL_FLOW_BYTES
                   ) -> "SlowdownStats":
        all_s: List[float] = []
        small: List[float] = []
        large: List[float] = []
        for flow in flows:
            if flow.fct is None:
                continue
            ideal = ideal_fct(flow, network)
            if ideal <= 0:
                continue
            s = max(1.0, flow.fct / ideal)
            all_s.append(s)
            (small if flow.size <= small_threshold else large).append(s)
        return cls(
            n_flows=len(all_s),
            overall_avg=mean(all_s),
            overall_p99=percentile(all_s, 99.0),
            small_avg=mean(small),
            small_p99=percentile(small, 99.0),
            large_avg=mean(large),
            n_small=len(small),
            n_large=len(large),
        )

    def row(self) -> dict:
        def cell(value: float, n: int):
            return value if n else "n=0"
        return {
            "flows": self.n_flows,
            "slowdown_avg": cell(self.overall_avg, self.n_flows),
            "slowdown_p99": cell(self.overall_p99, self.n_flows),
            "small_slowdown_avg": cell(self.small_avg, self.n_small),
            "small_slowdown_p99": cell(self.small_p99, self.n_small),
            "large_slowdown_avg": cell(self.large_avg, self.n_large),
        }
