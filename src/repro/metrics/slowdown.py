"""FCT slowdown: completion time normalised by the flow's ideal time.

The DCN literature (pFabric, Homa, Aeolus, ...) frequently reports
*slowdown* — ``FCT / ideal_FCT`` where the ideal is the unloaded
completion time over the flow's path (base RTT for the handshake-free
one-way delivery plus serialization of every byte at the bottleneck
rate).  Slowdown makes flows of different sizes comparable on one axis:
a slowdown of 1 is perfect, 10 means the flow took ten times its
unloaded optimum.

The PPT paper reports absolute FCTs, so the reproduction's benchmarks
use those; this module is provided for analysis parity with the wider
literature and is exercised by the sweep example and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..sim.network import Network
from ..transport.base import Flow
from .fct import SMALL_FLOW_BYTES, mean, percentile


def ideal_fct(flow: Flow, network: Network, *,
              header_overhead: float = 64.0 / 1436.0) -> float:
    """Unloaded completion time: one-way base delay + serialization of
    the whole message (with per-packet header overhead) at the slowest
    link on the path (the edge rate for our topologies)."""
    src_rate = network.hosts[flow.src].uplink.rate_bps
    wire_bytes = flow.size * (1.0 + header_overhead)
    serialization = wire_bytes * 8.0 / src_rate
    return network.base_delay(flow.src, flow.dst) + serialization


@dataclass
class SlowdownStats:
    """Summary of per-flow slowdowns over a completed run."""

    n_flows: int
    overall_avg: float
    overall_p99: float
    small_avg: float
    small_p99: float
    large_avg: float

    @classmethod
    def from_flows(cls, flows: Iterable[Flow], network: Network,
                   small_threshold: int = SMALL_FLOW_BYTES
                   ) -> "SlowdownStats":
        all_s: List[float] = []
        small: List[float] = []
        large: List[float] = []
        for flow in flows:
            if flow.fct is None:
                continue
            ideal = ideal_fct(flow, network)
            if ideal <= 0:
                continue
            s = max(1.0, flow.fct / ideal)
            all_s.append(s)
            (small if flow.size <= small_threshold else large).append(s)
        return cls(
            n_flows=len(all_s),
            overall_avg=mean(all_s),
            overall_p99=percentile(all_s, 99.0),
            small_avg=mean(small),
            small_p99=percentile(small, 99.0),
            large_avg=mean(large),
        )

    def row(self) -> dict:
        return {
            "flows": self.n_flows,
            "slowdown_avg": self.overall_avg,
            "slowdown_p99": self.overall_p99,
            "small_slowdown_avg": self.small_avg,
            "small_slowdown_p99": self.small_p99,
            "large_slowdown_avg": self.large_avg,
        }
