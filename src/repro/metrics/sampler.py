"""Time-series samplers: link utilisation and buffer occupancy.

Fig. 1 / Fig. 20 sample the bottleneck link's utilisation every 100us;
Fig. 28 compares high- vs low-priority queue occupancy.  Both samplers
piggyback on the port counters the simulator maintains anyway.

Lifecycle: a sampler reschedules itself every ``interval`` until it is
stopped.  It stops two ways — explicitly via :meth:`SamplerBase.stop`
(the experiment runner does this at drain end), or automatically when
its own timer is the only thing left in the event heap.  Without the
auto-stop, an instrumented run could never trigger the runner's
heap-empty early exit: the sampler's next tick kept the heap warm
forever, so the run idled to ``max_time`` burning event budget and
inflating ``live_pending``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..sim.engine import Simulator
from ..sim.link import Port


class SamplerBase:
    """Shared lifecycle for self-rescheduling samplers.

    Subclasses provide a ``samples`` list; auto-stop waits for the first
    sample so that probing an entirely idle fabric still yields one data
    point instead of none.
    """

    samples: list  # provided by subclasses

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.stopped = False
        self._pending = None  # the sampler's next scheduled Event

    def stop(self) -> None:
        """Cancel the pending tick; the sampler never fires again."""
        self.stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _reschedule(self, delay: float, fn) -> None:
        """Arm the next tick unless stopped or the fabric has gone idle."""
        if self.stopped:
            return
        if self.samples and self._fabric_idle():
            # nothing but sampler timers left: no sample can ever change
            # again, and rescheduling would keep the heap warm forever
            self.stop()
            return
        self._pending = self.sim.schedule(delay, fn)

    def _fabric_idle(self) -> bool:
        """True when every live pending event belongs to a sampler.

        Called from inside a tick (this sampler's own event is already
        popped), so "only sampler events remain" means the simulation
        proper can make no further progress.
        """
        for _time, _seq, event in self.sim._heap:
            if event.cancelled:
                continue
            owner = getattr(event.fn, "__self__", None)
            if owner is None or not isinstance(owner, SamplerBase):
                return False
        return True


@dataclass
class UtilizationSample:
    time: float
    utilization: float  # fraction of link capacity over the interval


class LinkUtilizationSampler(SamplerBase):
    """Samples a port's throughput every ``interval`` seconds."""

    def __init__(self, sim: Simulator, port: Port, interval: float,
                 start: float = 0.0) -> None:
        super().__init__(sim)
        self.port = port
        self.interval = interval
        self.samples: List[UtilizationSample] = []
        self._last_bytes = 0
        self._started = False
        self._pending = sim.schedule(start, self._start)

    def _start(self) -> None:
        self._pending = None
        if self.stopped:
            return
        self._last_bytes = self.port.bytes_sent
        self._started = True
        self._reschedule(self.interval, self._sample)

    def _sample(self) -> None:
        self._pending = None
        if self.stopped:
            return
        sent = self.port.bytes_sent
        delta = sent - self._last_bytes
        self._last_bytes = sent
        capacity = self.port.rate_bps * self.interval / 8.0
        self.samples.append(
            UtilizationSample(self.sim.now, delta / capacity if capacity else 0.0))
        self._reschedule(self.interval, self._sample)

    def utilizations(self) -> List[float]:
        return [s.utilization for s in self.samples]

    def average(self, skip: int = 0) -> float:
        values = self.utilizations()[skip:]
        if not values:
            return float("nan")
        return sum(values) / len(values)

    def minimum(self, skip: int = 0) -> float:
        values = self.utilizations()[skip:]
        return min(values) if values else float("nan")


@dataclass
class OccupancySample:
    time: float
    total: int
    high: int   # bytes in P0-P3
    low: int    # bytes in P4-P7


class BufferOccupancySampler(SamplerBase):
    """Samples a port's buffer occupancy split every ``interval``."""

    def __init__(self, sim: Simulator, port: Port, interval: float,
                 start: float = 0.0) -> None:
        super().__init__(sim)
        self.port = port
        self.interval = interval
        self.samples: List[OccupancySample] = []
        self._pending = sim.schedule(start, self._sample)

    def _sample(self) -> None:
        self._pending = None
        if self.stopped:
            return
        mux = self.port.mux
        split = mux.occupancy_split()
        self.samples.append(OccupancySample(
            self.sim.now, mux.occupancy, split["high"], split["low"]))
        self._reschedule(self.interval, self._sample)

    def averages(self, skip: int = 0) -> Tuple[float, float, float]:
        """(avg_total, avg_high, avg_low) in bytes."""
        samples = self.samples[skip:]
        if not samples:
            return (float("nan"),) * 3
        n = len(samples)
        return (
            sum(s.total for s in samples) / n,
            sum(s.high for s in samples) / n,
            sum(s.low for s in samples) / n,
        )
