"""Time-series samplers: link utilisation and buffer occupancy.

Fig. 1 / Fig. 20 sample the bottleneck link's utilisation every 100us;
Fig. 28 compares high- vs low-priority queue occupancy.  Both samplers
piggyback on the port counters the simulator maintains anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..sim.engine import Simulator
from ..sim.link import Port


@dataclass
class UtilizationSample:
    time: float
    utilization: float  # fraction of link capacity over the interval


class LinkUtilizationSampler:
    """Samples a port's throughput every ``interval`` seconds."""

    def __init__(self, sim: Simulator, port: Port, interval: float,
                 start: float = 0.0) -> None:
        self.sim = sim
        self.port = port
        self.interval = interval
        self.samples: List[UtilizationSample] = []
        self._last_bytes = 0
        self._started = False
        sim.schedule(start, self._start)

    def _start(self) -> None:
        self._last_bytes = self.port.bytes_sent
        self._started = True
        self.sim.schedule(self.interval, self._sample)

    def _sample(self) -> None:
        sent = self.port.bytes_sent
        delta = sent - self._last_bytes
        self._last_bytes = sent
        capacity = self.port.rate_bps * self.interval / 8.0
        self.samples.append(
            UtilizationSample(self.sim.now, delta / capacity if capacity else 0.0))
        self.sim.schedule(self.interval, self._sample)

    def utilizations(self) -> List[float]:
        return [s.utilization for s in self.samples]

    def average(self, skip: int = 0) -> float:
        values = self.utilizations()[skip:]
        if not values:
            return float("nan")
        return sum(values) / len(values)

    def minimum(self, skip: int = 0) -> float:
        values = self.utilizations()[skip:]
        return min(values) if values else float("nan")


@dataclass
class OccupancySample:
    time: float
    total: int
    high: int   # bytes in P0-P3
    low: int    # bytes in P4-P7


class BufferOccupancySampler:
    """Samples a port's buffer occupancy split every ``interval``."""

    def __init__(self, sim: Simulator, port: Port, interval: float,
                 start: float = 0.0) -> None:
        self.sim = sim
        self.port = port
        self.interval = interval
        self.samples: List[OccupancySample] = []
        sim.schedule(start, self._sample)

    def _sample(self) -> None:
        mux = self.port.mux
        split = mux.occupancy_split()
        self.samples.append(OccupancySample(
            self.sim.now, mux.occupancy, split["high"], split["low"]))
        self.sim.schedule(self.interval, self._sample)

    def averages(self, skip: int = 0) -> Tuple[float, float, float]:
        """(avg_total, avg_high, avg_low) in bytes."""
        samples = self.samples[skip:]
        if not samples:
            return (float("nan"),) * 3
        n = len(samples)
        return (
            sum(s.total for s in samples) / n,
            sum(s.high for s in samples) / n,
            sum(s.low for s in samples) / n,
        )
