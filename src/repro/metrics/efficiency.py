"""Transfer efficiency (appendix F, Fig. 29).

``efficiency = received data bytes / sent data bytes`` — the higher, the
fewer losses.  The paper additionally reports the *low-priority* loop's
own efficiency, which exposes RC3's pathology: its overall efficiency
looks fine while its LP loop loses about half its packets and the primary
loop spends capacity re-filling the holes.

Aggregation is duck-typed over the endpoints left registered at the
hosts: anything exposing ``pkts_transmitted`` is a sender, anything
exposing ``data_pkts_received`` is a receiver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..sim.network import Network


@dataclass
class EfficiencyStats:
    pkts_sent: int
    pkts_received: int
    lp_pkts_sent: int
    lp_pkts_received: int

    @property
    def overall(self) -> float:
        if self.pkts_sent == 0:
            return float("nan")
        return self.pkts_received / self.pkts_sent

    @property
    def low_priority(self) -> float:
        if self.lp_pkts_sent == 0:
            return float("nan")
        return self.lp_pkts_received / self.lp_pkts_sent


def collect_efficiency(network: Network) -> EfficiencyStats:
    """Aggregate sent/received counters over all registered endpoints."""
    sent = received = lp_sent = lp_received = 0
    seen = set()
    for host in network.hosts.values():
        for endpoint in host.endpoints.values():
            if id(endpoint) in seen:
                continue
            seen.add(id(endpoint))
            if hasattr(endpoint, "pkts_transmitted"):
                sent += endpoint.pkts_transmitted
                lcp = getattr(endpoint, "lcp", None)
                if lcp is not None and hasattr(lcp, "lp_pkts_sent"):
                    lp_sent += lcp.lp_pkts_sent
                elif hasattr(endpoint, "lp_sent"):
                    lp_sent += endpoint.lp_sent
            if hasattr(endpoint, "data_pkts_received"):
                received += endpoint.data_pkts_received
                if hasattr(endpoint, "lp_pkts_received"):
                    lp_received += endpoint.lp_pkts_received
    return EfficiencyStats(sent, received, lp_sent, lp_received)
