"""Flow-completion-time statistics — the paper's primary metric.

Every FCT figure reports some subset of four numbers, which
:class:`FctStats` computes from a list of completed flows:

* overall average FCT,
* average FCT of small flows (0, 100KB],
* 99th-percentile (tail) FCT of small flows,
* average FCT of large flows (100KB, inf).

The 100KB boundary is the paper's throughout (Table 2, Figs. 8-13).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from ..transport.base import Flow

SMALL_FLOW_BYTES = 100_000


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolation percentile (p in [0, 100])."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    value = ordered[low] * (1.0 - frac) + ordered[high] * frac
    # clamp: floating-point interpolation must stay within the sample
    return min(max(value, ordered[low]), ordered[high])


def mean(values: Sequence[float]) -> float:
    if not values:
        return float("nan")
    return sum(values) / len(values)


@dataclass
class FctStats:
    """Summary statistics over a set of completed flows."""

    n_flows: int
    n_small: int
    n_large: int
    overall_avg: float
    small_avg: float
    small_p99: float
    large_avg: float
    overall_p99: float

    @classmethod
    def from_flows(cls, flows: Iterable[Flow],
                   small_threshold: int = SMALL_FLOW_BYTES) -> "FctStats":
        fcts: List[float] = []
        small: List[float] = []
        large: List[float] = []
        for flow in flows:
            fct = flow.fct
            if fct is None:
                continue
            fcts.append(fct)
            if flow.size <= small_threshold:
                small.append(fct)
            else:
                large.append(fct)
        return cls(
            n_flows=len(fcts),
            n_small=len(small),
            n_large=len(large),
            overall_avg=mean(fcts),
            small_avg=mean(small),
            small_p99=percentile(small, 99.0),
            large_avg=mean(large),
            overall_p99=percentile(fcts, 99.0),
        )

    def row(self) -> dict:
        """Flat dict, milliseconds, for table printing."""
        to_ms = lambda v: v * 1e3  # noqa: E731 - tiny local formatter
        return {
            "flows": self.n_flows,
            "overall_avg_ms": to_ms(self.overall_avg),
            "small_avg_ms": to_ms(self.small_avg),
            "small_p99_ms": to_ms(self.small_p99),
            "large_avg_ms": to_ms(self.large_avg),
        }

    def __str__(self) -> str:
        return (
            f"n={self.n_flows} overall={self.overall_avg * 1e3:.3f}ms "
            f"small_avg={self.small_avg * 1e3:.3f}ms "
            f"small_p99={self.small_p99 * 1e3:.3f}ms "
            f"large_avg={self.large_avg * 1e3:.3f}ms"
        )


def reduction(baseline: float, ours: float) -> float:
    """Paper-style percentage reduction of ``ours`` vs ``baseline``."""
    if baseline == 0 or math.isnan(baseline) or math.isnan(ours):
        return float("nan")
    return (baseline - ours) / baseline * 100.0
