"""Flow-completion-time statistics — the paper's primary metric.

Every FCT figure reports some subset of four numbers, which
:class:`FctStats` computes from a list of completed flows:

* overall average FCT,
* average FCT of small flows (0, 100KB],
* 99th-percentile (tail) FCT of small flows,
* average FCT of large flows (100KB, inf).

The 100KB boundary is the paper's throughout (Table 2, Figs. 8-13).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from ..transport.base import Flow

SMALL_FLOW_BYTES = 100_000


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolation percentile (p in [0, 100])."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    value = ordered[low] * (1.0 - frac) + ordered[high] * frac
    # clamp: floating-point interpolation must stay within the sample
    return min(max(value, ordered[low]), ordered[high])


def mean(values: Sequence[float]) -> float:
    if not values:
        return float("nan")
    return sum(values) / len(values)


@dataclass
class FctStats:
    """Summary statistics over a set of completed flows."""

    n_flows: int
    n_small: int
    n_large: int
    overall_avg: float
    small_avg: float
    small_p99: float
    large_avg: float
    overall_p99: float

    @classmethod
    def from_flows(cls, flows: Iterable[Flow],
                   small_threshold: int = SMALL_FLOW_BYTES) -> "FctStats":
        fcts: List[float] = []
        small: List[float] = []
        large: List[float] = []
        for flow in flows:
            fct = flow.fct
            if fct is None:
                continue
            fcts.append(fct)
            if flow.size <= small_threshold:
                small.append(fct)
            else:
                large.append(fct)
        return cls(
            n_flows=len(fcts),
            n_small=len(small),
            n_large=len(large),
            overall_avg=mean(fcts),
            small_avg=mean(small),
            small_p99=percentile(small, 99.0),
            large_avg=mean(large),
            overall_p99=percentile(fcts, 99.0),
        )

    def row(self) -> dict:
        """Flat dict, milliseconds, for table printing.  Empty buckets
        render as explicit ``"n=0"`` markers instead of NaN (see also
        :func:`repro.experiments.tables.fct_summary_row`)."""
        def cell(value: float, n: int):
            return value * 1e3 if n else "n=0"
        return {
            "flows": self.n_flows,
            "overall_avg_ms": cell(self.overall_avg, self.n_flows),
            "small_avg_ms": cell(self.small_avg, self.n_small),
            "small_p99_ms": cell(self.small_p99, self.n_small),
            "large_avg_ms": cell(self.large_avg, self.n_large),
        }

    def __str__(self) -> str:
        def cell(value: float, n: int) -> str:
            return f"{value * 1e3:.3f}ms" if n else "n=0"
        return (
            f"n={self.n_flows} overall={cell(self.overall_avg, self.n_flows)} "
            f"small_avg={cell(self.small_avg, self.n_small)} "
            f"small_p99={cell(self.small_p99, self.n_small)} "
            f"large_avg={cell(self.large_avg, self.n_large)}"
        )


def reduction(baseline: float, ours: float) -> float:
    """Paper-style percentage reduction of ``ours`` vs ``baseline``."""
    if baseline == 0 or math.isnan(baseline) or math.isnan(ours):
        return float("nan")
    return (baseline - ours) / baseline * 100.0
