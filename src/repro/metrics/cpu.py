"""Datapath CPU-overhead proxy (Fig. 19).

The paper measures kernel-space CPU usage of PPT vs DCTCP on the
testbed and finds PPT adds under 1%, with the gap *shrinking* as load
grows (less spare bandwidth means fewer opportunistic packets).  In a
simulator there is no kernel, but the quantity that drives kernel CPU is
datapath operations — packets sent, packets received, timers fired — all
of which the hosts count.  We report operations per host normalised by
simulated time, i.e. an operation rate that plays the role of "CPU
usage"; comparing two schemes at the same load and workload reproduces
the paper's scaling claim exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..sim.network import Network


@dataclass
class CpuStats:
    """Per-run datapath-operation accounting."""

    ops_by_host: Dict[int, int]
    duration: float

    @property
    def total_ops(self) -> int:
        return sum(self.ops_by_host.values())

    @property
    def ops_per_second(self) -> float:
        if self.duration <= 0:
            return float("nan")
        return self.total_ops / self.duration

    def usage_proxy(self, ops_per_core_second: float = 5e6) -> float:
        """Map the op rate to a CPU-share percentage.

        ``ops_per_core_second`` calibrates how many datapath operations
        one core sustains; the default is typical for a kernel TCP path
        on the testbed's 2.4GHz cores.  Only *relative* comparisons
        matter for the Fig. 19 claim.
        """
        per_host = self.ops_per_second / max(1, len(self.ops_by_host))
        return per_host / ops_per_core_second * 100.0


def collect_cpu(network: Network, duration: float) -> CpuStats:
    return CpuStats(
        ops_by_host={h.host_id: h.datapath_ops for h in network.hosts.values()},
        duration=duration,
    )
