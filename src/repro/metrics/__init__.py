"""Metrics: FCT statistics, samplers, efficiency and CPU proxies."""

from .cpu import CpuStats, collect_cpu
from .efficiency import EfficiencyStats, collect_efficiency
from .fct import SMALL_FLOW_BYTES, FctStats, mean, percentile, reduction
from .slowdown import SlowdownStats, ideal_fct
from .timeline import SenderTimeline, TimelineSample
from .sampler import (
    BufferOccupancySampler,
    LinkUtilizationSampler,
    OccupancySample,
    UtilizationSample,
)

__all__ = [
    "FctStats", "percentile", "mean", "reduction", "SMALL_FLOW_BYTES",
    "LinkUtilizationSampler", "BufferOccupancySampler",
    "UtilizationSample", "OccupancySample",
    "EfficiencyStats", "collect_efficiency", "CpuStats", "collect_cpu",
    "SlowdownStats", "ideal_fct", "SenderTimeline", "TimelineSample",
]
