"""Per-sender time series: congestion window and LCP activity.

The paper's Fig. 5 illustrates the dual-loop dynamics — DCTCP's
sawtooth with opportunistic windows slotted into the troughs.  This
recorder samples a chosen sender's state on a fixed interval so that
behaviour can be inspected (see ``examples/dual_loop_timeline.py`` for
an ASCII rendering).

Works with any window-based sender; PPT-specific fields (alpha, LCP
in-flight, loops opened) are recorded when present.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..sim.engine import Simulator


@dataclass
class TimelineSample:
    time: float
    cwnd: float
    outstanding: int
    alpha: Optional[float] = None
    lcp_active: Optional[bool] = None
    lcp_inflight: Optional[int] = None
    lcp_loops: Optional[int] = None


class SenderTimeline:
    """Samples one sender every ``interval`` seconds until it finishes."""

    def __init__(self, sim: Simulator, sender, interval: float) -> None:
        self.sim = sim
        self.sender = sender
        self.interval = interval
        self.samples: List[TimelineSample] = []
        sim.schedule(0.0, self._sample)

    def _sample(self) -> None:
        sender = self.sender
        if sender.finished:
            return
        sample = TimelineSample(
            time=self.sim.now,
            cwnd=float(sender.cwnd),
            outstanding=len(sender.outstanding),
        )
        if hasattr(sender, "alpha"):
            sample.alpha = sender.alpha
        lcp = getattr(sender, "lcp", None)
        if lcp is not None:
            sample.lcp_active = lcp.active
            sample.lcp_inflight = len(lcp.outstanding)
            sample.lcp_loops = lcp.loops_opened
        self.samples.append(sample)
        self.sim.schedule(self.interval, self._sample)

    # -- summaries -----------------------------------------------------------

    def cwnd_series(self) -> List[float]:
        return [s.cwnd for s in self.samples]

    def max_cwnd(self) -> float:
        return max((s.cwnd for s in self.samples), default=float("nan"))

    def lcp_duty_cycle(self) -> float:
        """Fraction of samples with an active LCP loop (NaN if the
        sender has no LCP)."""
        flagged = [s.lcp_active for s in self.samples
                   if s.lcp_active is not None]
        if not flagged:
            return float("nan")
        return sum(flagged) / len(flagged)

    def sawtooth_cuts(self) -> int:
        """Number of downward cwnd steps of at least 10% — a cheap proxy
        for DCTCP's window cuts."""
        cuts = 0
        series = self.cwnd_series()
        for prev, cur in zip(series, series[1:]):
            if cur < prev * 0.9:
                cuts += 1
        return cuts
