"""repro.obs — unified, low-overhead run telemetry.

See :mod:`repro.obs.telemetry` for the design and
``docs/observability.md`` for the hook-site map and trace schema.
"""

from .hooks import chain
from .telemetry import (
    DROP,
    EVENT_KINDS,
    FAULT_DOWN,
    FAULT_UP,
    FLOW_COMPLETE,
    FLOW_START,
    MARK,
    RETRANSMIT,
    RTO,
    TRIM,
    Telemetry,
    TelemetrySummary,
    TraceEvent,
    load_jsonl,
)

__all__ = [
    "Telemetry", "TelemetrySummary", "TraceEvent", "load_jsonl", "chain",
    "EVENT_KINDS", "DROP", "MARK", "TRIM", "RETRANSMIT", "RTO",
    "FAULT_DOWN", "FAULT_UP", "FLOW_START", "FLOW_COMPLETE",
]
