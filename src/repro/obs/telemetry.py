"""Unified run telemetry: one object that owns every observation channel.

A :class:`Telemetry` instance gives a run three things at once:

* a **bounded ring-buffer event trace** — drops, ECN marks, trims,
  retransmits, RTO firings, fault open/close transitions, flow
  start/complete — fed by the chained hook sites in
  :mod:`repro.sim.queues`, :mod:`repro.transport.window`,
  :mod:`repro.faults.injectors` and :mod:`repro.experiments.runner`;
* **counter snapshots** — per-port :class:`~repro.sim.queues.QueueStats`
  and per-flow transport counters harvested once at drain end, so the
  rollup never disagrees with the counters the simulator keeps anyway;
* a **wall-clock profile** — events and elapsed seconds per drain
  slice, the events/sec trajectory the ``bench_core_engine`` benchmark
  tracks across commits.

Overhead contract: a run without telemetry pays exactly one ``None``
check per hook site (the hooks stay ``None``; no event objects, no
timestamps), so disabling telemetry preserves bit-identical behaviour.
The ring buffer bounds memory on pathological runs — ``events_seen``
keeps the true total while the deque keeps the most recent ``capacity``
events.

The trace exports to JSONL (one event per line) via :meth:`export_jsonl`
and round-trips through :func:`load_jsonl`; :meth:`summary` produces a
slim, picklable :class:`TelemetrySummary` that crosses process
boundaries the way :class:`~repro.experiments.parallel.RunSummary` does.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from .hooks import chain

# Event kinds recorded in the trace.
DROP = "drop"
MARK = "mark"
TRIM = "trim"
RETRANSMIT = "retransmit"
RTO = "rto"
FAULT_DOWN = "fault_down"
FAULT_UP = "fault_up"
FLOW_START = "flow_start"
FLOW_COMPLETE = "flow_complete"
PAUSE = "pause"
RESUME = "resume"
# hybrid fast path (repro.sim.hybrid): one per congestion epoch / one
# per abstract-flow demotion to packet mode
HYBRID_EPOCH = "hybrid_epoch"
HYBRID_DEMOTE = "hybrid_demote"

EVENT_KINDS = (
    DROP, MARK, TRIM, RETRANSMIT, RTO,
    FAULT_DOWN, FAULT_UP, FLOW_START, FLOW_COMPLETE,
    PAUSE, RESUME,
    HYBRID_EPOCH, HYBRID_DEMOTE,
)

_QUEUE_COUNTER_FIELDS = (
    "offered", "enqueued", "dequeued", "dropped", "dropped_after_enqueue",
    "trimmed", "marked",
    "bytes_offered", "bytes_enqueued", "bytes_dequeued", "bytes_dropped",
    "bytes_dropped_after_enqueue", "bytes_trimmed",
)


class TraceEvent:
    """One traced event.  Plain ``__slots__`` object — millions may be
    created on a lossy run, so no dataclass machinery."""

    __slots__ = ("time", "kind", "port", "flow_id", "seq", "priority", "detail")

    def __init__(self, time: float, kind: str, port: str = "",
                 flow_id: int = -1, seq: int = -1, priority: int = -1,
                 detail: str = "") -> None:
        self.time = time
        self.kind = kind
        self.port = port
        self.flow_id = flow_id
        self.seq = seq
        self.priority = priority
        self.detail = detail

    def to_dict(self) -> dict:
        out = {"t": self.time, "kind": self.kind}
        if self.port:
            out["port"] = self.port
        if self.flow_id >= 0:
            out["flow"] = self.flow_id
        if self.seq >= 0:
            out["seq"] = self.seq
        if self.priority >= 0:
            out["prio"] = self.priority
        if self.detail:
            out["detail"] = self.detail
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEvent":
        return cls(
            time=float(data["t"]),
            kind=data["kind"],
            port=data.get("port", ""),
            flow_id=int(data.get("flow", -1)),
            seq=int(data.get("seq", -1)),
            priority=int(data.get("prio", -1)),
            detail=data.get("detail", ""),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = " ".join(f"{k}={v}" for k, v in self.to_dict().items()
                         if k not in ("t", "kind"))
        return f"<TraceEvent {self.kind} @ {self.time:.9f} {extra}>"


@dataclass
class TelemetrySummary:
    """Picklable rollup of one run's telemetry — what sweeps keep.

    ``counts`` tallies every traced event by kind (counted even when the
    ring buffer overflowed); the named totals come from the counter
    snapshots harvested at drain end, so they match the simulator's own
    :class:`~repro.sim.queues.QueueStats` / RunHealth numbers exactly.
    """

    events_seen: int = 0
    events_kept: int = 0
    counts: Dict[str, int] = field(default_factory=dict)
    drops: int = 0
    marks: int = 0
    trims: int = 0
    retransmits: int = 0
    rtos: int = 0
    flows_started: int = 0
    flows_completed: int = 0
    # lossless / load-balancing counters (PFC + flowlet/CONGA)
    pauses_sent: int = 0
    pauses_received: int = 0
    pause_seconds: float = 0.0
    flowlet_repins: int = 0
    # hybrid fast-path counters (zero on pure packet runs)
    hybrid_epochs: int = 0
    hybrid_demotions: int = 0
    # profiling rollup (events/sec over the profiled drain slices)
    slices: int = 0
    sim_events: int = 0
    wall_seconds: float = 0.0
    # high-water mark of engine heap entries (``sim.peak_pending``) —
    # the memory-pressure signal the pipelined wire model is meant to
    # shrink; combine() takes the max, not the sum
    peak_pending: int = 0

    @property
    def events_per_sec(self) -> float:
        if self.wall_seconds <= 0.0:
            return float("nan")
        return self.sim_events / self.wall_seconds

    def describe(self) -> str:
        parts = [f"{self.drops} drops", f"{self.marks} marks",
                 f"{self.trims} trims", f"{self.retransmits} rtx",
                 f"{self.rtos} RTOs",
                 f"{self.flows_completed}/{self.flows_started} flows"]
        if self.pauses_sent or self.pauses_received:
            parts.append(f"{self.pauses_sent} pauses "
                         f"({self.pause_seconds * 1e3:.3g}ms paused)")
        if self.flowlet_repins:
            parts.append(f"{self.flowlet_repins} flowlet re-pins")
        if self.hybrid_epochs or self.hybrid_demotions:
            parts.append(f"{self.hybrid_epochs} hybrid epochs "
                         f"({self.hybrid_demotions} demotions)")
        if self.events_seen > self.events_kept:
            parts.append(f"trace kept {self.events_kept}/{self.events_seen}")
        if self.wall_seconds > 0.0:
            parts.append(f"{self.events_per_sec:,.0f} ev/s")
        return "; ".join(parts)

    @classmethod
    def combine(cls, summaries: List["TelemetrySummary"]) -> "TelemetrySummary":
        """Merge several runs' summaries (sweep rollup); order-independent."""
        total = cls()
        counts: Counter = Counter()
        for s in summaries:
            total.events_seen += s.events_seen
            total.events_kept += s.events_kept
            counts.update(s.counts)
            total.drops += s.drops
            total.marks += s.marks
            total.trims += s.trims
            total.retransmits += s.retransmits
            total.rtos += s.rtos
            total.flows_started += s.flows_started
            total.flows_completed += s.flows_completed
            total.pauses_sent += s.pauses_sent
            total.pauses_received += s.pauses_received
            total.pause_seconds += s.pause_seconds
            total.flowlet_repins += s.flowlet_repins
            total.hybrid_epochs += s.hybrid_epochs
            total.hybrid_demotions += s.hybrid_demotions
            total.slices += s.slices
            total.sim_events += s.sim_events
            total.wall_seconds += s.wall_seconds
            if s.peak_pending > total.peak_pending:
                total.peak_pending = s.peak_pending
        total.counts = dict(counts)
        return total


class _PortHook:
    """Per-port mux hook feeding the telemetry trace.

    A picklable callable class (not a closure): simulator checkpoints
    (:mod:`repro.resilience`) snapshot the run graph including every
    installed hook, so hook objects must survive pickling.
    """

    __slots__ = ("telemetry", "kind", "port_name")

    def __init__(self, telemetry: "Telemetry", kind: str, port_name: str) -> None:
        self.telemetry = telemetry
        self.kind = kind
        self.port_name = port_name

    def __call__(self, pkt) -> None:
        telemetry = self.telemetry
        telemetry.record(self.kind, telemetry.sim.now, port=self.port_name,
                         flow_id=pkt.flow_id, seq=pkt.seq,
                         priority=pkt.priority)

    def __getstate__(self):
        return (self.telemetry, self.kind, self.port_name)

    def __setstate__(self, state) -> None:
        self.telemetry, self.kind, self.port_name = state


class Telemetry:
    """Owns a run's event trace, counter snapshots and wall-clock profile.

    Create one (optionally with a ring capacity), pass it to
    :func:`repro.experiments.runner.run` via ``observe=``, then read
    ``result.telemetry`` — or call :meth:`attach` yourself against a
    hand-built topology.  A single instance observes a single run; reuse
    across runs would conflate their counter snapshots.
    """

    def __init__(self, capacity: int = 65_536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.events: deque = deque(maxlen=capacity)
        self.events_seen = 0
        self.counts: Counter = Counter()
        self.sim = None
        self.attached = False
        # harvested at finalize()
        self.port_counters: Dict[str, Dict[str, int]] = {}
        self.flow_counters: Dict[int, Dict[str, object]] = {}
        self.pauses_sent = 0
        self.pauses_received = 0
        self.pause_seconds = 0.0
        self.flowlet_repins = 0
        # (slice_end_sim_time, events_executed, wall_seconds) per drain slice
        self.profile: List[tuple] = []

    # -- recording (the hook side) ----------------------------------------

    def record(self, kind: str, t: float, port: str = "", flow_id: int = -1,
               seq: int = -1, priority: int = -1, detail: str = "") -> None:
        """Append one event to the bounded trace."""
        self.events_seen += 1
        self.counts[kind] += 1
        self.events.append(
            TraceEvent(t, kind, port, flow_id, seq, priority, detail))

    def record_slice(self, sim_time: float, events: int, wall: float) -> None:
        """One drain slice's profiling sample (events/sec trajectory)."""
        self.profile.append((sim_time, events, wall))

    # -- wiring ------------------------------------------------------------

    def attach(self, sim, network, faults=None) -> "Telemetry":
        """Install chained hooks on every port mux and fault injector.

        ``network`` is any object with a ``ports`` list (each port
        exposing ``name`` and ``mux``); ``faults`` is an optional
        :class:`~repro.faults.plan.ActiveFaults` handle whose link
        injectors report open/close transitions.  Safe to combine with
        other hook consumers (tracers): everything chains.
        """
        if self.attached:
            raise RuntimeError("Telemetry is single-run; already attached")
        self.attached = True
        self.sim = sim
        for port in network.ports:
            port.mux.add_drop_hook(self._port_hook(DROP, port))
            port.mux.add_mark_hook(self._port_hook(MARK, port))
            port.mux.add_trim_hook(self._port_hook(TRIM, port))
            port.pause_hook = chain(port.pause_hook, self._pause_transition)
        if faults is not None:
            for injector in faults.link_injectors:
                injector.transition_hook = chain(
                    injector.transition_hook, self._fault_transition)
        return self

    def _port_hook(self, kind: str, port) -> "_PortHook":
        return _PortHook(self, kind, port.name)

    def _fault_transition(self, port, is_down: bool) -> None:
        self.record(FAULT_DOWN if is_down else FAULT_UP, self.sim.now,
                    port=port.name)

    def _pause_transition(self, port, priority: int, paused: bool) -> None:
        self.record(PAUSE if paused else RESUME, self.sim.now,
                    port=port.name, priority=priority)

    # targets for the runner / window-sender hook sites

    def on_flow_start(self, flow) -> None:
        self.record(FLOW_START, self.sim.now, flow_id=flow.flow_id)

    def on_flow_complete(self, flow) -> None:
        self.record(FLOW_COMPLETE, self.sim.now, flow_id=flow.flow_id)

    def on_retransmit(self, t: float, flow_id: int, seq: int) -> None:
        self.record(RETRANSMIT, t, flow_id=flow_id, seq=seq)

    def on_rto(self, t: float, flow_id: int) -> None:
        self.record(RTO, t, flow_id=flow_id)

    # -- harvest -----------------------------------------------------------

    def finalize(self, network, flows) -> None:
        """Snapshot per-port and per-flow counters at drain end."""
        self.port_counters = {
            port.name: {name: getattr(port.mux.stats, name)
                        for name in _QUEUE_COUNTER_FIELDS}
            for port in network.ports
        }
        now = self.sim.now if self.sim is not None else 0.0
        self.pauses_sent = sum(
            c.pauses_sent for c in getattr(network, "pfc_controllers", []))
        self.pauses_received = sum(
            getattr(port, "pauses_received", 0) for port in network.ports)
        self.pause_seconds = sum(
            port.total_pause_seconds(now) for port in network.ports
            if getattr(port, "pauses_received", 0))
        self.flowlet_repins = sum(
            switch.lb.repins for switch in getattr(network, "switches", [])
            if getattr(switch, "lb", None) is not None)
        per_flow: Dict[int, Dict[str, object]] = {}
        for flow in flows:
            per_flow[flow.flow_id] = {
                "completed": flow.completed,
                "fct": flow.fct,
                "size": flow.size,
                "retransmits": 0,
                "rtos": 0,
                "pkts_transmitted": 0,
            }
        seen = set()
        for host in network.hosts.values():
            for flow_id, endpoint in host.endpoints.items():
                if id(endpoint) in seen or flow_id not in per_flow:
                    continue
                seen.add(id(endpoint))
                rtx = getattr(endpoint, "pkts_retransmitted", None)
                if rtx is None:
                    continue
                counters = per_flow[flow_id]
                counters["retransmits"] += rtx
                counters["rtos"] += getattr(endpoint, "rtos_fired", 0)
                counters["pkts_transmitted"] += getattr(
                    endpoint, "pkts_transmitted", 0)
        self.flow_counters = per_flow

    # -- reading -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def iter_events(self, kind: Optional[str] = None) -> Iterator[TraceEvent]:
        if kind is None:
            return iter(self.events)
        return (e for e in self.events if e.kind == kind)

    def total_port_counter(self, name: str) -> int:
        """Sum one harvested QueueStats field over every port."""
        return sum(c[name] for c in self.port_counters.values())

    def summary(self) -> TelemetrySummary:
        """Slim rollup; counter totals come from the drain-end snapshots
        (exact), event counts from the trace tallies (exact even when
        the ring overflowed)."""
        flow_values = self.flow_counters.values()
        slices = len(self.profile)
        return TelemetrySummary(
            events_seen=self.events_seen,
            events_kept=len(self.events),
            counts=dict(self.counts),
            drops=self.total_port_counter("dropped"),
            marks=self.total_port_counter("marked"),
            trims=self.total_port_counter("trimmed"),
            retransmits=sum(c["retransmits"] for c in flow_values),
            rtos=sum(c["rtos"] for c in flow_values),
            flows_started=self.counts.get(FLOW_START, 0),
            flows_completed=self.counts.get(FLOW_COMPLETE, 0),
            pauses_sent=self.pauses_sent,
            pauses_received=self.pauses_received,
            pause_seconds=self.pause_seconds,
            flowlet_repins=self.flowlet_repins,
            hybrid_epochs=self.counts.get(HYBRID_EPOCH, 0),
            hybrid_demotions=self.counts.get(HYBRID_DEMOTE, 0),
            slices=slices,
            sim_events=sum(events for _t, events, _w in self.profile),
            wall_seconds=sum(wall for _t, _e, wall in self.profile),
            peak_pending=getattr(self.sim, "peak_pending", 0)
            if self.sim is not None else 0,
        )

    # -- persistence -------------------------------------------------------

    def export_jsonl(self, path) -> int:
        """Write the kept events to ``path``, one JSON object per line.

        Returns the number of events written.  The format round-trips
        through :func:`load_jsonl`.
        """
        written = 0
        with open(path, "w", encoding="utf-8") as fh:
            for event in self.events:
                fh.write(json.dumps(event.to_dict(), sort_keys=True))
                fh.write("\n")
                written += 1
        return written

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Telemetry {self.events_seen} events seen, "
                f"{len(self.events)} kept>")


def load_jsonl(path) -> List[TraceEvent]:
    """Read a JSONL trace written by :meth:`Telemetry.export_jsonl`."""
    events: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_dict(json.loads(line)))
    return events
