"""Chained-hook core: compose per-event callbacks instead of replacing.

Every per-event hook site in the simulator (queue drops, ECN marks,
trims, fault transitions, ...) is a single attribute that is ``None``
when nobody is listening — the hot path pays one ``None``-check and
nothing else.  When more than one consumer wants the same hook (say a
:class:`~repro.sim.trace.DropTracer` *and* a
:class:`~repro.obs.telemetry.Telemetry`), :func:`chain` composes them so
attaching one never silently disables the other.  Callbacks run in
attach order.

Composed hooks are :class:`Chained` instances rather than closures so a
fully instrumented run stays picklable — simulator checkpoints
(:mod:`repro.resilience`) snapshot the whole object graph, hook sites
included.
"""

from __future__ import annotations

from typing import Callable, Optional


class Chained:
    """Two hook callbacks invoked in attach order with the same args.

    A plain class (not a closure) so checkpoint pickling can traverse
    hook sites; return values are ignored — hooks observe, they do not
    veto.
    """

    __slots__ = ("first", "second")

    def __init__(self, first: Callable, second: Callable) -> None:
        self.first = first
        self.second = second

    def __call__(self, *args) -> None:
        self.first(*args)
        self.second(*args)

    def __getstate__(self):
        return (self.first, self.second)

    def __setstate__(self, state) -> None:
        self.first, self.second = state


def chain(existing: Optional[Callable], fn: Optional[Callable]) -> Optional[Callable]:
    """Compose two hook callbacks; either may be ``None``.

    Returns a callable invoking ``existing`` then ``fn`` with the same
    arguments.  ``chain(None, fn) is fn`` so a single consumer costs no
    extra frame.
    """
    if existing is None:
        return fn
    if fn is None:
        return existing
    return Chained(existing, fn)
