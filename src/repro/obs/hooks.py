"""Chained-hook core: compose per-event callbacks instead of replacing.

Every per-event hook site in the simulator (queue drops, ECN marks,
trims, fault transitions, ...) is a single attribute that is ``None``
when nobody is listening — the hot path pays one ``None``-check and
nothing else.  When more than one consumer wants the same hook (say a
:class:`~repro.sim.trace.DropTracer` *and* a
:class:`~repro.obs.telemetry.Telemetry`), :func:`chain` composes them so
attaching one never silently disables the other.  Callbacks run in
attach order.
"""

from __future__ import annotations

from typing import Callable, Optional


def chain(existing: Optional[Callable], fn: Optional[Callable]) -> Optional[Callable]:
    """Compose two hook callbacks; either may be ``None``.

    Returns a callable invoking ``existing`` then ``fn`` with the same
    arguments (return values are ignored — hooks observe, they do not
    veto).  ``chain(None, fn) is fn`` so a single consumer costs no
    extra frame.
    """
    if existing is None:
        return fn
    if fn is None:
        return existing

    def chained(*args):
        existing(*args)
        fn(*args)

    return chained
