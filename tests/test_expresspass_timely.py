"""Tests for the ExpressPass and TIMELY baselines."""

import pytest

from conftest import make_ctx, make_star, run_single_flow
from repro.transport.base import Flow
from repro.transport.expresspass import ExpressPass, ExpressPassSender
from repro.transport.timely import Timely, TimelySender


# -- ExpressPass --------------------------------------------------------------


def test_expresspass_completes():
    flow, ctx, _ = run_single_flow(ExpressPass(), 300_000, until=2.0)
    assert flow.completed


def test_expresspass_first_rtt_carries_no_data():
    """The paper's critique: no payload moves before credits arrive."""
    topo = make_star()
    ctx = make_ctx(topo)
    flow = Flow(0, 0, 1, 300_000, 0.0)
    ExpressPass().start_flow(flow, ctx)
    topo.sim.run(until=topo.network.base_rtt(0, 1) * 0.9)
    sender = topo.network.hosts[0].endpoints[0]
    assert sender.pkts_transmitted == 0


def test_expresspass_one_packet_per_credit():
    flow, ctx, topo = run_single_flow(ExpressPass(), 150_000, until=2.0)
    sender = topo.network.hosts[0].endpoints[0]
    n = flow.n_packets(ctx.config.mss)
    # lossless run: exactly one transmission per packet (plus none extra)
    assert sender.pkts_transmitted == n


def test_expresspass_credits_shared_round_robin():
    """Two concurrent inbound messages complete at similar times (fair
    credit sharing), and aggregate at about the credit rate."""
    topo = make_star(3)
    ctx = make_ctx(topo)
    scheme = ExpressPass()
    f1 = Flow(0, 0, 2, 300_000, 0.0)
    f2 = Flow(1, 1, 2, 300_000, 0.0)
    scheme.start_flow(f1, ctx)
    scheme.start_flow(f2, ctx)
    topo.sim.run(until=2.0)
    assert f1.completed and f2.completed
    assert abs(f1.fct - f2.fct) < 0.3 * max(f1.fct, f2.fct)


def test_expresspass_recovers_lost_data():
    from repro.sim.network import QueueConfig
    from repro.sim.topology import star
    from repro.units import gbps, us
    qcfg = QueueConfig(buffer_bytes=18_000)
    topo = star(4, rate=gbps(40), prop_delay=us(4), qcfg=qcfg)
    ctx = make_ctx(topo)
    scheme = ExpressPass()
    flows = [Flow(i, i, 3, 150_000, 0.0) for i in range(3)]
    for f in flows:
        scheme.start_flow(f, ctx)
    topo.sim.run(until=2.0)
    assert all(f.completed for f in flows)


# -- TIMELY -------------------------------------------------------------------


def test_timely_completes():
    flow, ctx, _ = run_single_flow(Timely(), 500_000, until=5.0)
    assert flow.completed


def test_timely_increases_below_tlow():
    topo = make_star()
    ctx = make_ctx(topo)
    sender = TimelySender(Flow(0, 0, 1, 1_000_000, 0.0), ctx)
    sender.cwnd = 10.0
    sender.cc_on_ack(False, sender.base_rtt)  # below T_low
    assert sender.cwnd > 10.0


def test_timely_decreases_above_thigh():
    topo = make_star()
    ctx = make_ctx(topo)
    sender = TimelySender(Flow(0, 0, 1, 1_000_000, 0.0), ctx)
    sender.cwnd = 20.0
    sender.cc_on_ack(False, sender.base_rtt * 10)
    assert sender.cwnd < 20.0


def test_timely_gradient_reaction():
    topo = make_star()
    ctx = make_ctx(topo)
    sender = TimelySender(Flow(0, 0, 1, 1_000_000, 0.0), ctx)
    sender.cwnd = 20.0
    mid = sender.base_rtt * 2  # between T_low and T_high
    # rising RTT -> positive gradient -> decrease
    for rtt in (mid, mid * 1.2, mid * 1.4):
        sender.cc_on_ack(False, rtt)
    assert sender.cwnd < 20.0
    # a sustained falling RTT flips the smoothed gradient; once it is
    # negative the window grows additively again
    for step in range(8):
        sender.cc_on_ack(False, mid * (1.3 - 0.05 * step))
    assert sender._gradient <= 0
    before = sender.cwnd
    for step in range(3):
        sender.cc_on_ack(False, mid * (0.9 - 0.05 * step))
    assert sender.cwnd > before


def test_timely_not_ecn_capable():
    topo = make_star()
    ctx = make_ctx(topo)
    sender = TimelySender(Flow(0, 0, 1, 1_000, 0.0), ctx)
    assert not sender.ecn_capable()
