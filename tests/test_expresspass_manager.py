"""Unit tests for the ExpressPass per-host credit manager."""

import pytest

from conftest import make_ctx, make_star
from repro.sim.packet import CONTROL, DATA, Packet
from repro.transport.base import Flow
from repro.transport.expresspass import (
    CREDIT_RATE_FRACTION,
    ExpressPass,
    ExpressPassReceiverHost,
)


def make_manager():
    topo = make_star(4)
    ctx = make_ctx(topo)
    manager = ExpressPassReceiverHost(3, ctx)
    return manager, ctx, topo


def test_credit_interval_matches_link_rate():
    manager, ctx, topo = make_manager()
    rate = topo.network.hosts[3].uplink.rate_bps
    expected = ctx.config.mss * 8.0 / (rate * CREDIT_RATE_FRACTION)
    assert manager._interval == pytest.approx(expected)


def test_credits_paced_not_burst():
    manager, ctx, topo = make_manager()
    sent = []
    ctx.network.send_control = sent.append
    manager.open_message(Flow(0, 0, 3, 150_000, 0.0))
    topo.sim.run(until=manager._interval * 4.5)
    # ~one credit per interval, plus the t=0 credit
    assert 4 <= len(sent) <= 6
    assert all(c.kind == CONTROL for c in sent)


def test_round_robin_across_messages():
    manager, ctx, topo = make_manager()
    sent = []
    ctx.network.send_control = sent.append
    manager.open_message(Flow(0, 0, 3, 150_000, 0.0))
    manager.open_message(Flow(1, 1, 3, 150_000, 0.0))
    topo.sim.run(until=manager._interval * 8.5)
    ids = [c.flow_id for c in sent]
    # alternates between the two messages
    assert ids.count(0) >= 3 and ids.count(1) >= 3
    assert any(a != b for a, b in zip(ids, ids[1:]))


def test_crediting_stops_when_fully_credited():
    manager, ctx, topo = make_manager()
    sent = []
    ctx.network.send_control = sent.append
    manager.open_message(Flow(0, 0, 3, 3000, 0.0))  # 3 packets
    topo.sim.run(until=manager._interval * 20)
    credits = [c for c in sent if c.kind == CONTROL]
    assert len(credits) == 3  # exactly n, never more


def test_completion_emits_final_ack():
    manager, ctx, topo = make_manager()
    sent = []
    ctx.network.send_control = sent.append
    flow = Flow(0, 0, 3, 2000, 0.0)
    manager.open_message(flow)
    manager.on_data(Packet(0, 0, 3, 0, 1500))
    manager.on_data(Packet(0, 0, 3, 1, 1500))
    assert flow.completed
    acks = [p for p in sent if p.kind != CONTROL]
    assert len(acks) == 1 and acks[0].ack_seq == 2


def test_rtx_check_targets_holes():
    manager, ctx, topo = make_manager()
    flow = Flow(0, 0, 3, 10_000, 0.0)  # 7 packets
    manager.open_message(flow)
    state = manager.flows[0]
    state["credited"] = state["n"]
    state["delivered"].update({0, 1, 3, 5})
    state["progress_mark"] = 4  # no progress since last check
    manager._rtx_check(0)
    assert list(state["recredit"]) == [2, 4, 6]


def test_rtx_check_waits_while_progress():
    manager, ctx, topo = make_manager()
    flow = Flow(0, 0, 3, 10_000, 0.0)
    manager.open_message(flow)
    state = manager.flows[0]
    state["credited"] = state["n"]
    state["delivered"].update({0, 1})
    state["progress_mark"] = 0  # progress happened: 2 > 0
    manager._rtx_check(0)
    assert not state["recredit"]
