"""Tests for Aeolus (Homa + selective dropping + probe recovery)."""

from conftest import make_ctx, make_star, run_single_flow
from repro.transport.aeolus import Aeolus, AeolusSender
from repro.transport.base import Flow


def test_configure_network_sets_selective_drop():
    scheme = Aeolus(rtt_bytes=45_000)
    topo = make_star()
    scheme.configure_network(topo.network)
    for port in topo.network.ports:
        assert port.mux.selective_drop_threshold is not None


def test_explicit_drop_threshold():
    scheme = Aeolus(rtt_bytes=45_000, drop_threshold_bytes=12_345)
    topo = make_star()
    scheme.configure_network(topo.network)
    assert all(p.mux.selective_drop_threshold == 12_345
               for p in topo.network.ports)


def test_unscheduled_packets_flagged_and_lowest_priority():
    topo = make_star()
    scheme = Aeolus(rtt_bytes=45_000)
    ctx = make_ctx(topo)
    sender = AeolusSender(Flow(0, 0, 1, 100_000, 0.0), ctx, scheme)

    class FakePort:
        def __init__(self):
            self.sent = []

        def send(self, pkt):
            self.sent.append(pkt)
            return True

    fake = FakePort()
    sender.host.uplink = fake
    sender.start()
    assert fake.sent
    assert all(p.unscheduled and p.priority == 7 for p in fake.sent)


def test_completion_with_selective_dropping():
    """Aggressive dropping of the pre-credit blast must be recovered via
    the probe + grant path, not just timeouts."""
    scheme = Aeolus(rtt_bytes=45_000, drop_threshold_bytes=5_000)
    topo = make_star(3)
    ctx = make_ctx(topo)
    scheme.configure_network(topo.network)
    flows = [Flow(0, 0, 2, 200_000, 0.0), Flow(1, 1, 2, 200_000, 0.0)]
    for f in flows:
        scheme.start_flow(f, ctx)
    topo.sim.run(until=5.0)
    assert all(f.completed for f in flows)


def test_probe_recovers_faster_than_timeout():
    """With heavy selective dropping, completion should happen well
    before a full min_rto (the probe path recovers in ~RTTs)."""
    scheme = Aeolus(rtt_bytes=45_000, drop_threshold_bytes=4_000)
    topo = make_star(3)
    ctx = make_ctx(topo, min_rto=50e-3)  # timeouts are very expensive
    scheme.configure_network(topo.network)
    f1 = Flow(0, 0, 2, 60_000, 0.0)
    f2 = Flow(1, 1, 2, 60_000, 0.0)
    scheme.start_flow(f1, ctx)
    scheme.start_flow(f2, ctx)
    topo.sim.run(until=1.0)
    assert f1.completed and f2.completed
    assert max(f1.fct, f2.fct) < 40e-3  # did not require the timeout


def test_single_flow_clean_path():
    flow, ctx, _ = run_single_flow(Aeolus(rtt_bytes=45_000), 150_000,
                                   until=2.0)
    assert flow.completed
