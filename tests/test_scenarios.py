"""Tests for the canonical scenario configurations (paper fidelity)."""

import pytest

from repro.experiments.scenarios import (
    HOMA_OVERCOMMIT,
    HOMA_RTT_BYTES_SIM,
    HOMA_RTT_BYTES_TESTBED,
    SIM_BUFFER,
    SIM_K_HIGH,
    SIM_K_LOW,
    TESTBED_K_HIGH,
    TESTBED_K_LOW,
    all_to_all_scenario,
    sim_config,
    sim_fabric,
    sim_fabric_100_400g,
    sim_fabric_non_oversubscribed,
    sim_qcfg,
    testbed_config as _testbed_config,
    testbed_fabric as _testbed_fabric,
    testbed_params as _testbed_params,
)
from repro.units import gbps
from repro.workloads.distributions import WEB_SEARCH


def test_sim_fabric_paper_parameters():
    topo = sim_fabric()()
    assert topo.edge_rate == gbps(40)
    assert topo.core_rate == gbps(100)
    # every switch port carries the paper's 120KB / 96KB / 86KB settings
    switch_ports = [p for p in topo.network.ports
                    if p.mux.buffer_bytes == SIM_BUFFER]
    assert switch_ports
    mux = switch_ports[0].mux
    assert mux.ecn_thresholds[:4] == [SIM_K_HIGH] * 4
    assert mux.ecn_thresholds[4:] == [SIM_K_LOW] * 4


def test_sim_fabric_oversubscription_ratio():
    topo = sim_fabric()()
    hosts_per_leaf = topo.n_hosts // 4
    up = 2 * topo.core_rate            # 2 spines x 100G
    down = hosts_per_leaf * topo.edge_rate
    assert down / up == pytest.approx(1.6)  # scaled replica of 1.4:1


def test_100_400g_variant():
    topo = sim_fabric_100_400g()()
    assert topo.edge_rate == gbps(100)
    assert topo.core_rate == gbps(400)


def test_non_oversubscribed_variant():
    topo = sim_fabric_non_oversubscribed()()
    assert topo.edge_rate == gbps(10)
    assert topo.core_rate == gbps(40)
    hosts_per_leaf = topo.n_hosts // 4
    assert hosts_per_leaf * topo.edge_rate <= 2 * topo.core_rate


def test_testbed_fabric_matches_table3():
    topo = _testbed_fabric()()
    assert topo.n_hosts == 15
    assert topo.edge_rate == gbps(10)
    # base RTT ~ 80us (Table 3)
    assert 60e-6 <= topo.base_rtt <= 100e-6
    port = topo.network.port_to_host(0)
    assert port.mux.ecn_thresholds[0] == TESTBED_K_HIGH
    assert port.mux.ecn_thresholds[4] == TESTBED_K_LOW


def test_configs_match_table3():
    testbed = _testbed_config()
    assert testbed.min_rto == pytest.approx(10e-3)          # RTO_min 10ms
    assert testbed.identification_threshold == 100_000      # 100KB
    sim = sim_config()
    assert sim.send_buffer_bytes == 2_000_000_000           # 2GB (§6.2)
    assert HOMA_RTT_BYTES_SIM == 45_000
    assert HOMA_RTT_BYTES_TESTBED == 50_000
    assert HOMA_OVERCOMMIT == 2


def test_testbed_params_table_rows():
    params = {r["parameter"]: r["setting"] for r in _testbed_params()}
    assert params["RTT"] == "80us"
    assert params["Switch port number"] == "54"


def test_load_preserved_under_size_cap():
    """Capping sizes must not change the offered load (the capped mean
    feeds the arrival rate)."""
    scenario = all_to_all_scenario("cap", WEB_SEARCH, load=0.5,
                                   n_flows=3000, size_cap=500_000)
    topo = scenario.build_topology()
    flows = scenario.build_flows(topo)
    horizon = flows[-1].start_time
    offered = sum(f.size for f in flows) * 8 / horizon
    target = 0.5 * topo.n_hosts * topo.edge_rate
    assert offered == pytest.approx(target, rel=0.15)


def test_scenarios_have_distinct_seeds_but_stable_defaults():
    s1 = all_to_all_scenario("a", WEB_SEARCH, n_flows=10)
    s2 = all_to_all_scenario("b", WEB_SEARCH, n_flows=10)
    f1 = s1.build_flows(s1.build_topology())
    f2 = s2.build_flows(s2.build_topology())
    assert [(f.src, f.dst, f.size) for f in f1] == \
           [(f.src, f.dst, f.size) for f in f2]  # same default seed


def test_sim_qcfg_overrides():
    qcfg = sim_qcfg(k_low=40_000, dt_alpha=None)
    mux = qcfg.build(gbps(40))
    assert mux.ecn_thresholds[4] == 40_000
    assert mux.dt_alphas is None
