"""Tests for topology builders and network wiring."""

import pytest

from conftest import make_leaf_spine, make_star, quick_qcfg
from repro.sim.packet import Packet
from repro.sim.topology import (
    dumbbell,
    leaf_spine,
    paper_non_oversubscribed,
    paper_oversubscribed,
    star,
)
from repro.units import gbps, us


def test_star_builds_hosts_and_routes():
    topo = make_star(5)
    net = topo.network
    assert len(net.hosts) == 5
    assert len(net.switches) == 1
    for host_id in range(5):
        assert net.port_to_host(host_id) is not None
        assert net.hosts[host_id].uplink is not None


def test_star_base_delay_symmetric():
    topo = make_star(4)
    assert topo.network.base_delay(0, 1) == pytest.approx(
        topo.network.base_delay(1, 0))


def test_dumbbell_routes_both_ways():
    topo = dumbbell()
    sim, net = topo.sim, topo.network
    received = []
    net.hosts[1].default_endpoint = type(
        "E", (), {"on_packet": staticmethod(received.append)})()
    pkt = Packet(99, 0, 1, 0, 1500)
    net.hosts[0].send(pkt)
    sim.run()
    assert received and received[0].hops == 2


def test_leaf_spine_host_count():
    topo = make_leaf_spine(n_leaf=3, hosts_per_leaf=4)
    assert topo.n_hosts == 12
    assert len(topo.network.switches) == 3 + 2  # leaves + spines


def test_leaf_spine_cross_leaf_ecmp_candidates():
    topo = make_leaf_spine(n_leaf=2, n_spine=3, hosts_per_leaf=2)
    net = topo.network
    leaf0 = net.switches[0]
    # remote host: one candidate per spine
    remote = 2  # host under leaf1
    assert len(leaf0.table[remote]) == 3
    # local host: exactly its downlink
    assert len(leaf0.table[0]) == 1


def test_leaf_spine_delivers_cross_leaf():
    topo = make_leaf_spine()
    net, sim = topo.network, topo.sim
    received = []
    dst = topo.n_hosts - 1
    net.hosts[dst].default_endpoint = type(
        "E", (), {"on_packet": staticmethod(received.append)})()
    net.hosts[0].send(Packet(5, 0, dst, 0, 1500))
    sim.run()
    assert received and received[0].hops == 3  # leaf, spine, leaf


def test_leaf_spine_intra_leaf_stays_local():
    topo = make_leaf_spine(hosts_per_leaf=4)
    net, sim = topo.network, topo.sim
    received = []
    net.hosts[1].default_endpoint = type(
        "E", (), {"on_packet": staticmethod(received.append)})()
    net.hosts[0].send(Packet(5, 0, 1, 0, 1500))
    sim.run()
    assert received and received[0].hops == 1  # only the leaf


def test_cross_leaf_base_delay_larger_than_intra():
    topo = make_leaf_spine(hosts_per_leaf=2)
    net = topo.network
    intra = net.base_rtt(0, 1)
    cross = net.base_rtt(0, 2)
    assert cross > intra


def test_paper_topologies_shapes():
    over = paper_oversubscribed(hosts_per_leaf=2, n_leaf=2, n_spine=2)
    assert over.edge_rate == gbps(40)
    assert over.core_rate == gbps(100)
    non = paper_non_oversubscribed(hosts_per_leaf=2, n_leaf=2, n_spine=2)
    assert non.edge_rate == gbps(10)
    assert non.core_rate == gbps(40)


def test_host_uplink_uses_large_nic_buffer():
    topo = make_star(3)
    host_buffer = topo.network.hosts[0].uplink.mux.buffer_bytes
    switch_buffer = topo.network.port_to_host(0).mux.buffer_bytes
    assert host_buffer > switch_buffer


def test_no_route_raises():
    topo = make_star(3)
    switch = topo.network.switches[0]
    with pytest.raises(KeyError):
        switch.receive(Packet(1, 0, 99, 0, 1500))


def test_base_delay_unknown_host_raises():
    topo = make_star(3)
    with pytest.raises(KeyError):
        topo.network.base_delay(0, 99)


def test_base_delay_self_is_zero():
    topo = make_star(3)
    assert topo.network.base_delay(1, 1) == 0.0


def test_spray_mode_flag():
    topo = make_leaf_spine()
    topo.network.set_spray(True)
    assert all(sw.spray for sw in topo.network.switches)
    topo.network.set_spray(False)
    assert not any(sw.spray for sw in topo.network.switches)
