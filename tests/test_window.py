"""Tests for the reliable window transport machinery."""

import pytest

from conftest import make_ctx, make_star, run_single_flow
from repro.transport.base import Flow
from repro.sim.packet import ACK, DATA, HEADER_BYTES, Packet
from repro.transport.base import Flow
from repro.transport.dctcp import Dctcp
from repro.transport.window import WindowReceiver, WindowSender


class PlainScheme(Dctcp):
    """NewReno-ish scheme using the raw WindowSender."""

    name = "plain"
    sender_cls = WindowSender


def test_single_packet_flow_completes():
    flow, ctx, topo = run_single_flow(PlainScheme(), 1000)
    assert flow.completed
    assert flow.fct == pytest.approx(topo.base_rtt / 2, rel=0.5)


def test_multi_packet_flow_completes():
    flow, ctx, _ = run_single_flow(PlainScheme(), 100_000)
    assert flow.completed
    assert len(ctx.completed) == 1


def test_sender_stops_after_completion():
    flow, ctx, topo = run_single_flow(PlainScheme(), 50_000)
    sender = topo.network.hosts[0].endpoints[0]
    assert sender.finished
    assert sender._rto_event is None


def test_packet_count_and_sizes():
    flow, ctx, topo = run_single_flow(PlainScheme(), 10_000)
    receiver = topo.network.hosts[1].endpoints[0]
    n = flow.n_packets(ctx.config.mss)
    assert receiver.n_packets == n
    assert len(receiver.delivered) == n


def test_last_packet_is_short():
    topo = make_star()
    ctx = make_ctx(topo)
    flow = Flow(0, 0, 1, 2000, 0.0)  # payload/packet = 1436 -> 2 packets
    sender = WindowSender(flow, ctx)
    last = sender.build_packet(1)
    assert last.size < ctx.config.mss
    assert last.size == (2000 - 1436) + HEADER_BYTES


def test_first_syscall_recorded():
    flow, ctx, _ = run_single_flow(PlainScheme(), 50_000)
    assert flow.first_syscall_bytes == 50_000


def test_first_syscall_capped_by_send_buffer():
    flow, ctx, _ = run_single_flow(PlainScheme(), 50_000,
                                   send_buffer_bytes=10_000)
    assert flow.first_syscall_bytes == 10_000


def test_send_buffer_limits_inflight_window():
    """With a small send buffer the sender can only expose a window of
    packets beyond the cumulative ack point."""
    topo = make_star()
    ctx = make_ctx(topo, send_buffer_bytes=14_360)  # 10 packets of payload
    flow = Flow(0, 0, 1, 1_000_000, 0.0)
    sender = WindowSender(flow, ctx)
    assert sender.buffer_packets == 10
    assert sender.buffer_end() == 10
    sender.cum = 50
    assert sender.buffer_end() == 60


def test_retransmission_after_loss():
    """Two senders overload a tiny switch buffer: losses must be
    recovered and both flows finish."""
    from repro.sim.network import QueueConfig
    from repro.sim.topology import star
    from repro.units import gbps, us
    qcfg = QueueConfig(buffer_bytes=15_000)  # 10-packet switch buffer
    topo = star(3, rate=gbps(40), prop_delay=us(4), qcfg=qcfg)
    ctx = make_ctx(topo)
    scheme = PlainScheme()
    flows = [Flow(0, 0, 2, 300_000, 0.0), Flow(1, 1, 2, 300_000, 0.0)]
    for flow in flows:
        scheme.start_flow(flow, ctx)
    topo.sim.run(until=2.0)
    assert all(f.completed for f in flows)
    retransmits = sum(topo.network.hosts[h].endpoints[i].pkts_retransmitted
                      for h, i in ((0, 0), (1, 1)))
    assert retransmits > 0


def test_duplicate_data_counted_once():
    flow, ctx, topo = run_single_flow(PlainScheme(), 20_000)
    receiver = topo.network.hosts[1].endpoints[0]
    # replay an old packet after completion: no double-complete
    pkt = Packet(0, 0, 1, 0, 1500)
    receiver.on_packet(pkt)
    assert len(ctx.completed) == 1


def test_receiver_ignores_non_data():
    topo = make_star()
    ctx = make_ctx(topo)
    flow = Flow(0, 0, 1, 10_000, 0.0)
    receiver = WindowReceiver(flow, ctx)
    receiver.on_packet(Packet(0, 0, 1, 0, 64, kind=ACK))
    assert not receiver.delivered


def test_cum_ack_advances_through_holes():
    topo = make_star()
    ctx = make_ctx(topo)
    flow = Flow(0, 0, 1, 100_000, 0.0)
    receiver = WindowReceiver(flow, ctx)
    receiver.on_packet(Packet(0, 0, 1, 0, 1500))
    receiver.on_packet(Packet(0, 0, 1, 2, 1500))
    assert receiver.cum == 1
    receiver.on_packet(Packet(0, 0, 1, 1, 1500))
    assert receiver.cum == 3


def test_rto_recovers_total_blackout():
    """If every in-flight packet is lost, the RTO path restarts the flow."""
    topo = make_star()
    ctx = make_ctx(topo)
    flow = Flow(0, 0, 1, 30_000, 0.0)
    sender = WindowSender(flow, ctx)
    receiver = WindowReceiver(flow, ctx)
    # do NOT register the sender at first: all ACKs are dropped
    topo.network.hosts[1].register(0, receiver)
    sender.start()
    topo.sim.run(until=ctx.config.min_rto / 2)
    assert not flow.completed
    # now register: RTO fires, everything is resent, flow completes
    topo.network.hosts[0].register(0, sender)
    topo.sim.run(until=1.0)
    assert flow.completed


def test_srtt_stays_near_base_rtt_uncontended():
    """Solo flow: the smoothed RTT reflects base RTT plus (at most) its
    own slow-start self-queueing at the NIC."""
    flow, ctx, topo = run_single_flow(PlainScheme(), 200_000)
    sender = topo.network.hosts[0].endpoints[0]
    assert topo.base_rtt * 0.8 <= sender.srtt <= topo.base_rtt * 6


def test_slow_start_doubles_window():
    topo = make_star()
    ctx = make_ctx(topo)
    flow = Flow(0, 0, 1, 1_000_000, 0.0)
    sender = WindowSender(flow, ctx)
    w0 = sender.cwnd
    for _ in range(int(w0)):
        sender.cc_on_ack(False, 1e-5)
    assert sender.cwnd == pytest.approx(2 * w0)


def test_congestion_avoidance_linear():
    topo = make_star()
    ctx = make_ctx(topo)
    sender = WindowSender(Flow(0, 0, 1, 1_000_000, 0.0), ctx)
    sender.ssthresh = 10.0
    sender.cwnd = 10.0
    for _ in range(10):
        sender.cc_on_ack(False, 1e-5)
    assert sender.cwnd == pytest.approx(11.0, rel=0.05)


def test_max_cwnd_cap():
    topo = make_star()
    ctx = make_ctx(topo, max_cwnd_packets=50)
    sender = WindowSender(Flow(0, 0, 1, 10_000_000, 0.0), ctx)
    for _ in range(200):
        sender.cc_on_ack(False, 1e-5)
    assert sender.cwnd <= 50


# ---------------------------------------------------------------------------
# Karn's rule: ACKs of retransmitted seqs never feed the srtt estimator
# ---------------------------------------------------------------------------


def _make_ack_for(sender, seq, *, sent_at, ack_seq):
    ack = Packet(flow_id=sender.flow.flow_id, src=1, dst=0, seq=seq,
                 size=HEADER_BYTES, kind=ACK)
    ack.sent_at = sent_at
    ack.ack_seq = ack_seq
    return ack


def test_karn_skips_srtt_sample_for_retransmitted_seq():
    topo = make_star()
    ctx = make_ctx(topo)
    sender = WindowSender(Flow(0, 0, 1, 100_000, 0.0), ctx)
    sender.transmit(0)
    sender.transmit(0, retransmit=True)
    srtt_before = sender.srtt
    # an echoed sent_at from *either* copy is ambiguous; this one would
    # read as a huge (stale-original) sample
    sender.handle_ack(_make_ack_for(sender, 0, sent_at=-0.5, ack_seq=1))
    assert sender.srtt == srtt_before


def test_fresh_seq_still_feeds_srtt():
    topo = make_star()
    ctx = make_ctx(topo)
    sender = WindowSender(Flow(0, 0, 1, 100_000, 0.0), ctx)
    sender.transmit(0)
    srtt_before = sender.srtt
    sender.handle_ack(_make_ack_for(sender, 0, sent_at=-0.5, ack_seq=1))
    assert sender.srtt != srtt_before


def test_lossy_run_srtt_never_collapses_below_base_rtt():
    from repro.faults import LossInjector
    import random as _random

    topo = make_star()
    port = topo.network.port_named("host0->sw0")
    LossInjector(topo.sim, port, 0.08, _random.Random("karn")).attach()
    flow, ctx, topo = run_single_flow(PlainScheme(), 400_000, topo=topo,
                                      until=5.0)
    assert flow.completed
    sender = topo.network.hosts[0].endpoints[0]
    assert sender.pkts_retransmitted > 0
    # Karn's rule keeps ambiguous samples out: the smoothed RTT can only
    # sit at or above the propagation floor
    assert sender.srtt >= sender.base_rtt
