"""Tests for the DCTCP congestion-control model."""

import pytest

from conftest import make_ctx, make_star, run_single_flow
from repro.transport.base import Flow
from repro.transport.dctcp import ALPHA_HISTORY, Dctcp, DctcpSender


def make_sender(size=1_000_000, **cfg):
    topo = make_star()
    ctx = make_ctx(topo, **cfg)
    return DctcpSender(Flow(0, 0, 1, size, 0.0), ctx), topo


def drive_window(sender, n_acks, ce=False):
    """Feed n acks and force the end-of-window alpha update."""
    for _ in range(n_acks):
        sender.cc_on_ack(ce, 1e-5)
    sender.cum = sender._win_end  # reach the window boundary
    sender.cc_on_ack(ce, 1e-5)


def test_alpha_initialised_to_one():
    sender, _ = make_sender()
    assert sender.alpha == 1.0


def test_alpha_decays_without_marks():
    sender, _ = make_sender()
    a0 = sender.alpha
    drive_window(sender, 10, ce=False)
    assert sender.alpha < a0
    # Eq. 1 with F=0: alpha <- (1-g) * alpha
    assert sender.alpha == pytest.approx((1 - sender.g) * a0)


def test_alpha_rises_with_marks():
    sender, _ = make_sender()
    drive_window(sender, 10, ce=False)
    low = sender.alpha
    drive_window(sender, 10, ce=True)
    assert sender.alpha > low


def test_window_cut_by_alpha_over_two():
    sender, _ = make_sender()
    # decay alpha over some unmarked windows first
    for _ in range(5):
        drive_window(sender, 10, ce=False)
    sender.startup_done = True
    cwnd = sender.cwnd = 40.0
    alpha_before = sender.alpha
    drive_window(sender, 10, ce=True)
    # cut uses the *updated* alpha: cwnd * (1 - alpha/2), then + growth
    assert sender.cwnd < cwnd
    assert sender.cwnd >= cwnd * (1 - 0.5 * 1.0)  # at most halved


def test_first_mark_exits_slow_start():
    sender, _ = make_sender()
    assert not sender.startup_done
    drive_window(sender, 10, ce=True)
    assert sender.startup_done
    assert sender.ssthresh < float("inf")


def test_no_cut_on_unmarked_window():
    sender, _ = make_sender()
    sender.startup_done = True
    sender.ssthresh = 10.0
    sender.cwnd = 20.0
    drive_window(sender, 10, ce=False)
    assert sender.cwnd >= 20.0


def test_wmax_tracks_post_startup_only():
    sender, _ = make_sender()
    # grow big during slow start: wmax must remain 0
    for _ in range(50):
        sender.cc_on_ack(False, 1e-5)
    assert sender.wmax == 0.0
    drive_window(sender, 5, ce=True)  # exit startup
    assert sender.wmax > 0.0
    peak = max(sender.wmax, sender.cwnd)
    drive_window(sender, 30, ce=False)
    assert sender.wmax >= peak * 0.9


def test_alpha_min_over_history():
    sender, _ = make_sender()
    for _ in range(4):
        drive_window(sender, 10, ce=False)
    assert sender.alpha_min == pytest.approx(min(sender.alpha_history))
    assert sender.alpha_min <= sender.alpha + 1e-12


def test_alpha_history_bounded():
    sender, _ = make_sender()
    for _ in range(ALPHA_HISTORY + 10):
        drive_window(sender, 4, ce=False)
    assert len(sender.alpha_history) == ALPHA_HISTORY


def test_window_update_hook_fires():
    sender, _ = make_sender()
    calls = []
    sender.on_window_update = calls.append
    drive_window(sender, 10, ce=False)
    assert calls and calls[0] is sender


def test_rto_resets_to_one_packet():
    sender, _ = make_sender()
    sender.cwnd = 30.0
    sender.cc_on_rto()
    assert sender.cwnd == 1.0
    assert sender.startup_done


def test_fast_rtx_halves():
    sender, _ = make_sender()
    sender.cwnd = 30.0
    sender.cc_on_fast_rtx()
    assert sender.cwnd == pytest.approx(15.0)


def test_end_to_end_flow_completes_with_marking():
    flow, ctx, topo = run_single_flow(Dctcp(), 500_000, until=2.0)
    assert flow.completed
    sender = topo.network.hosts[0].endpoints[0]
    assert sender.alpha < 1.0  # alpha was updated during the run


def test_two_competing_flows_share_and_complete():
    topo = make_star(3)
    ctx = make_ctx(topo)
    scheme = Dctcp()
    f1 = Flow(0, 0, 2, 400_000, 0.0)
    f2 = Flow(1, 1, 2, 400_000, 0.0)
    scheme.start_flow(f1, ctx)
    scheme.start_flow(f2, ctx)
    topo.sim.run(until=2.0)
    assert f1.completed and f2.completed
    # the pair cannot beat the shared bottleneck's serialization time,
    # and neither flow should be starved beyond a loose bound
    ideal_pair = 2 * 400_000 * 8 / topo.edge_rate
    assert max(f1.fct, f2.fct) >= ideal_pair * 0.9
    assert max(f1.fct, f2.fct) < 5e-3
