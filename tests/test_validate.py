"""Tests for the repro.validate invariant auditor.

Three families:

* **auditor-in-the-runner** — validated runs report zero violations and
  are bit-identical to bare runs; a deliberately corrupted mux ledger is
  caught (the mutation test the acceptance criteria demand), strict mode
  raising a structured :class:`InvariantViolation` naming the law;
* **report plumbing** — pickling across worker pipes, combining across
  sweeps, the violation cap;
* **mux property test** — random operation sequences against a
  :class:`PriorityMux` with :func:`audit_mux` asserted clean after every
  single operation (doubling as the unit test for the mux validator).
"""

import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.parallel import GridTask, run_grid
from repro.experiments.runner import run
from repro.experiments.scenarios import (
    all_to_all_scenario,
    dumbbell_scenario,
    star_fabric,
)
from repro.sim.packet import DATA, HEADER_BYTES, Packet
from repro.sim.queues import PriorityMux
from repro.transport.dctcp import Dctcp
from repro.core.ppt import Ppt
from repro.validate import (
    InvariantViolation,
    RunAuditor,
    ValidationReport,
    Violation,
    audit_mux,
)
from repro.workloads.distributions import WEB_SEARCH


def small_scenario(seed=21, n_flows=16):
    return all_to_all_scenario("t-validate", WEB_SEARCH, n_flows=n_flows,
                               fabric=star_fabric(4), seed=seed,
                               event_budget=2_000_000)


# ---------------------------------------------------------------------------
# the auditor in the runner
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("scheme_cls", [Dctcp, Ppt], ids=lambda c: c.name)
def test_validated_run_is_clean_and_bit_identical(scheme_cls):
    bare = run(scheme_cls(), small_scenario())
    validated = run(scheme_cls(), small_scenario(), validate=True)

    report = validated.validation
    assert report is not None
    assert report.ok, report.describe()
    assert report.checks_run > 100

    # The auditor observes without perturbing: identical stats, identical
    # event count, identical per-flow completion times.
    assert bare.validation is None
    assert validated.stats == bare.stats
    assert validated.wall_events == bare.wall_events
    assert ([f.fct for f in validated.flows] == [f.fct for f in bare.flows])


def test_dumbbell_scenario_validates_clean():
    result = run(Dctcp(), dumbbell_scenario("t-dumbbell", n_flows=8),
                 validate=True)
    assert result.validation.ok, result.validation.describe()


def _corrupt_first_mux(topo):
    # Cook the shared-buffer ledger without touching any real packet:
    # exactly what a buggy enqueue path would do.
    topo.network.ports[0].mux.occupancy += 1500
    return None


def test_corrupted_mux_raises_in_strict_mode():
    with pytest.raises(InvariantViolation) as exc_info:
        run(Dctcp(), small_scenario(), validate="strict",
            instruments=_corrupt_first_mux)
    exc = exc_info.value
    assert exc.law.startswith("mux-occupancy")
    assert exc.subject  # names the offending port
    assert "occupancy" in exc.details


def test_corrupted_mux_reported_in_audit_mode():
    result = run(Dctcp(), small_scenario(), validate=True,
                 instruments=_corrupt_first_mux)
    report = result.validation
    assert not report.ok
    assert any(law.startswith("mux-occupancy") for law in report.counts)
    # every kept violation names a law, a subject and a detection time
    for violation in report.violations:
        assert violation.law and violation.subject
        assert violation.sim_time >= 0.0


def test_validate_rejects_bad_argument():
    with pytest.raises(TypeError):
        run(Dctcp(), small_scenario(), validate=42)


def test_auditor_is_single_use():
    auditor = RunAuditor()
    run(Dctcp(), small_scenario(n_flows=4), validate=auditor)
    with pytest.raises(RuntimeError):
        run(Dctcp(), small_scenario(n_flows=4), validate=auditor)


def test_grid_task_carries_validation_report():
    tasks = [GridTask(scheme_factory=Dctcp,
                      scenario_factory=small_scenario,
                      params={"n_flows": 8, "seed": seed},
                      label=f"cell{seed}", validate=True)
             for seed in (21, 22)]
    serial = run_grid(tasks, jobs=1)
    forked = run_grid(tasks, jobs=2)
    for summaries in (serial, forked):
        for summary in summaries:
            assert summary.validation is not None
            assert summary.validation.ok
    # the reports crossed the worker pipe intact
    assert ([s.validation.checks_run for s in forked]
            == [s.validation.checks_run for s in serial])


# ---------------------------------------------------------------------------
# report plumbing
# ---------------------------------------------------------------------------


def _sample_violation(law="mux-occupancy-sum"):
    return Violation(law=law, subject="sw0->h1", sim_time=0.25,
                     message="ledger disagrees", details={"occupancy": 3000})


def test_report_pickle_roundtrip():
    report = ValidationReport()
    report.checks_run = 10
    report.record(_sample_violation())
    clone = pickle.loads(pickle.dumps(report))
    assert clone.violations_seen == 1
    assert clone.counts == {"mux-occupancy-sum": 1}
    assert clone.violations[0].describe() == report.violations[0].describe()


def test_invariant_violation_pickle_roundtrip():
    exc = InvariantViolation(_sample_violation())
    clone = pickle.loads(pickle.dumps(exc))
    assert clone.law == exc.law
    assert clone.violation.details == exc.violation.details


def test_report_combine_and_cap():
    a = ValidationReport(max_kept=3)
    a.checks_run = 5
    for _ in range(2):
        a.record(_sample_violation())
    b = ValidationReport()
    b.checks_run = 7
    b.record(_sample_violation(law="port-serialization"))
    total = ValidationReport.combine([a, None, b])
    assert total.checks_run == 12
    assert total.violations_seen == 3
    assert total.counts == {"mux-occupancy-sum": 2, "port-serialization": 1}
    assert not total.ok


def test_report_caps_kept_violations_but_counts_all():
    report = ValidationReport(max_kept=5)
    for _ in range(20):
        report.record(_sample_violation())
    assert report.violations_seen == 20
    assert len(report.violations) == 5
    assert report.counts["mux-occupancy-sum"] == 20


def test_strict_report_raises_immediately():
    report = ValidationReport(strict=True)
    with pytest.raises(InvariantViolation):
        report.record(_sample_violation())


# ---------------------------------------------------------------------------
# mux property test: conservation after every operation
# ---------------------------------------------------------------------------


def _assert_clean(mux, op_index, op):
    problems = audit_mux(mux)
    assert not problems, (
        f"after op {op_index} ({op}): "
        + "; ".join(f"[{law}] {msg} {details}"
                    for law, msg, details in problems))


_pkt_st = st.tuples(
    st.integers(min_value=HEADER_BYTES, max_value=1500),  # size
    st.integers(min_value=0, max_value=7),                # priority
    st.booleans(),                                        # lcp
    st.booleans(),                                        # unscheduled
)

_op_st = st.one_of(
    st.tuples(st.just("enqueue"), _pkt_st),
    st.tuples(st.just("dequeue"), st.none()),
    st.tuples(st.just("flush"), st.none()),
)


@settings(max_examples=80, deadline=None)
@given(
    ops=st.lists(_op_st, min_size=1, max_size=60),
    buffer_bytes=st.integers(min_value=2_000, max_value=20_000),
    trim=st.booleans(),
    selective=st.booleans(),
    lp_cap=st.booleans(),
    dt=st.booleans(),
)
def test_mux_conservation_holds_after_every_op(ops, buffer_bytes, trim,
                                               selective, lp_cap, dt):
    mux = PriorityMux(
        buffer_bytes,
        [buffer_bytes // 2] * 8,
        trim=trim,
        selective_drop_threshold=buffer_bytes // 2 if selective else None,
        lp_buffer_cap=buffer_bytes // 3 if lp_cap else None,
        dt_alpha=(8, 8, 8, 8, 1, 1, 1, 1) if dt else None,
    )
    if trim:
        mux.trim_threshold_bytes = buffer_bytes // 4
    seq = 0
    for i, (op, arg) in enumerate(ops):
        if op == "enqueue":
            size, priority, lcp, unscheduled = arg
            pkt = Packet(flow_id=1, src=0, dst=1, seq=seq, size=size,
                         kind=DATA, priority=priority)
            pkt.lcp = lcp
            pkt.unscheduled = unscheduled
            seq += 1
            mux.enqueue(pkt)
        elif op == "dequeue":
            mux.dequeue()
        else:
            mux.flush()
        _assert_clean(mux, i, op)
    # and the terminal state drains clean
    mux.flush()
    _assert_clean(mux, len(ops), "final flush")
    assert mux.occupancy == 0


def test_audit_mux_flags_cooked_ledger():
    mux = PriorityMux(10_000)
    pkt = Packet(flow_id=1, src=0, dst=1, seq=0, size=1500, kind=DATA,
                 priority=0)
    assert mux.enqueue(pkt)
    mux.queue_occupancy[0] -= 100  # simulate a lost accounting update
    laws = {law for law, _, _ in audit_mux(mux)}
    assert "mux-queue-occupancy" in laws


def test_audit_mux_flags_cooked_incremental_ledgers():
    """The ISSUE-5 hot-path ledgers (hp_occupancy, nonempty_mask,
    pkt_count) are pure mirrors; audit_mux must flag each one when it
    drifts from the scanned truth."""
    mux = PriorityMux(10_000)
    assert mux.enqueue(Packet(flow_id=1, src=0, dst=1, seq=0, size=1500,
                              kind=DATA, priority=0))
    mux.hp_occupancy += 64
    mux.nonempty_mask |= 1 << 7
    mux.pkt_count += 1
    laws = {law for law, _, _ in audit_mux(mux)}
    assert "mux-hp-occupancy" in laws
    assert "mux-nonempty-mask" in laws
    assert "mux-pkt-count" in laws


def test_cooked_wire_ledger_breaks_fabric_conservation():
    """Claiming a phantom transmission makes the in-propagation residual
    disagree with the wire deques at drain end."""

    def cook_port(topo):
        topo.network.ports[0].pkts_sent += 1
        topo.network.ports[0].bytes_sent += 1500
        return None

    result = run(Dctcp(), small_scenario(n_flows=4), validate=True,
                 instruments=cook_port)
    report = result.validation
    assert not report.ok
    assert "fabric-packet-conservation" in report.counts
    assert "fabric-byte-conservation" in report.counts


def test_cooked_live_counter_detected():
    """The engine's incremental live-event counter is cross-checked
    against a full heap scan at finalize."""

    def cook_live(topo):
        topo.sim._live += 1
        return None

    result = run(Dctcp(), small_scenario(n_flows=4), validate=True,
                 instruments=cook_live)
    report = result.validation
    assert not report.ok
    assert "engine-live-counter" in report.counts


def test_report_combine_many_disjoint_and_overlapping_laws():
    a = ValidationReport()
    a.checks_run = 3
    a.record(_sample_violation())
    b = ValidationReport()
    b.checks_run = 4
    b.record(_sample_violation(law="port-serialization"))
    b.record(_sample_violation())
    c = ValidationReport()
    c.checks_run = 5
    c.record(_sample_violation(law="fabric-offer-conservation"))
    total = ValidationReport.combine([a, b, c])
    assert total.checks_run == 12
    assert total.violations_seen == 4
    # overlapping law keys add; disjoint ones survive untouched
    assert total.counts == {"mux-occupancy-sum": 2,
                            "port-serialization": 1,
                            "fabric-offer-conservation": 1}
    assert not total.ok
    # order-independent
    flipped = ValidationReport.combine([c, a, b])
    assert flipped.counts == total.counts
    assert flipped.checks_run == total.checks_run
    assert flipped.violations_seen == total.violations_seen
