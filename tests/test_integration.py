"""Cross-module integration tests: every scheme on a loaded fabric.

These are the repository's safety net: for each transport, a small but
genuinely contended scenario must complete every flow, conserve packets,
and keep the key invariants (priorities on the wire, completion at the
receiver, determinism).
"""

import pytest

from repro.core.ppt import Ppt
from repro.core.ppt_swift import PptSwift
from repro.experiments.runner import run
from repro.experiments.scenarios import all_to_all_scenario, sim_fabric
from repro.transport.aeolus import Aeolus
from repro.transport.d2tcp import D2tcp
from repro.transport.dcqcn import Dcqcn
from repro.transport.dctcp import Dctcp
from repro.transport.expresspass import ExpressPass
from repro.transport.halfback import Halfback
from repro.transport.homa import Homa
from repro.transport.hpcc import Hpcc
from repro.transport.ndp import Ndp
from repro.transport.pias import Pias
from repro.transport.rc3 import Rc3
from repro.transport.swift import Swift
from repro.transport.tcp10 import Tcp10
from repro.transport.timely import Timely
from repro.core.ppt_hpcc import PptHpcc
from repro.workloads.distributions import WEB_SEARCH

ALL_SCHEMES = [
    Dctcp(), D2tcp(), Dcqcn(), Pias(), Rc3(), Swift(), Timely(), Hpcc(),
    Tcp10(), Halfback(), ExpressPass(),
    Homa(rtt_bytes=45_000), Aeolus(rtt_bytes=45_000), Ndp(),
    Ppt(), PptSwift(), PptHpcc(),
]


def loaded_scenario(seed=13):
    return all_to_all_scenario(
        "integration", WEB_SEARCH, load=0.6, n_flows=40, size_cap=600_000,
        seed=seed, fabric=sim_fabric(n_leaf=2, n_spine=2, hosts_per_leaf=4),
        max_time=20.0)


@pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
def test_scheme_completes_loaded_run(scheme):
    result = run(scheme, loaded_scenario())
    assert result.completion_rate == 1.0, (
        f"{scheme.name}: {result.completed}/{len(result.flows)}")
    assert result.stats.overall_avg > 0


@pytest.mark.parametrize("scheme", [Dctcp(), Ppt(), Homa(rtt_bytes=45_000)],
                         ids=lambda s: s.name)
def test_scheme_deterministic(scheme):
    r1 = run(type(scheme)() if scheme.name != "homa" else Homa(rtt_bytes=45_000),
             loaded_scenario())
    r2 = run(type(scheme)() if scheme.name != "homa" else Homa(rtt_bytes=45_000),
             loaded_scenario())
    assert [f.fct for f in r1.flows] == [f.fct for f in r2.flows]


def test_ppt_priorities_observed_on_fabric():
    """PPT traffic uses both halves of the priority space."""
    result = run(Ppt(), loaded_scenario())
    priorities = set()
    for host in result.topology.network.hosts.values():
        for endpoint in host.endpoints.values():
            if hasattr(endpoint, "tagger"):
                n = endpoint.n_packets
                priorities.add(endpoint.priority_for(0))
                priorities.add(endpoint.priority_for(n - 1))
                if endpoint.lcp.lp_pkts_sent:
                    priorities.add(
                        endpoint.tagger.lcp_priority(0))
    assert priorities & {0, 1, 2, 3}
    assert priorities & {4, 5, 6, 7}


def test_ppt_beats_dctcp_on_small_flows_under_load():
    """The headline behaviour at test scale: PPT's small flows are
    (much) faster than DCTCP's under identical load."""
    dctcp = run(Dctcp(), loaded_scenario())
    ppt = run(Ppt(), loaded_scenario())
    assert ppt.stats.small_avg < dctcp.stats.small_avg
    assert ppt.stats.overall_avg < dctcp.stats.overall_avg * 1.05


def test_rc3_hurts_small_flow_tail_relative_to_ppt():
    """The paper's RC3 critique: aggressive LP filling damages small
    flows; PPT's EWD + scheduling protect them."""
    rc3 = run(Rc3(), loaded_scenario())
    ppt = run(Ppt(), loaded_scenario())
    assert ppt.stats.small_p99 <= rc3.stats.small_p99


def test_packet_conservation_dctcp():
    """Transmitted = delivered + dropped-in-fabric (+ still queued: none
    after completion)."""
    result = run(Dctcp(), loaded_scenario())
    net = result.topology.network
    sent = received = 0
    for host in net.hosts.values():
        for endpoint in host.endpoints.values():
            if hasattr(endpoint, "pkts_transmitted"):
                sent += endpoint.pkts_transmitted
            if hasattr(endpoint, "data_pkts_received"):
                received += endpoint.data_pkts_received
    dropped = net.total_drops()
    assert sent == received + dropped
