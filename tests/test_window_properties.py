"""Property-based tests for the reliable window machinery.

These drive the sender with adversarial ACK orderings and lossy fabrics
and check the invariants that every transport in the repository depends
on: no phantom deliveries, monotone cumulative ack, completion exactly
once, and loss-recovery convergence.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_ctx, make_star
from repro.sim.network import QueueConfig
from repro.sim.packet import ACK, Packet
from repro.sim.topology import star
from repro.transport.base import Flow
from repro.transport.dctcp import Dctcp
from repro.transport.window import WindowReceiver, WindowSender
from repro.units import gbps, us


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=39), min_size=1,
                max_size=120))
def test_receiver_cum_is_monotone_and_exact(seqs):
    """Whatever the arrival order/duplication, cum equals the smallest
    missing index and delivered is exactly the set of arrived seqs."""
    topo = make_star()
    ctx = make_ctx(topo)
    flow = Flow(0, 0, 1, 40 * 1436, 0.0)
    receiver = WindowReceiver(flow, ctx)
    ctx.network.send_control = lambda pkt: None  # swallow ACKs
    cums = []
    for seq in seqs:
        receiver.on_packet(Packet(0, 0, 1, seq, 1500))
        cums.append(receiver.cum)
    assert receiver.delivered == set(seqs)
    expected_cum = 0
    while expected_cum in receiver.delivered:
        expected_cum += 1
    assert receiver.cum == expected_cum
    assert cums == sorted(cums)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=29), min_size=1,
                max_size=80))
def test_sender_never_double_counts_acks(ack_seqs):
    """Replayed/duplicated ACKs never inflate the delivered set or crash
    the sender."""
    topo = make_star()
    ctx = make_ctx(topo)
    flow = Flow(0, 0, 1, 30 * 1436, 0.0)
    sender = WindowSender(flow, ctx)
    sender.start()
    for seq in ack_seqs:
        ack = Packet(0, 1, 0, seq, 64, kind=ACK)
        ack.ack_seq = 0
        ack.sent_at = 0.0
        sender.on_packet(ack)
    assert sender.delivered <= set(range(30))
    assert len(sender.delivered) <= 30


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.floats(min_value=0.02, max_value=0.25))
def test_flow_completes_under_random_loss(seed, drop_rate):
    """A flow completes despite i.i.d. packet drops at the bottleneck
    (SACK recovery + RTO converge)."""
    topo = make_star(3)
    ctx = make_ctx(topo, min_rto=0.5e-3)
    flow = Flow(0, 0, 2, 120_000, 0.0)
    scheme = Dctcp()
    scheme.start_flow(flow, ctx)

    rng = random.Random(seed)
    downlink = topo.network.port_to_host(2)
    mux = downlink.mux
    original_enqueue = mux.__class__.enqueue

    class LossyMux:
        pass

    # wrap enqueue via the drop hook mechanism: emulate random loss by
    # shrinking the buffer for randomly chosen instants is fiddly;
    # instead, drop at the host dispatch layer:
    receiver_host = topo.network.hosts[2]
    original_receive = receiver_host.__class__.receive

    def lossy_receive(self, pkt):
        if pkt.kind == 0 and rng.random() < drop_rate:  # DATA
            return  # silently dropped on the last hop
        original_receive(self, pkt)

    receiver_host.__class__.receive = lossy_receive
    try:
        topo.sim.run(until=2.0)
    finally:
        receiver_host.__class__.receive = original_receive
    assert flow.completed


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=1, max_value=500_000))
def test_packet_count_matches_size(size):
    topo = make_star()
    ctx = make_ctx(topo)
    flow = Flow(0, 0, 1, size, 0.0)
    n = flow.n_packets(ctx.config.mss)
    payload = ctx.config.payload_per_packet()
    assert (n - 1) * payload < size <= n * payload or size <= payload


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=1, max_value=200_000))
def test_total_payload_conserved(size):
    """Sum of packet payloads equals the flow size (last packet short)."""
    topo = make_star()
    ctx = make_ctx(topo)
    flow = Flow(0, 0, 1, size, 0.0)
    sender = WindowSender(flow, ctx)
    payload = ctx.config.payload_per_packet()
    header = ctx.config.mss - payload
    total = 0
    for seq in range(sender.n_packets):
        pkt = sender.build_packet(seq)
        total += pkt.size - header
    assert total >= size  # padding only on the (tiny) last packet
    assert total - size < payload
