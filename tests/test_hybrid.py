"""Hybrid flow-level fast path (:mod:`repro.sim.hybrid`).

What is on trial:

* **Waterfilling** — unit cases plus a hypothesis property: rates are
  feasible (no port over capacity) and max-min fair (each flow's rate
  is maximal among the flows crossing its saturated bottleneck).
* **The off-switch contract** — ``hybrid=None``, a disabled config, and
  a config whose threshold refuses every flow are all bit-identical to
  the plain packet tree.
* **The equivalence gate** — hybrid FCT distributions vs the packet
  oracle across {dctcp, ppt, homa} x {star, leaf-spine}, gated on
  per-bucket mean/p99 relative difference and KS distance at the
  tolerances documented in ``docs/hybrid.md``.
* **Demotion** — an abstract flow whose path a packet flow joins is
  handed back to the packet model, and the original flow object ends up
  with the true finish time.
* **Checkpoint/resume** — a snapshot taken mid-epoch (abstract flows in
  flight) resumes bit-identically.
* **The perf ratchet** — clear messages for malformed/missing bench
  rows, and the hybrid row gating on flow-hours per wall-second.
"""

import importlib.util
import json
import shutil
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import SCHEME_FACTORIES
from repro.experiments.runner import Scenario, run
from repro.experiments.scenarios import (
    all_to_all_scenario,
    sim_config,
    sim_fabric,
    star_fabric,
)
from repro.resilience import CHECKPOINT_VERSION, load_checkpoint
from repro.sim.hybrid import HybridConfig, HybridController, waterfill
from repro.transport.base import Flow
from repro.transport.dctcp import Dctcp
from repro.units import gbps
from repro.validate.equivalence import (
    compare_fct_distributions,
    ks_distance,
)
from repro.workloads.distributions import WEB_SEARCH

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


# -- waterfilling ----------------------------------------------------------


def test_waterfill_single_link_equal_shares():
    rates, bottlenecks = waterfill([[0], [0], [0]], [30.0])
    assert rates == [10.0, 10.0, 10.0]
    assert bottlenecks == [0, 0, 0]


def test_waterfill_distinct_bottlenecks():
    # flow 0 crosses the thin link (cap 2); flows 1-2 share the fat one.
    # Classic max-min: flow 0 pinned at 2, the others split what their
    # own bottleneck leaves them.
    rates, bottlenecks = waterfill([[0, 1], [1], [1]], [2.0, 12.0])
    assert rates[0] == pytest.approx(2.0)
    assert rates[1] == pytest.approx(5.0)
    assert rates[2] == pytest.approx(5.0)
    assert bottlenecks[0] == 0
    assert bottlenecks[1] == bottlenecks[2] == 1


def test_waterfill_empty_path_stays_zero():
    rates, bottlenecks = waterfill([[], [0]], [8.0])
    assert rates == [0.0, 8.0]
    assert bottlenecks == [None, 0]


def test_waterfill_zero_capacity():
    rates, _ = waterfill([[0], [0, 1]], [0.0, 5.0])
    assert rates[0] == 0.0
    assert rates[1] == 0.0  # pinned by the dead port


@st.composite
def _waterfill_case(draw):
    n_ports = draw(st.integers(min_value=1, max_value=5))
    capacities = draw(st.lists(
        st.floats(min_value=0.1, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
        min_size=n_ports, max_size=n_ports))
    n_flows = draw(st.integers(min_value=1, max_value=6))
    paths = draw(st.lists(
        st.lists(st.integers(min_value=0, max_value=n_ports - 1),
                 unique=True, min_size=1, max_size=n_ports),
        min_size=n_flows, max_size=n_flows))
    return paths, capacities


@settings(max_examples=200, deadline=None)
@given(case=_waterfill_case())
def test_waterfill_feasible_and_max_min_fair(case):
    paths, capacities = case
    rates, bottlenecks = waterfill(paths, capacities)

    # feasibility: no port is over capacity
    for j, cap in enumerate(capacities):
        total = sum(r for r, p in zip(rates, paths) if j in p)
        assert total <= cap * (1.0 + 1e-6) + 1e-9, (
            f"port {j} oversubscribed: {total} > {cap}")

    # max-min certificate: every flow's bottleneck is saturated, and no
    # flow crossing that bottleneck does better than the frozen flow
    for i, (rate, path) in enumerate(zip(rates, paths)):
        bn = bottlenecks[i]
        assert bn is not None and bn in path
        crossing = [rates[k] for k, p in enumerate(paths) if bn in p]
        assert sum(crossing) >= capacities[bn] * (1.0 - 1e-6) - 1e-9, (
            f"flow {i}'s bottleneck {bn} is not saturated")
        assert rate >= max(crossing) - 1e-6 * (max(crossing) + 1.0), (
            f"flow {i} rate {rate} is not maximal at its bottleneck "
            f"(max crossing rate {max(crossing)})")


# -- scenarios -------------------------------------------------------------


FABRICS = {
    "star": lambda: star_fabric(6),
    "leaf-spine": lambda: sim_fabric(n_leaf=2, n_spine=2, hosts_per_leaf=4),
}


def mixed_scenario(fabric_key, hybrid, *, load=0.25, n_flows=60, seed=42):
    return all_to_all_scenario(
        f"hybrid-eq-{fabric_key}", WEB_SEARCH, load=load, n_flows=n_flows,
        fabric=FABRICS[fabric_key](), seed=seed, hybrid=hybrid)


def bulk_scenario(hybrid, *, n_flows=24, size=4_000_000):
    """All-bulk traffic on a slow star: every flow clears the default
    size threshold and, in hybrid mode, the whole run is analytic."""
    fabric = star_fabric(6, rate=gbps(0.1))

    def build_flows(topo):
        hosts = topo.host_ids()
        n = len(hosts)
        return [Flow(flow_id=i, src=hosts[i % n],
                     dst=hosts[(i + 1 + i // n) % n],
                     size=size, start_time=0.001 * i)
                for i in range(n_flows)]

    return Scenario("hybrid-bulk", fabric, build_flows,
                    config=sim_config(min_rto=0.05), max_time=120.0,
                    hybrid=hybrid)


def fct_fingerprint(result):
    # repr() captures every bit of the float — equality is bit-identity
    return [(f.flow_id, f.completed, repr(f.fct)) for f in result.flows]


# -- off-switch bit-identity ----------------------------------------------


def test_hybrid_disabled_is_bit_identical():
    plain = run(Dctcp(), mixed_scenario("leaf-spine", None))
    off = run(Dctcp(), mixed_scenario("leaf-spine",
                                      HybridConfig(enabled=False)))
    assert fct_fingerprint(off) == fct_fingerprint(plain)
    assert off.wall_events == plain.wall_events
    assert off.ctx.extra.get("hybrid") is None


def test_hybrid_all_refused_is_bit_identical():
    """A threshold above every flow size admits nothing to the abstract
    set; the controller must then be pure bookkeeping — same events,
    same FCT bits as the plain tree."""
    plain = run(Dctcp(), mixed_scenario("star", None))
    refused = run(Dctcp(), mixed_scenario(
        "star", HybridConfig(size_threshold=10**12)))
    assert fct_fingerprint(refused) == fct_fingerprint(plain)
    assert refused.wall_events == plain.wall_events
    ctl = refused.ctx.extra["hybrid"]
    assert ctl.flows_abstracted == 0
    assert ctl.epochs == 0


# -- the equivalence gate --------------------------------------------------

# The gated tolerance (see docs/hybrid.md): the abstraction deliberately
# skips slow-start and per-packet queueing noise, so bucket summaries
# may drift tens of percent on the microsecond-scale small bucket while
# the distribution as a whole (KS) stays close.
EQ_MEAN_TOL = 0.45
EQ_P99_TOL = 0.60
EQ_KS_BOUND = 0.20


@pytest.mark.parametrize("scheme", ["dctcp", "ppt", "homa"])
@pytest.mark.parametrize("fabric_key", sorted(FABRICS))
def test_fct_equivalence_gate(scheme, fabric_key):
    factory = SCHEME_FACTORIES[scheme]
    oracle = run(factory(), mixed_scenario(fabric_key, None))
    hybrid = run(factory(), mixed_scenario(
        fabric_key, HybridConfig(size_threshold=200_000)))
    assert oracle.completed == len(oracle.flows)
    assert hybrid.completed == len(hybrid.flows)
    report = compare_fct_distributions(
        oracle.flows, hybrid.flows,
        mean_tol=EQ_MEAN_TOL, p99_tol=EQ_P99_TOL, ks_bound=EQ_KS_BOUND)
    assert report.ok, report.describe()


def test_abstract_only_accuracy():
    """With every flow abstract the analytic rates ARE the model; the
    remaining error against the packet oracle is slow-start/AIMD ramp,
    which is bounded much tighter than the mixed-traffic gate."""
    oracle = run(Dctcp(), bulk_scenario(None))
    hybrid = run(Dctcp(), bulk_scenario(HybridConfig()))
    assert oracle.completed == len(oracle.flows)
    assert hybrid.completed == len(hybrid.flows)
    ctl = hybrid.ctx.extra["hybrid"]
    assert ctl.flows_abstracted == len(hybrid.flows)
    assert ctl.flows_demoted == 0
    report = compare_fct_distributions(
        oracle.flows, hybrid.flows,
        mean_tol=0.20, p99_tol=0.30, ks_bound=1.0)
    assert report.ok, report.describe()
    # and it must actually be cheap: the analytic run does the same
    # simulated work in a tiny fraction of the events
    assert hybrid.wall_events * 100 < oracle.wall_events


def test_ks_distance_basics():
    assert ks_distance([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0
    assert ks_distance([0.0, 0.1], [10.0, 11.0]) == 1.0
    assert ks_distance([], [1.0]) == 1.0
    assert 0.0 < ks_distance([1.0, 2.0, 3.0, 4.0], [1.0, 2.0, 3.5, 4.0]) < 1.0


# -- demotion --------------------------------------------------------------


def demotion_scenario(hybrid):
    """One bulk flow goes abstract at t=0; a burst of small flows from
    the same sender joins at t=10ms and must force it back to packets."""
    fabric = star_fabric(4, rate=gbps(0.1))

    def build_flows(topo):
        hosts = topo.host_ids()
        flows = [Flow(flow_id=0, src=hosts[0], dst=hosts[1],
                      size=5_000_000, start_time=0.0)]
        for i in range(1, 9):
            flows.append(Flow(flow_id=i, src=hosts[0], dst=hosts[2],
                              size=20_000, start_time=0.01 + 0.001 * i))
        return flows

    return Scenario("hybrid-demote", fabric, build_flows,
                    config=sim_config(min_rto=0.05), max_time=60.0,
                    hybrid=hybrid)


def test_demotion_on_shared_port():
    result = run(Dctcp(), demotion_scenario(HybridConfig(
        size_threshold=1_000_000)), validate=True)
    assert result.completed == len(result.flows)
    ctl = result.ctx.extra["hybrid"]
    assert ctl.flows_abstracted == 1
    assert ctl.flows_demoted == 1
    # the ORIGINAL flow object carries the tail's true finish time
    bulk = result.flows[0]
    assert bulk.completed and bulk.fct is not None and bulk.fct > 0.0
    # demotion banked its progress into the conservation ledger, which
    # the auditor checked every slice
    assert result.validation is not None and result.validation.ok
    assert ctl.demoted_wire_bytes > 0.0


def test_hybrid_telemetry_counters():
    result = run(Dctcp(), demotion_scenario(HybridConfig(
        size_threshold=1_000_000)), observe=True)
    summary = result.telemetry.summary()
    assert summary.hybrid_epochs > 0
    assert summary.hybrid_demotions == 1
    assert "hybrid epochs" in summary.describe()


def test_hybrid_audited_run_is_bit_identical():
    bare = run(Dctcp(), bulk_scenario(HybridConfig()))
    audited = run(Dctcp(), bulk_scenario(HybridConfig()), validate=True)
    assert fct_fingerprint(audited) == fct_fingerprint(bare)
    assert audited.wall_events == bare.wall_events
    assert audited.validation is not None and audited.validation.ok


# -- checkpoint/resume -----------------------------------------------------


def test_checkpoint_version_bumped_for_hybrid():
    # RunState grew the ``hybrid`` field; resuming a v2 snapshot into
    # this build would silently drop the abstract set
    assert CHECKPOINT_VERSION == 3


def test_hybrid_resume_mid_epoch_bit_identical(tmp_path, monkeypatch):
    import repro.experiments.runner as runner_mod

    path = str(tmp_path / "run.ckpt")
    first = str(tmp_path / "first.ckpt")
    real_save = runner_mod.save_checkpoint
    kept = []

    def keep_first(state, p):
        header = real_save(state, p)
        if not kept:
            shutil.copy(p, first)
            kept.append(header)
        return header

    straight = run(Dctcp(), bulk_scenario(HybridConfig()))
    monkeypatch.setattr(runner_mod, "save_checkpoint", keep_first)
    checked = run(Dctcp(), bulk_scenario(HybridConfig()),
                  checkpoint_every=0.0, checkpoint_path=path)
    assert fct_fingerprint(checked) == fct_fingerprint(straight)
    assert checked.wall_events == straight.wall_events
    assert kept, "bulk run spans several slices; a snapshot must land"

    state = load_checkpoint(first)
    assert isinstance(state.hybrid, HybridController)
    # mid-epoch: abstract flows in flight, the epoch event armed
    assert state.hybrid.abstract
    assert state.hybrid.epoch_event.armed
    resumed = run(resume=state)
    assert fct_fingerprint(resumed) == fct_fingerprint(straight)
    assert resumed.wall_events == straight.wall_events


# -- the perf ratchet ------------------------------------------------------


def _load_ratchet():
    spec = importlib.util.spec_from_file_location(
        "perf_ratchet", BENCHMARKS_DIR / "perf_ratchet.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_ratchet_gates_hybrid_on_flow_hours():
    ratchet = _load_ratchet()
    assert "hybrid-soak" in ratchet.DEFAULT_BENCHES
    assert ratchet.GATED_METRICS["hybrid-soak"] == "flow_hours_per_sec"


def test_ratchet_missing_row_message(tmp_path):
    ratchet = _load_ratchet()
    good = tmp_path / "good.json"
    good.write_text(json.dumps({"rows": [
        {"bench": "dctcp-incast", "events_per_sec": 1000.0}]}))
    ok, message = ratchet.check(str(good), str(good), bench="hybrid-soak")
    assert not ok
    assert "has no 'hybrid-soak' row" in message
    assert "dctcp-incast" in message  # tells you what IS there


def test_ratchet_malformed_payload_message(tmp_path):
    ratchet = _load_ratchet()
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"benches": []}))
    with pytest.raises(ratchet.RatchetError, match="'rows'"):
        ratchet.rows_by_bench(str(bad))
    bad.write_text("not json at all")
    with pytest.raises(ratchet.RatchetError, match="not valid JSON"):
        ratchet.rows_by_bench(str(bad))
    bad.write_text(json.dumps({"rows": [{"events_per_sec": 1.0}]}))
    with pytest.raises(ratchet.RatchetError, match="no 'bench' name"):
        ratchet.rows_by_bench(str(bad))


def test_ratchet_missing_metric_message(tmp_path):
    ratchet = _load_ratchet()
    base = tmp_path / "base.json"
    base.write_text(json.dumps({"rows": [
        {"bench": "hybrid-soak", "events_per_sec": 5.0}]}))
    with pytest.raises(ratchet.RatchetError,
                       match="no 'flow_hours_per_sec' metric"):
        ratchet.check(str(base), str(base), bench="hybrid-soak")


def test_ratchet_passes_against_itself(tmp_path):
    ratchet = _load_ratchet()
    payload = tmp_path / "rows.json"
    payload.write_text(json.dumps({"rows": [
        {"bench": "dctcp-incast", "events_per_sec": 1000.0},
        {"bench": "leaf-spine", "events_per_sec": 900.0},
        {"bench": "hybrid-soak", "events_per_sec": 10.0,
         "flow_hours_per_sec": 3.0},
        {"bench": "sharded-leaf-spine", "events_per_sec": 800.0},
    ]}))
    assert ratchet.main(["--baseline", str(payload),
                         "--fresh", str(payload)]) == 0
