"""Unit + property tests for mirror-symmetric packet tagging (§4.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tagging import HCP_LOWEST, LCP_OFFSET, MirrorTagger


def test_identified_large_pinned_to_lowest():
    tagger = MirrorTagger(identified_large=True)
    assert tagger.hcp_priority(0) == 3
    assert tagger.hcp_priority(10**9) == 3
    assert tagger.lcp_priority(0) == 7


def test_unidentified_starts_at_top():
    tagger = MirrorTagger(identified_large=False)
    assert tagger.hcp_priority(0) == 0
    assert tagger.lcp_priority(0) == 4


def test_demotion_through_levels():
    tagger = MirrorTagger(False, demotion_thresholds=(100, 200, 300))
    assert tagger.hcp_priority(99) == 0
    assert tagger.hcp_priority(100) == 1
    assert tagger.hcp_priority(200) == 2
    assert tagger.hcp_priority(300) == 3
    assert tagger.hcp_priority(10**9) == 3


def test_thresholds_must_be_sorted():
    with pytest.raises(ValueError):
        MirrorTagger(False, demotion_thresholds=(300, 200, 100))


def test_exactly_three_thresholds_required():
    with pytest.raises(ValueError):
        MirrorTagger(False, demotion_thresholds=(100, 200))


@settings(max_examples=100, deadline=None)
@given(st.booleans(), st.integers(min_value=0, max_value=10**12))
def test_mirror_property(identified, bytes_sent):
    """LCP priority is always exactly HCP priority + 4 (Fig. 6)."""
    tagger = MirrorTagger(identified)
    hcp = tagger.hcp_priority(bytes_sent)
    assert tagger.lcp_priority(bytes_sent) == hcp + LCP_OFFSET
    assert 0 <= hcp <= HCP_LOWEST


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=10**10), min_size=2,
                max_size=20))
def test_priority_monotone_in_bytes_sent(values):
    """More bytes sent never raises a flow's priority back up."""
    tagger = MirrorTagger(False)
    values.sort()
    priorities = [tagger.hcp_priority(v) for v in values]
    assert priorities == sorted(priorities)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=10**10))
def test_lcp_always_below_every_hcp(bytes_sent):
    """Any LCP packet is strictly lower priority than any HCP packet —
    the §4.3 HCP-protection invariant."""
    for identified in (False, True):
        tagger = MirrorTagger(identified)
        assert tagger.lcp_priority(bytes_sent) > HCP_LOWEST
