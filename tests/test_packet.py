"""Unit tests for the packet model."""

from repro.sim.packet import (
    ACK,
    ACK_BYTES,
    DATA,
    HEADER,
    HEADER_BYTES,
    Packet,
    make_ack,
)


def test_packet_defaults():
    pkt = Packet(flow_id=7, src=1, dst=2, seq=3, size=1500)
    assert pkt.kind == DATA
    assert pkt.priority == 0
    assert pkt.ecn_capable
    assert not pkt.ecn_ce
    assert not pkt.lcp
    assert not pkt.unscheduled
    assert not pkt.retransmit
    assert pkt.sack is None
    assert pkt.int_records is None


def test_trim_converts_to_header():
    pkt = Packet(1, 0, 1, 5, 1500, priority=6)
    pkt.trim()
    assert pkt.kind == HEADER
    assert pkt.size == HEADER_BYTES
    assert pkt.priority == 0
    assert pkt.seq == 5  # identity preserved for retransmission request


def test_make_ack_reverses_direction():
    data = Packet(9, src=3, dst=8, seq=4, size=1500)
    data.sent_at = 1.5e-3
    ack = make_ack(data, ack_seq=2)
    assert ack.kind == ACK
    assert ack.src == 8 and ack.dst == 3
    assert ack.seq == 4
    assert ack.ack_seq == 2
    assert ack.size == ACK_BYTES
    assert ack.sent_at == 1.5e-3


def test_make_ack_echoes_ce_and_lcp():
    data = Packet(9, 0, 1, 0, 1500)
    data.ecn_ce = True
    data.lcp = True
    ack = make_ack(data, ack_seq=0)
    assert ack.ecn_ce
    assert ack.lcp


def test_make_ack_priority_override():
    data = Packet(9, 0, 1, 0, 1500, priority=2)
    assert make_ack(data, 0).priority == 2
    assert make_ack(data, 0, priority=7).priority == 7


def test_make_ack_carries_int_records():
    data = Packet(9, 0, 1, 0, 1500)
    data.int_records = [(100, 200, 0.1, 40e9)]
    ack = make_ack(data, 0)
    assert ack.int_records == [(100, 200, 0.1, 40e9)]


def test_repr_smoke():
    pkt = Packet(1, 0, 1, 0, 1500)
    pkt.ecn_ce = True
    pkt.lcp = True
    text = repr(pkt)
    assert "DATA" in text and "CE" in text and "lcp" in text
