"""Tests for the transport framework primitives (Flow, config, context)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_ctx, make_star
from repro.sim.packet import HEADER_BYTES
from repro.transport.base import Flow, Scheme, TransportConfig, TransportContext


def test_flow_fct_none_until_finished():
    flow = Flow(0, 0, 1, 1000, start_time=1.0)
    assert flow.fct is None
    assert not flow.completed
    flow.finish_time = 1.5
    assert flow.completed
    assert flow.fct == pytest.approx(0.5)


def test_flow_deadline_defaults_none():
    assert Flow(0, 0, 1, 1000, 0.0).deadline is None
    assert Flow(0, 0, 1, 1000, 0.0, deadline=0.1).deadline == 0.1


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=10**8),
       st.integers(min_value=500, max_value=9000))
def test_n_packets_covers_size(size, mss):
    flow = Flow(0, 0, 1, size, 0.0)
    n = flow.n_packets(mss)
    payload = mss - HEADER_BYTES
    assert n * payload >= size
    assert (n - 1) * payload < size or n == 1


def test_config_payload_per_packet():
    cfg = TransportConfig(mss=1500)
    assert cfg.payload_per_packet() == 1500 - HEADER_BYTES


def test_context_completion_callback_and_record():
    topo = make_star()
    seen = []
    ctx = TransportContext(topo.sim, topo.network, TransportConfig(),
                           on_complete=seen.append)
    flow = Flow(0, 0, 1, 1000, 0.0)
    topo.sim.now = 0.25
    ctx.on_complete(flow)
    assert flow.finish_time == 0.25
    assert ctx.completed == [flow]
    assert seen == [flow]


def test_context_bdp_packets_scales_with_rtt_and_rate():
    topo = make_star()
    ctx = make_ctx(topo)
    flow = Flow(0, 0, 1, 1000, 0.0)
    bdp = ctx.bdp_packets(flow)
    expected = int(topo.edge_rate * ctx.base_rtt(flow) / 8.0 // 1500)
    assert bdp == max(1, expected)


def test_scheme_base_is_abstract():
    with pytest.raises(NotImplementedError):
        Scheme().start_flow(Flow(0, 0, 1, 1, 0.0), None)


def test_scheme_configure_network_default_noop():
    topo = make_star()
    Scheme().configure_network(topo.network)  # must not raise
