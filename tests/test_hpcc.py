"""Tests for the HPCC INT-driven transport."""

import pytest

from conftest import make_ctx, make_star, run_single_flow
from repro.transport.base import Flow
from repro.transport.hpcc import Hpcc, HpccSender


def make_sender(**cfg):
    topo = make_star()
    ctx = make_ctx(topo, **cfg)
    return HpccSender(Flow(0, 0, 1, 1_000_000, 0.0), ctx), topo


def test_starts_at_bdp():
    sender, topo = make_sender()
    bdp = sender.ctx.bdp_packets(sender.flow)
    assert sender.cwnd == pytest.approx(float(bdp))


def test_data_packets_carry_int():
    sender, _ = make_sender()
    pkt = sender.build_packet(0)
    assert pkt.int_records == []


def test_switches_stamp_int():
    flow, ctx, topo = run_single_flow(Hpcc(), 10_000)
    # after the run, the sender saw INT from the single switch hop
    sender = topo.network.hosts[0].endpoints[0]
    assert sender._prev  # at least one hop's history retained


def test_utilisation_from_two_samples():
    sender, topo = make_sender()
    rate = 40e9
    # hop 0: 12KB queued, 100KB sent at t=0 then 150KB at t=10us
    first = sender._utilisation([(12_000, 100_000, 0.0, rate)])
    assert first is None  # no previous sample yet
    u = sender._utilisation([(12_000, 150_000, 10e-6, rate)])
    # txRate = 50KB*8/10us = 40G -> rate term = 1.0; queue term > 0
    assert u is not None and u > 1.0


def test_window_shrinks_when_overutilised():
    sender, _ = make_sender()
    sender.w_c = sender.cwnd = 50.0
    rate = 40e9
    sender._pending_int = None
    sender._prev = {0: (0, 0.0)}
    # 100% utilisation + big queue -> strong decrease
    sender._pending_int = [(100_000, 50_000, 10e-6, rate)]
    sender.cc_on_ack(False, 1e-5)
    assert sender.cwnd < 50.0


def test_window_probes_when_underutilised():
    sender, _ = make_sender()
    sender.w_c = sender.cwnd = 10.0
    rate = 40e9
    sender._prev = {0: (0, 0.0)}
    sender._pending_int = [(0, 1_000, 10e-6, rate)]  # nearly idle
    sender.cc_on_ack(False, 1e-5)
    assert sender.cwnd > 10.0


def test_not_ecn_capable():
    sender, _ = make_sender()
    assert not sender.ecn_capable()


def test_end_to_end_completion():
    flow, ctx, _ = run_single_flow(Hpcc(), 2_000_000, until=5.0)
    assert flow.completed


def test_two_flows_converge_and_complete():
    topo = make_star(3)
    ctx = make_ctx(topo)
    scheme = Hpcc()
    flows = [Flow(0, 0, 2, 500_000, 0.0), Flow(1, 1, 2, 500_000, 0.0)]
    for f in flows:
        scheme.start_flow(f, ctx)
    topo.sim.run(until=5.0)
    assert all(f.completed for f in flows)


# ---------------------------------------------------------------------------
# INT-on-ACK regression: the ACK must carry a *snapshot* of the forward
# path's INT, and reverse-path switches must not stamp it
# ---------------------------------------------------------------------------


def test_make_ack_snapshots_int_records():
    from repro.sim.packet import DATA, Packet, make_ack

    data = Packet(flow_id=3, src=0, dst=1, seq=5, size=1500, kind=DATA)
    data.int_records = [(1000, 50_000, 1e-5, 40e9)]
    ack = make_ack(data, ack_seq=6)
    assert ack.int_records == data.int_records
    # aliasing regression: growing the data packet's record list (as a
    # later hop would) must not leak into the already-built ACK
    data.int_records.append((2000, 60_000, 2e-5, 40e9))
    assert len(ack.int_records) == 1


def test_dumbbell_ack_carries_exactly_forward_path_int():
    from conftest import quick_qcfg
    from repro.sim.packet import ACK
    from repro.sim.topology import dumbbell
    from repro.units import gbps, us

    topo = dumbbell(rate=gbps(10), prop_delay=us(5), qcfg=quick_qcfg())
    scheme = Hpcc()
    scheme.configure_network(topo.network)
    ctx = make_ctx(topo)
    flow = Flow(0, 0, 1, 100_000, 0.0)
    scheme.start_flow(flow, ctx)
    sender = topo.network.hosts[0].endpoints[0]

    captured = []
    original = sender.on_packet

    def spy(pkt):
        if pkt.kind == ACK and pkt.int_records is not None:
            captured.append(len(pkt.int_records))
        original(pkt)

    sender.on_packet = spy
    topo.sim.run(until=2.0)

    assert flow.completed
    assert captured
    # forward path host0 -> sw0 -> sw1 -> host1 crosses exactly two
    # switches; a reverse-path stamp (the old bug) would make this 4
    assert set(captured) == {2}
