"""Tests for the D2TCP and DCQCN baselines (appendix C citations)."""

import pytest

from conftest import make_ctx, make_star, run_single_flow
from repro.transport.base import Flow
from repro.transport.d2tcp import D_MAX, D_MIN, D2tcp, D2tcpSender
from repro.transport.dcqcn import Dcqcn, DcqcnSender


# -- D2TCP --------------------------------------------------------------------


def test_d2tcp_completes():
    flow, ctx, _ = run_single_flow(D2tcp(), 500_000, until=2.0)
    assert flow.completed


def test_no_deadline_behaves_like_dctcp():
    topo = make_star()
    ctx = make_ctx(topo)
    sender = D2tcpSender(Flow(0, 0, 1, 1_000_000, 0.0), ctx)
    assert sender.deadline_factor() == 1.0


def test_far_deadline_backs_off_more():
    topo = make_star()
    ctx = make_ctx(topo)
    flow = Flow(0, 0, 1, 100_000, 0.0, deadline=10.0)  # very relaxed
    sender = D2tcpSender(flow, ctx)
    assert sender.deadline_factor() == D_MIN


def test_near_deadline_backs_off_less():
    topo = make_star()
    ctx = make_ctx(topo)
    flow = Flow(0, 0, 1, 10_000_000, 0.0, deadline=1e-6)  # hopeless
    sender = D2tcpSender(flow, ctx)
    assert sender.deadline_factor() == D_MAX


def test_missed_deadline_is_max_urgency():
    topo = make_star()
    ctx = make_ctx(topo)
    flow = Flow(0, 0, 1, 100_000, 0.0, deadline=0.5)
    sender = D2tcpSender(flow, ctx)
    topo.sim.now = 1.0  # past the deadline
    assert sender.deadline_factor() == D_MAX


def test_urgent_flow_cut_less_than_relaxed():
    """On a marked window, the near-deadline flow keeps more window."""
    topo = make_star()
    ctx = make_ctx(topo)

    def cut_with(deadline):
        sender = D2tcpSender(Flow(0, 0, 1, 2_000_000, 0.0,
                                  deadline=deadline), ctx)
        sender.startup_done = True
        sender.alpha = 0.5
        sender.cwnd = 40.0
        sender._win_acks = 10
        sender._win_ce = 5
        sender.cum = sender._win_end + 1
        sender._end_of_window()
        return sender.cwnd

    relaxed = cut_with(10.0)     # d -> D_MIN: alpha^0.5 is a big penalty
    urgent = cut_with(1e-6)      # d -> D_MAX: alpha^2 is a small penalty
    assert urgent > relaxed


def test_deadline_aware_flow_completes_under_contention():
    topo = make_star(3)
    ctx = make_ctx(topo)
    scheme = D2tcp()
    urgent = Flow(0, 0, 2, 400_000, 0.0, deadline=2e-3)
    relaxed = Flow(1, 1, 2, 400_000, 0.0, deadline=1.0)
    scheme.start_flow(urgent, ctx)
    scheme.start_flow(relaxed, ctx)
    topo.sim.run(until=5.0)
    assert urgent.completed and relaxed.completed


# -- DCQCN --------------------------------------------------------------------


def test_dcqcn_completes():
    flow, ctx, _ = run_single_flow(Dcqcn(), 500_000, until=2.0)
    assert flow.completed


def test_dcqcn_starts_at_line_rate():
    topo = make_star()
    ctx = make_ctx(topo)
    sender = DcqcnSender(Flow(0, 0, 1, 1_000_000, 0.0), ctx)
    assert sender.cwnd == pytest.approx(float(ctx.bdp_packets(sender.flow)))


def test_dcqcn_cuts_on_marks_and_remembers_target():
    topo = make_star()
    ctx = make_ctx(topo)
    sender = DcqcnSender(Flow(0, 0, 1, 1_000_000, 0.0), ctx)
    before = sender.cwnd
    topo.sim.now = 1.0  # pass the update-period gate
    sender.cc_on_ack(True, 1e-5)
    assert sender.cwnd < before
    assert sender.target == pytest.approx(before)


def test_dcqcn_fast_recovery_toward_target():
    topo = make_star()
    ctx = make_ctx(topo)
    sender = DcqcnSender(Flow(0, 0, 1, 1_000_000, 0.0), ctx)
    sender.target = 40.0
    sender.cwnd = 20.0
    topo.sim.now = 1.0
    sender.cc_on_ack(False, 1e-5)
    assert sender.cwnd == pytest.approx(30.0)  # (RT + RC) / 2


def test_dcqcn_hyper_increase_after_long_recovery():
    topo = make_star()
    ctx = make_ctx(topo)
    sender = DcqcnSender(Flow(0, 0, 1, 10_000_000, 0.0), ctx)
    sender.target = sender.cwnd = 10.0
    for step in range(1, 20):
        topo.sim.now = step * 1.0
        sender.cc_on_ack(False, 1e-5)
    assert sender.target > 10.0 + sender.R_AI  # hyper stage reached


def test_dcqcn_two_flows_share_and_complete():
    topo = make_star(3)
    ctx = make_ctx(topo)
    scheme = Dcqcn()
    flows = [Flow(0, 0, 2, 400_000, 0.0), Flow(1, 1, 2, 400_000, 0.0)]
    for f in flows:
        scheme.start_flow(f, ctx)
    topo.sim.run(until=5.0)
    assert all(f.completed for f in flows)
