"""Tests for the Swift-like delay-based transport."""

import pytest

from conftest import make_ctx, make_star, run_single_flow
from repro.transport.base import Flow
from repro.transport.swift import Swift, SwiftSender


def make_sender(**cfg):
    topo = make_star()
    ctx = make_ctx(topo, **cfg)
    return SwiftSender(Flow(0, 0, 1, 1_000_000, 0.0), ctx), topo


def test_target_delay_above_base_rtt():
    sender, topo = make_sender()
    assert sender.target_delay > topo.base_rtt


def test_additive_increase_below_target():
    sender, _ = make_sender()
    sender.cwnd = 10.0
    sender.cc_on_ack(False, sender.target_delay * 0.5)
    assert sender.cwnd == pytest.approx(10.0 + sender.AI / 10.0)


def test_sub_unity_window_increases_faster():
    sender, _ = make_sender()
    sender.cwnd = 0.5
    sender.cc_on_ack(False, sender.target_delay * 0.5)
    assert sender.cwnd == pytest.approx(0.5 + sender.AI)


def test_multiplicative_decrease_above_target():
    sender, _ = make_sender()
    sender.cwnd = 20.0
    sender._last_decrease = -1.0
    sender.cc_on_ack(False, sender.target_delay * 3.0)
    assert sender.cwnd < 20.0
    assert sender.cwnd >= 20.0 * (1.0 - sender.MAX_MDF)


def test_decrease_at_most_once_per_rtt():
    sender, _ = make_sender()
    sender.cwnd = 20.0
    sender.sim.now = 1.0
    sender._last_decrease = -1.0
    sender.cc_on_ack(False, sender.target_delay * 3.0)
    after_first = sender.cwnd
    sender.cc_on_ack(False, sender.target_delay * 3.0)  # same instant
    assert sender.cwnd >= after_first  # no second cut (may grow? no: above
    # target means no growth either)
    assert sender.cwnd == after_first


def test_window_floor():
    sender, _ = make_sender()
    sender.cwnd = 0.6
    for _ in range(20):
        sender._last_decrease = -1e9
        sender.sim.now += 1.0
        sender.cc_on_ack(False, sender.target_delay * 10)
    assert sender.cwnd >= 0.5


def test_not_ecn_capable():
    sender, _ = make_sender()
    assert not sender.ecn_capable()
    assert not sender.build_packet(0).ecn_capable


def test_below_target_property():
    sender, _ = make_sender()
    sender.srtt = sender.target_delay * 0.5
    assert sender.below_target
    sender.srtt = sender.target_delay * 2.0
    assert not sender.below_target


def test_end_to_end_completion():
    flow, ctx, _ = run_single_flow(Swift(), 1_000_000, until=5.0)
    assert flow.completed


def test_two_flows_complete_under_contention():
    topo = make_star(3)
    ctx = make_ctx(topo)
    scheme = Swift()
    flows = [Flow(0, 0, 2, 300_000, 0.0), Flow(1, 1, 2, 300_000, 0.0)]
    for f in flows:
        scheme.start_flow(f, ctx)
    topo.sim.run(until=5.0)
    assert all(f.completed for f in flows)
