"""Tests for Network assembly, control path and QueueConfig."""

import pytest

from conftest import make_star
from repro.sim.network import QueueConfig
from repro.sim.packet import ACK, Packet
from repro.units import ecn_threshold_bytes, gbps, us


def test_control_path_delivers_after_base_delay():
    topo = make_star(3)
    net, sim = topo.network, topo.sim
    received = []
    net.hosts[0].default_endpoint = type(
        "E", (), {"on_packet": staticmethod(received.append)})()
    ack = Packet(1, src=2, dst=0, seq=0, size=64, kind=ACK)
    net.send_control(ack)
    sim.run()
    assert received
    assert sim.now == pytest.approx(net.base_delay(2, 0))


def test_control_path_counts_host_ops():
    topo = make_star(3)
    net = topo.network
    before = net.hosts[2].ops_sent
    net.send_control(Packet(1, 2, 0, 0, 64, kind=ACK))
    assert net.hosts[2].ops_sent == before + 1
    assert net.control_pkts == 1


def test_attach_detach_endpoints():
    topo = make_star(3)
    net = topo.network
    sender, receiver = object(), object()
    net.attach(5, 0, 1, sender, receiver)
    assert net.hosts[0].endpoints[5] is sender
    assert net.hosts[1].endpoints[5] is receiver
    net.detach(5, 0, 1)
    assert 5 not in net.hosts[0].endpoints
    assert 5 not in net.hosts[1].endpoints


def test_late_packet_to_unregistered_flow_is_discarded():
    topo = make_star(3)
    # no endpoint registered: must not raise
    topo.network.hosts[1].receive(Packet(123, 0, 1, 0, 1500))


def test_queue_config_explicit_thresholds():
    qcfg = QueueConfig(buffer_bytes=100_000,
                       ecn_thresholds=[1000] * 4 + [500] * 4)
    mux = qcfg.build(gbps(10))
    assert mux.ecn_thresholds == [1000] * 4 + [500] * 4


def test_queue_config_lambda_derivation():
    rtt = us(80)
    qcfg = QueueConfig(buffer_bytes=100_000, ecn_lambda_high=0.17,
                       ecn_lambda_low=0.1, base_rtt=rtt)
    mux = qcfg.build(gbps(10))
    assert mux.ecn_thresholds[0] == ecn_threshold_bytes(0.17, gbps(10), rtt)
    assert mux.ecn_thresholds[4] == ecn_threshold_bytes(0.1, gbps(10), rtt)


def test_queue_config_lambda_requires_rtt():
    qcfg = QueueConfig(buffer_bytes=100_000, ecn_lambda_high=0.17)
    with pytest.raises(ValueError):
        qcfg.build(gbps(10))


def test_queue_config_no_marking_by_default():
    qcfg = QueueConfig(buffer_bytes=100_000)
    mux = qcfg.build(gbps(10))
    assert mux.ecn_thresholds == [None] * 8


def test_total_drops_and_marks_aggregate():
    topo = make_star(3)
    net = topo.network
    assert net.total_drops() == 0
    assert net.total_marked() == 0
