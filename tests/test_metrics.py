"""Tests for FCT statistics, samplers, efficiency and CPU metrics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_ctx, make_star, run_single_flow
from repro.core.ppt import Ppt
from repro.metrics.cpu import CpuStats, collect_cpu
from repro.metrics.efficiency import collect_efficiency
from repro.metrics.fct import SMALL_FLOW_BYTES, FctStats, mean, percentile, reduction
from repro.metrics.sampler import BufferOccupancySampler, LinkUtilizationSampler
from repro.transport.base import Flow
from repro.transport.dctcp import Dctcp


def make_flow(size, fct, flow_id=0):
    flow = Flow(flow_id, 0, 1, size, start_time=1.0)
    flow.finish_time = 1.0 + fct
    return flow


# -- percentile / mean ---------------------------------------------------------


def test_percentile_basics():
    values = [1.0, 2.0, 3.0, 4.0, 5.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 50) == 3.0
    assert percentile(values, 100) == 5.0
    assert percentile(values, 75) == pytest.approx(4.0)


def test_percentile_empty_is_nan():
    assert math.isnan(percentile([], 99))


def test_mean_empty_is_nan():
    assert math.isnan(mean([]))


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                max_size=100),
       st.floats(min_value=0, max_value=100))
def test_percentile_properties(values, p):
    result = percentile(values, p)
    assert min(values) <= result <= max(values)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=2,
                max_size=50))
def test_percentile_monotone_in_p(values):
    ps = [0, 25, 50, 75, 99, 100]
    results = [percentile(values, p) for p in ps]
    assert results == sorted(results)


# -- FctStats ------------------------------------------------------------------


def test_fct_stats_partitions_small_large():
    flows = [make_flow(50_000, 1e-3, 0), make_flow(50_000, 3e-3, 1),
             make_flow(500_000, 10e-3, 2)]
    stats = FctStats.from_flows(flows)
    assert stats.n_flows == 3
    assert stats.n_small == 2
    assert stats.n_large == 1
    assert stats.small_avg == pytest.approx(2e-3)
    assert stats.large_avg == pytest.approx(10e-3)
    assert stats.overall_avg == pytest.approx((1 + 3 + 10) / 3 * 1e-3)


def test_fct_stats_boundary_is_inclusive_small():
    stats = FctStats.from_flows([make_flow(SMALL_FLOW_BYTES, 1e-3)])
    assert stats.n_small == 1


def test_fct_stats_ignores_incomplete():
    incomplete = Flow(9, 0, 1, 1000, 0.0)
    stats = FctStats.from_flows([make_flow(1000, 1e-3), incomplete])
    assert stats.n_flows == 1


def test_fct_stats_row_and_str():
    stats = FctStats.from_flows([make_flow(1000, 1e-3)])
    row = stats.row()
    assert row["overall_avg_ms"] == pytest.approx(1.0)
    assert "overall" in str(stats)


def test_fct_stats_row_marks_empty_small_bucket():
    """A run with only large flows renders small-bucket cells as the
    explicit "n=0" marker instead of NaN (which formats as 'nan' and
    silently poisons downstream table averages)."""
    stats = FctStats.from_flows([make_flow(500_000, 1e-2)])
    assert stats.n_small == 0 and stats.n_large == 1
    assert math.isnan(stats.small_avg)  # raw stat stays NaN on purpose
    row = stats.row()
    assert row["small_avg_ms"] == "n=0"
    assert row["small_p99_ms"] == "n=0"
    assert row["large_avg_ms"] == pytest.approx(10.0)
    assert "n=0" in str(stats)
    assert "nan" not in str(stats)


def test_fct_stats_row_all_empty():
    row = FctStats.from_flows([]).row()
    assert row["overall_avg_ms"] == "n=0"
    assert row["small_avg_ms"] == "n=0"
    assert row["large_avg_ms"] == "n=0"


def test_tables_fct_cell_and_summary_row():
    from repro.experiments.tables import fct_cell, fct_summary_row
    assert fct_cell(float("nan"), 0) == "n=0"
    assert fct_cell(2e-3, 5) == pytest.approx(2.0)  # seconds -> ms
    stats = FctStats.from_flows([make_flow(500_000, 1e-2)])
    row = fct_summary_row(stats)
    assert row["flows"] == 1
    assert row["small_avg_ms"] == "n=0"
    assert row["small_p99_ms"] == "n=0"
    assert row["large_avg_ms"] == pytest.approx(10.0)
    assert row["overall_avg_ms"] == pytest.approx(10.0)


def test_reduction():
    assert reduction(10.0, 5.0) == pytest.approx(50.0)
    assert reduction(10.0, 10.0) == 0.0
    assert math.isnan(reduction(0.0, 5.0))


# -- samplers -----------------------------------------------------------------


def test_link_utilization_sampler_idle_link():
    topo = make_star(3)
    port = topo.network.port_to_host(2)
    sampler = LinkUtilizationSampler(topo.sim, port, 10e-6)
    topo.sim.run(until=100e-6)
    assert sampler.samples
    assert all(s.utilization == 0.0 for s in sampler.samples)


def test_link_utilization_sampler_busy_link():
    topo = make_star(3)
    scheme = Dctcp()
    ctx = make_ctx(topo)
    flow = Flow(0, 0, 2, 2_000_000, 0.0)
    port = topo.network.port_to_host(2)
    sampler = LinkUtilizationSampler(topo.sim, port, 20e-6)
    scheme.start_flow(flow, ctx)
    topo.sim.run(until=2.0)
    assert flow.completed
    peak = max(sampler.utilizations())
    assert 0.8 <= peak <= 1.05


def test_buffer_occupancy_sampler():
    topo = make_star(3)
    port = topo.network.port_to_host(2)
    sampler = BufferOccupancySampler(topo.sim, port, 10e-6)
    topo.sim.run(until=100e-6)
    total, high, low = sampler.averages()
    assert total == 0.0 and high == 0.0 and low == 0.0


# -- efficiency ----------------------------------------------------------------


def test_efficiency_lossless_run_is_unity():
    flow, ctx, topo = run_single_flow(Dctcp(), 200_000, until=1.0)
    eff = collect_efficiency(topo.network)
    assert eff.pkts_sent >= flow.n_packets(ctx.config.mss)
    assert eff.overall == pytest.approx(1.0, abs=0.02)


def test_efficiency_counts_ppt_lp_traffic():
    flow, ctx, topo = run_single_flow(Ppt(), 300_000, until=1.0)
    eff = collect_efficiency(topo.network)
    assert eff.lp_pkts_sent > 0
    assert 0.0 < eff.low_priority <= 1.0


def test_efficiency_nan_when_nothing_sent():
    topo = make_star(3)
    eff = collect_efficiency(topo.network)
    assert math.isnan(eff.overall)
    assert math.isnan(eff.low_priority)


# -- cpu proxy -----------------------------------------------------------------


def test_cpu_ops_counted():
    flow, ctx, topo = run_single_flow(Dctcp(), 100_000, until=1.0)
    cpu = collect_cpu(topo.network, duration=flow.finish_time)
    assert cpu.total_ops > 0
    assert cpu.ops_per_second > 0
    assert cpu.usage_proxy() > 0


def test_cpu_zero_duration_is_nan():
    stats = CpuStats(ops_by_host={0: 10}, duration=0.0)
    assert math.isnan(stats.ops_per_second)


def test_ppt_overhead_scales_with_lp_traffic():
    """PPT's extra datapath ops over DCTCP come from opportunistic
    packets — a bounded, small increment (Fig. 19's claim)."""
    f1, _, topo1 = run_single_flow(Dctcp(), 500_000, until=1.0)
    f2, _, topo2 = run_single_flow(Ppt(), 500_000, until=1.0)
    ops_dctcp = collect_cpu(topo1.network, f1.finish_time).total_ops
    ops_ppt = collect_cpu(topo2.network, f2.finish_time).total_ops
    assert ops_ppt >= ops_dctcp * 0.9
    assert ops_ppt <= ops_dctcp * 2.5


# -- sampler lifecycle ---------------------------------------------------------


def test_sampler_stop_cancels_pending_tick():
    topo = make_star(3)
    port = topo.network.port_to_host(2)
    sampler = LinkUtilizationSampler(topo.sim, port, 10e-6)
    topo.sim.run(until=35e-6)
    n = len(sampler.samples)
    assert n > 0
    sampler.stop()
    assert sampler.stopped
    assert sampler._pending is None
    topo.sim.run(until=200e-6)
    assert len(sampler.samples) == n  # never fired again


def test_sampler_auto_stops_when_fabric_idle():
    """Once nothing but sampler timers remains in the heap, the sampler
    stops rescheduling instead of keeping the heap warm forever."""
    topo = make_star(3)
    scheme = Dctcp()
    ctx = make_ctx(topo)
    flow = Flow(0, 0, 2, 50_000, 0.0)
    port = topo.network.port_to_host(2)
    sampler = LinkUtilizationSampler(topo.sim, port, 20e-6)
    scheme.start_flow(flow, ctx)
    topo.sim.run(until=10.0)
    assert flow.completed
    assert sampler.stopped
    assert sampler.samples
    # the heap fully drained — the runner's heap-empty early exit works
    assert topo.sim.live_pending == 0


def test_occupancy_sampler_auto_stops_too():
    topo = make_star(3)
    scheme = Dctcp()
    ctx = make_ctx(topo)
    flow = Flow(0, 0, 2, 50_000, 0.0)
    sampler = BufferOccupancySampler(
        topo.sim, topo.network.port_to_host(2), 20e-6)
    scheme.start_flow(flow, ctx)
    topo.sim.run(until=10.0)
    assert flow.completed
    assert sampler.stopped
    assert topo.sim.live_pending == 0


def test_two_samplers_both_auto_stop():
    topo = make_star(3)
    scheme = Dctcp()
    ctx = make_ctx(topo)
    flow = Flow(0, 0, 2, 50_000, 0.0)
    port = topo.network.port_to_host(2)
    util = LinkUtilizationSampler(topo.sim, port, 20e-6)
    occ = BufferOccupancySampler(topo.sim, port, 30e-6)
    scheme.start_flow(flow, ctx)
    topo.sim.run(until=10.0)
    assert util.stopped and occ.stopped
    assert topo.sim.live_pending == 0
