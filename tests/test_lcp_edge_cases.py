"""Additional LCP edge cases: ECE pace-cancel, tiny flows, buffer
limits, and interaction with the HCP pointer."""

from conftest import make_ctx, make_star
from repro.core.ppt import Ppt, PptSender
from repro.sim.packet import ACK, Packet
from repro.transport.base import Flow


def make_sender(size=90_000, scheme=None, **cfg):
    topo = make_star()
    ctx = make_ctx(topo, **cfg)
    sender = PptSender(Flow(0, 0, 1, size, 0.0), ctx, scheme or Ppt())
    topo.network.hosts[0].register(0, sender)
    return sender, topo, ctx


def lp_ack(seq, *, ce=False, ack_seq=0, sack=None):
    ack = Packet(0, 1, 0, seq, 64, kind=ACK)
    ack.lcp = True
    ack.ecn_ce = ce
    ack.ack_seq = ack_seq
    ack.sack = sack or (seq,)
    return ack


def test_ece_cancels_pending_paced_window():
    """An ECE'd LP-ACK must cancel the rest of the paced initial window
    ("decrease the sending rate early"), not just skip one send."""
    sender, topo, ctx = make_sender()
    sender.start()
    topo.sim.run(until=1e-9)          # loop opened, window paced out
    lcp = sender.lcp
    pending_before = sum(1 for e in lcp._pace_events if not e.cancelled)
    assert pending_before > 5
    lcp.on_lp_ack(lp_ack(80, ce=True))
    assert not lcp._pace_events       # all remaining paced sends dropped


def test_non_ece_ack_keeps_pacing():
    sender, topo, ctx = make_sender()
    sender.start()
    topo.sim.run(until=1e-9)
    lcp = sender.lcp
    sent_before = lcp.lp_pkts_sent
    lcp.on_lp_ack(lp_ack(80, ce=False))
    assert lcp.lp_pkts_sent == sent_before + 1


def test_single_packet_flow_never_opens_useful_loop():
    """A 1-packet flow is fully covered by the HCP burst; the tail
    pointer is already crossed so the loop sends nothing."""
    sender, topo, ctx = make_sender(size=500)
    sender.start()
    topo.sim.run(until=1e-6)
    assert sender.lcp.lp_pkts_sent == 0


def test_lp_ack_sack_marks_all_listed():
    sender, topo, ctx = make_sender()
    lcp = sender.lcp
    lcp.outstanding[40] = 0.0
    lcp.outstanding[41] = 0.0
    lcp.on_lp_ack(lp_ack(41, sack=(40, 41)))
    assert 40 in sender.delivered and 41 in sender.delivered
    assert not lcp.outstanding


def test_lp_ack_cum_advances_head():
    """The §5.2 snd_nxt tweak: an LP-ACK whose cumulative pointer is
    ahead of the HCP head marks everything below as delivered."""
    sender, topo, ctx = make_sender()
    assert sender.cum == 0
    sender.lcp.on_lp_ack(lp_ack(30, ack_seq=5, sack=(30,)))
    assert sender.cum == 5
    assert {0, 1, 2, 3, 4} <= sender.delivered


def test_lcp_respects_send_buffer_window():
    """With a small send buffer, the tail pointer cannot reach past the
    buffered window."""
    sender, topo, ctx = make_sender(size=1_000_000,
                                    send_buffer_bytes=28_720,  # 20 packets
                                    identification_threshold=10**9)
    lcp = sender.lcp
    lcp.open_loop(50)
    seq = lcp._pick_tail_seq()
    assert seq is not None
    assert seq < sender.buffer_end()
    assert sender.buffer_end() == 20


def test_completion_via_lp_acks_stops_sender():
    sender, topo, ctx = make_sender(size=3000)  # 3 packets
    sender.lcp.on_lp_ack(lp_ack(2, ack_seq=3, sack=(0, 1, 2)))
    assert sender.finished


def test_loops_counted():
    sender, topo, ctx = make_sender()
    sender.start()
    topo.sim.run(until=1e-6)
    assert sender.lcp.loops_opened >= 1


def test_open_loop_rejects_nonpositive_window():
    sender, topo, ctx = make_sender()
    assert not sender.lcp.open_loop(0)
    assert not sender.lcp.open_loop(-5)
    assert not sender.lcp.active
