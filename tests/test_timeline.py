"""Tests for the sender timeline recorder."""

import math

from conftest import make_ctx, make_star
from repro.core.ppt import Ppt, PptSender
from repro.metrics.timeline import SenderTimeline
from repro.transport.base import Flow
from repro.transport.dctcp import Dctcp, DctcpSender
from repro.transport.window import WindowReceiver


def run_with_timeline(sender_cls, size=1_500_000, contender=True, **kwargs):
    topo = make_star(3)
    ctx = make_ctx(topo)
    flow = Flow(0, 0, 2, size, 0.0)
    if sender_cls is PptSender:
        sender = PptSender(flow, ctx, Ppt())
        from repro.core.ppt import PptReceiver
        receiver = PptReceiver(flow, ctx)
    else:
        sender = sender_cls(flow, ctx)
        receiver = WindowReceiver(flow, ctx)
    ctx.network.attach(0, 0, 2, sender, receiver)
    timeline = SenderTimeline(topo.sim, sender, interval=5e-6)
    sender.start()
    if contender:
        scheme = Dctcp()
        scheme.start_flow(Flow(1, 1, 2, size, 0.0), ctx)
    topo.sim.run(until=5.0)
    assert flow.completed
    return timeline


def test_records_cwnd_series():
    timeline = run_with_timeline(DctcpSender)
    assert len(timeline.samples) > 10
    assert all(s.cwnd >= 1.0 for s in timeline.samples)
    assert timeline.max_cwnd() > 10.0


def test_sampling_stops_at_completion():
    timeline = run_with_timeline(DctcpSender, size=100_000, contender=False)
    last = timeline.samples[-1].time
    # no samples long after the (sub-ms) flow completed
    assert last < 5e-3


def test_dctcp_sawtooth_under_contention():
    timeline = run_with_timeline(DctcpSender)
    assert timeline.sawtooth_cuts() >= 1  # at least one window cut
    alphas = [s.alpha for s in timeline.samples if s.alpha is not None]
    assert alphas and min(alphas) < 1.0  # alpha actually evolved


def test_ppt_timeline_records_lcp_state():
    timeline = run_with_timeline(PptSender)
    duty = timeline.lcp_duty_cycle()
    assert 0.0 < duty <= 1.0  # the LCP loop was active part of the time
    loops = [s.lcp_loops for s in timeline.samples if s.lcp_loops is not None]
    assert max(loops) >= 1


def test_duty_cycle_nan_for_plain_sender():
    timeline = run_with_timeline(DctcpSender, size=100_000, contender=False)
    assert math.isnan(timeline.lcp_duty_cycle())
