"""Wire-model equivalence: pipelined FIFO pipe vs. legacy per-packet events.

The pipelined :class:`~repro.sim.link.Wire` keeps one scheduled head-
arrival event per link; the legacy model schedules one event per
in-flight packet.  Because every arrival's heap tie-break seq is
*reserved* at serialization-completion time, the two models must produce
**bit-identical** runs — same per-flow FCTs (down to the float repr),
same event count, same telemetry event trace.  This suite pins that
equivalence on the three shapes the tentpole calls out: an incast, a
dumbbell whose bottleneck link flaps mid-run (flushing an in-flight
wire), and NDP packet spraying over a multipath leaf-spine.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import quick_qcfg
from repro.cli import SCHEME_FACTORIES
from repro.experiments.runner import Scenario, run
from repro.experiments.scenarios import (
    all_to_all_scenario,
    incast_scenario,
    sim_fabric,
)
from repro.faults import FaultPlan, LinkFlap
from repro.obs import Telemetry
from repro.sim.engine import Simulator
from repro.sim.link import Port, Wire
from repro.sim.packet import Packet
from repro.sim.queues import PriorityMux
from repro.sim.topology import dumbbell
from repro.transport.base import Flow, TransportConfig
from repro.transport.dctcp import Dctcp
from repro.units import gbps, us
from repro.workloads.distributions import WEB_SEARCH


def _run_in_mode(pipelined, scheme_factory, scenario_factory):
    """Run a fresh scenario with Wire's default mode forced."""
    saved = Wire.PIPELINED_DEFAULT
    Wire.PIPELINED_DEFAULT = pipelined
    try:
        telemetry = Telemetry()
        result = run(scheme_factory(), scenario_factory(), observe=telemetry)
    finally:
        Wire.PIPELINED_DEFAULT = saved
    return result, telemetry


def _fct_fingerprint(result):
    # repr() captures every bit of the float — equality here is
    # bit-identity, not approximate agreement
    return [(f.flow_id, f.completed, repr(f.fct)) for f in result.flows]


def _trace_fingerprint(telemetry):
    return [e.to_dict() for e in telemetry.iter_events()]


def _assert_equivalent(scheme_factory, scenario_factory):
    fast, fast_telem = _run_in_mode(True, scheme_factory, scenario_factory)
    slow, slow_telem = _run_in_mode(False, scheme_factory, scenario_factory)
    assert _fct_fingerprint(fast) == _fct_fingerprint(slow)
    assert fast.wall_events == slow.wall_events
    assert _trace_fingerprint(fast_telem) == _trace_fingerprint(slow_telem)
    return fast, slow


def test_incast_bit_identical():
    scenario = lambda: incast_scenario(
        "equiv-incast", WEB_SEARCH, n_senders=8, load=0.6,
        n_flows=16, size_cap=200_000, seed=7)
    fast, _slow = _assert_equivalent(Dctcp, scenario)
    assert fast.completed == 16


def _flap_scenario():
    """One big flow across a slow dumbbell with a mid-run bottleneck flap
    timed so packets are in flight (propagating) when the link dies."""

    def build_topology():
        # long propagation: at 1 Gbps a packet serializes in ~12 us but
        # propagates for 500 us, so the first window (which reaches the
        # bottleneck at ~512 us) sits *on the wire* when the flap hits
        # at t=600 us and the flush catches it mid-flight
        return dumbbell(rate=gbps(1), prop_delay=us(500), qcfg=quick_qcfg())

    def build_flows(topo):
        return [Flow(0, 0, 1, 150_000, 0.0)]

    plan = FaultPlan([LinkFlap("sw0->sw1", 6e-4, 4e-4, 1e-3, 2)])
    return Scenario("equiv-flap", build_topology, build_flows,
                    config=TransportConfig(min_rto=1e-3), max_time=4.0,
                    faults=plan)


def test_dumbbell_flap_flushes_wire_bit_identical():
    fast, slow = _assert_equivalent(Dctcp, _flap_scenario)
    # the flap must actually have caught packets mid-propagation in both
    # models, or this test isn't exercising the wire-flush path
    for result in (fast, slow):
        wire_drops = sum(p.fault_wire_drops
                         for p in result.ctx.network.ports)
        assert wire_drops > 0
        assert result.completed == 1
    assert fast.health.fault_drops == slow.health.fault_drops


def test_ndp_spray_bit_identical():
    scenario = lambda: all_to_all_scenario(
        "equiv-spray", WEB_SEARCH, n_flows=12,
        fabric=sim_fabric(n_leaf=2, n_spine=2, hosts_per_leaf=4), seed=11,
        event_budget=2_000_000)
    fast, _slow = _assert_equivalent(SCHEME_FACTORIES["ndp"], scenario)
    assert fast.completed > 0


# -- property: wire arrivals are time-monotone -----------------------------


class _Sink:
    """Records (arrival_time, packet) for every delivery."""

    def __init__(self, sim):
        self.sim = sim
        self.arrivals = []

    def receive(self, pkt):
        self.arrivals.append((self.sim.now, pkt))


def _make_port(sim, pipelined, rate=gbps(10), prop_delay=us(5)):
    mux = PriorityMux(buffer_bytes=10_000_000)
    port = Port(sim, rate, prop_delay, mux, name="prop-port")
    port.wire.pipelined = pipelined
    sink = _Sink(sim)
    port.peer = sink
    return port, sink


@settings(max_examples=60, deadline=None)
@given(
    pattern=st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=1e-4),  # send gap
                  st.integers(min_value=64, max_value=9000),  # size
                  st.integers(min_value=0, max_value=7)),     # priority
        min_size=1, max_size=40),
    pipelined=st.booleans(),
)
def test_wire_arrivals_time_monotone(pattern, pipelined):
    """Under any send pattern, deliveries come off the wire in FIFO order
    at non-decreasing times, and nothing is lost or reordered."""
    sim = Simulator()
    port, sink = _make_port(sim, pipelined)
    sent = []
    t = 0.0
    for i, (gap, size, priority) in enumerate(pattern):
        t += gap
        pkt = Packet(0, 0, 1, i, size, priority=priority)
        sent.append(pkt)
        sim.schedule_at(t, port.send, pkt)
    sim.run()
    times = [at for at, _pkt in sink.arrivals]
    assert times == sorted(times)
    assert len(sink.arrivals) == len(sent)
    # serialization is strict-priority but the *wire* is FIFO: whatever
    # order packets left the port, arrival order equals departure order
    departed = [pkt.seq for pkt in sent]
    arrived = {pkt.seq for _at, pkt in sink.arrivals}
    assert arrived == set(departed)
    assert len(port.wire) == 0 and port.wire.head_event is None


@settings(max_examples=40, deadline=None)
@given(
    pattern=st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=1e-4),
                  st.integers(min_value=64, max_value=9000),
                  st.integers(min_value=0, max_value=7)),
        min_size=1, max_size=40),
)
def test_wire_modes_deliver_identically(pattern):
    """Pipelined and legacy wires produce the same (time, seq) delivery
    sequence for the same send pattern."""
    logs = []
    for pipelined in (True, False):
        sim = Simulator()
        port, sink = _make_port(sim, pipelined)
        t = 0.0
        for i, (gap, size, priority) in enumerate(pattern):
            t += gap
            sim.schedule_at(t, port.send,
                            Packet(0, 0, 1, i, size, priority=priority))
        sim.run()
        logs.append([(repr(at), pkt.seq) for at, pkt in sink.arrivals])
    assert logs[0] == logs[1]
