"""Lossless Ethernet (PFC) tests: hysteresis, zero-drop, storms,
pickling, and the end-to-end lossless scenarios."""

import math
import pickle

from repro.experiments.runner import run
from repro.experiments.scenarios import (
    SIM_PFC,
    all_to_all_scenario,
    lossless_scenario,
    pfc_storm_scenario,
)
from repro.sim.packet import Packet
from repro.sim.queues import PfcConfig, PriorityMux
from repro.transport.dcqcn import Dcqcn
from repro.transport.dctcp import Dctcp
from repro.validate.auditor import audit_mux
from repro.workloads.distributions import WEB_SEARCH


class _StubController:
    """Records XOFF/XON callbacks the way PfcController would."""

    def __init__(self):
        self.events = []

    def on_xoff(self, priority):
        self.events.append(("xoff", priority))

    def on_xon(self, priority):
        self.events.append(("xon", priority))


def _lossless_mux(xoff=6000, xon=3000, headroom=20_000, buffer_bytes=9000):
    mux = PriorityMux(buffer_bytes=buffer_bytes)
    cfg = PfcConfig(xoff_bytes=xoff, xon_bytes=xon,
                    headroom_bytes=headroom)
    mux.pfc = cfg.make_state()
    return mux


def _pkt(seq, size=1500, priority=0):
    return Packet(1, src=0, dst=1, seq=seq, size=size, priority=priority)


# ---------------------------------------------------------------------------
# PfcConfig validation
# ---------------------------------------------------------------------------


def test_pfc_config_validates():
    for bad in (dict(xoff_bytes=-1, xon_bytes=0, headroom_bytes=0),
                dict(xoff_bytes=100, xon_bytes=200, headroom_bytes=0),
                dict(xoff_bytes=100, xon_bytes=50, headroom_bytes=-1),
                dict(xoff_bytes=100, xon_bytes=50, headroom_bytes=0,
                     priorities=(8,))):
        try:
            PfcConfig(**bad)
        except ValueError:
            pass
        else:
            raise AssertionError(f"PfcConfig{bad} must raise")


def test_pfc_config_for_buffer():
    cfg = PfcConfig.for_buffer(120_000)
    assert cfg.xon_bytes <= cfg.xoff_bytes <= 120_000
    assert cfg.headroom_bytes > 0
    assert cfg.lossless_mask == 0b1


# ---------------------------------------------------------------------------
# mux-level XOFF/XON hysteresis
# ---------------------------------------------------------------------------


def test_xoff_fires_above_threshold_and_xon_below():
    mux = _lossless_mux()
    ctrl = _StubController()
    mux.pfc.controller = ctrl

    for seq in range(4):  # 6000 bytes enqueued: at, not above, XOFF
        assert mux.enqueue(_pkt(seq))
    assert ctrl.events == []
    assert mux.enqueue(_pkt(4))  # 7500 > 6000: XOFF
    assert ctrl.events == [("xoff", 0)]
    assert mux.pfc.xoff_state == 0b1
    assert not audit_mux(mux)

    # draining to 4500 (> xon 3000) must NOT resume yet — hysteresis
    mux.dequeue()
    mux.dequeue()
    assert ctrl.events == [("xoff", 0)]
    # 3000 <= xon: resume
    mux.dequeue()
    assert ctrl.events == [("xoff", 0), ("xon", 0)]
    assert mux.pfc.xoff_state == 0
    assert not audit_mux(mux)


def test_lossless_class_uses_headroom_never_drops():
    mux = _lossless_mux(buffer_bytes=9000, headroom=6000)
    accepted = 0
    for seq in range(10):  # 15000 bytes offered into 9000+6000
        if mux.enqueue(_pkt(seq)):
            accepted += 1
    assert accepted == 10
    assert mux.pfc.lossless_drops == 0
    assert mux.occupancy == 15_000  # beyond the shared buffer: headroom
    assert not audit_mux(mux)
    # headroom exhausted: the drop is counted as a lossless violation
    assert not mux.enqueue(_pkt(99))
    assert mux.pfc.lossless_drops == 1
    assert [law for law, _, _ in audit_mux(mux)] == ["pfc-lossless-drop"]


def test_lossy_priority_unaffected_by_pfc():
    mux = _lossless_mux(buffer_bytes=9000, headroom=50_000)
    for seq in range(6):
        assert mux.enqueue(_pkt(seq, priority=4))
    # priority 4 is not in the lossless set: normal tail-drop at 9000
    assert not mux.enqueue(_pkt(6, priority=4))
    assert mux.pfc.lossless_drops == 0
    assert not audit_mux(mux)


def test_flush_clears_xoff_state():
    mux = _lossless_mux()
    ctrl = _StubController()
    mux.pfc.controller = ctrl
    for seq in range(5):
        mux.enqueue(_pkt(seq))
    assert mux.pfc.xoff_state == 0b1
    mux.flush()
    assert mux.pfc.xoff_state == 0
    assert ctrl.events == [("xoff", 0), ("xon", 0)]
    assert not audit_mux(mux)


# ---------------------------------------------------------------------------
# end-to-end lossless runs
# ---------------------------------------------------------------------------


def _lossless_counters(network):
    drops = sum(p.mux.pfc.lossless_drops for p in network.ports
                if p.mux.pfc is not None)
    pauses = sum(p.pauses_received for p in network.ports)
    return drops, pauses


def test_dcqcn_lossless_incast_zero_drops_pauses_fire():
    scenario = lossless_scenario("pfc-test", n_flows=80, load=0.9,
                                 max_time=10.0, seed=11)
    result = run(Dcqcn(), scenario, validate=True)
    assert result.validation.ok, result.validation.describe()
    drops, pauses = _lossless_counters(result.topology.network)
    assert drops == 0, "a lossless class dropped"
    assert pauses > 0, "the incast never tripped XOFF — not a PFC test"
    assert result.completed == len(result.flows)


def test_pfc_storm_hol_blocks_then_recovers():
    scenario = pfc_storm_scenario("storm-test", n_flows=40, max_time=10.0)
    result = run(Dcqcn(), scenario, validate=True)
    assert result.validation.ok, result.validation.describe()
    drops, pauses = _lossless_counters(result.topology.network)
    assert drops == 0
    assert pauses > 0
    # the storm window closes, so every flow still completes
    assert result.completed == len(result.flows)
    assert not result.health.stalled


def test_flowlet_infinite_gap_run_bit_identical_to_ecmp():
    """A flowlet balancer that never re-pins must reproduce the default
    per-flow-ECMP run exactly: same FCT stats, same event count."""
    base = run(Dctcp(), all_to_all_scenario(
        "ecmp-base", WEB_SEARCH, n_flows=40, max_time=5.0))
    flowlet = run(Dctcp(), all_to_all_scenario(
        "flowlet-inf", WEB_SEARCH, n_flows=40, max_time=5.0,
        lb="flowlet", lb_gap=math.inf))
    assert base.stats == flowlet.stats
    assert base.wall_events == flowlet.wall_events


def test_pfc_network_pickle_round_trip():
    """Checkpointing must survive PFC state: pause masks, refs and the
    controller graph all pickle (the live-run contract for --checkpoint)."""
    scenario = lossless_scenario("pfc-pickle", n_flows=30, load=0.9,
                                 max_time=5.0)
    result = run(Dcqcn(), scenario)
    network = result.topology.network
    assert network.pfc_controllers, "lossless scenario must wire PFC"
    blob = pickle.dumps(network)
    clone = pickle.loads(blob)
    assert len(clone.pfc_controllers) == len(network.pfc_controllers)
    for orig, copy in zip(network.ports, clone.ports):
        assert orig.paused_mask == copy.paused_mask
        assert orig.pauses_received == copy.pauses_received
        if orig.mux.pfc is not None:
            assert copy.mux.pfc is not None
            assert orig.mux.pfc.xoff_state == copy.mux.pfc.xoff_state


def test_sim_pfc_constant_is_sane():
    assert SIM_PFC.xon_bytes < SIM_PFC.xoff_bytes
    assert SIM_PFC.headroom_bytes >= SIM_PFC.xoff_bytes
