"""Shared fixtures and helpers for the test suite.

The helpers build tiny fabrics (2-8 hosts, short RTTs) so individual
tests run in milliseconds while still exercising the full packet path.
"""

from __future__ import annotations

import pytest

from repro.sim.network import QueueConfig
from repro.sim.topology import Topology, dumbbell, leaf_spine, star
from repro.transport.base import Flow, TransportConfig, TransportContext
from repro.units import gbps, us


def quick_qcfg(buffer_bytes: int = 120_000) -> QueueConfig:
    return QueueConfig(buffer_bytes=buffer_bytes,
                       ecn_thresholds=[96_000] * 4 + [86_000] * 4)


def make_star(n_hosts: int = 4, rate=gbps(40), prop=us(4),
              qcfg: QueueConfig = None) -> Topology:
    return star(n_hosts, rate=rate, prop_delay=prop,
                qcfg=qcfg or quick_qcfg())


def make_leaf_spine(**overrides) -> Topology:
    params = dict(n_leaf=2, n_spine=2, hosts_per_leaf=2,
                  edge_rate=gbps(40), core_rate=gbps(100),
                  prop_delay=us(2), qcfg=quick_qcfg())
    params.update(overrides)
    return leaf_spine(**params)


def make_ctx(topo: Topology, **config_overrides) -> TransportContext:
    params = dict(min_rto=1e-3)
    params.update(config_overrides)
    return TransportContext(topo.sim, topo.network,
                            TransportConfig(**params))


def run_single_flow(scheme, size: int, *, topo: Topology = None,
                    src: int = 0, dst: int = 1, until: float = 1.0,
                    **config_overrides):
    """Run one flow of ``size`` bytes to completion; returns (flow, ctx, topo)."""
    topo = topo or make_star()
    scheme.configure_network(topo.network)
    ctx = make_ctx(topo, **config_overrides)
    flow = Flow(0, src, dst, size, 0.0)
    scheme.start_flow(flow, ctx)
    topo.sim.run(until=until)
    return flow, ctx, topo


@pytest.fixture
def star4() -> Topology:
    return make_star(4)


@pytest.fixture
def ls_topo() -> Topology:
    return make_leaf_spine()
