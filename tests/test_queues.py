"""Unit and property tests for the strict-priority mux."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.packet import DATA, HEADER, HEADER_BYTES, Packet
from repro.sim.queues import PriorityMux


def make_pkt(seq=0, size=1500, priority=0, *, lcp=False, unscheduled=False,
             ecn_capable=True):
    pkt = Packet(flow_id=1, src=0, dst=1, seq=seq, size=size,
                 kind=DATA, priority=priority, ecn_capable=ecn_capable)
    pkt.lcp = lcp
    pkt.unscheduled = unscheduled
    return pkt


def test_fifo_within_priority():
    mux = PriorityMux(100_000)
    for seq in range(5):
        assert mux.enqueue(make_pkt(seq))
    assert [mux.dequeue().seq for _ in range(5)] == list(range(5))


def test_strict_priority_order():
    mux = PriorityMux(100_000)
    mux.enqueue(make_pkt(seq=1, priority=7))
    mux.enqueue(make_pkt(seq=2, priority=3))
    mux.enqueue(make_pkt(seq=3, priority=0))
    order = [mux.dequeue().priority for _ in range(3)]
    assert order == [0, 3, 7]


def test_dequeue_empty_returns_none():
    mux = PriorityMux(100_000)
    assert mux.dequeue() is None
    assert mux.empty


def test_shared_buffer_tail_drop():
    mux = PriorityMux(3000)
    assert mux.enqueue(make_pkt(size=1500))
    assert mux.enqueue(make_pkt(size=1500))
    assert not mux.enqueue(make_pkt(size=1500))
    assert mux.stats.dropped == 1


def test_occupancy_tracks_bytes():
    mux = PriorityMux(100_000)
    mux.enqueue(make_pkt(size=1500))
    mux.enqueue(make_pkt(size=500, priority=4))
    assert mux.occupancy == 2000
    assert mux.queue_occupancy[0] == 1500
    assert mux.queue_occupancy[4] == 500
    mux.dequeue()
    assert mux.occupancy == 500


def test_occupancy_split_high_low():
    mux = PriorityMux(100_000)
    mux.enqueue(make_pkt(size=1000, priority=2))
    mux.enqueue(make_pkt(size=700, priority=6))
    split = mux.occupancy_split()
    assert split == {"high": 1000, "low": 700}


def test_ecn_threshold_semantics_queue_mode():
    mux = PriorityMux(100_000, [3000] * 8, ecn_mode="queue")
    p1, p2, p3 = make_pkt(size=1500), make_pkt(size=1500), make_pkt(size=1500)
    mux.enqueue(p1)
    mux.enqueue(p2)
    mux.enqueue(p3)
    assert not p1.ecn_ce
    assert not p2.ecn_ce   # queue held 1500 < 3000 at arrival
    assert p3.ecn_ce       # queue held 3000 >= 3000 at arrival


def test_paper_mode_hp_marks_on_hp_half_only():
    mux = PriorityMux(100_000, [3000] * 4 + [3000] * 4, ecn_mode="paper")
    # Fill P5 (low half) with 6KB: must NOT mark high-priority arrivals.
    mux.enqueue(make_pkt(size=3000, priority=5))
    mux.enqueue(make_pkt(size=3000, priority=5))
    hp = make_pkt(size=1500, priority=1)
    mux.enqueue(hp)
    assert not hp.ecn_ce
    # But a low-priority arrival marks on the *total* occupancy.
    lp = make_pkt(size=1500, priority=6, lcp=True)
    mux.enqueue(lp)
    assert lp.ecn_ce


def test_paper_mode_hp_half_aggregates_across_hp_queues():
    mux = PriorityMux(100_000, [3000] * 8, ecn_mode="paper")
    mux.enqueue(make_pkt(size=2000, priority=0))
    mux.enqueue(make_pkt(size=2000, priority=3))
    hp = make_pkt(size=1000, priority=1)
    mux.enqueue(hp)
    assert hp.ecn_ce  # P0-P3 hold 4000 >= 3000


def test_non_ecn_capable_never_marked():
    mux = PriorityMux(100_000, [0] * 8, ecn_mode="queue")
    mux.enqueue(make_pkt(size=1500))
    pkt = make_pkt(size=1500, ecn_capable=False)
    mux.enqueue(pkt)
    assert not pkt.ecn_ce


def test_dynamic_threshold_caps_greedy_queue():
    # alpha=1: a queue may hold at most the remaining free space.
    mux = PriorityMux(10_000, dt_alpha=1.0)
    admitted = 0
    for seq in range(10):
        if mux.enqueue(make_pkt(seq, size=1000, priority=5)):
            admitted += 1
    # equilibrium: queue <= buffer/2 under alpha=1
    assert mux.queue_occupancy[5] <= 5000 + 1000
    assert admitted < 10
    # another priority still has room
    assert mux.enqueue(make_pkt(size=1000, priority=0))


def test_dt_alpha_per_priority_sequence():
    mux = PriorityMux(10_000, dt_alpha=[8.0] * 4 + [0.5] * 4)
    for seq in range(10):
        mux.enqueue(make_pkt(seq, size=1000, priority=6))
    low_occ = mux.queue_occupancy[6]
    for seq in range(10):
        mux.enqueue(make_pkt(seq, size=1000, priority=1))
    assert mux.queue_occupancy[1] > low_occ


def test_dt_alpha_bad_length_rejected():
    with pytest.raises(ValueError):
        PriorityMux(10_000, dt_alpha=[1.0, 2.0])


def test_bad_ecn_mode_rejected():
    with pytest.raises(ValueError):
        PriorityMux(10_000, ecn_mode="bogus")


def test_bad_threshold_count_rejected():
    with pytest.raises(ValueError):
        PriorityMux(10_000, [1000] * 3)


def test_trim_threshold_cuts_payload():
    mux = PriorityMux(100_000, trim=True)
    mux.trim_threshold_bytes = 3000
    mux.enqueue(make_pkt(size=1500, priority=1))
    mux.enqueue(make_pkt(size=1500, priority=1))
    victim = make_pkt(seq=9, size=1500, priority=1)
    assert mux.enqueue(victim)
    assert victim.kind == HEADER
    assert victim.size == HEADER_BYTES
    assert victim.priority == 0
    assert mux.stats.trimmed == 1


def test_trim_on_buffer_exhaustion():
    mux = PriorityMux(3100, trim=True)
    mux.enqueue(make_pkt(size=1500))
    mux.enqueue(make_pkt(size=1500))
    victim = make_pkt(seq=9, size=1500)
    assert mux.enqueue(victim)  # trimmed header (64B) still fits
    assert victim.kind == HEADER


def test_trim_drops_header_when_buffer_truly_full():
    mux = PriorityMux(3000, trim=True)
    mux.enqueue(make_pkt(size=1500))
    mux.enqueue(make_pkt(size=1500))
    assert not mux.enqueue(make_pkt(seq=9, size=1500))
    assert mux.stats.dropped == 1


def test_selective_drop_only_hits_unscheduled():
    mux = PriorityMux(100_000, selective_drop_threshold=2000)
    mux.enqueue(make_pkt(size=1500))
    mux.enqueue(make_pkt(size=1500))  # occupancy now 3000 > 2000
    unsched = make_pkt(unscheduled=True)
    sched = make_pkt()
    assert not mux.enqueue(unsched)
    assert mux.enqueue(sched)


def test_lp_buffer_cap():
    mux = PriorityMux(100_000, lp_buffer_cap=2000)
    assert mux.enqueue(make_pkt(size=1500, priority=5, lcp=True))
    assert not mux.enqueue(make_pkt(size=1500, priority=5, lcp=True))
    assert mux.enqueue(make_pkt(size=1500, priority=0))  # HP unaffected
    assert mux.lp_occupancy == 1500


def test_drop_hook_invoked():
    dropped = []
    mux = PriorityMux(1000)
    mux.drop_hook = dropped.append
    mux.enqueue(make_pkt(size=1500))
    assert len(dropped) == 1


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 7), st.integers(64, 1500)),
                min_size=1, max_size=60),
       st.integers(min_value=2000, max_value=20_000))
def test_conservation_and_occupancy_invariants(items, buffer_bytes):
    """Property: enqueued = dequeued + still-queued; occupancy equals the
    byte sum of queued packets; dequeue order respects strict priority."""
    mux = PriorityMux(buffer_bytes)
    admitted = 0
    for priority, size in items:
        if mux.enqueue(make_pkt(size=size, priority=priority)):
            admitted += 1
    assert mux.stats.enqueued == admitted
    assert mux.stats.dropped == len(items) - admitted
    assert mux.occupancy == sum(
        p.size for q in mux.queues for p in q)
    assert mux.occupancy <= buffer_bytes

    out = []
    while True:
        pkt = mux.dequeue()
        if pkt is None:
            break
        out.append(pkt.priority)
    assert len(out) == admitted
    assert out == sorted(out)  # strict priority drains highest class first
    assert mux.occupancy == 0
    assert all(v == 0 for v in mux.queue_occupancy)


def test_trimmed_then_dropped_counts_once_as_drop():
    """A packet trimmed as a last resort and *still* not fitting is one
    drop — not a trim and a drop — and its bytes_dropped reflect the
    size it arrived with, not the 64B header it shrank to."""
    mux = PriorityMux(3000, trim=True)
    mux.enqueue(make_pkt(size=1500))
    mux.enqueue(make_pkt(size=1500))
    assert not mux.enqueue(make_pkt(seq=9, size=1500))
    assert mux.stats.dropped == 1
    assert mux.stats.trimmed == 0
    assert mux.stats.bytes_dropped == 1500
    assert mux.stats.enqueued + mux.stats.dropped == 3


def test_threshold_trim_survivor_counts_as_trim_not_drop():
    mux = PriorityMux(100_000, trim=True)
    mux.trim_threshold_bytes = 1000
    assert mux.enqueue(make_pkt(size=900, priority=1))          # under threshold
    assert mux.enqueue(make_pkt(seq=1, size=1500, priority=1))  # trimmed
    assert mux.stats.trimmed == 1
    assert mux.stats.dropped == 0
    assert mux.stats.enqueued == 2


def test_mark_and_trim_hooks_invoked():
    marks, trims = [], []
    mux = PriorityMux(100_000, ecn_thresholds=[0] + [None] * 7, trim=True)
    mux.add_mark_hook(marks.append)
    mux.add_trim_hook(trims.append)
    mux.trim_threshold_bytes = 1000
    mux.enqueue(make_pkt(size=900, priority=0))
    mux.enqueue(make_pkt(seq=1, size=1500, priority=0))
    assert len(marks) == mux.stats.marked > 0
    assert len(trims) == mux.stats.trimmed == 1


def test_hooks_chain_instead_of_overwrite():
    first, second = [], []
    mux = PriorityMux(1000)
    mux.add_drop_hook(first.append)
    mux.add_drop_hook(second.append)
    mux.enqueue(make_pkt(size=1500))
    assert len(first) == len(second) == 1


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 7), st.integers(64, 1500)),
                min_size=1, max_size=60),
       st.integers(min_value=2000, max_value=8_000))
def test_conservation_with_trimming(items, buffer_bytes):
    """Property: with NDP trimming on, every arrival is still exactly one
    of enqueued or dropped, and bytes_dropped sums arrival sizes."""
    mux = PriorityMux(buffer_bytes, trim=True)
    mux.trim_threshold_bytes = buffer_bytes // 2
    arrival_bytes = []
    for priority, size in items:
        pkt = make_pkt(size=size, priority=priority)
        if not mux.enqueue(pkt):
            arrival_bytes.append(size)
    assert mux.stats.enqueued + mux.stats.dropped == len(items)
    assert mux.stats.bytes_dropped == sum(arrival_bytes)
    assert mux.stats.trimmed <= mux.stats.enqueued


# -- incremental ledgers (hp_occupancy / nonempty_mask / pkt_count) --------


def _ledgers_match_scan(mux):
    """Every incremental ledger equals the value a full scan computes."""
    per_queue = [sum(p.size for p in q) for q in mux.queues]
    assert mux.occupancy == sum(per_queue)
    assert list(mux.queue_occupancy) == per_queue
    assert mux.hp_occupancy == sum(per_queue[0:4])
    assert mux.lp_occupancy == sum(p.size for q in mux.queues
                                   for p in q if p.lcp)
    mask = 0
    for priority, queue in enumerate(mux.queues):
        if queue:
            mask |= 1 << priority
    assert mux.nonempty_mask == mask
    assert mux.pkt_count == sum(len(q) for q in mux.queues)
    # __len__ and occupancy_split are served by the same counters
    assert len(mux) == mux.pkt_count
    split = mux.occupancy_split()
    assert split["high"] == mux.hp_occupancy
    assert split["low"] == mux.occupancy - mux.hp_occupancy


def test_ledgers_track_mixed_enqueue_dequeue():
    mux = PriorityMux(buffer_bytes=100_000)
    for seq, (priority, lcp) in enumerate(
            [(0, False), (5, True), (3, False), (7, True), (1, False)]):
        assert mux.enqueue(make_pkt(seq=seq, priority=priority, lcp=lcp))
        _ledgers_match_scan(mux)
    while len(mux):
        mux.dequeue()
        _ledgers_match_scan(mux)
    assert mux.nonempty_mask == 0
    assert mux.hp_occupancy == 0


def test_ledgers_track_trim_and_flush():
    # 6100: four 1500 B packets fill the buffer, the fifth's last-resort
    # trim leaves a 64 B header that still fits
    mux = PriorityMux(buffer_bytes=6_100, trim=True)
    for seq in range(4):
        mux.enqueue(make_pkt(seq=seq, priority=6))
        _ledgers_match_scan(mux)
    # next low-priority arrival trims (header re-queued at P0)
    mux.enqueue(make_pkt(seq=9, priority=6))
    _ledgers_match_scan(mux)
    assert mux.nonempty_mask & 1            # trimmed header sits at P0
    flushed = mux.flush()
    assert flushed > 0
    _ledgers_match_scan(mux)
    assert len(mux) == 0 and mux.occupancy == 0


def test_len_and_split_are_o1_counters():
    """__len__/occupancy_split must read the ledgers, not rescan — pin
    that by cooking the counter and observing the lie comes straight
    back (the auditor is what detects cooked ledgers, not these
    accessors)."""
    mux = PriorityMux(buffer_bytes=100_000)
    mux.enqueue(make_pkt(seq=0, priority=0))
    mux.enqueue(make_pkt(seq=1, priority=5))
    assert len(mux) == 2
    mux.pkt_count = 99
    assert len(mux) == 99
    mux.hp_occupancy = 123
    assert mux.occupancy_split()["high"] == 123
