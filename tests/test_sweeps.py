"""Tests for the sweep helpers and result archival."""

import json

import pytest

from repro.experiments.scenarios import all_to_all_scenario, sim_fabric
from repro.experiments.sweeps import (
    SweepPoint,
    load_sweep_variants,
    points_to_json,
    rows_from_json,
    rows_to_json,
    sweep,
)
from repro.transport.dctcp import Dctcp
from repro.workloads.distributions import WEB_SEARCH


def tiny_factory(load=0.4):
    return all_to_all_scenario(
        f"sweep-{load}", WEB_SEARCH, load=load, n_flows=10,
        size_cap=200_000, fabric=sim_fabric(n_leaf=2, n_spine=2,
                                            hosts_per_leaf=2))


def test_load_sweep_variants():
    assert load_sweep_variants([0.4, 0.6]) == [{"load": 0.4}, {"load": 0.6}]


def test_sweep_runs_grid():
    progress = []
    points = sweep({"dctcp": Dctcp}, tiny_factory,
                   load_sweep_variants([0.3, 0.5]),
                   progress=progress.append)
    assert len(points) == 2
    assert len(progress) == 2
    for point in points:
        assert point.scheme == "dctcp"
        assert point.completed == 10
        assert point.stats.overall_avg > 0


def test_sweep_point_row_flattens():
    points = sweep({"dctcp": Dctcp}, tiny_factory, [{"load": 0.4}])
    row = points[0].row()
    assert row["scheme"] == "dctcp"
    assert row["load"] == 0.4
    assert row["completed"] == "10/10"
    assert "overall_avg_ms" in row


def test_rows_round_trip(tmp_path):
    rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
    path = tmp_path / "rows.json"
    rows_to_json(rows, path, meta={"note": "test"})
    loaded = rows_from_json(path)
    assert loaded == rows
    payload = json.loads(path.read_text())
    assert payload["meta"]["note"] == "test"


def test_points_to_json(tmp_path):
    points = sweep({"dctcp": Dctcp}, tiny_factory, [{"load": 0.4}])
    path = tmp_path / "points.json"
    points_to_json(points, path)
    loaded = rows_from_json(path)
    assert loaded[0]["scheme"] == "dctcp"
