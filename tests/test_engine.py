"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator


def test_schedule_and_run_in_order():
    sim = Simulator()
    fired = []
    sim.schedule(2e-3, fired.append, "b")
    sim.schedule(1e-3, fired.append, "a")
    sim.schedule(3e-3, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == pytest.approx(3e-3)


def test_same_time_events_fire_in_insertion_order():
    sim = Simulator()
    fired = []
    for label in range(10):
        sim.schedule(1e-3, fired.append, label)
    sim.run()
    assert fired == list(range(10))


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1e-9, lambda: None)


def test_tiny_negative_delay_clamped_to_zero():
    # float round-off from `t_abs - now` arithmetic must not kill a run
    sim = Simulator()
    fired = []
    sim.schedule(-1e-15, fired.append, 1)
    sim.run()
    assert fired == [1]
    assert sim.now == 0.0


def test_genuinely_negative_delay_still_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1e-6, lambda: None)


def test_zero_delay_allowed():
    sim = Simulator()
    fired = []
    sim.schedule(0.0, fired.append, 1)
    sim.run()
    assert fired == [1]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1e-3, fired.append, "x")
    sim.schedule(0.5e-3, fired.append, "y")
    event.cancel()
    sim.run()
    assert fired == ["y"]


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1e-3, lambda: None)
    event.cancel()
    event.cancel()
    assert sim.run() == 0


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1e-3, fired.append, "early")
    sim.schedule(5e-3, fired.append, "late")
    sim.run(until=2e-3)
    assert fired == ["early"]
    assert sim.now == pytest.approx(2e-3)
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_when_heap_empties():
    sim = Simulator()
    sim.run(until=7e-3)
    assert sim.now == pytest.approx(7e-3)


def test_events_scheduled_during_run_are_executed():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 4:
            sim.schedule(1e-6, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule(1e-3, lambda: sim.schedule_at(5e-3, fired.append, "x"))
    sim.run()
    assert fired == ["x"]
    assert sim.now == pytest.approx(5e-3)


def test_max_events_bound():
    sim = Simulator()
    for i in range(10):
        sim.schedule(i * 1e-6, lambda: None)
    assert sim.run(max_events=3) == 3
    assert sim.run() == 7


def test_step_executes_one_event():
    sim = Simulator()
    fired = []
    sim.schedule(1e-6, fired.append, 1)
    sim.schedule(2e-6, fired.append, 2)
    assert sim.step() is True
    assert fired == [1]
    assert sim.step() is True
    assert sim.step() is False


def test_peek_time_skips_cancelled():
    sim = Simulator()
    first = sim.schedule(1e-6, lambda: None)
    sim.schedule(2e-6, lambda: None)
    first.cancel()
    assert sim.peek_time() == pytest.approx(2e-6)


def test_events_run_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(i * 1e-6, lambda: None)
    sim.run()
    assert sim.events_run == 5


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1,
                max_size=50))
def test_events_always_fire_in_nondecreasing_time_order(delays):
    """Property: whatever the scheduling order, execution time is
    non-decreasing."""
    sim = Simulator()
    times = []
    for delay in delays:
        sim.schedule(delay, lambda: times.append(sim.now))
    sim.run()
    assert len(times) == len(delays)
    assert times == sorted(times)


def test_live_pending_excludes_cancelled_entries():
    sim = Simulator()
    sim.schedule(1e-3, lambda: None)
    dead = sim.schedule(2e-3, lambda: None)
    dead.cancel()
    assert sim.pending == 2       # raw heap length counts the corpse
    assert sim.live_pending == 1  # diagnostics must not


def test_budget_break_does_not_jump_clock():
    """Regression: a ``run(until, max_events)`` slice that stops on the
    event budget must NOT fast-forward the clock past still-pending
    events — the next slice would then execute them with time going
    backwards, corrupting every RTT sample taken in between."""
    sim = Simulator()
    for i in range(5):
        sim.schedule(i * 1e-3, lambda: None)
    sim.run(until=10e-3, max_events=2)
    # stopped at the second event's time, not at `until`
    assert sim.now == pytest.approx(1e-3)
    # resuming drains the rest and only then advances to `until`
    times = []
    sim.schedule_at(2e-3, lambda: times.append(sim.now))
    sim.run(until=10e-3)
    assert times == [pytest.approx(2e-3)]
    assert sim.now == pytest.approx(10e-3)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1,
                max_size=40), st.data())
def test_clock_monotonic_across_sliced_budgeted_draining(delays, data):
    """Property: however a drain is sliced (`until` steps) and budgeted
    (`max_events`), the observable clock — event fire times and the
    post-slice ``sim.now`` — never decreases, and no event is lost."""
    sim = Simulator()
    observed = []  # interleaved event fire times and slice-end clocks
    for delay in delays:
        sim.schedule(delay, lambda: observed.append(sim.now))
    fired_total = 0
    t = 0.0
    while sim.peek_time() is not None:
        t += data.draw(st.floats(min_value=0.01, max_value=0.4))
        budget = data.draw(st.integers(min_value=1, max_value=4))
        fired_total += sim.run(until=t, max_events=budget)
        observed.append(sim.now)
    assert fired_total == len(delays)
    assert observed == sorted(observed)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2,
                max_size=30), st.data())
def test_cancelling_any_subset_fires_exactly_the_rest(delays, data):
    sim = Simulator()
    events = [sim.schedule(d, lambda: None) for d in delays]
    to_cancel = data.draw(st.sets(
        st.integers(min_value=0, max_value=len(events) - 1)))
    for idx in to_cancel:
        events[idx].cancel()
    executed = sim.run()
    assert executed == len(events) - len(to_cancel)


# -- event free-list -------------------------------------------------------


def test_recycled_event_object_is_reused():
    """A fired recycle-mode event returns to the pool and is handed out
    by the next schedule call."""
    sim = Simulator()
    fired = []
    first = sim.schedule_recycled(1e-3, fired.append, 1)
    sim.run()
    second = sim.schedule(1e-3, fired.append, 2)
    assert second is first
    sim.run()
    assert fired == [1, 2]


def test_plain_schedule_events_are_not_pooled():
    """Callers of plain schedule() may keep the handle forever, so those
    events must never be recycled out from under them."""
    sim = Simulator()
    first = sim.schedule(1e-3, lambda: None)
    sim.run()
    second = sim.schedule(1e-3, lambda: None)
    assert second is not first


def test_cancelled_recycled_event_is_not_pooled():
    """Cancelled events never enter the pool: the canceller may still
    hold the reference."""
    sim = Simulator()
    first = sim.schedule_recycled(1e-3, lambda: None)
    first.cancel()
    sim.run()
    second = sim.schedule(1e-3, lambda: None)
    assert second is not first


def test_cancel_after_fire_is_noop_for_live_counter():
    """The run loop marks fired events, so a late cancel() on a handle
    the caller kept must not decrement the live counter."""
    sim = Simulator()
    event = sim.schedule(1e-3, lambda: None)
    sim.schedule(2e-3, lambda: None)
    sim.run(until=1.5e-3)
    assert sim.live_pending == 1
    event.cancel()
    event.cancel()
    assert sim.live_pending == 1
    live, min_live = sim.audit_heap()
    assert live == 1
    assert min_live == 2e-3


# -- pure peek / explicit compaction ---------------------------------------


def test_peek_time_does_not_mutate_heap():
    """peek_time() is a pure read even when the head is a corpse;
    compact() is the explicit way to drop cancelled heads."""
    sim = Simulator()
    head = sim.schedule(1e-3, lambda: None)
    sim.schedule(2e-3, lambda: None)
    head.cancel()
    entries_before = sim.pending
    assert sim.peek_time() == 2e-3
    assert sim.pending == entries_before        # nothing popped
    assert sim.compact() == 1                   # explicit corpse removal
    assert sim.pending == entries_before - 1
    assert sim.peek_time() == 2e-3


def test_compact_on_clean_heap_is_noop():
    sim = Simulator()
    sim.schedule(1e-3, lambda: None)
    assert sim.compact() == 0
    assert sim.pending == 1


def test_peak_pending_high_water_mark():
    sim = Simulator()
    for i in range(5):
        sim.schedule((i + 1) * 1e-3, lambda: None)
    assert sim.peak_pending == 5
    sim.run()
    assert sim.pending == 0
    assert sim.peak_pending == 5


# -- reserved seqs and event chains ----------------------------------------


def test_reserved_seq_keeps_tie_break_position():
    """An event inserted late with a reserved seq fires in the position
    the reservation claimed, not its insertion time."""
    sim = Simulator()
    fired = []
    seq = sim.reserve_seq()                       # claims first place
    sim.schedule(1e-3, fired.append, "second")    # same fire time
    sim.schedule_reserved(1e-3, seq, fired.append, "first")
    sim.run()
    assert fired == ["first", "second"]


def test_event_chain_is_one_heap_entry_and_fires_in_order():
    sim = Simulator()
    fired = []
    chain = sim.schedule_chain([
        (3e-3, fired.append, ("c",)),
        (1e-3, fired.append, ("a",)),
        (2e-3, fired.append, ("b",)),
    ])
    assert sim.pending == 1                       # N entries, 1 in heap
    assert len(chain) == 3
    sim.run(until=1.5e-3)
    assert fired == ["a"]
    assert sim.pending == 1                       # successor armed
    sim.run()
    assert fired == ["a", "b", "c"]
    assert len(chain) == 0


def test_event_chain_matches_individual_schedules():
    """Chained and individually scheduled events interleave identically
    with a same-instant competitor (seqs claimed in declaration order)."""

    def fire_order(use_chain):
        sim = Simulator()
        fired = []
        if use_chain:
            sim.schedule_chain([(1e-3, fired.append, ("x",))])
        else:
            sim.schedule_at(1e-3, fired.append, "x")
        sim.schedule_at(1e-3, fired.append, "y")
        sim.run()
        return fired

    assert fire_order(True) == fire_order(False) == ["x", "y"]


def test_event_chain_cancel_stops_remaining():
    sim = Simulator()
    fired = []
    chain = sim.schedule_chain([
        (1e-3, fired.append, ("a",)),
        (2e-3, fired.append, ("b",)),
    ])
    sim.run(until=1.5e-3)
    chain.cancel()
    sim.run()
    assert fired == ["a"]
    assert sim.live_pending == 0
