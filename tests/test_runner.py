"""Tests for the experiment harness."""

import pytest

from repro.core.hypothetical import MwRecordingDctcp
from repro.experiments.runner import Scenario, format_table, run, run_all, two_pass
from repro.experiments.scenarios import (
    all_to_all_scenario,
    incast_scenario,
    sim_config,
    sim_fabric,
    testbed_scenario as _testbed_scenario,
    two_to_one_scenario,
)
from repro.transport.dctcp import Dctcp
from repro.workloads.distributions import WEB_SEARCH


def tiny_scenario(n_flows=20, **kwargs):
    return all_to_all_scenario(
        "tiny", WEB_SEARCH, n_flows=n_flows, size_cap=300_000,
        fabric=sim_fabric(n_leaf=2, n_spine=2, hosts_per_leaf=2), **kwargs)


def test_run_completes_all_flows():
    result = run(Dctcp(), tiny_scenario())
    assert result.completion_rate == 1.0
    assert result.stats.n_flows == 20
    assert result.scheme_name == "dctcp"
    assert "dctcp" in result.summary()


def test_run_deterministic():
    r1 = run(Dctcp(), tiny_scenario())
    r2 = run(Dctcp(), tiny_scenario())
    assert [f.fct for f in r1.flows] == [f.fct for f in r2.flows]


def test_run_different_seeds_differ():
    r1 = run(Dctcp(), tiny_scenario())
    r2 = run(Dctcp(), all_to_all_scenario(
        "tiny2", WEB_SEARCH, n_flows=20, size_cap=300_000, seed=99,
        fabric=sim_fabric(n_leaf=2, n_spine=2, hosts_per_leaf=2)))
    assert [f.fct for f in r1.flows] != [f.fct for f in r2.flows]


def test_run_all_runs_each_scheme():
    results = run_all([Dctcp(), MwRecordingDctcp()], tiny_scenario())
    assert set(results) == {"dctcp", "dctcp-recording"}


def test_instruments_hook():
    seen = {}

    def instruments(topo):
        seen["topo"] = topo
        return "probe"

    result = run(Dctcp(), tiny_scenario(), instruments=instruments)
    assert seen["topo"] is result.topology
    assert result.ctx.extra["instruments"] == "probe"


def test_two_pass_same_flows():
    base, hypo = two_pass(tiny_scenario())
    assert base.completion_rate == 1.0
    assert hypo.completion_rate == 1.0
    assert [f.size for f in base.flows] == [f.size for f in hypo.flows]


def test_max_time_safety_stop():
    scenario = tiny_scenario()
    scenario.max_time = 1e-6  # absurdly short
    result = run(Dctcp(), scenario)
    assert result.completed < len(result.flows)


def test_scenario_builders_shapes():
    s1 = incast_scenario("i", WEB_SEARCH, n_senders=4, n_flows=5)
    topo = s1.build_topology()
    flows = s1.build_flows(topo)
    assert all(f.dst == 0 for f in flows)

    s2 = two_to_one_scenario("t", n_flows=5)
    topo2 = s2.build_topology()
    flows2 = s2.build_flows(topo2)
    assert all(f.dst == 2 and f.src in (0, 1) for f in flows2)

    s3 = _testbed_scenario("tb", WEB_SEARCH, n_flows=5, pattern="incast")
    topo3 = s3.build_topology()
    assert topo3.n_hosts == 15
    flows3 = s3.build_flows(topo3)
    assert all(f.dst == 0 for f in flows3)
    assert s3.config.min_rto == pytest.approx(10e-3)


def test_format_table():
    rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
    text = format_table(rows)
    lines = text.splitlines()
    assert lines[0].split() == ["a", "b"]
    assert "10" in lines[3]
    assert format_table([]) == "(no rows)"
    assert "a" in format_table(rows, columns=["a"])
