"""Unit tests for Homa's per-host receiver manager internals."""

import pytest

from conftest import make_ctx, make_star
from repro.sim.packet import GRANT, Packet
from repro.transport.base import Flow
from repro.transport.homa import Homa, HomaReceiverHost, _MsgState


def make_manager(overcommit=2, rtt_bytes=45_000):
    topo = make_star(4)
    ctx = make_ctx(topo)
    scheme = Homa(rtt_bytes=rtt_bytes, overcommit=overcommit)
    manager = HomaReceiverHost(3, ctx, scheme)
    return manager, ctx, topo, scheme


def add_message(manager, ctx, flow_id, size, src=0):
    flow = Flow(flow_id, src, 3, size, 0.0)
    manager.add_message(flow)
    return flow


def test_initial_grant_covers_unscheduled_window():
    manager, ctx, topo, scheme = make_manager()
    flow = add_message(manager, ctx, 0, 1_000_000)
    state = manager.messages[0]
    assert state.granted == scheme.rtt_packets(flow, ctx)


def test_small_message_fully_granted_at_open():
    manager, ctx, topo, scheme = make_manager()
    add_message(manager, ctx, 0, 10_000)
    state = manager.messages[0]
    assert state.granted == state.n_packets


def test_srpt_ranking_prefers_fewest_remaining():
    manager, ctx, topo, scheme = make_manager()
    add_message(manager, ctx, 0, 2_000_000)
    add_message(manager, ctx, 1, 100_000, src=1)
    ranked = manager._ranked()
    assert ranked[0].flow.flow_id == 1
    assert ranked[1].flow.flow_id == 0


def test_regrant_extends_top_k_only():
    manager, ctx, topo, scheme = make_manager(overcommit=1)
    add_message(manager, ctx, 0, 2_000_000)
    add_message(manager, ctx, 1, 1_500_000, src=1)
    sent = []
    ctx.network.send_control = sent.append
    # deliver one packet of the larger message: triggers regrant
    pkt = Packet(1, 1, 3, 0, 1500)
    manager.on_data(pkt)
    # only the SRPT-best (flow 1, smaller remaining) may have been granted
    granted_flows = {g.flow_id for g in sent if g.kind == GRANT}
    assert granted_flows <= {1}


def test_completion_sends_final_grant_and_cleans_up():
    manager, ctx, topo, scheme = make_manager()
    flow = add_message(manager, ctx, 0, 2_000)  # 2 packets
    sent = []
    ctx.network.send_control = sent.append
    manager.on_data(Packet(0, 0, 3, 0, 1500))
    manager.on_data(Packet(0, 0, 3, 1, 1500))
    assert flow.completed
    assert 0 not in manager.messages
    finals = [g for g in sent if g.kind == GRANT and g.meta[3]]
    assert len(finals) == 1


def test_duplicate_data_ignored():
    manager, ctx, topo, scheme = make_manager()
    add_message(manager, ctx, 0, 10_000)
    manager.on_data(Packet(0, 0, 3, 0, 1500))
    state = manager.messages[0]
    before = len(state.delivered)
    manager.on_data(Packet(0, 0, 3, 0, 1500))
    assert len(state.delivered) == before


def test_missing_detection_with_cooldown():
    manager, ctx, topo, scheme = make_manager()
    add_message(manager, ctx, 0, 20_000)  # 14 packets
    state = manager.messages[0]
    state.delivered.update({0, 1, 5})
    state.cum = 2
    missing = manager._missing(state)
    assert missing == [2, 3, 4]
    # immediately re-asking is suppressed by the per-seq cooldown
    assert manager._missing(state) == []


def test_probe_grants_all_holes():
    manager, ctx, topo, scheme = make_manager()
    add_message(manager, ctx, 0, 20_000)
    state = manager.messages[0]
    state.delivered.update({1, 3})
    state.cum = 0
    sent = []
    ctx.network.send_control = sent.append
    probe = Packet(0, 0, 3, 10, 64)
    manager.on_probe(probe)
    (grant,) = sent
    _granted, missing, _prio, final = grant.meta
    assert 0 in missing and 2 in missing
    assert 1 not in missing and 3 not in missing
    assert not final
