"""Tests for the Homa receiver-driven transport."""

import pytest

from conftest import make_ctx, make_star, run_single_flow
from repro.transport.base import Flow
from repro.transport.homa import Homa, unscheduled_priority


def test_unscheduled_priority_by_size():
    assert unscheduled_priority(500) == 0
    assert unscheduled_priority(50_000) == 1
    assert unscheduled_priority(500_000) == 2
    assert unscheduled_priority(5_000_000) == 3


def test_small_message_fully_unscheduled():
    scheme = Homa(rtt_bytes=45_000)
    flow, ctx, topo = run_single_flow(scheme, 10_000)
    assert flow.completed
    sender = topo.network.hosts[0].endpoints[0]
    # the whole message fit in RTTbytes: no grant-driven sends needed
    assert sender.pkts_transmitted >= flow.n_packets(ctx.config.mss)


def test_large_message_waits_for_grants():
    scheme = Homa(rtt_bytes=45_000)
    topo = make_star()
    ctx = make_ctx(topo)
    flow = Flow(0, 0, 1, 1_000_000, 0.0)
    scheme.start_flow(flow, ctx)
    sender = topo.network.hosts[0].endpoints[0]
    # before any grant returns, only the unscheduled window has gone out
    assert sender.next_seq == 45_000 // ctx.config.mss
    topo.sim.run(until=2.0)
    assert flow.completed
    assert sender.next_seq == sender.n_packets


def test_grants_extend_window():
    scheme = Homa(rtt_bytes=45_000)
    flow, ctx, topo = run_single_flow(scheme, 500_000, until=2.0)
    assert flow.completed
    manager = ctx.extra["homa_rx"][1]
    assert not manager.messages  # cleaned up after completion


def test_srpt_prefers_shorter_message():
    """With two inbound messages, the shorter must finish first."""
    scheme = Homa(rtt_bytes=45_000)
    topo = make_star(3)
    ctx = make_ctx(topo)
    long_flow = Flow(0, 0, 2, 2_000_000, 0.0)
    short_flow = Flow(1, 1, 2, 150_000, 0.0)
    scheme.start_flow(long_flow, ctx)
    scheme.start_flow(short_flow, ctx)
    topo.sim.run(until=5.0)
    assert short_flow.completed and long_flow.completed
    assert short_flow.finish_time < long_flow.finish_time


def test_overcommit_limits_concurrent_grants():
    scheme = Homa(rtt_bytes=45_000, overcommit=1)
    topo = make_star(4)
    ctx = make_ctx(topo)
    flows = [Flow(i, i, 3, 1_000_000, 0.0) for i in range(3)]
    for f in flows:
        scheme.start_flow(f, ctx)
    topo.sim.run(until=50e-6)
    manager = ctx.extra["homa_rx"][3]
    unsched = scheme.rtt_packets(flows[0], ctx)
    granted_beyond_unscheduled = [
        m for m in manager.messages.values() if m.granted > unsched]
    assert len(granted_beyond_unscheduled) <= 1


def test_timeout_recovery_under_loss():
    """Homa has timeout-only loss recovery (as the paper evaluates it):
    with a tiny buffer the flow still completes."""
    from repro.sim.network import QueueConfig
    from repro.sim.topology import star
    from repro.units import gbps, us
    qcfg = QueueConfig(buffer_bytes=15_000)
    topo = star(3, rate=gbps(40), prop_delay=us(4), qcfg=qcfg)
    scheme = Homa(rtt_bytes=45_000)
    ctx = make_ctx(topo)
    flows = [Flow(0, 0, 2, 400_000, 0.0), Flow(1, 1, 2, 400_000, 0.0)]
    for f in flows:
        scheme.start_flow(f, ctx)
    topo.sim.run(until=5.0)
    assert all(f.completed for f in flows)


def test_rtt_bytes_default_derives_bdp():
    scheme = Homa()
    topo = make_star()
    ctx = make_ctx(topo)
    flow = Flow(0, 0, 1, 1_000_000, 0.0)
    assert scheme.rtt_packets(flow, ctx) == ctx.bdp_packets(flow)


def test_final_grant_stops_sender():
    scheme = Homa(rtt_bytes=45_000)
    flow, ctx, topo = run_single_flow(scheme, 200_000, until=2.0)
    sender = topo.network.hosts[0].endpoints[0]
    assert sender.finished
    assert sender._rto_event is None
