"""Tests for PIAS priority demotion."""

from conftest import make_ctx, make_star, run_single_flow
from repro.transport.base import Flow
from repro.transport.pias import Pias, PiasSender, demotion_priority


def test_demotion_priority_levels():
    thresholds = (100, 200, 300)
    assert demotion_priority(0, thresholds) == 0
    assert demotion_priority(99, thresholds) == 0
    assert demotion_priority(100, thresholds) == 1
    assert demotion_priority(250, thresholds) == 2
    assert demotion_priority(300, thresholds) == 3
    assert demotion_priority(10**9, thresholds) == 3


def test_sender_priority_by_bytes_sent():
    topo = make_star()
    ctx = make_ctx(topo, demotion_thresholds=(10_000, 100_000, 1_000_000))
    sender = PiasSender(Flow(0, 0, 1, 5_000_000, 0.0), ctx)
    payload = ctx.config.payload_per_packet()
    assert sender.priority_for(0) == 0
    assert sender.priority_for(10_000 // payload + 1) == 1
    assert sender.priority_for(100_000 // payload + 1) == 2
    assert sender.priority_for(1_000_000 // payload + 1) == 3


def test_small_flow_stays_at_top_priority():
    topo = make_star()
    ctx = make_ctx(topo)
    sender = PiasSender(Flow(0, 0, 1, 50_000, 0.0), ctx)
    n = sender.n_packets
    assert all(sender.priority_for(seq) == 0 for seq in range(n))


def test_end_to_end_completion():
    flow, ctx, _ = run_single_flow(Pias(), 2_000_000, until=5.0)
    assert flow.completed


def test_demotion_observed_on_wire():
    """A multi-MB flow's packets must actually leave at demoted
    priorities."""
    seen = set()
    from repro.sim.link import Port
    flow, ctx, topo = run_single_flow(Pias(), 500_000, until=5.0,
                                      demotion_thresholds=(100_000, 200_000,
                                                           300_000))
    sender = topo.network.hosts[0].endpoints[0]
    priorities = {sender.priority_for(seq) for seq in range(sender.n_packets)}
    assert priorities == {0, 1, 2, 3}
