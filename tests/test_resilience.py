"""Checkpoint/resume: bit-identity, versioning, atomicity, CLI plumbing.

The headline guarantee under test: a run stopped at any checkpoint and
resumed later is **bit-identical** to a run that never stopped — same
per-flow FCTs (down to the float repr), same event count, same telemetry
event trace, same validation verdict.  The property test drives that
across schemes (DCTCP, PPT, Homa, NDP), topologies and mid-run fault
plans; the double-restart test kills and resumes the same run twice.
"""

import io
import os
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import SCHEME_FACTORIES
from repro.experiments.runner import run
from repro.experiments.scenarios import (
    all_to_all_scenario,
    incast_scenario,
    sim_fabric,
    soak_scenario,
)
from repro.faults import FaultPlan, LinkDown, PacketLoss
from repro.resilience import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    CheckpointError,
    RunState,
    inspect_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.transport.dctcp import Dctcp
from repro.workloads.distributions import WEB_SEARCH

FABRICS = {
    "tiny": lambda: sim_fabric(n_leaf=2, n_spine=2, hosts_per_leaf=2),
    "wide": lambda: sim_fabric(n_leaf=2, n_spine=1, hosts_per_leaf=4),
}

PLANS = {
    "none": None,
    "down": FaultPlan([LinkDown("leaf0->spine0", 0.0001, 0.001)]),
    "loss": FaultPlan([PacketLoss("leaf*->spine0", 0.02, 0.0, 0.01)], seed=5),
}


def scenario_for(fabric_key, plan_key, seed):
    # max_time=0.02 puts drain slices at the 100us floor (max_time/200,
    # floored at 1e-4); the runs here last >= 250us, so every run spans
    # several slices and checkpoint_every=0.0 always lands at least one
    # snapshot before the heap empties
    return all_to_all_scenario(
        f"ckpt-{fabric_key}-{plan_key}-{seed}", WEB_SEARCH, load=0.5,
        n_flows=12, size_cap=150_000, seed=seed,
        fabric=FABRICS[fabric_key](), faults=PLANS[plan_key], max_time=0.02)


def fct_fingerprint(result):
    # repr() captures every bit of the float — equality is bit-identity
    return [(f.flow_id, f.completed, repr(f.fct)) for f in result.flows]


def trace_fingerprint(telemetry):
    return [e.to_dict() for e in telemetry.iter_events()]


@pytest.fixture
def ckpt_path(tmp_path):
    return str(tmp_path / "run.ckpt")


# -- bit-identity ----------------------------------------------------------


@settings(max_examples=8, deadline=None)
@given(scheme=st.sampled_from(["dctcp", "ppt", "homa", "ndp"]),
       fabric=st.sampled_from(sorted(FABRICS)),
       plan=st.sampled_from(sorted(PLANS)),
       seed=st.integers(min_value=1, max_value=4))
def test_resume_bit_identical_property(tmp_path_factory, scheme, fabric,
                                       plan, seed):
    """checkpoint -> resume == straight-through, across schemes,
    topologies and mid-run fault plans."""
    path = str(tmp_path_factory.mktemp("ck") / "run.ckpt")
    factory = SCHEME_FACTORIES[scheme]

    straight = run(factory(), scenario_for(fabric, plan, seed))
    checked = run(factory(), scenario_for(fabric, plan, seed),
                  checkpoint_every=0.0, checkpoint_path=path)
    # checkpointing itself must be invisible
    assert fct_fingerprint(checked) == fct_fingerprint(straight)
    assert checked.wall_events == straight.wall_events

    if not os.path.exists(path):
        # run finished within one drain slice; nothing left to resume
        return
    state = load_checkpoint(path)
    if state.sim.events_run >= straight.wall_events:
        return
    resumed = run(resume=state)
    assert fct_fingerprint(resumed) == fct_fingerprint(straight)
    assert resumed.wall_events == straight.wall_events
    assert resumed.health == straight.health


def test_resume_from_every_checkpoint_is_identical(tmp_path):
    """Every snapshot along one run — not just the last — resumes to the
    same end state."""
    path = str(tmp_path / "run.ckpt")
    copies = []

    real_save = save_checkpoint

    def hoarding_save(state, p):
        header = real_save(state, p)
        copies.append((header["sim_time"],
                       (tmp_path / f"copy{len(copies)}.ckpt")))
        import shutil
        shutil.copy(p, copies[-1][1])
        return header

    import repro.experiments.runner as runner_mod
    straight = run(Dctcp(), scenario_for("tiny", "loss", 3))
    old = runner_mod.save_checkpoint
    runner_mod.save_checkpoint = hoarding_save
    try:
        checked = run(Dctcp(), scenario_for("tiny", "loss", 3),
                      checkpoint_every=0.0, checkpoint_path=path)
    finally:
        runner_mod.save_checkpoint = old
    assert fct_fingerprint(checked) == fct_fingerprint(straight)
    assert copies, "run finished without writing any checkpoint"

    for _sim_time, copy in copies:
        resumed = run(resume=str(copy))
        assert fct_fingerprint(resumed) == fct_fingerprint(straight)
        assert resumed.wall_events == straight.wall_events


def test_double_restart_kill_resume_kill_resume(tmp_path, monkeypatch):
    """Resume a run, checkpoint *again* mid-resume, resume that — the
    final state is still bit-identical to never having stopped."""
    first = str(tmp_path / "first.ckpt")
    second = str(tmp_path / "second.ckpt")
    scenario = lambda: scenario_for("tiny", "down", 2)

    straight = run(Dctcp(), scenario())

    # keep only the *earliest* snapshot per file — checkpoint_every=0.0
    # would otherwise overwrite it every slice and leave the finished
    # state, making both restarts trivial
    import repro.experiments.runner as runner_mod
    real_save = save_checkpoint

    def first_only(state, p):
        if not os.path.exists(p):
            return real_save(state, p)
        return state.header()

    monkeypatch.setattr(runner_mod, "save_checkpoint", first_only)
    run(Dctcp(), scenario(), checkpoint_every=0.0, checkpoint_path=first)

    # restart #1: load the early snapshot, keep checkpointing elsewhere
    assert os.path.exists(first), "run finished without any checkpoint"
    state = load_checkpoint(first)
    assert state.sim.events_run < straight.wall_events, \
        "first snapshot should be mid-flight"
    resumed_once = run(resume=state, checkpoint_every=0.0,
                       checkpoint_path=second)
    assert fct_fingerprint(resumed_once) == fct_fingerprint(straight)

    # restart #2: resume the checkpoint written during the resumed run
    state2 = load_checkpoint(second)
    resumed_twice = run(resume=state2)
    assert fct_fingerprint(resumed_twice) == fct_fingerprint(straight)
    assert resumed_twice.wall_events == straight.wall_events


def test_observed_and_validated_run_survives_resume(tmp_path):
    """Telemetry and the invariant auditor travel inside the snapshot;
    the resumed trace equals the straight-through trace and the auditor
    re-certifies the restored engine with zero violations."""
    path = str(tmp_path / "run.ckpt")
    straight = run(Dctcp(), scenario_for("tiny", "loss", 1),
                   observe=True, validate=True)
    run(Dctcp(), scenario_for("tiny", "loss", 1),
        observe=True, validate=True,
        checkpoint_every=0.0, checkpoint_path=path)
    assert os.path.exists(path), "run finished without any checkpoint"
    state = load_checkpoint(path)
    if state.sim.events_run >= straight.wall_events:
        pytest.skip("run too short to checkpoint mid-flight")
    resumed = run(resume=state)
    assert fct_fingerprint(resumed) == fct_fingerprint(straight)
    assert trace_fingerprint(resumed.telemetry) == \
        trace_fingerprint(straight.telemetry)
    assert resumed.validation is not None and resumed.validation.ok
    # on_restore ran extra checks, so the resumed report did more work
    assert resumed.validation.checks_run >= straight.validation.checks_run


# -- format, versioning, atomicity ----------------------------------------


def test_header_inspection_is_cheap_and_correct(ckpt_path):
    run(Dctcp(), scenario_for("tiny", "none", 1),
        checkpoint_every=0.0, checkpoint_path=ckpt_path)
    header = inspect_checkpoint(ckpt_path)
    assert header["format"] == CHECKPOINT_FORMAT
    assert header["version"] == CHECKPOINT_VERSION
    assert header["scheme"] == "dctcp"
    assert header["n_flows"] == 12
    assert header["checkpoints_taken"] >= 1


def test_version_mismatch_is_refused(ckpt_path):
    run(Dctcp(), scenario_for("tiny", "none", 1),
        checkpoint_every=0.0, checkpoint_path=ckpt_path)
    state = load_checkpoint(ckpt_path)
    header = state.header()
    header["version"] = CHECKPOINT_VERSION + 1
    buf = io.BytesIO()
    pickle.dump(header, buf)
    pickle.dump(state, buf)
    with open(ckpt_path, "wb") as fh:
        fh.write(buf.getvalue())
    with pytest.raises(CheckpointError, match="version"):
        load_checkpoint(ckpt_path)
    with pytest.raises(CheckpointError, match="version"):
        inspect_checkpoint(ckpt_path)


def test_foreign_and_missing_files_are_refused(tmp_path):
    garbage = tmp_path / "garbage.bin"
    garbage.write_bytes(b"\x00\x01\x02 not a checkpoint")
    with pytest.raises(CheckpointError):
        load_checkpoint(str(garbage))
    wrong_format = tmp_path / "wrong.ckpt"
    with open(wrong_format, "wb") as fh:
        pickle.dump({"format": "something-else", "version": 1}, fh)
    with pytest.raises(CheckpointError, match="not a"):
        load_checkpoint(str(wrong_format))
    with pytest.raises(CheckpointError, match="cannot open"):
        load_checkpoint(str(tmp_path / "does-not-exist.ckpt"))


def test_scheme_scenario_mismatch_is_refused(ckpt_path):
    run(Dctcp(), scenario_for("tiny", "none", 1),
        checkpoint_every=0.0, checkpoint_path=ckpt_path)
    from repro.core.ppt import Ppt
    with pytest.raises(CheckpointError, match="scheme"):
        run(Ppt(), scenario_for("tiny", "none", 1), resume=ckpt_path)
    with pytest.raises(CheckpointError, match="scenario"):
        run(Dctcp(), scenario_for("wide", "none", 1), resume=ckpt_path)


def test_resume_rejects_observe_validate_instruments(ckpt_path):
    run(Dctcp(), scenario_for("tiny", "none", 1),
        checkpoint_every=0.0, checkpoint_path=ckpt_path)
    with pytest.raises(ValueError, match="baked into"):
        run(resume=ckpt_path, observe=True)
    with pytest.raises(ValueError, match="baked into"):
        run(resume=ckpt_path, validate=True)


def test_atomic_write_leaves_no_temp_files(tmp_path):
    path = str(tmp_path / "run.ckpt")
    run(Dctcp(), scenario_for("tiny", "none", 2),
        checkpoint_every=0.0, checkpoint_path=path)
    leftovers = [p.name for p in tmp_path.iterdir() if p.name != "run.ckpt"]
    assert leftovers == []


# -- soak scenario ---------------------------------------------------------


def test_soak_scenario_smoke_under_validate():
    """A short soak horizon: faults fire, every flow completes, zero
    invariant violations."""
    scenario = soak_scenario(horizon=60.0, fault_period=10.0, seed=2)
    result = run(Dctcp(), scenario, validate=True)
    assert result.health.ok, result.health.summary()
    assert result.validation.ok
    assert len(result.health.fault_windows) >= 5
    assert result.health.sim_time > 30.0


def test_soak_scenario_checkpoints_and_resumes(tmp_path):
    path = str(tmp_path / "soak.ckpt")
    straight = run(Dctcp(), soak_scenario(horizon=60.0, fault_period=10.0))
    run(Dctcp(), soak_scenario(horizon=60.0, fault_period=10.0),
        checkpoint_every=5.0, checkpoint_path=path)
    state = load_checkpoint(path)
    resumed = run(resume=state)
    assert fct_fingerprint(resumed) == fct_fingerprint(straight)
    assert resumed.wall_events == straight.wall_events


def test_soak_rejects_bad_horizon():
    with pytest.raises(ValueError, match="horizon"):
        soak_scenario(horizon=0.0)
    from repro.experiments.scenarios import soak_fault_plan
    with pytest.raises(ValueError, match="period"):
        soak_fault_plan(10.0, period=-1.0)


# -- CLI -------------------------------------------------------------------


def test_cli_checkpoint_and_resume_roundtrip(tmp_path, capsys):
    from repro.cli import main
    path = str(tmp_path / "cli.ckpt")
    # a soak run spans hundreds of drain slices, so --checkpoint-every
    # has plenty of boundaries to land snapshots on
    base = ["run", "--schemes", "dctcp", "--soak", "20", "--seed", "3"]
    assert main(base) == 0
    table = capsys.readouterr().out
    assert main(base + ["--checkpoint", path, "--checkpoint-every", "5.0"]) \
        == 0
    assert capsys.readouterr().out == table
    assert main(["run", "--resume", path]) == 0
    assert capsys.readouterr().out == table


def test_cli_checkpoint_flag_validation(capsys):
    from repro.cli import main
    # needs --checkpoint-every
    assert main(["run", "--schemes", "dctcp", "--flows", "8",
                 "--checkpoint", "/tmp/x.ckpt"]) == 2
    # one checkpoint file describes one run
    assert main(["run", "--schemes", "dctcp", "ppt", "--flows", "8",
                 "--checkpoint", "/tmp/x.ckpt",
                 "--checkpoint-every", "0.1"]) == 2
    # a missing checkpoint is a clean error, not a traceback
    assert main(["run", "--resume", "/tmp/definitely-missing.ckpt"]) == 2


def test_cli_soak_flag(capsys):
    from repro.cli import main
    assert main(["run", "--schemes", "dctcp", "--soak", "20",
                 "--validate", "--health"]) == 0
    out = capsys.readouterr().out
    assert "dctcp" in out


# -- fault plan construction validation ------------------------------------


def test_fault_plan_rejects_negative_start():
    with pytest.raises(ValueError, match="negative"):
        FaultPlan([LinkDown("sw0->sw1", -0.5, 1.0)])


def test_fault_plan_rejects_end_before_start():
    with pytest.raises(ValueError, match="before it starts"):
        FaultPlan([PacketLoss("sw0->sw1", 0.1, start=2.0, end=1.0)])


def test_fault_plan_rejects_bad_rates_and_cycles():
    from repro.faults import LinkFlap, RateDegrade
    with pytest.raises(ValueError, match="probability"):
        FaultPlan([PacketLoss("sw0->sw1", 1.5)])
    with pytest.raises(ValueError, match="cycles"):
        FaultPlan([LinkFlap("sw0->sw1", 0.1, 0.1, 0.1, cycles=0)])
    with pytest.raises(ValueError, match="factor"):
        FaultPlan([RateDegrade("sw0->sw1", 0.0, 0.1)])
    with pytest.raises(ValueError, match="duration"):
        FaultPlan([LinkDown("sw0->sw1", 0.1, 0.0)])


def test_fault_plan_rejects_duplicate_injectors():
    with pytest.raises(ValueError, match="duplicate"):
        FaultPlan([LinkDown("sw0->sw1", 0.1, 0.2),
                   LinkDown("sw0->sw1", 0.1, 0.2)])
    # distinct timings on the same port are fine
    FaultPlan([LinkDown("sw0->sw1", 0.1, 0.2),
               LinkDown("sw0->sw1", 0.5, 0.2)])
