"""Tests for the Poisson flow generator and traffic patterns."""

import random

import pytest

from repro.transport.base import Flow
from repro.units import gbps
from repro.workloads.distributions import WEB_SEARCH
from repro.workloads.generator import poisson_flows
from repro.workloads.patterns import all_to_all, fixed_pairs, incast, permutation


def test_flow_count_and_ids():
    flows = poisson_flows(all_to_all(range(8)), WEB_SEARCH, load=0.5,
                          link_rate=gbps(10), n_flows=50, n_senders=8)
    assert len(flows) == 50
    assert [f.flow_id for f in flows] == list(range(50))


def test_start_times_nondecreasing_from_zero():
    flows = poisson_flows(all_to_all(range(4)), WEB_SEARCH, load=0.5,
                          link_rate=gbps(10), n_flows=30, n_senders=4)
    times = [f.start_time for f in flows]
    assert times[0] == 0.0
    assert times == sorted(times)


def test_offered_load_approximates_target():
    """Total offered bytes over the arrival horizon approximates
    load x capacity."""
    load, rate, n = 0.5, gbps(10), 3000
    flows = poisson_flows(all_to_all(range(4)), WEB_SEARCH, load=load,
                          link_rate=rate, n_flows=n, n_senders=4,
                          size_cap=1_000_000, seed=42)
    horizon = flows[-1].start_time
    offered = sum(f.size for f in flows) * 8 / horizon
    assert offered == pytest.approx(load * 4 * rate, rel=0.15)


def test_seed_determinism():
    a = poisson_flows(all_to_all(range(4)), WEB_SEARCH, load=0.5,
                      link_rate=gbps(10), n_flows=20, n_senders=4, seed=1)
    b = poisson_flows(all_to_all(range(4)), WEB_SEARCH, load=0.5,
                      link_rate=gbps(10), n_flows=20, n_senders=4, seed=1)
    assert [(f.src, f.dst, f.size, f.start_time) for f in a] == \
           [(f.src, f.dst, f.size, f.start_time) for f in b]


def test_size_cap_enforced():
    flows = poisson_flows(all_to_all(range(4)), WEB_SEARCH, load=0.5,
                          link_rate=gbps(10), n_flows=200, n_senders=4,
                          size_cap=250_000)
    assert max(f.size for f in flows) <= 250_000


def test_invalid_args_rejected():
    with pytest.raises(ValueError):
        poisson_flows(all_to_all(range(4)), WEB_SEARCH, load=0.0,
                      link_rate=gbps(10), n_flows=10)
    with pytest.raises(ValueError):
        poisson_flows(all_to_all(range(4)), WEB_SEARCH, load=0.5,
                      link_rate=gbps(10), n_flows=0)


def test_first_flow_id_offset():
    flows = poisson_flows(all_to_all(range(4)), WEB_SEARCH, load=0.5,
                          link_rate=gbps(10), n_flows=5, n_senders=4,
                          first_flow_id=100)
    assert [f.flow_id for f in flows] == [100, 101, 102, 103, 104]


# -- patterns ----------------------------------------------------------------


def test_all_to_all_no_self_pairs():
    sampler = all_to_all(range(6))
    rng = random.Random(0)
    for _ in range(500):
        src, dst = sampler(rng)
        assert src != dst
        assert 0 <= src < 6 and 0 <= dst < 6


def test_all_to_all_requires_two_hosts():
    with pytest.raises(ValueError):
        all_to_all([1])


def test_incast_fixed_receiver():
    sampler = incast(range(5), receiver=4)
    rng = random.Random(0)
    for _ in range(100):
        src, dst = sampler(rng)
        assert dst == 4
        assert src != 4


def test_incast_requires_a_sender():
    with pytest.raises(ValueError):
        incast([3], receiver=3)


def test_fixed_pairs():
    sampler = fixed_pairs([(0, 1), (2, 3)])
    rng = random.Random(0)
    pairs = {sampler(rng) for _ in range(50)}
    assert pairs <= {(0, 1), (2, 3)}


def test_permutation_is_derangement():
    sampler = permutation(range(10), seed=3)
    rng = random.Random(0)
    for _ in range(100):
        src, dst = sampler(rng)
        assert src != dst


def test_permutation_rejects_fewer_than_two_hosts():
    with pytest.raises(ValueError, match="at least two hosts"):
        permutation([4])
    with pytest.raises(ValueError, match="at least two hosts"):
        permutation([])


def test_permutation_rejects_impossible_derangement():
    # duplicate host ids: every shuffle of [1, 1] keeps a fixed point,
    # so the retry budget must run out and raise instead of silently
    # producing src == dst pairs
    with pytest.raises(ValueError, match="no derangement"):
        permutation([1, 1], seed=0)


def test_fixed_pairs_rejects_self_pair():
    with pytest.raises(ValueError, match="src == dst"):
        fixed_pairs([(0, 1), (2, 2)])


def test_poisson_flows_rejects_self_pair_pattern():
    with pytest.raises(ValueError, match="src == dst"):
        poisson_flows(lambda rng: (3, 3), WEB_SEARCH, load=0.5,
                      link_rate=gbps(10), n_flows=5)


@pytest.mark.parametrize("make", [
    lambda: all_to_all(range(6)),
    lambda: incast(range(5), receiver=4),
    lambda: fixed_pairs([(0, 1), (2, 3)]),
    lambda: permutation(range(8), seed=3),
])
def test_patterns_pickle_and_draw_identically(make):
    """Patterns ride inside FlowStreams across checkpoint and worker
    boundaries, so they must survive pickle with behaviour intact."""
    import pickle

    original = make()
    clone = pickle.loads(pickle.dumps(original))

    def draws(sampler):
        rng = random.Random(9)
        return [sampler(rng) for _ in range(50)]

    assert draws(original) == draws(clone)
