"""Tests for the Poisson flow generator and traffic patterns."""

import random

import pytest

from repro.transport.base import Flow
from repro.units import gbps
from repro.workloads.distributions import WEB_SEARCH
from repro.workloads.generator import poisson_flows
from repro.workloads.patterns import all_to_all, fixed_pairs, incast, permutation


def test_flow_count_and_ids():
    flows = poisson_flows(all_to_all(range(8)), WEB_SEARCH, load=0.5,
                          link_rate=gbps(10), n_flows=50, n_senders=8)
    assert len(flows) == 50
    assert [f.flow_id for f in flows] == list(range(50))


def test_start_times_nondecreasing_from_zero():
    flows = poisson_flows(all_to_all(range(4)), WEB_SEARCH, load=0.5,
                          link_rate=gbps(10), n_flows=30, n_senders=4)
    times = [f.start_time for f in flows]
    assert times[0] == 0.0
    assert times == sorted(times)


def test_offered_load_approximates_target():
    """Total offered bytes over the arrival horizon approximates
    load x capacity."""
    load, rate, n = 0.5, gbps(10), 3000
    flows = poisson_flows(all_to_all(range(4)), WEB_SEARCH, load=load,
                          link_rate=rate, n_flows=n, n_senders=4,
                          size_cap=1_000_000, seed=42)
    horizon = flows[-1].start_time
    offered = sum(f.size for f in flows) * 8 / horizon
    assert offered == pytest.approx(load * 4 * rate, rel=0.15)


def test_seed_determinism():
    a = poisson_flows(all_to_all(range(4)), WEB_SEARCH, load=0.5,
                      link_rate=gbps(10), n_flows=20, n_senders=4, seed=1)
    b = poisson_flows(all_to_all(range(4)), WEB_SEARCH, load=0.5,
                      link_rate=gbps(10), n_flows=20, n_senders=4, seed=1)
    assert [(f.src, f.dst, f.size, f.start_time) for f in a] == \
           [(f.src, f.dst, f.size, f.start_time) for f in b]


def test_size_cap_enforced():
    flows = poisson_flows(all_to_all(range(4)), WEB_SEARCH, load=0.5,
                          link_rate=gbps(10), n_flows=200, n_senders=4,
                          size_cap=250_000)
    assert max(f.size for f in flows) <= 250_000


def test_invalid_args_rejected():
    with pytest.raises(ValueError):
        poisson_flows(all_to_all(range(4)), WEB_SEARCH, load=0.0,
                      link_rate=gbps(10), n_flows=10)
    with pytest.raises(ValueError):
        poisson_flows(all_to_all(range(4)), WEB_SEARCH, load=0.5,
                      link_rate=gbps(10), n_flows=0)


def test_first_flow_id_offset():
    flows = poisson_flows(all_to_all(range(4)), WEB_SEARCH, load=0.5,
                          link_rate=gbps(10), n_flows=5, n_senders=4,
                          first_flow_id=100)
    assert [f.flow_id for f in flows] == [100, 101, 102, 103, 104]


# -- patterns ----------------------------------------------------------------


def test_all_to_all_no_self_pairs():
    sampler = all_to_all(range(6))
    rng = random.Random(0)
    for _ in range(500):
        src, dst = sampler(rng)
        assert src != dst
        assert 0 <= src < 6 and 0 <= dst < 6


def test_all_to_all_requires_two_hosts():
    with pytest.raises(ValueError):
        all_to_all([1])


def test_incast_fixed_receiver():
    sampler = incast(range(5), receiver=4)
    rng = random.Random(0)
    for _ in range(100):
        src, dst = sampler(rng)
        assert dst == 4
        assert src != 4


def test_incast_requires_a_sender():
    with pytest.raises(ValueError):
        incast([3], receiver=3)


def test_fixed_pairs():
    sampler = fixed_pairs([(0, 1), (2, 3)])
    rng = random.Random(0)
    pairs = {sampler(rng) for _ in range(50)}
    assert pairs <= {(0, 1), (2, 3)}


def test_permutation_is_derangement():
    sampler = permutation(range(10), seed=3)
    rng = random.Random(0)
    for _ in range(100):
        src, dst = sampler(rng)
        assert src != dst
