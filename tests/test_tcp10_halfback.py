"""Tests for the TCP-10 and Halfback reactive baselines."""

import pytest

from conftest import make_ctx, make_star, run_single_flow
from repro.transport.base import Flow
from repro.transport.dctcp import Dctcp
from repro.transport.halfback import PACE_OUT_LIMIT, Halfback, HalfbackSender
from repro.transport.tcp10 import Tcp10, Tcp10Sender


# -- TCP-10 -------------------------------------------------------------------


def test_tcp10_completes():
    flow, ctx, _ = run_single_flow(Tcp10(), 500_000, until=2.0)
    assert flow.completed


def test_tcp10_not_ecn_capable():
    topo = make_star()
    ctx = make_ctx(topo)
    sender = Tcp10Sender(Flow(0, 0, 1, 100_000, 0.0), ctx)
    assert not sender.ecn_capable()
    assert not sender.build_packet(0).ecn_capable


def test_tcp10_initial_window_is_ten():
    topo = make_star()
    ctx = make_ctx(topo)
    sender = Tcp10Sender(Flow(0, 0, 1, 1_000_000, 0.0), ctx)
    assert sender.cwnd == 10.0


def test_tcp10_under_contention():
    topo = make_star(3)
    ctx = make_ctx(topo)
    scheme = Tcp10()
    flows = [Flow(0, 0, 2, 300_000, 0.0), Flow(1, 1, 2, 300_000, 0.0)]
    for f in flows:
        scheme.start_flow(f, ctx)
    topo.sim.run(until=5.0)
    assert all(f.completed for f in flows)


# -- Halfback -----------------------------------------------------------------


def test_halfback_paces_out_small_flow():
    topo = make_star()
    ctx = make_ctx(topo)
    sender = HalfbackSender(Flow(0, 0, 1, 100_000, 0.0), ctx)
    assert sender.paced_out


def test_halfback_large_flow_uses_slow_start():
    topo = make_star()
    ctx = make_ctx(topo)
    sender = HalfbackSender(Flow(0, 0, 1, PACE_OUT_LIMIT + 1, 0.0), ctx)
    assert not sender.paced_out


def test_halfback_small_flow_fast_completion():
    """A paced-out flow finishes in about one RTT plus serialization."""
    f_halfback, _, topo = run_single_flow(Halfback(), 100_000)
    f_dctcp, _, _ = run_single_flow(Dctcp(), 100_000)
    assert f_halfback.completed
    assert f_halfback.fct < f_dctcp.fct  # beats slow start


def test_halfback_large_flow_completes():
    flow, ctx, _ = run_single_flow(Halfback(), 1_000_000, until=5.0)
    assert flow.completed


def test_halfback_backwards_redundancy_under_loss():
    """With a lossy switch, the backwards retransmission repairs tail
    losses without waiting for RTO."""
    from repro.sim.network import QueueConfig
    from repro.sim.topology import star
    from repro.units import gbps, us
    qcfg = QueueConfig(buffer_bytes=15_000)
    topo = star(3, rate=gbps(40), prop_delay=us(4), qcfg=qcfg)
    ctx = make_ctx(topo, min_rto=50e-3)  # make timeouts very expensive
    scheme = Halfback()
    flows = [Flow(0, 0, 2, 100_000, 0.0), Flow(1, 1, 2, 100_000, 0.0)]
    for f in flows:
        scheme.start_flow(f, ctx)
    topo.sim.run(until=1.0)
    assert all(f.completed for f in flows)
    assert max(f.fct for f in flows) < 40e-3  # no full RTO was needed


def test_halfback_redundancy_is_scavenger_class():
    topo = make_star()
    ctx = make_ctx(topo)
    sender = HalfbackSender(Flow(0, 0, 1, 50_000, 0.0), ctx)

    class FakePort:
        def __init__(self):
            self.sent = []

        def send(self, pkt):
            self.sent.append(pkt)
            return True

    fake = FakePort()
    sender.host.uplink = fake
    sender._backwards_round()
    (pkt,) = fake.sent
    assert pkt.retransmit
    assert pkt.lcp
    assert pkt.priority == 7


def test_halfback_backwards_sweep_wraps():
    """After covering the whole tail once, the backwards pointer wraps
    and keeps repairing until everything is delivered."""
    topo = make_star()
    ctx = make_ctx(topo)
    sender = HalfbackSender(Flow(0, 0, 1, 30_000, 0.0), ctx)  # 21 packets

    class FakePort:
        def __init__(self):
            self.sent = []

        def send(self, pkt):
            self.sent.append(pkt)
            return True

    fake = FakePort()
    sender.host.uplink = fake
    # drive the backwards loop manually across a full sweep
    for _ in range(sender.n_packets):
        sender._backwards_round()
    first_sweep = [p.seq for p in fake.sent]
    assert first_sweep == list(range(sender.n_packets - 1, -1, -1))
    # pointer wrapped: a re-scheduled round was queued; run it
    topo.sim.run(until=1.0)
    assert len(fake.sent) > sender.n_packets  # second sweep began
