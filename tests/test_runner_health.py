"""Acceptance tests for the run-health layer in experiments.runner."""

import pytest

from conftest import quick_qcfg
from repro.faults import FaultPlan, LinkDown, PacketLoss
from repro.sim.topology import dumbbell
from repro.transport.base import Flow, TransportConfig
from repro.transport.dctcp import Dctcp
from repro.experiments.runner import RunHealth, Scenario, run
from repro.units import gbps, us


def make_scenario(name="health", *, size=300_000, n_flows=1,
                  max_time=2.0, **kwargs):
    """One (or a few) large flows host0 -> host1 on a 10G dumbbell,
    all starting at t=0 so fault timing is under test control."""

    def build_topology():
        return dumbbell(rate=gbps(10), prop_delay=us(5), qcfg=quick_qcfg())

    def build_flows(topo):
        return [Flow(i, 0, 1, size, 0.0) for i in range(n_flows)]

    kwargs.setdefault("config", TransportConfig(min_rto=1e-3))
    return Scenario(name, build_topology, build_flows,
                    max_time=max_time, **kwargs)


class NullScheme:
    """A scheme that never sends anything — the heap drains immediately."""

    name = "null"

    def configure_network(self, network):
        pass

    def start_flow(self, flow, ctx):
        pass


def test_clean_run_health():
    result = run(Dctcp(), make_scenario())
    h = result.health
    assert h.ok
    assert not h.stalled
    assert h.completed == h.n_flows == 1
    assert h.completion_rate == 1.0
    assert h.stall_reason is None
    assert h.dead_links == []
    assert h.fault_windows == []
    assert h.events_run > 0
    assert "1/1 flows" in h.summary()


def test_short_blackout_rides_out():
    # Blackout much shorter than the RTO cap: the transport must recover
    # and every flow must complete, with the health report saying so.
    plan = FaultPlan([LinkDown("sw0->sw1", 0.0002, 0.002)])
    result = run(Dctcp(), make_scenario(faults=plan))
    h = result.health
    assert not h.stalled
    assert h.completed == h.n_flows
    assert h.ok
    assert len(h.fault_windows) == 1
    assert "down sw0->sw1" in h.fault_windows[0]
    assert h.fault_drops > 0
    assert h.rtos_total > 0  # blackout recovery went through the RTO
    assert result.flows[0].completed


def test_permanent_blackout_reports_dead_link():
    # Blackout outlasting max_time: the run must be diagnosed as stalled
    # and the dead link named.
    plan = FaultPlan([LinkDown("sw0->sw1", 0.0, 1000.0)])
    result = run(Dctcp(), make_scenario(faults=plan, max_time=2.0))
    h = result.health
    assert h.stalled
    assert not h.ok
    assert h.completed == 0
    assert h.dead_links == ["sw0->sw1"]
    assert "sw0->sw1" in h.stall_reason
    assert h.stall_time is not None
    assert h.faults_active_at_stall
    assert "STALLED" in h.summary()


def test_heap_empty_stops_early():
    # A scheme that never transmits: once the start events fire the heap
    # is empty, and the runner must stop immediately instead of idling
    # through max_time.
    result = run(NullScheme(), make_scenario(max_time=1000.0))
    h = result.health
    assert h.stalled
    assert h.completed == 0
    assert "event heap empty" in h.stall_reason
    # stopped after the first drain slice instead of spinning to max_time
    assert h.sim_time <= 1000.0 / 200.0


def test_event_budget_enforced():
    scenario = make_scenario(event_budget=50)
    result = run(Dctcp(), scenario)
    h = result.health
    assert h.event_budget_exceeded
    assert not h.ok
    assert h.events_run <= 50
    assert "event budget exceeded" in h.summary()


def test_retransmit_counters_harvested():
    plan = FaultPlan([PacketLoss("sw0->sw1", 0.05)], seed=3)
    result = run(Dctcp(), make_scenario(faults=plan, n_flows=2))
    h = result.health
    assert h.completed == 2
    assert h.retransmits_total > 0
    assert h.retransmits_total == sum(h.retransmits_by_flow.values())
    assert set(h.retransmits_by_flow) == {0, 1}
    assert h.fault_drops > 0


def test_rto_recovery_counted_in_health():
    # A blackout open from t=0 leaves no SACK feedback: recovery is
    # timeout-driven, and the health layer must report it as retransmit
    # work, not claim the run recovered for free.
    plan = FaultPlan([LinkDown("sw0->sw1", 0.0, 0.002)])
    result = run(Dctcp(), make_scenario(faults=plan))
    h = result.health
    assert h.completed == h.n_flows
    assert h.rtos_total > 0
    assert h.retransmits_total > 0


def test_live_pending_reported_on_stall():
    plan = FaultPlan([LinkDown("sw0->sw1", 0.0, 1000.0)])
    result = run(Dctcp(), make_scenario(faults=plan, max_time=2.0))
    h = result.health
    assert h.stalled
    # the stranded sender keeps a live RTO timer pending; the count in
    # the diagnosis is of live events, not raw heap entries
    assert h.live_pending >= 1
    # Zero-overhead guarantee: an absent plan and an empty plan must
    # produce the exact same simulation (event count and per-flow FCTs).
    plain = run(Dctcp(), make_scenario(n_flows=2))
    empty = run(Dctcp(), make_scenario(n_flows=2, faults=FaultPlan([])))
    assert plain.wall_events == empty.wall_events
    assert [f.fct for f in plain.flows] == [f.fct for f in empty.flows]
    assert empty.health.fault_windows == []
    # and the fabric genuinely had no hooks attached
    assert all(p.fault_chain is None for p in plain.topology.network.ports)
    assert all(p.fault_chain is None for p in empty.topology.network.ports)


def test_health_defaults():
    h = RunHealth()
    assert h.completion_rate == 0.0
    assert not h.stalled
    assert h.ok  # vacuously: 0 of 0 flows


def test_drain_never_simulates_past_max_time():
    """The final drain slice is clamped: ``t`` stepping past ``max_time``
    used to let the run simulate up to one whole slice beyond the
    scenario's stated horizon."""
    # max_time far below the 1e-4 slice-length floor: an unclamped drain
    # would overshoot to 3e-4 on its final slice
    result = run(Dctcp(), make_scenario(size=50_000_000, max_time=0.00025))
    assert not result.flows[0].completed          # flow is far from done
    assert result.health.sim_time <= 0.00025 + 1e-12


def test_drain_clamp_preserves_full_run():
    """Clamping only affects the horizon; a run that completes well
    before max_time is untouched."""
    result = run(Dctcp(), make_scenario())
    assert result.health.ok
    assert result.health.sim_time <= 2.0
