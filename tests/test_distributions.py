"""Tests for empirical flow-size distributions."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.distributions import (
    DATA_MINING,
    MEMCACHED_W1,
    WEB_SEARCH,
    WORKLOADS,
    EmpiricalCdf,
    sample_sizes,
)


def test_registry_contains_paper_workloads():
    assert {"web-search", "data-mining", "memcached-w1"} <= set(WORKLOADS)


def test_web_search_matches_table2():
    assert WEB_SEARCH.fraction_below(100_000) == pytest.approx(0.62, abs=0.03)
    assert 1.2e6 <= WEB_SEARCH.mean() <= 1.8e6       # paper: 1.6MB


def test_data_mining_matches_table2():
    assert DATA_MINING.fraction_below(100_000) == pytest.approx(0.83, abs=0.03)
    assert 6e6 <= DATA_MINING.mean() <= 9e6          # paper: 7.41MB


def test_memcached_w1_all_small():
    """More than 70% of flows < 1000B, all flows < 100KB (§6.3.2)."""
    assert MEMCACHED_W1.fraction_below(1_000) >= 0.70
    sizes = sample_sizes(MEMCACHED_W1, 2000, seed=1)
    assert max(sizes) <= 100_000


def test_sampling_respects_cap():
    sizes = sample_sizes(WEB_SEARCH, 500, seed=2, cap=1_000_000)
    assert max(sizes) <= 1_000_000


def test_capped_mean_consistent():
    cap = 500_000
    empirical = sum(sample_sizes(WEB_SEARCH, 20_000, seed=3, cap=cap)) / 20_000
    analytic = WEB_SEARCH.mean(cap)
    assert empirical == pytest.approx(analytic, rel=0.1)


class _FixedU:
    """Stand-in RNG handing the sampler one preset uniform draw."""

    def __init__(self, u):
        self._u = u

    def random(self):
        return self._u


def stratified_capped_mean(cdf, cap, n=50_000):
    """Empirical capped-sample mean with stratified (midpoint) uniforms:
    every draw goes through the *real* ``sample()`` path (interpolation,
    int truncation, capping), but the u-grid kills Monte-Carlo noise so
    a tight tolerance cannot flake."""
    total = 0
    for i in range(n):
        total += cdf.sample(_FixedU((i + 0.5) / n), cap)
    return total / n


@pytest.mark.parametrize("name", sorted(WORKLOADS))
@pytest.mark.parametrize("cap", [5_000, 100_000, 2_000_000])
def test_capped_mean_matches_empirical_within_half_percent(name, cap):
    """The exact ``E[min(S, cap)]`` gate: every workload, three caps,
    0.5% against the sampler's own capped empirical mean.  The old
    clamp-both-endpoints formula missed this by up to ~10% on the
    straddled segment."""
    cdf = WORKLOADS[name]
    assert cdf.mean(cap) == pytest.approx(
        stratified_capped_mean(cdf, cap), rel=0.005)


def test_capped_mean_straddling_segment_exact():
    """Hand-checked E[min(S, cap)] on one uniform segment: S ~ U[100,
    200], cap 150 -> 0.5*125 + 0.5*150 = 137.5.  The old formula
    clamped both trapezoid endpoints and returned 125."""
    cdf = EmpiricalCdf("seg", [(100, 0.0), (200, 1.0)])
    assert cdf.mean(150) == pytest.approx(137.5)
    assert cdf.mean(100) == pytest.approx(100.0)   # cap at segment floor
    assert cdf.mean(200) == pytest.approx(150.0)   # cap beyond = uncapped
    assert cdf.mean() == pytest.approx(150.0)


def test_capped_mean_monotone_in_cap():
    caps = [1_000, 10_000, 100_000, 1_000_000, 10_000_000]
    for cdf in WORKLOADS.values():
        means = [cdf.mean(c) for c in caps]
        assert means == sorted(means)
        assert means[-1] <= cdf.mean()


def test_sampling_deterministic_by_seed():
    assert sample_sizes(WEB_SEARCH, 100, seed=5) == sample_sizes(
        WEB_SEARCH, 100, seed=5)
    assert sample_sizes(WEB_SEARCH, 100, seed=5) != sample_sizes(
        WEB_SEARCH, 100, seed=6)


def test_invalid_cdfs_rejected():
    with pytest.raises(ValueError):
        EmpiricalCdf("one-point", [(100, 0.0)])
    with pytest.raises(ValueError):
        EmpiricalCdf("unsorted-sizes", [(200, 0.0), (100, 1.0)])
    with pytest.raises(ValueError):
        EmpiricalCdf("unsorted-probs", [(100, 0.5), (200, 0.2), (300, 1.0)])
    with pytest.raises(ValueError):
        EmpiricalCdf("bad-ends", [(100, 0.1), (200, 1.0)])


def test_fraction_below_endpoints():
    cdf = EmpiricalCdf("t", [(100, 0.0), (200, 0.5), (300, 1.0)])
    assert cdf.fraction_below(50) == 0.0
    assert cdf.fraction_below(150) == pytest.approx(0.25)
    assert cdf.fraction_below(1000) == 1.0


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=2**31))
def test_samples_within_support(seed):
    rng = random.Random(seed)
    for cdf in (WEB_SEARCH, DATA_MINING, MEMCACHED_W1):
        size = cdf.sample(rng)
        assert cdf._sizes[0] - 1 <= size <= cdf._sizes[-1]
        assert size >= 1


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.integers(1, 10**8),
                          st.floats(0.01, 0.99)),
                min_size=1, max_size=8))
def test_arbitrary_valid_cdf_sampling(points):
    """Property: any well-formed CDF samples within its own support and
    its analytic mean brackets the empirical mean."""
    points = sorted(set(points))
    sizes = [p[0] for p in points]
    probs = sorted(p[1] for p in points)
    full = ([(sizes[0], 0.0)] +
            [(s, p) for s, p in zip(sizes[1:], probs[:len(sizes) - 1])] +
            [(sizes[-1] + 1, 1.0)])
    # keep probabilities strictly valid
    cdf = EmpiricalCdf("gen", full)
    rng = random.Random(0)
    draws = [cdf.sample(rng) for _ in range(300)]
    assert min(draws) >= 1
    assert max(draws) <= sizes[-1] + 1
