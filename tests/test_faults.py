"""Tests for the fault-injection subsystem (repro.faults)."""

import random

import pytest

from conftest import make_ctx, quick_qcfg
from repro.faults import (
    CorruptionInjector,
    FaultPlan,
    LinkDown,
    LinkFlap,
    LinkFaultInjector,
    LossInjector,
    PacketCorruption,
    PacketLoss,
    PortDegrader,
    RateDegrade,
)
from repro.faults.injectors import INFINITY
from repro.sim.link import FaultChain
from repro.sim.topology import dumbbell
from repro.transport.base import Flow
from repro.transport.dctcp import Dctcp
from repro.units import gbps, us


def make_dumbbell():
    return dumbbell(rate=gbps(10), prop_delay=us(5), qcfg=quick_qcfg())


def start_flow(topo, size=300_000, **cfg):
    """One DCTCP flow host0 -> host1; returns (flow, sender, ctx)."""
    scheme = Dctcp()
    scheme.configure_network(topo.network)
    ctx = make_ctx(topo, **cfg)
    flow = Flow(0, 0, 1, size, 0.0)
    scheme.start_flow(flow, ctx)
    sender = topo.network.hosts[0].endpoints[0]
    return flow, sender, ctx


# ---------------------------------------------------------------------------
# port hooks
# ---------------------------------------------------------------------------


def test_ports_have_no_chain_by_default():
    topo = make_dumbbell()
    assert all(port.fault_chain is None for port in topo.network.ports)


def test_attach_detach_fault_chain():
    topo = make_dumbbell()
    port = topo.network.port_named("sw0->sw1")
    injector = LinkFaultInjector(topo.sim, port).attach()
    assert isinstance(port.fault_chain, FaultChain)
    assert injector in port.fault_chain.injectors
    injector.detach()
    assert port.fault_chain is None  # chain dropped when it empties


def test_find_ports_exact_glob_and_missing():
    topo = make_dumbbell()
    net = topo.network
    assert [p.name for p in net.find_ports("sw0->sw1")] == ["sw0->sw1"]
    both = net.find_ports("sw*->sw*")
    assert sorted(p.name for p in both) == ["sw0->sw1", "sw1->sw0"]
    with pytest.raises(KeyError):
        net.find_ports("nonexistent->port")
    with pytest.raises(KeyError):
        net.port_named("nope")


def test_switch_port_named_and_attach_fault():
    topo = make_dumbbell()
    sw0 = topo.network.switches[0]
    port = sw0.port_named("sw0->sw1")
    assert port.name == "sw0->sw1"
    injector = LinkFaultInjector(topo.sim, port)
    sw0.attach_fault(injector, dst_host=1)
    assert injector in port.fault_chain.injectors
    with pytest.raises(KeyError):
        sw0.port_named("bogus")


# ---------------------------------------------------------------------------
# injectors
# ---------------------------------------------------------------------------


def test_link_down_drops_and_flushes():
    topo = make_dumbbell()
    port = topo.network.port_named("sw0->sw1")
    injector = LinkFaultInjector(topo.sim, port).attach()
    # blackout covering the whole (short) run: nothing gets through
    injector.schedule_blackout(0.0, 1.0)
    flow, sender, _ = start_flow(topo)
    topo.sim.run(until=0.01)
    assert not flow.completed
    assert injector.pkts_dropped > 0
    assert injector.is_down
    assert port.mux.empty  # down flushes everything queued


def test_link_blackout_then_recovery():
    topo = make_dumbbell()
    port = topo.network.port_named("sw0->sw1")
    injector = LinkFaultInjector(topo.sim, port).attach()
    injector.schedule_blackout(0.0002, 0.002)
    flow, sender, _ = start_flow(topo, min_rto=1e-3)
    topo.sim.run(until=1.0)
    assert flow.completed
    assert sender.rtos_fired > 0            # recovery went through the RTO
    assert sender.pkts_transmitted > sender.n_packets
    assert not injector.is_down
    start, end = injector.down_intervals[0]
    assert start == pytest.approx(0.0002)
    assert end == pytest.approx(0.0022)


def test_flap_schedule_transitions():
    topo = make_dumbbell()
    port = topo.network.port_named("sw0->sw1")
    injector = LinkFaultInjector(topo.sim, port).attach()
    injector.schedule_flap(0.001, down_time=0.001, up_time=0.002, cycles=3)
    topo.sim.run(until=0.1)
    assert injector.transitions == 6
    assert len(injector.down_intervals) == 3
    assert not injector.is_down


def test_loss_injector_deterministic():
    fcts, drops = [], []
    for _ in range(2):
        topo = make_dumbbell()
        port = topo.network.port_named("sw0->sw1")
        LossInjector(topo.sim, port, 0.05, random.Random("seed-a")).attach()
        flow, sender, _ = start_flow(topo)
        topo.sim.run(until=2.0)
        assert flow.completed
        assert sender.pkts_retransmitted > 0
        fcts.append(flow.fct)
        drops.append(port.fault_chain.injectors[0].pkts_dropped)
    assert fcts[0] == fcts[1]
    assert drops[0] == drops[1] > 0


def test_loss_injector_window_respected():
    topo = make_dumbbell()
    port = topo.network.port_named("sw0->sw1")
    # window opens long after the flow is done: lossless in practice
    injector = LossInjector(topo.sim, port, 1.0, random.Random("x"),
                            start=100.0, end=INFINITY).attach()
    flow, sender, _ = start_flow(topo)
    topo.sim.run(until=1.0)
    assert flow.completed
    assert injector.pkts_dropped == 0
    assert sender.pkts_retransmitted == 0


def test_loss_injector_rejects_bad_rate():
    topo = make_dumbbell()
    port = topo.network.port_named("sw0->sw1")
    with pytest.raises(ValueError):
        LossInjector(topo.sim, port, 1.5, random.Random(0))


def test_corruption_discarded_at_receiver():
    topo = make_dumbbell()
    port = topo.network.port_named("sw0->sw1")
    injector = CorruptionInjector(topo.sim, port, 0.05,
                                  random.Random("c")).attach()
    flow, sender, _ = start_flow(topo)
    topo.sim.run(until=2.0)
    assert flow.completed
    assert injector.pkts_corrupted > 0
    # the receiving host discarded them before the transport saw them
    assert topo.network.hosts[1].corrupt_discards == injector.pkts_corrupted
    assert sender.pkts_retransmitted > 0


def test_port_degrader_slows_transfer():
    baseline = make_dumbbell()
    flow_base, _, _ = start_flow(baseline)
    baseline.sim.run(until=2.0)

    degraded = make_dumbbell()
    port = degraded.network.port_named("sw0->sw1")
    degrader = PortDegrader(degraded.sim, port, 0.1)
    degrader.schedule(0.0, INFINITY)
    flow_deg, _, _ = start_flow(degraded)
    degraded.sim.run(until=2.0)

    assert flow_base.completed and flow_deg.completed
    assert flow_deg.fct > flow_base.fct * 2
    degrader.restore()
    assert port.rate_bps == pytest.approx(gbps(10))


def test_port_degrader_rejects_bad_factor():
    topo = make_dumbbell()
    port = topo.network.port_named("sw0->sw1")
    with pytest.raises(ValueError):
        PortDegrader(topo.sim, port, 0.0)


# ---------------------------------------------------------------------------
# the plan
# ---------------------------------------------------------------------------


def test_plan_parse_round_trip():
    plan = FaultPlan.parse([
        "down:sw0->sw1:0.001:0.002",
        "flap:sw0->sw1:0.001:0.002:0.003:4",
        "loss:sw*->sw*:0.05",
        "corrupt:sw0->sw1:0.01:0.001:0.01",
        "degrade:sw1->sw0:0.1:0.002:0.01",
    ], seed=42)
    assert plan.seed == 42
    down, flap, loss, corrupt, degrade = plan.events
    assert down == LinkDown("sw0->sw1", 0.001, 0.002)
    assert down.end == pytest.approx(0.003)
    assert flap == LinkFlap("sw0->sw1", 0.001, 0.002, 0.003, 4)
    assert flap.end == pytest.approx(0.001 + 4 * 0.005)
    assert loss == PacketLoss("sw*->sw*", 0.05, 0.0, INFINITY)
    assert corrupt == PacketCorruption("sw0->sw1", 0.01, 0.001, 0.01)
    assert degrade == RateDegrade("sw1->sw0", 0.1, 0.002, 0.01)
    assert len(plan.describe()) == 5


def test_plan_parse_rejects_garbage():
    with pytest.raises(ValueError):
        FaultPlan.parse(["explode:sw0->sw1:1"])
    with pytest.raises(ValueError):
        FaultPlan.parse(["down:sw0->sw1"])  # missing fields
    with pytest.raises(ValueError):
        FaultPlan.parse(["loss:sw0->sw1:not-a-number"])


def test_plan_rejects_non_events():
    with pytest.raises(TypeError):
        FaultPlan(["down:sw0->sw1:0:1"])  # strings must go through parse


def test_plan_apply_resolves_globs_and_is_deterministic():
    results = []
    for _ in range(2):
        topo = make_dumbbell()
        plan = FaultPlan([PacketLoss("sw*->sw*", 0.05)], seed=9)
        active = plan.apply(topo.network, topo.sim)
        assert len(active.injectors) == 2  # both directions matched
        flow, _, _ = start_flow(topo)
        topo.sim.run(until=2.0)
        assert flow.completed
        results.append((flow.fct, active.pkts_dropped))
    assert results[0] == results[1]
    assert results[0][1] > 0


def test_plan_apply_unknown_port_raises():
    topo = make_dumbbell()
    plan = FaultPlan([LinkDown("no-such-link", 0.0, 1.0)])
    with pytest.raises(KeyError):
        plan.apply(topo.network, topo.sim)


def test_active_faults_runtime_queries():
    topo = make_dumbbell()
    plan = FaultPlan([LinkDown("sw0->sw1", 0.001, 0.002)])
    active = plan.apply(topo.network, topo.sim)
    assert active.down_links() == []
    assert not active.any_active_or_recent(0.0)
    topo.sim.run(until=0.0015)  # inside the blackout
    assert active.down_links() == ["sw0->sw1"]
    assert active.active_faults() == ["down sw0->sw1 [0.001s, 0.003s)"]
    assert active.any_active_or_recent(topo.sim.now)
    topo.sim.run(until=0.01)  # after it
    assert active.down_links() == []
    assert active.any_active_or_recent(0.0035, grace=0.001)
    assert not active.any_active_or_recent(0.01, grace=0.001)
    assert active.last_fault_end() == pytest.approx(0.003)
