"""Supervised grid execution: SIGKILL recovery, timeouts, retry budget,
quarantine, and worker-error context.

The headline guarantee: a sweep whose workers are killed mid-run
recovers by retrying the dead cells, and the recovered merge is
bit-identical to an undisturbed sweep — each retry replays the same
deterministic simulation.  A cell that exhausts its budget becomes a
structured :class:`FailedTask` instead of aborting the sweep.
"""

import multiprocessing
import os
import pickle
import signal
import time

import pytest

from repro.experiments.parallel import (
    GridTaskError,
    run_grid,
    scheme_grid,
)
from repro.experiments.scenarios import all_to_all_scenario, sim_fabric
from repro.experiments.sweeps import supervised_sweep
from repro.resilience import (
    FailedTask,
    SupervisedResult,
    backoff_delay,
    supervise_grid,
)
from repro.transport.dctcp import Dctcp
from repro.workloads.distributions import WEB_SEARCH

FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not FORK, reason="needs fork start method")


def small_scenario(seed=1):
    return all_to_all_scenario(
        f"sup-{seed}", WEB_SEARCH, load=0.5, n_flows=8, size_cap=100_000,
        seed=seed, fabric=sim_fabric(n_leaf=2, n_spine=1, hosts_per_leaf=2),
        max_time=0.02)


SCHEMES = {"dctcp": Dctcp}
VARIANTS = [{"seed": 1}, {"seed": 2}, {"seed": 3}]


def summary_fingerprint(summary):
    return (summary.scheme, summary.completed, summary.n_flows,
            summary.wall_events, repr(summary.stats.overall_avg))


# -- backoff ---------------------------------------------------------------


def test_backoff_delay_is_exponential_and_capped():
    assert backoff_delay(0, 0.25, 5.0) == 0.0
    assert backoff_delay(1, 0.25, 5.0) == 0.25
    assert backoff_delay(2, 0.25, 5.0) == 0.5
    assert backoff_delay(3, 0.25, 5.0) == 1.0
    assert backoff_delay(10, 0.25, 5.0) == 5.0  # capped


# -- happy path ------------------------------------------------------------


@needs_fork
def test_supervised_grid_matches_unsupervised():
    tasks = scheme_grid(SCHEMES, small_scenario, VARIANTS)
    plain = run_grid(scheme_grid(SCHEMES, small_scenario, VARIANTS), jobs=2)
    outcome = supervise_grid(tasks, jobs=2, task_timeout=120.0, retries=2)
    assert isinstance(outcome, SupervisedResult)
    assert outcome.ok
    assert outcome.attempts_total == len(tasks)
    assert [summary_fingerprint(s) for s in outcome.summaries] == \
        [summary_fingerprint(s) for s in plain]
    assert outcome.completed() == outcome.summaries


# -- SIGKILL recovery ------------------------------------------------------


@needs_fork
def test_sigkilled_worker_is_retried_and_merge_is_identical(tmp_path):
    """A worker SIGKILLed mid-cell (like an OOM kill) is detected as a
    crash, relaunched, and the recovered sweep merges bit-identically
    to one that was never disturbed."""
    marker = str(tmp_path / "killed-once")

    def killing_factory(seed=1):
        if seed == 2 and not os.path.exists(marker):
            open(marker, "w").close()
            os.kill(os.getpid(), signal.SIGKILL)
        return small_scenario(seed)

    undisturbed = run_grid(scheme_grid(SCHEMES, small_scenario, VARIANTS),
                           jobs=2)
    tasks = scheme_grid(SCHEMES, killing_factory, VARIANTS)
    outcome = supervise_grid(tasks, jobs=2, retries=2, backoff_base=0.01)
    assert outcome.ok, [f.describe() for f in outcome.failed]
    assert os.path.exists(marker), "the kill never fired"
    assert outcome.attempts_total == len(tasks) + 1  # exactly one retry
    assert [summary_fingerprint(s) for s in outcome.summaries] == \
        [summary_fingerprint(s) for s in undisturbed]


@needs_fork
def test_crash_quarantine_records_signal_exitcode(tmp_path):
    """A cell that dies on every attempt is quarantined with the crash
    reason and the -SIGKILL exit code; its neighbours still complete."""

    def always_dies(seed=1):
        if seed == 2:
            os.kill(os.getpid(), signal.SIGKILL)
        return small_scenario(seed)

    tasks = scheme_grid(SCHEMES, always_dies, VARIANTS)
    outcome = supervise_grid(tasks, jobs=2, retries=1, backoff_base=0.01)
    assert not outcome.ok
    assert len(outcome.failed) == 1
    failed = outcome.failed[0]
    assert failed.reason == "crashed"
    assert failed.attempts == 2  # first attempt + one retry
    assert failed.exitcode == -signal.SIGKILL
    assert failed.params == {"seed": 2}
    assert "cell" in failed.describe()
    # deterministic partial merge: the hole is at the failed index, the
    # neighbours' summaries are intact and in grid order
    assert outcome.summaries[failed.index] is None
    assert [s.params["seed"] for s in outcome.completed()] == [1, 3]


# -- timeout ---------------------------------------------------------------


@needs_fork
def test_hung_worker_is_killed_and_retried(tmp_path):
    marker = str(tmp_path / "hung-once")

    def hanging_factory(seed=1):
        if seed == 2 and not os.path.exists(marker):
            open(marker, "w").close()
            time.sleep(600.0)
        return small_scenario(seed)

    tasks = scheme_grid(SCHEMES, hanging_factory, VARIANTS)
    outcome = supervise_grid(tasks, jobs=2, task_timeout=0.5, retries=2,
                             backoff_base=0.01)
    assert outcome.ok, [f.describe() for f in outcome.failed]
    assert outcome.attempts_total == len(tasks) + 1


@needs_fork
def test_always_hung_worker_is_quarantined_with_timeout_reason(tmp_path):
    def always_hangs(seed=1):
        if seed == 2:
            time.sleep(600.0)
        return small_scenario(seed)

    tasks = scheme_grid(SCHEMES, always_hangs, VARIANTS)
    outcome = supervise_grid(tasks, jobs=2, task_timeout=0.3, retries=1,
                             backoff_base=0.01)
    assert len(outcome.failed) == 1
    failed = outcome.failed[0]
    assert failed.reason == "timeout"
    assert failed.attempts == 2
    assert "task_timeout" in failed.detail
    assert [s.params["seed"] for s in outcome.completed()] == [1, 3]


# -- exceptions ------------------------------------------------------------


@needs_fork
def test_exception_quarantine_carries_worker_traceback():
    def raising_factory(seed=1):
        if seed == 2:
            raise ValueError("synthetic cell failure")
        return small_scenario(seed)

    tasks = scheme_grid(SCHEMES, raising_factory, VARIANTS)
    outcome = supervise_grid(tasks, jobs=2, retries=1, backoff_base=0.01)
    assert len(outcome.failed) == 1
    failed = outcome.failed[0]
    assert failed.reason == "exception"
    assert failed.scheme == "dctcp"
    assert failed.params == {"seed": 2}
    assert "synthetic cell failure" in failed.detail
    assert "raising_factory" in failed.detail  # the worker-side traceback


def test_serial_supervision_retries_exceptions(tmp_path):
    """Without fork (or jobs=1) cells run in-process; exceptions still
    get the retry budget and quarantine treatment."""
    marker = str(tmp_path / "raised-once")

    def flaky_factory(seed=1):
        if seed == 2 and not os.path.exists(marker):
            open(marker, "w").close()
            raise RuntimeError("transient")
        return small_scenario(seed)

    tasks = scheme_grid(SCHEMES, flaky_factory, VARIANTS)
    outcome = supervise_grid(tasks, jobs=1, retries=1, backoff_base=0.01)
    assert outcome.ok
    assert outcome.attempts_total == len(tasks) + 1

    def always_raises(seed=1):
        raise RuntimeError("permanent")

    tasks = scheme_grid(SCHEMES, always_raises, [{"seed": 5}])
    outcome = supervise_grid(tasks, jobs=1, retries=1, backoff_base=0.01)
    assert not outcome.ok
    assert outcome.failed[0].reason == "exception"
    assert outcome.failed[0].attempts == 2
    assert "permanent" in outcome.failed[0].detail


# -- worker-error context in the unsupervised pool (parallel.py) -----------


@needs_fork
def test_grid_task_error_names_the_failing_cell():
    """run_grid's pool path wraps worker exceptions so the parent knows
    exactly which (scheme, params) cell died and where."""

    def bad_factory(seed=1):
        if seed == 9:
            raise ValueError("cell exploded")
        return small_scenario(seed)

    tasks = scheme_grid(SCHEMES, bad_factory, [{"seed": 1}, {"seed": 9}])
    with pytest.raises(GridTaskError) as excinfo:
        run_grid(tasks, jobs=2)
    err = excinfo.value
    assert err.scheme == "dctcp"
    assert err.params == {"seed": 9}
    assert "ValueError" in err.cause
    assert "cell exploded" in err.worker_traceback
    assert "bad_factory" in err.worker_traceback
    # the rendered message carries all of it for plain tracebacks
    assert "seed" in str(err) and "worker traceback" in str(err)


def test_grid_task_error_survives_pickling():
    err = GridTaskError("lbl", "dctcp", {"seed": 9}, "ValueError('x')",
                        "Traceback ...")
    clone = pickle.loads(pickle.dumps(err))
    assert isinstance(clone, GridTaskError)
    assert clone.label == "lbl"
    assert clone.scheme == "dctcp"
    assert clone.params == {"seed": 9}
    assert clone.cause == "ValueError('x')"
    assert clone.worker_traceback == "Traceback ..."


# -- sweeps integration ----------------------------------------------------


@needs_fork
def test_supervised_sweep_returns_points_and_failures():
    def mixed_factory(seed=1):
        if seed == 2:
            raise ValueError("bad cell")
        return small_scenario(seed)

    points, failed = supervised_sweep(
        SCHEMES, mixed_factory, VARIANTS, jobs=2, retries=0)
    assert [p.variant["seed"] for p in points] == [1, 3]
    assert all(p.scheme == "dctcp" for p in points)
    assert len(failed) == 1 and isinstance(failed[0], FailedTask)
    assert failed[0].params == {"seed": 2}


def test_empty_grid_is_a_noop():
    outcome = supervise_grid([], jobs=4)
    assert outcome.ok and outcome.summaries == [] \
        and outcome.attempts_total == 0
