"""Tests for the LCP controller (intermittent init + EWD, §3)."""

import pytest

from conftest import make_ctx, make_star, run_single_flow
from repro.core.ppt import Ppt, PptSender
from repro.transport.base import Flow


def make_ppt_sender(size=300_000, scheme=None, **cfg):
    topo = make_star()
    ctx = make_ctx(topo, **cfg)
    scheme = scheme or Ppt()
    sender = PptSender(Flow(0, 0, 1, size, 0.0), ctx, scheme)
    return sender, topo, ctx


def test_case1_initial_window_is_bdp_minus_iw():
    """§3.1: at flow start, I = BDP - init_cwnd (unidentified flow,
    so the loop opens immediately)."""
    sender, topo, ctx = make_ppt_sender(size=90_000)
    lcp = sender.lcp
    topo.network.hosts[0].register(0, sender)
    sender.start()
    topo.sim.run(until=1e-6)  # the case-1 open fires at t=0
    expected = ctx.bdp_packets(sender.flow) - ctx.config.init_cwnd
    assert lcp.active
    assert lcp.initial_window == min(expected, sender.n_packets)


def test_case1_delayed_for_identified_large_flow():
    """Identified-large flows open their first loop in the 2nd RTT."""
    sender, topo, ctx = make_ppt_sender(size=5_000_000)
    assert sender.identified_large
    topo.network.hosts[0].register(0, sender)
    sender.start()
    topo.sim.run(until=sender.base_rtt * 0.5)
    assert not sender.lcp.active
    topo.sim.run(until=sender.base_rtt * 1.5)
    assert sender.lcp.active or sender.lcp.loops_opened > 0


def test_case1_not_delayed_without_identification():
    scheme = Ppt(identification=False)
    sender, topo, ctx = make_ppt_sender(size=5_000_000, scheme=scheme)
    assert not sender.identified_large
    topo.network.hosts[0].register(0, sender)
    sender.start()
    topo.sim.run(until=1e-6)
    assert sender.lcp.active


def test_case2_eq2_window():
    """§3.1 Eq. 2: I = (1/2 - alpha_min) * W_max."""
    sender, topo, ctx = make_ppt_sender()
    lcp = sender.lcp
    sender.startup_done = True
    sender.wmax = 64.0
    sender.alpha = 0.1
    sender.alpha_history.extend([0.3, 0.2, 0.1])
    lcp.on_window_update()
    assert lcp.active
    assert lcp.initial_window == int((0.5 - 0.1) * 64.0)


def test_case2_no_loop_when_alpha_high():
    """alpha_min > 1/2 means no spare bandwidth: Eq. 2 gives I <= 0."""
    sender, topo, ctx = make_ppt_sender()
    sender.startup_done = True
    sender.wmax = 64.0
    sender.alpha = 0.8
    sender.alpha_history.extend([0.9, 0.8])
    sender.lcp.on_window_update()
    assert not sender.lcp.active


def test_case2_requires_alpha_at_minimum():
    sender, topo, ctx = make_ppt_sender()
    sender.startup_done = True
    sender.wmax = 64.0
    sender.alpha = 0.4              # above the running minimum
    sender.alpha_history.extend([0.1, 0.3, 0.4])
    sender.lcp.on_window_update()
    assert not sender.lcp.active


def test_case2_reinit_tops_up_active_loop():
    """A decayed active loop is re-paced, counting in-flight packets."""
    sender, topo, ctx = make_ppt_sender()
    lcp = sender.lcp
    sender.startup_done = True
    sender.wmax = 64.0
    sender.alpha = 0.0
    sender.alpha_history.extend([0.2, 0.0])
    lcp.on_window_update()
    first = lcp.loops_opened
    assert lcp.active
    lcp.on_window_update()
    assert lcp.loops_opened == first + 1  # re-initialised


def test_ewd_pacing_spreads_over_one_rtt():
    """With EWD the initial window is paced at I/RTT, not burst."""
    sender, topo, ctx = make_ppt_sender()
    topo.network.hosts[0].register(0, sender)
    sender.start()
    topo.sim.run(until=1e-9)
    nic = topo.network.hosts[0].uplink
    # immediately after start only the HCP burst (init_cwnd) has entered
    # the NIC; the LCP window trickles in over the next RTT
    sent_now = nic.pkts_sent + len(nic.mux)
    assert sent_now <= ctx.config.init_cwnd + 2
    topo.sim.run(until=sender.base_rtt * 1.2)
    assert sender.lcp.lp_pkts_sent > 5


def test_no_ewd_bursts_at_line_rate():
    scheme = Ppt(ewd=False)
    sender, topo, ctx = make_ppt_sender(size=90_000, scheme=scheme)
    topo.network.hosts[0].register(0, sender)
    sender.start()
    topo.sim.run(until=1e-9)
    nic = topo.network.hosts[0].uplink
    queued = nic.pkts_sent + len(nic.mux)
    assert queued > ctx.config.init_cwnd + 10  # whole I burst at once


def test_lp_ack_releases_one_packet():
    flow, ctx, topo = run_single_flow(Ppt(), 300_000, until=1.0)
    sender = topo.network.hosts[0].endpoints[0]
    # EWD: one LP packet per LP-ACK; receiver ACKs 2:1, so LP sends are
    # bounded by initial windows + acks received
    lcp = sender.lcp
    assert lcp.lp_acks_received > 0
    assert flow.completed


def test_ece_suppression():
    sender, topo, ctx = make_ppt_sender()
    lcp = sender.lcp
    lcp.active = True
    from repro.sim.packet import ACK, Packet
    ack = Packet(0, 1, 0, 5, 64, kind=ACK)
    ack.lcp = True
    ack.ecn_ce = True
    ack.ack_seq = 0
    ack.sack = (5,)
    sent_before = lcp.lp_pkts_sent
    lcp.on_lp_ack(ack)
    assert lcp.lp_acks_suppressed == 1
    assert lcp.lp_pkts_sent == sent_before  # no new opportunistic packet


def test_no_ecn_variant_ignores_ece():
    scheme = Ppt(lcp_ecn=False)
    sender, topo, ctx = make_ppt_sender(scheme=scheme)
    topo.network.hosts[0].register(0, sender)
    lcp = sender.lcp
    lcp.active = True
    from repro.sim.packet import ACK, Packet
    ack = Packet(0, 1, 0, 5, 64, kind=ACK)
    ack.lcp = True
    ack.ecn_ce = True
    ack.ack_seq = 0
    ack.sack = (5,)
    sent_before = lcp.lp_pkts_sent
    lcp.on_lp_ack(ack)
    assert lcp.lp_pkts_sent == sent_before + 1  # keeps injecting


def test_termination_after_two_silent_rtts():
    sender, topo, ctx = make_ppt_sender()
    lcp = sender.lcp
    topo.network.hosts[0].register(0, sender)
    # open a loop but never deliver any LP ACKs (receiver not registered)
    lcp.open_loop(20)
    assert lcp.active
    topo.sim.run(until=sender.base_rtt * 10)
    assert not lcp.active


def test_loop_closes_when_crossed():
    """When the tail pointer meets the HCP head, the loop closes."""
    sender, topo, ctx = make_ppt_sender(size=20_000)  # 14 packets
    lcp = sender.lcp
    sender.send_ptr = 13  # HCP already covering everything
    lcp.open_loop(10)
    assert lcp.active
    assert lcp._send_one() is False
    assert not lcp.active


def test_stale_lp_outstanding_purged():
    sender, topo, ctx = make_ppt_sender()
    lcp = sender.lcp
    lcp.active = True
    lcp.last_lp_ack = 0.0
    lcp.outstanding[42] = -1.0  # ancient
    topo.sim.now = 1.0
    lcp.last_lp_ack = 1.0
    lcp._termination_check()
    assert 42 not in lcp.outstanding


def test_shutdown_cancels_everything():
    sender, topo, ctx = make_ppt_sender()
    lcp = sender.lcp
    topo.network.hosts[0].register(0, sender)
    lcp.open_loop(20)
    lcp.shutdown()
    assert not lcp.active
    assert not lcp.outstanding
    events = topo.sim.run(until=sender.base_rtt * 5)
    assert lcp.lp_pkts_sent <= 1  # nothing further was paced out
