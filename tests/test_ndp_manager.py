"""Unit tests for NDP's per-host pull pacer / delivery tracker."""

import pytest

from conftest import make_ctx, make_star
from repro.sim.packet import DATA, HEADER, HEADER_BYTES, PULL, Packet
from repro.transport.base import Flow
from repro.transport.ndp import Ndp, NdpReceiverHost


def make_manager():
    topo = make_star(4)
    ctx = make_ctx(topo)
    manager = NdpReceiverHost(3, ctx)
    return manager, ctx, topo


def data_pkt(flow_id, seq):
    return Packet(flow_id, 0, 3, seq, 1500, kind=DATA)


def header_pkt(flow_id, seq):
    pkt = Packet(flow_id, 0, 3, seq, HEADER_BYTES, kind=HEADER)
    return pkt


def test_pull_budget_excludes_first_window():
    manager, ctx, topo = make_manager()
    flow = Flow(0, 0, 3, 150_000, 0.0)   # 105 packets
    manager.add_flow(flow, first_window=30)
    assert manager.flows[0]["pull_budget"] == 75


def test_sub_window_flow_needs_no_pulls():
    manager, ctx, topo = make_manager()
    flow = Flow(0, 0, 3, 10_000, 0.0)
    manager.add_flow(flow, first_window=30)
    assert manager.flows[0]["pull_budget"] == 0
    sent = []
    ctx.network.send_control = sent.append
    manager.on_packet(data_pkt(0, 0))
    topo.sim.run(until=manager._pull_interval * 3)
    assert not [p for p in sent if p.kind == PULL]


def test_data_arrival_earns_one_pull():
    manager, ctx, topo = make_manager()
    flow = Flow(0, 0, 3, 150_000, 0.0)
    manager.add_flow(flow, first_window=30)
    sent = []
    ctx.network.send_control = sent.append
    manager.on_packet(data_pkt(0, 0))
    topo.sim.run(until=manager._pull_interval * 2)
    pulls = [p for p in sent if p.kind == PULL]
    assert len(pulls) == 1
    assert pulls[0].meta is None  # plain (non-rtx) pull


def test_trimmed_header_earns_targeted_pull():
    manager, ctx, topo = make_manager()
    flow = Flow(0, 0, 3, 150_000, 0.0)
    manager.add_flow(flow, first_window=30)
    sent = []
    ctx.network.send_control = sent.append
    manager.on_packet(header_pkt(0, 17))
    topo.sim.run(until=manager._pull_interval * 2)
    pulls = [p for p in sent if p.kind == PULL]
    assert len(pulls) == 1
    assert pulls[0].meta == 17  # retransmission request for that seq


def test_pulls_paced_at_link_interval():
    manager, ctx, topo = make_manager()
    flow = Flow(0, 0, 3, 300_000, 0.0)
    manager.add_flow(flow, first_window=10)
    sent = []
    ctx.network.send_control = sent.append
    for seq in range(10):
        manager.on_packet(data_pkt(0, seq))  # burst of arrivals
    topo.sim.run(until=manager._pull_interval * 5.5)
    pulls = [p for p in sent if p.kind == PULL]
    # paced: ~one per interval, not a burst of ten
    assert 5 <= len(pulls) <= 7


def test_completion_sends_final_ack_once():
    manager, ctx, topo = make_manager()
    flow = Flow(0, 0, 3, 2000, 0.0)  # 2 packets
    manager.add_flow(flow, first_window=30)
    sent = []
    ctx.network.send_control = sent.append
    manager.on_packet(data_pkt(0, 0))
    manager.on_packet(data_pkt(0, 1))
    manager.on_packet(data_pkt(0, 1))  # duplicate after completion
    assert flow.completed
    finals = [p for p in sent if p.kind != PULL]
    assert len(finals) == 1
    assert finals[0].ack_seq == 2


def test_rtx_check_repulls_only_when_stalled():
    manager, ctx, topo = make_manager()
    flow = Flow(0, 0, 3, 30_000, 0.0)  # 21 packets
    manager.add_flow(flow, first_window=30)
    state = manager.flows[0]
    state["delivered"].update(range(10))
    state["progress_mark"] = 10  # no progress since the last check
    sent = []
    ctx.network.send_control = sent.append
    manager._rtx_check(0)
    topo.sim.run(until=manager._pull_interval * 30)
    rtx_pulls = [p for p in sent if p.kind == PULL and p.meta is not None]
    assert {p.meta for p in rtx_pulls} == set(range(10, 21))
