"""Tests for the k-ary fat-tree builder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_ctx
from repro.core.ppt import Ppt
from repro.sim.packet import Packet
from repro.sim.topology import fat_tree
from repro.transport.base import Flow
from repro.transport.dctcp import Dctcp
from repro.units import gbps


def test_k4_shape():
    topo = fat_tree(k=4)
    assert topo.n_hosts == 16                      # k^3/4
    assert len(topo.network.switches) == 20        # 8 edge + 8 agg + 4 core


def test_k6_shape():
    topo = fat_tree(k=6)
    assert topo.n_hosts == 54
    assert len(topo.network.switches) == 6 * 6 + 9  # 18 edge + 18 agg + 9 core


def test_odd_or_tiny_k_rejected():
    with pytest.raises(ValueError):
        fat_tree(k=3)
    with pytest.raises(ValueError):
        fat_tree(k=0)


def test_intra_edge_path_is_one_hop():
    topo = fat_tree(k=4)
    net, sim = topo.network, topo.sim
    seen = []
    net.hosts[1].default_endpoint = type(
        "E", (), {"on_packet": staticmethod(seen.append)})()
    net.hosts[0].send(Packet(1, 0, 1, 0, 1500))  # same edge switch
    sim.run()
    assert seen and seen[0].hops == 1


def test_intra_pod_path_is_three_hops():
    topo = fat_tree(k=4)
    net, sim = topo.network, topo.sim
    seen = []
    # host 0 is on edge0.0; host 2 is on edge0.1 (same pod, other edge)
    net.hosts[2].default_endpoint = type(
        "E", (), {"on_packet": staticmethod(seen.append)})()
    net.hosts[0].send(Packet(1, 0, 2, 0, 1500))
    sim.run()
    assert seen and seen[0].hops == 3  # edge, agg, edge


def test_cross_pod_path_is_five_hops():
    topo = fat_tree(k=4)
    net, sim = topo.network, topo.sim
    dst = topo.n_hosts - 1  # last pod
    seen = []
    net.hosts[dst].default_endpoint = type(
        "E", (), {"on_packet": staticmethod(seen.append)})()
    net.hosts[0].send(Packet(1, 0, dst, 0, 1500))
    sim.run()
    assert seen and seen[0].hops == 5  # edge, agg, core, agg, edge


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=15),
       st.integers(min_value=0, max_value=15))
def test_all_pairs_reachable_k4(src, dst):
    if src == dst:
        return
    topo = fat_tree(k=4)
    net, sim = topo.network, topo.sim
    seen = []
    net.hosts[dst].default_endpoint = type(
        "E", (), {"on_packet": staticmethod(seen.append)})()
    net.hosts[src].send(Packet(1, src, dst, 0, 1500))
    sim.run()
    assert seen, f"{src}->{dst} undeliverable"


def test_base_delay_symmetric_and_ordered():
    topo = fat_tree(k=4)
    net = topo.network
    intra_edge = net.base_rtt(0, 1)
    intra_pod = net.base_rtt(0, 2)
    cross_pod = net.base_rtt(0, 15)
    assert intra_edge < intra_pod < cross_pod
    assert net.base_rtt(0, 15) == pytest.approx(net.base_rtt(15, 0))


def test_transports_run_on_fat_tree():
    topo = fat_tree(k=4, host_rate=gbps(40))
    ctx = make_ctx(topo)
    flows = [Flow(0, 0, 15, 400_000, 0.0),   # cross-pod
             Flow(1, 2, 15, 400_000, 0.0)]   # intra-pod to same dst
    scheme = Ppt()
    for flow in flows:
        scheme.start_flow(flow, ctx)
    topo.sim.run(until=5.0)
    assert all(f.completed for f in flows)
