"""Tests for buffer-aware flow identification (§4.1)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.identification import (
    MEMCACHED_APP,
    WEB_SERVER_APP,
    AppWriteModel,
    identification_accuracy,
    identify_large,
)
from repro.workloads.distributions import MEMCACHED_ETC, YOUTUBE_HTTP, sample_sizes


def test_identify_large_threshold():
    assert identify_large(100_000, 100_000)
    assert identify_large(200_000, 100_000)
    assert not identify_large(99_999, 100_000)


def test_whole_write_identifies():
    rng = random.Random(0)
    app = AppWriteModel("ideal", framing_probability=0.0,
                        framing_bytes=(10, 20))
    first = app.first_syscall(50_000, send_buffer=16_000, rng=rng)
    assert first == 16_000  # capped by the send buffer


def test_framing_write_defeats_identification():
    rng = random.Random(0)
    app = AppWriteModel("framed", framing_probability=1.0,
                        framing_bytes=(100, 200))
    first = app.first_syscall(50_000, send_buffer=16_000, rng=rng)
    assert first < 1_000


def test_small_message_never_exceeds_its_size():
    rng = random.Random(0)
    first = MEMCACHED_APP.first_syscall(80, send_buffer=16_000, rng=rng)
    assert first <= 80


def test_memcached_accuracy_matches_paper_band():
    """§4.1 reports 86.7% for >1KB Memcached flows at a 1KB threshold."""
    sizes = sample_sizes(MEMCACHED_ETC, 5000, seed=1)
    acc = identification_accuracy(sizes, MEMCACHED_APP, threshold=1_000,
                                  send_buffer=16_000)
    assert 0.80 <= acc <= 0.93


def test_web_server_accuracy_matches_paper_band():
    """§4.1 reports 84.3% for >10KB web flows at a 10KB threshold."""
    sizes = sample_sizes(YOUTUBE_HTTP, 5000, seed=2)
    acc = identification_accuracy(sizes, WEB_SERVER_APP, threshold=10_000,
                                  send_buffer=16_000)
    assert 0.78 <= acc <= 0.92


def test_accuracy_all_small_trace_is_vacuous():
    acc = identification_accuracy([10, 20, 30], MEMCACHED_APP,
                                  threshold=1_000, send_buffer=16_000)
    assert acc == 1.0


def test_accuracy_deterministic_for_seed():
    sizes = sample_sizes(MEMCACHED_ETC, 1000, seed=3)
    a = identification_accuracy(sizes, MEMCACHED_APP, threshold=1_000,
                                send_buffer=16_000, seed=9)
    b = identification_accuracy(sizes, MEMCACHED_APP, threshold=1_000,
                                send_buffer=16_000, seed=9)
    assert a == b


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1_001, max_value=10**7))
def test_ideal_app_always_identified(size):
    """With framing probability 0 and an adequate buffer, every large
    flow is identified — accuracy loss comes only from app behaviour."""
    rng = random.Random(0)
    app = AppWriteModel("ideal", 0.0, (1, 1))
    first = app.first_syscall(size, send_buffer=2**31, rng=rng)
    assert identify_large(first, 1_000)
