"""Unit tests for the Port (transmitter + queue)."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.link import Port
from repro.sim.packet import Packet
from repro.sim.queues import PriorityMux
from repro.units import gbps, serialization_delay, us


class Sink:
    def __init__(self):
        self.received = []

    def receive(self, pkt):
        self.received.append(pkt)


def make_port(sim, rate=gbps(10), prop=us(5), buffer_bytes=100_000):
    sink = Sink()
    port = Port(sim, rate, prop, PriorityMux(buffer_bytes), sink, "test")
    return port, sink


def pkt(seq=0, size=1500, priority=0):
    return Packet(1, 0, 1, seq, size, priority=priority)


def test_single_packet_timing():
    sim = Simulator()
    port, sink = make_port(sim)
    port.send(pkt(size=1500))
    sim.run()
    expected = serialization_delay(1500, gbps(10)) + us(5)
    assert len(sink.received) == 1
    assert sim.now == pytest.approx(expected)


def test_back_to_back_serialization():
    sim = Simulator()
    port, sink = make_port(sim)
    for seq in range(3):
        port.send(pkt(seq))
    sim.run()
    assert [p.seq for p in sink.received] == [0, 1, 2]
    expected = 3 * serialization_delay(1500, gbps(10)) + us(5)
    assert sim.now == pytest.approx(expected)


def test_priority_overtakes_queued_packet():
    sim = Simulator()
    port, sink = make_port(sim)
    port.send(pkt(seq=0, priority=7))   # starts transmitting immediately
    port.send(pkt(seq=1, priority=7))   # queued
    port.send(pkt(seq=2, priority=0))   # higher priority, overtakes seq 1
    sim.run()
    assert [p.seq for p in sink.received] == [0, 2, 1]


def test_counters():
    sim = Simulator()
    port, _sink = make_port(sim)
    for seq in range(4):
        port.send(pkt(seq, size=1000))
    sim.run()
    assert port.pkts_sent == 4
    assert port.bytes_sent == 4000
    assert port.busy_time == pytest.approx(4 * serialization_delay(1000, gbps(10)))


def test_drop_when_queue_full():
    sim = Simulator()
    port, sink = make_port(sim, buffer_bytes=1500)
    assert port.send(pkt(0))      # immediately starts transmitting
    assert port.send(pkt(1))      # fills the buffer
    assert not port.send(pkt(2))  # dropped
    sim.run()
    assert len(sink.received) == 2


def test_queue_delay_accounting():
    sim = Simulator()
    port, sink = make_port(sim)
    first, second = pkt(0), pkt(1)
    port.send(first)
    port.send(second)
    sim.run()
    tx = serialization_delay(1500, gbps(10))
    assert first.queue_delay == pytest.approx(0.0, abs=1e-12)
    assert second.queue_delay == pytest.approx(tx)


def test_backlog_bytes():
    sim = Simulator()
    port, _ = make_port(sim)
    port.send(pkt(0))
    port.send(pkt(1))
    assert port.backlog_bytes == 1500  # one on the wire, one queued
