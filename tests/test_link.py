"""Unit tests for the Port (transmitter + queue)."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.link import Port
from repro.sim.packet import Packet
from repro.sim.queues import PriorityMux
from repro.units import gbps, serialization_delay, us


class Sink:
    def __init__(self):
        self.received = []

    def receive(self, pkt):
        self.received.append(pkt)


def make_port(sim, rate=gbps(10), prop=us(5), buffer_bytes=100_000):
    sink = Sink()
    port = Port(sim, rate, prop, PriorityMux(buffer_bytes), sink, "test")
    return port, sink


def pkt(seq=0, size=1500, priority=0):
    return Packet(1, 0, 1, seq, size, priority=priority)


def test_single_packet_timing():
    sim = Simulator()
    port, sink = make_port(sim)
    port.send(pkt(size=1500))
    sim.run()
    expected = serialization_delay(1500, gbps(10)) + us(5)
    assert len(sink.received) == 1
    assert sim.now == pytest.approx(expected)


def test_back_to_back_serialization():
    sim = Simulator()
    port, sink = make_port(sim)
    for seq in range(3):
        port.send(pkt(seq))
    sim.run()
    assert [p.seq for p in sink.received] == [0, 1, 2]
    expected = 3 * serialization_delay(1500, gbps(10)) + us(5)
    assert sim.now == pytest.approx(expected)


def test_priority_overtakes_queued_packet():
    sim = Simulator()
    port, sink = make_port(sim)
    port.send(pkt(seq=0, priority=7))   # starts transmitting immediately
    port.send(pkt(seq=1, priority=7))   # queued
    port.send(pkt(seq=2, priority=0))   # higher priority, overtakes seq 1
    sim.run()
    assert [p.seq for p in sink.received] == [0, 2, 1]


def test_counters():
    sim = Simulator()
    port, _sink = make_port(sim)
    for seq in range(4):
        port.send(pkt(seq, size=1000))
    sim.run()
    assert port.pkts_sent == 4
    assert port.bytes_sent == 4000
    assert port.busy_time == pytest.approx(4 * serialization_delay(1000, gbps(10)))


def test_drop_when_queue_full():
    sim = Simulator()
    port, sink = make_port(sim, buffer_bytes=1500)
    assert port.send(pkt(0))      # immediately starts transmitting
    assert port.send(pkt(1))      # fills the buffer
    assert not port.send(pkt(2))  # dropped
    sim.run()
    assert len(sink.received) == 2


def test_queue_delay_accounting():
    sim = Simulator()
    port, sink = make_port(sim)
    first, second = pkt(0), pkt(1)
    port.send(first)
    port.send(second)
    sim.run()
    tx = serialization_delay(1500, gbps(10))
    assert first.queue_delay == pytest.approx(0.0, abs=1e-12)
    assert second.queue_delay == pytest.approx(tx)


def test_backlog_bytes():
    sim = Simulator()
    port, _ = make_port(sim)
    port.send(pkt(0))
    port.send(pkt(1))
    assert port.backlog_bytes == 1500  # one on the wire, one queued


# -- pipelined wire --------------------------------------------------------


def test_wire_holds_inflight_with_single_head_event():
    """However many packets are propagating, the heap carries exactly one
    arrival event for the link (plus the serialization event)."""
    sim = Simulator()
    # slow down propagation so several serializations complete while the
    # first packet is still on the wire
    port, sink = make_port(sim, prop=us(500))
    for i in range(4):
        port.send(pkt(seq=i))
    # drain serialization only: all four are on the wire before the
    # first arrival at 500+ us
    ser = serialization_delay(1500, gbps(10))
    sim.run(until=4 * ser + 1e-9)
    assert len(port.wire) == 4
    assert port.wire.head_event is not None
    live, _ = sim.audit_heap()
    assert live == 1                       # ONE head-arrival event only
    sim.run()
    assert [p.seq for p in sink.received] == [0, 1, 2, 3]
    assert len(port.wire) == 0
    assert port.wire.head_event is None


def test_wire_fifo_even_when_priorities_reorder_the_mux():
    """Strict priority reorders *serialization*; the wire itself is FIFO
    in departure order."""
    sim = Simulator()
    port, sink = make_port(sim, prop=us(500))
    port.send(pkt(seq=0, priority=7))     # heads straight to the wire
    port.send(pkt(seq=1, priority=7))     # queued low
    port.send(pkt(seq=2, priority=0))     # overtakes seq=1 in the mux
    sim.run()
    assert [p.seq for p in sink.received] == [0, 2, 1]


def test_flush_wire_books_fault_losses():
    sim = Simulator()
    port, sink = make_port(sim, prop=us(500))
    for i in range(3):
        port.send(pkt(seq=i))
    ser = serialization_delay(1500, gbps(10))
    sim.run(until=3 * ser + 1e-9)
    assert len(port.wire) == 3
    flushed = port.flush_wire()
    assert flushed == 3
    assert port.fault_wire_drops == 3
    assert port.fault_wire_drop_bytes == 3 * 1500
    assert len(port.wire) == 0
    sim.run()
    assert sink.received == []            # nothing survives the flush
    assert sim.live_pending == 0          # head event cancelled


def test_legacy_wire_mode_schedules_per_packet():
    sim = Simulator()
    port, sink = make_port(sim, prop=us(500))
    port.wire.pipelined = False
    for i in range(3):
        port.send(pkt(seq=i))
    ser = serialization_delay(1500, gbps(10))
    sim.run(until=3 * ser + 1e-9)
    assert len(port.wire) == 3
    live, _ = sim.audit_heap()
    assert live == 3                      # one arrival event per packet
    sim.run()
    assert [p.seq for p in sink.received] == [0, 1, 2]


def test_rate_setter_refreshes_byte_time():
    sim = Simulator()
    port, _sink = make_port(sim, rate=gbps(10))
    assert port.byte_time == 8.0 / gbps(10)
    port.rate_bps = gbps(40)
    assert port.rate_bps == gbps(40)
    assert port.byte_time == 8.0 / gbps(40)
