"""Fast smoke tests for the per-figure drivers.

The benchmarks run the figures at their calibrated default scale and
assert the paper's shapes; these tests only verify each driver executes
end-to-end at a *tiny* scale and returns well-formed rows, so a broken
driver fails in the unit suite (seconds), not just the benchmark suite
(minutes)."""

import math

import pytest

from repro.experiments import figures


def assert_rows(result, required_keys):
    assert result["rows"], "driver returned no rows"
    for row in result["rows"]:
        for key in required_keys:
            assert key in row, f"missing column {key}"
            value = row[key]
            if isinstance(value, float):
                assert not math.isnan(value) or key.startswith("large"), key


def test_fig01_smoke():
    result = figures.fig01_link_utilization(n_flows=20)
    assert_rows(result, ["scheme", "avg_utilization"])
    assert len(result["series"]["dctcp"]) > 0


def test_fig02_smoke():
    result = figures.fig02_hypothetical(n_flows=20)
    assert_rows(result, ["scheme", "overall_avg_ms"])
    assert len(result["rows"]) == 4


def test_fig03_smoke():
    result = figures.fig03_fill_factor(factors=(1.0,), n_flows=15)
    assert_rows(result, ["fill_factor", "overall_avg_ms"])


def test_fig08_smoke():
    result = figures.fig08_09_testbed_15to15("web-search", loads=(0.4,),
                                             n_flows=15)
    assert_rows(result, ["scheme", "overall_avg_ms", "load"])
    assert len(result["rows"]) == 4


def test_fig10_smoke():
    result = figures.fig10_11_testbed_14to1("data-mining", n_flows=15)
    assert_rows(result, ["scheme", "overall_avg_ms"])


def test_fig12_smoke():
    result = figures.fig12_13_largescale("web-search", n_flows=20)
    assert_rows(result, ["scheme", "overall_avg_ms", "small_p99_ms"])
    assert len(result["rows"]) == 6


def test_fig14_smoke():
    result = figures.fig14_delay_based(n_flows=15)
    names = {row["scheme"] for row in result["rows"]}
    assert names == {"swift", "ppt-swift"}


def test_fig15_18_smoke():
    for fn in (figures.fig15_ablation_lcp_ecn, figures.fig16_ablation_ewd,
               figures.fig17_ablation_scheduling,
               figures.fig18_ablation_identification):
        result = fn(n_flows=15)
        assert len(result["rows"]) == 2


def test_fig19_smoke():
    result = figures.fig19_cpu_overhead(loads=(0.4,), n_flows=15)
    assert_rows(result, ["load", "dctcp_cpu_pct", "ppt_cpu_pct", "gap_pct"])


def test_fig21_smoke():
    result = figures.fig21_memcached(n_flows=400)
    assert len(result["rows"]) == 6


def test_fig23_smoke():
    result = figures.fig23_incast_sweep(ratios=(4,), n_flows=20)
    assert_rows(result, ["scheme", "incast_ratio", "overall_avg_ms"])


def test_fig24_smoke():
    result = figures.fig24_rc3_lp_buffer(fractions=(0.5,), n_flows=20)
    schemes = [row["scheme"] for row in result["rows"]]
    assert schemes.count("rc3") == 1 and "ppt" in schemes


def test_fig25_smoke():
    result = figures.fig25_pias_hpcc(n_flows=20)
    assert {r["scheme"] for r in result["rows"]} == {"hpcc", "pias", "ppt"}


def test_fig27_smoke():
    result = figures.fig27_send_buffer(sizes=(128_000,), n_flows=20)
    assert result["rows"][0]["send_buffer"] == 128_000


def test_fig28_smoke():
    result = figures.fig28_buffer_occupancy(fractions=(0.6,), n_flows=20)
    assert_rows(result, ["scheme", "avg_total_bytes", "low_share"])


def test_fig29_smoke():
    result = figures.fig29_transfer_efficiency(fractions=(0.6,), n_flows=20)
    assert_rows(result, ["scheme", "overall_efficiency"])


def test_sec41_smoke():
    result = figures.sec41_identification_accuracy(n_messages=500)
    assert 0.0 <= result["memcached"] <= 1.0
    assert 0.0 <= result["web"] <= 1.0
