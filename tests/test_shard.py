"""Sharded execution: partition planning, the conservative-lookahead
window protocol, deterministic merge, and the CLI surface.

The headline gates: ``--shards 1`` is bit-identical to the plain serial
runner on any scenario, and 2-/4-way sharded runs of the
collision-audited gate scenario merge to per-flow FCTs bit-identical to
the serial oracle (see docs/sharding.md for the determinism contract).
"""

import pickle

import pytest

import repro.experiments.distributed as distributed
from repro.experiments.distributed import ShardError, run_sharded
from repro.experiments.runner import run
from repro.experiments.scenarios import (
    SIM_PFC,
    all_to_all_scenario,
    shard_gate_scenario,
    sim_fabric,
)
from repro.faults import FaultPlan, LinkDown
from repro.sim.hybrid import HybridConfig
from repro.sim.shard import boundary_ports, plan_shards
from repro.sim.topology import leaf_spine, star
from repro.transport.dctcp import Dctcp
from repro.units import us
from repro.workloads.distributions import WEB_SEARCH


def tiny_scenario(seed=7, **kwargs):
    return all_to_all_scenario(
        f"shard-tiny-{seed}", WEB_SEARCH, load=0.3, n_flows=10,
        size_cap=200_000, seed=seed,
        fabric=sim_fabric(n_leaf=2, n_spine=2, hosts_per_leaf=2,
                          prop_delay=us(50)),
        **kwargs)


def fcts_of(flows):
    return {f.flow_id: f.fct for f in flows if f.completed}


# ---------------------------------------------------------------------------
# partition planning
# ---------------------------------------------------------------------------


def test_plan_single_shard_accepts_any_topology():
    topo = star(4)
    plan = plan_shards(topo, 1)
    assert plan.n_shards == 1
    assert plan.lookahead == 0.0
    assert set(plan.shard_of_host.values()) == {0}


def test_plan_requires_partition_metadata():
    with pytest.raises(ValueError, match="partition metadata"):
        plan_shards(star(4), 2)


def test_plan_rejects_more_shards_than_leaves():
    topo = leaf_spine(n_leaf=2, n_spine=2, hosts_per_leaf=2)
    with pytest.raises(ValueError):
        plan_shards(topo, 3)


def test_plan_rejects_nonpositive_shard_count():
    with pytest.raises(ValueError):
        plan_shards(leaf_spine(n_leaf=2, n_spine=2, hosts_per_leaf=2), 0)


def test_plan_round_robin_with_hosts_following_leaves():
    topo = leaf_spine(n_leaf=4, n_spine=2, hosts_per_leaf=4,
                      prop_delay=us(50))
    plan = plan_shards(topo, 2)
    leaf_shards = [plan.shard_of_switch[s] for s in topo.leaf_switch_ids]
    assert leaf_shards == [0, 1, 0, 1]
    for host_id, leaf_index in topo.host_leaf.items():
        assert plan.shard_of_host[host_id] == leaf_shards[leaf_index]
    # lookahead is the min boundary propagation delay
    assert plan.lookahead == us(50)
    # the boundary is exclusively leaf<->spine: hosts ride their leaf
    switch_ids = set(topo.leaf_switch_ids) | set(topo.spine_switch_ids)
    for port, owner, peer in boundary_ports(topo.network, plan):
        assert owner != peer
        assert "host" not in port.name


# ---------------------------------------------------------------------------
# determinism gates
# ---------------------------------------------------------------------------


def test_one_shard_bit_identical_to_serial():
    serial = run(Dctcp(), tiny_scenario())
    sharded = run_sharded(Dctcp(), tiny_scenario(), 1)
    assert fcts_of(sharded.flows) == fcts_of(serial.flows)
    assert sharded.health.completed == serial.health.completed
    assert sharded.stats == serial.stats


def test_two_and_four_shards_bit_identical_to_serial_oracle():
    serial = run(Dctcp(), shard_gate_scenario())
    oracle = fcts_of(serial.flows)
    assert serial.health.completed == serial.health.n_flows
    for n_shards in (2, 4):
        sharded = run_sharded(Dctcp(), shard_gate_scenario(), n_shards)
        assert fcts_of(sharded.flows) == oracle, f"{n_shards}-shard diverged"
        assert sharded.stats == serial.stats
        assert sharded.plan.n_shards == n_shards


def test_sharded_merge_is_deterministic_across_repeats():
    a = run_sharded(Dctcp(), shard_gate_scenario(), 2)
    b = run_sharded(Dctcp(), shard_gate_scenario(), 2)
    assert fcts_of(a.flows) == fcts_of(b.flows)
    assert a.health.events_run == b.health.events_run
    assert [s.rounds for s in a.shards] == [s.rounds for s in b.shards]


# ---------------------------------------------------------------------------
# conservation + validation
# ---------------------------------------------------------------------------


def test_handoff_conservation_closes_and_validation_is_clean():
    result = run_sharded(Dctcp(), shard_gate_scenario(), 2, validate=True)
    assert result.conservation_ok
    report = result.summary.validation
    assert report is not None and report.ok
    # the pairwise ledgers close globally, not just in aggregate
    for a in result.shards:
        for b_id, sent in a.ledger["exported_to"].items():
            received = result.shards[b_id].ledger["imported_from"][a.shard_id]
            assert list(sent) == list(received)
    # something actually crossed the boundary, or the gate is vacuous
    total_exported = sum(s.ledger["exported_pkts"] for s in result.shards)
    assert total_exported > 0


def test_per_shard_telemetry_combines():
    result = run_sharded(Dctcp(), shard_gate_scenario(), 2, observe=True)
    telemetry = result.summary.telemetry
    assert telemetry is not None
    assert telemetry.flows_completed == result.health.completed
    parts = [s.telemetry for s in result.shards]
    assert all(p is not None for p in parts)
    assert telemetry.flows_completed == sum(p.flows_completed for p in parts)


# ---------------------------------------------------------------------------
# unsupported combinations + failure surfaces
# ---------------------------------------------------------------------------


def test_faulted_scenario_rejected():
    plan = FaultPlan([LinkDown("leaf0->spine0", 0.001, 0.002)])
    with pytest.raises(ValueError, match="fault"):
        run_sharded(Dctcp(), tiny_scenario(faults=plan), 2)


def test_hybrid_scenario_rejected():
    scenario = tiny_scenario(hybrid=HybridConfig(size_threshold=100_000))
    with pytest.raises(ValueError, match="hybrid"):
        run_sharded(Dctcp(), scenario, 2)


def test_pfc_scenario_rejected():
    scenario = tiny_scenario(pfc=True, pfc_config=SIM_PFC)
    with pytest.raises(ValueError, match="PFC"):
        run_sharded(Dctcp(), scenario, 2)


def test_multi_shard_requires_fork(monkeypatch):
    monkeypatch.setattr(distributed, "_fork_available", lambda: False)
    with pytest.raises(RuntimeError, match="fork"):
        run_sharded(Dctcp(), tiny_scenario(), 2)
    # the in-process single-shard path keeps working without fork
    result = run_sharded(Dctcp(), tiny_scenario(), 1)
    assert result.health.completed == result.summary.n_flows


def test_shard_error_pickles_with_context():
    err = ShardError(3, "ValueError('boom')", "trace...")
    clone = pickle.loads(pickle.dumps(err))
    assert clone.shard_id == 3
    assert clone.cause == "ValueError('boom')"
    assert "shard 3" in str(clone)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


def test_cli_shards_smoke(capsys):
    from repro.cli import main
    assert main(["run", "--schemes", "dctcp", "--flows", "12",
                 "--load", "0.3", "--shards", "2", "--validate"]) == 0
    out = capsys.readouterr().out
    assert "12/12" in out


def test_cli_shards_guards():
    from repro.cli import main
    base = ["run", "--schemes", "dctcp", "--flows", "8"]
    assert main(base + ["--shards", "2", "--jobs", "2"]) == 2
    assert main(base + ["--shards", "2", "--trace-out", "/tmp/x.jsonl"]) == 2
    assert main(base + ["--shards", "0"]) == 2
    # unsupported feature combos surface as exit 2, not tracebacks
    assert main(base + ["--shards", "2", "--hybrid"]) == 2
    assert main(base + ["--shards", "2", "--pfc"]) == 2
    assert main(base + ["--shards", "2",
                        "--fault", "down:leaf0->spine0:0.001:0.002"]) == 2
