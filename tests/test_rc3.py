"""Tests for RC3's dual-loop behaviour."""

import pytest

from conftest import make_ctx, make_star, run_single_flow
from repro.transport.base import Flow
from repro.transport.rc3 import Rc3, Rc3Sender, rc3_priority


def test_priority_levels_from_tail():
    assert rc3_priority(0) == 5
    assert rc3_priority(39) == 5
    assert rc3_priority(40) == 6
    assert rc3_priority(439) == 6
    assert rc3_priority(440) == 7
    assert rc3_priority(10**6) == 7


def test_lp_loop_sends_from_tail():
    topo = make_star()
    ctx = make_ctx(topo)
    flow = Flow(0, 0, 1, 300_000, 0.0)
    scheme = Rc3()
    scheme.start_flow(flow, ctx)
    topo.sim.run(until=20e-6)  # within the first RTT
    sender = topo.network.hosts[0].endpoints[0]
    assert sender.lp_sent > 0
    # LP packets were taken from the high end of the sequence space
    # (the very last seqs may already be ACKed after one RTT)
    if sender.lp_outstanding:
        assert max(sender.lp_outstanding) > sender.n_packets * 0.8


def test_lp_packets_not_ecn_capable_and_low_priority():
    topo = make_star()
    ctx = make_ctx(topo)
    sender = Rc3Sender(Flow(0, 0, 1, 300_000, 0.0), ctx)

    class FakePort:
        def __init__(self):
            self.sent = []

        def send(self, pkt):
            self.sent.append(pkt)
            return True

    fake = FakePort()
    sender.host.uplink = fake  # capture instead of transmitting
    sender._lp_transmit(100)
    (pkt,) = fake.sent
    assert pkt.lcp
    assert not pkt.ecn_capable
    assert pkt.priority >= 5


def test_lp_attempts_each_packet_once():
    """The descending pointer never revisits a sequence number."""
    topo = make_star()
    ctx = make_ctx(topo)
    flow = Flow(0, 0, 1, 500_000, 0.0)
    scheme = Rc3()
    scheme.start_flow(flow, ctx)
    topo.sim.run(until=1.0)
    sender = topo.network.hosts[0].endpoints[0]
    # every LP transmission had a distinct seq: lp_sent can exceed the
    # flow length only through the primary loop, never the LP loop
    assert sender.lp_sent <= sender.n_packets


def test_loops_cross_and_lp_stops():
    flow, ctx, topo = run_single_flow(Rc3(), 200_000, until=2.0)
    assert flow.completed
    sender = topo.network.hosts[0].endpoints[0]
    assert sender.lp_crossed or sender.finished


def test_lp_speeds_up_solo_flow():
    """On an idle network the LP loop fills the slow-start gap, so RC3
    should beat plain DCTCP for a BDP-scale flow."""
    from repro.transport.dctcp import Dctcp
    f_dctcp, _, _ = run_single_flow(Dctcp(), 120_000)
    f_rc3, _, _ = run_single_flow(Rc3(), 120_000)
    assert f_rc3.fct < f_dctcp.fct


def test_completion_possible_via_lp_only_acks():
    flow, ctx, topo = run_single_flow(Rc3(), 80_000, until=1.0)
    assert flow.completed


def test_large_flow_completes():
    flow, ctx, _ = run_single_flow(Rc3(), 3_000_000, until=5.0)
    assert flow.completed
