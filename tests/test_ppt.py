"""Integration tests for the assembled PPT transport."""

import pytest

from conftest import make_ctx, make_star, run_single_flow
from repro.core.ppt import Ppt, PptReceiver, PptSender
from repro.sim.packet import DATA, Packet
from repro.transport.base import Flow
from repro.transport.dctcp import Dctcp


def test_flow_completes():
    flow, ctx, _ = run_single_flow(Ppt(), 500_000, until=2.0)
    assert flow.completed


def test_solo_bdp_flow_beats_dctcp():
    """The case-1 LCP loop fills the slow-start gap: a ~BDP-sized flow
    finishes in ~2 RTTs instead of several."""
    f_dctcp, _, _ = run_single_flow(Dctcp(), 80_000)
    f_ppt, _, _ = run_single_flow(Ppt(), 80_000)
    assert f_ppt.fct < f_dctcp.fct * 0.8


def test_large_flow_identified_and_tagged_low():
    flow, ctx, topo = run_single_flow(Ppt(), 5_000_000, until=5.0)
    sender = topo.network.hosts[0].endpoints[0]
    assert sender.identified_large
    assert sender.priority_for(0) == 3


def test_small_flow_unidentified_and_tagged_high():
    flow, ctx, topo = run_single_flow(Ppt(), 50_000)
    sender = topo.network.hosts[0].endpoints[0]
    assert not sender.identified_large
    assert sender.priority_for(0) == 0


def test_scheduling_off_uses_single_priority():
    flow, ctx, topo = run_single_flow(Ppt(scheduling=False), 5_000_000,
                                      until=5.0)
    sender = topo.network.hosts[0].endpoints[0]
    assert sender.priority_for(0) == 0
    assert sender.priority_for(sender.n_packets - 1) == 0


def test_identification_off_treats_all_as_unidentified():
    flow, ctx, topo = run_single_flow(Ppt(identification=False), 5_000_000,
                                      until=5.0)
    sender = topo.network.hosts[0].endpoints[0]
    assert not sender.identified_large
    assert sender.priority_for(0) == 0  # starts at the top, ages down


def test_receiver_two_to_one_lp_acks():
    topo = make_star()
    ctx = make_ctx(topo)
    flow = Flow(0, 0, 1, 200_000, 0.0)
    receiver = PptReceiver(flow, ctx)
    for seq in (100, 101, 102):
        pkt = Packet(0, 0, 1, seq, 1500)
        pkt.lcp = True
        receiver.on_packet(pkt)
    assert receiver.lp_pkts_received == 3
    assert receiver.lp_acks_sent == 1  # one ACK per two LP packets


def test_lp_ack_carries_sack_for_both_packets():
    topo = make_star()
    ctx = make_ctx(topo)
    flow = Flow(0, 0, 1, 200_000, 0.0)
    receiver = PptReceiver(flow, ctx)
    captured = []
    ctx.network.send_control = captured.append
    for seq in (50, 51):
        pkt = Packet(0, 0, 1, seq, 1500)
        pkt.lcp = True
        receiver.on_packet(pkt)
    (ack,) = captured
    assert ack.lcp
    assert set(ack.sack) == {50, 51}
    assert ack.priority == 7


def test_lp_ack_ece_if_either_marked():
    topo = make_star()
    ctx = make_ctx(topo)
    receiver = PptReceiver(Flow(0, 0, 1, 200_000, 0.0), ctx)
    captured = []
    ctx.network.send_control = captured.append
    first = Packet(0, 0, 1, 60, 1500)
    first.lcp = True
    first.ecn_ce = True
    second = Packet(0, 0, 1, 61, 1500)
    second.lcp = True
    receiver.on_packet(first)
    receiver.on_packet(second)
    assert captured[0].ecn_ce


def test_completion_via_mixed_hcp_lcp_delivery():
    """Completion counts unique packets regardless of which loop
    delivered them."""
    flow, ctx, topo = run_single_flow(Ppt(), 150_000, until=1.0)
    assert flow.completed
    receiver = topo.network.hosts[1].endpoints[0]
    assert receiver.lp_pkts_received > 0          # LCP contributed
    assert receiver.data_pkts_received >= receiver.n_packets


def test_hcp_packets_ride_p0_to_p3_lcp_p4_to_p7():
    seen = {"hcp": set(), "lcp": set()}
    flow, ctx, topo = run_single_flow(Ppt(), 500_000, until=2.0)
    sender = topo.network.hosts[0].endpoints[0]
    for seq in range(sender.n_packets):
        seen["hcp"].add(sender.priority_for(seq))
    assert seen["hcp"] <= {0, 1, 2, 3}


def test_ablated_names():
    assert Ppt().name == "ppt"
    assert Ppt(lcp_ecn=False).name == "ppt-noecn"
    assert Ppt(ewd=False).name == "ppt-noewd"
    assert Ppt(scheduling=False).name == "ppt-nosched"
    assert Ppt(identification=False).name == "ppt-noident"
    assert Ppt(lcp_enabled=False).name == "ppt-nolcp"


def test_nolcp_never_opens_loops():
    flow, ctx, topo = run_single_flow(Ppt(lcp_enabled=False), 300_000,
                                      until=2.0)
    sender = topo.network.hosts[0].endpoints[0]
    assert sender.lcp.loops_opened == 0
    assert flow.completed


def test_small_flows_protected_under_large_flow_contention():
    """One elephant + one mouse to the same receiver: the mouse's FCT
    under PPT must be far below the elephant's and close to its solo
    time (scheduling isolates it)."""
    topo = make_star(3)
    ctx = make_ctx(topo)
    scheme = Ppt()
    elephant = Flow(0, 0, 2, 4_000_000, 0.0)
    mouse = Flow(1, 1, 2, 30_000, 100e-6)  # arrives mid-elephant
    scheme.start_flow(elephant, ctx)
    topo.sim.schedule_at(mouse.start_time, scheme.start_flow, mouse, ctx)
    topo.sim.run(until=5.0)
    assert elephant.completed and mouse.completed
    solo_mouse, _, _ = run_single_flow(Ppt(), 30_000)
    assert mouse.fct < 5 * solo_mouse.fct
    assert mouse.fct < elephant.fct / 5


def test_deterministic_repeat():
    f1, _, _ = run_single_flow(Ppt(), 500_000, until=2.0)
    f2, _, _ = run_single_flow(Ppt(), 500_000, until=2.0)
    assert f1.fct == f2.fct
