"""Tests for the NDP trimming + pull transport."""

import pytest

from conftest import make_ctx, make_leaf_spine, make_star, run_single_flow
from repro.transport.base import Flow
from repro.transport.ndp import NDP_QUEUE_PACKETS, Ndp


def test_configure_network_trims_and_sprays():
    scheme = Ndp()
    topo = make_leaf_spine()
    scheme.configure_network(topo.network)
    assert all(sw.spray for sw in topo.network.switches)
    host_uplinks = {h.uplink for h in topo.network.hosts.values()}
    for port in topo.network.ports:
        if port in host_uplinks:
            assert not port.mux.trim  # NIC queues untouched
        else:
            assert port.mux.trim
            assert port.mux.trim_threshold_bytes == NDP_QUEUE_PACKETS * 1500


def test_solo_flow_near_optimal():
    scheme = Ndp()
    topo = make_star()
    flow, ctx, topo = run_single_flow(scheme, 500_000, topo=topo, until=1.0)
    assert flow.completed
    ideal = 500_000 * 8 / topo.edge_rate
    assert flow.fct < 3 * ideal


def test_first_window_unsolicited_then_pull_clocked():
    scheme = Ndp(rtt_bytes=15_000)  # 10-packet first window
    topo = make_star()
    ctx = make_ctx(topo)
    scheme.configure_network(topo.network)
    flow = Flow(0, 0, 1, 300_000, 0.0)
    scheme.start_flow(flow, ctx)
    sender = topo.network.hosts[0].endpoints[0]
    assert sender.next_seq == 10  # only the first window left unsolicited
    topo.sim.run(until=1.0)
    assert flow.completed


def test_trimming_recovers_incast_burst():
    """Several senders blast their first windows: trimmed packets must be
    re-pulled and all flows finish."""
    scheme = Ndp()
    topo = make_star(5)
    scheme.configure_network(topo.network)
    ctx = make_ctx(topo)
    flows = [Flow(i, i, 4, 150_000, 0.0) for i in range(4)]
    for f in flows:
        scheme.start_flow(f, ctx)
    topo.sim.run(until=2.0)
    assert all(f.completed for f in flows)
    trimmed = sum(p.mux.stats.trimmed for p in topo.network.ports)
    assert trimmed > 0  # the experiment actually exercised trimming


def test_pull_pacer_clocks_at_line_rate():
    """Aggregate arrival rate at the receiver approximates its link rate
    while the pull queue is busy."""
    scheme = Ndp()
    topo = make_star(4)
    scheme.configure_network(topo.network)
    ctx = make_ctx(topo)
    flows = [Flow(i, i, 3, 400_000, 0.0) for i in range(3)]
    for f in flows:
        scheme.start_flow(f, ctx)
    topo.sim.run(until=2.0)
    assert all(f.completed for f in flows)
    last = max(f.finish_time for f in flows)
    ideal = 3 * 400_000 * 8 / topo.edge_rate
    assert last < 3 * ideal


def test_receiver_rtx_timer_recovers_silent_loss():
    """Even if data and headers vanish, the receiver-side RTX timer
    re-pulls the holes."""
    scheme = Ndp()
    topo = make_star(3)
    scheme.configure_network(topo.network)
    ctx = make_ctx(topo, min_rto=0.5e-3)
    flow = Flow(0, 0, 2, 100_000, 0.0)
    scheme.start_flow(flow, ctx)
    # sabotage: black-hole the receiver downlink (even headers are
    # dropped) for the first 30us, then restore it
    downlink = topo.network.port_to_host(2)
    real_buffer = downlink.mux.buffer_bytes
    downlink.mux.buffer_bytes = 0

    def restore():
        downlink.mux.buffer_bytes = real_buffer

    topo.sim.schedule(30e-6, restore)
    topo.sim.run(until=1.0)
    assert downlink.mux.stats.dropped > 0
    assert flow.completed


def test_spray_distributes_packets_across_spines():
    scheme = Ndp()
    topo = make_leaf_spine(n_spine=2)
    scheme.configure_network(topo.network)
    ctx = make_ctx(topo)
    flow = Flow(0, 0, 3, 500_000, 0.0)  # cross-leaf
    scheme.start_flow(flow, ctx)
    topo.sim.run(until=1.0)
    assert flow.completed
    spine_ports = [p for p in topo.network.ports
                   if p.name.startswith("leaf0->spine")]
    counts = [p.pkts_sent for p in spine_ports]
    assert all(c > 0 for c in counts)
    assert max(counts) < 2 * min(counts) + 10  # roughly balanced
