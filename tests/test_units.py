"""Tests for unit helpers."""

import pytest

from repro.units import (
    bdp_bytes,
    bdp_packets,
    ecn_threshold_bytes,
    gbps,
    kb,
    mb,
    mbps,
    ms,
    ns,
    serialization_delay,
    us,
)


def test_time_helpers():
    assert ms(1) == pytest.approx(1e-3)
    assert us(1) == pytest.approx(1e-6)
    assert ns(1) == pytest.approx(1e-9)


def test_size_helpers():
    assert kb(1.5) == 1500
    assert mb(2) == 2_000_000


def test_rate_helpers():
    assert gbps(40) == 40e9
    assert mbps(100) == 100e6


def test_serialization_delay():
    # 1500 bytes at 10 Gbps = 1.2 us
    assert serialization_delay(1500, gbps(10)) == pytest.approx(1.2e-6)


def test_bdp():
    # 40 Gbps * 20us = 100KB (integer truncation of the float product)
    assert bdp_bytes(gbps(40), us(20)) in (99_999, 100_000)
    assert bdp_packets(gbps(40), us(20), 1500) == 66


def test_bdp_packets_at_least_one():
    assert bdp_packets(gbps(1), ns(1), 1500) == 1


def test_ecn_threshold_eq3():
    # K = lambda * C * RTT: 0.17 * 10G * 80us / 8 = 17KB
    assert ecn_threshold_bytes(0.17, gbps(10), us(80)) == 17_000
