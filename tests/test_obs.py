"""Tests for the unified run telemetry subsystem (repro.obs)."""

import pickle

import pytest

from conftest import quick_qcfg
from repro.experiments.parallel import GridTask, run_grid
from repro.experiments.runner import run
from repro.experiments.scenarios import incast_scenario
from repro.faults import FaultPlan, LinkDown
from repro.obs import (
    DROP,
    FAULT_DOWN,
    FAULT_UP,
    FLOW_COMPLETE,
    FLOW_START,
    MARK,
    Telemetry,
    TelemetrySummary,
    TraceEvent,
    chain,
    load_jsonl,
)
from repro.sim.topology import dumbbell
from repro.sim.trace import DropTracer
from repro.transport.base import Flow, TransportConfig
from repro.transport.dctcp import Dctcp
from repro.units import gbps, us
from repro.workloads.distributions import WEB_SEARCH


def incast(seed=3, **kwargs):
    params = dict(n_senders=8, n_flows=24, seed=seed)
    params.update(kwargs)
    return incast_scenario("obs-incast", WEB_SEARCH, **params)


def blackout_scenario(max_time=2.0):
    """One large flow through a 10G dumbbell with a mid-flow blackout."""

    def build_topology():
        return dumbbell(rate=gbps(10), prop_delay=us(5), qcfg=quick_qcfg())

    def build_flows(topo):
        return [Flow(0, 0, 1, 300_000, 0.0)]

    plan = FaultPlan([LinkDown("sw0->sw1", 0.0002, 0.002)])
    return Scenario_("obs-fault", build_topology, build_flows,
                     max_time=max_time, faults=plan)


def Scenario_(name, build_topology, build_flows, **kwargs):
    from repro.experiments.runner import Scenario
    kwargs.setdefault("config", TransportConfig(min_rto=1e-3))
    return Scenario(name, build_topology, build_flows, **kwargs)


# -- chain() ---------------------------------------------------------------


def test_chain_identities():
    fn = lambda pkt: None
    assert chain(None, fn) is fn
    assert chain(fn, None) is fn
    assert chain(None, None) is None


def test_chain_calls_in_attach_order():
    calls = []
    chained = chain(lambda x: calls.append(("a", x)),
                    lambda x: calls.append(("b", x)))
    chained(7)
    assert calls == [("a", 7), ("b", 7)]


def test_chain_composes_three():
    calls = []
    fn = None
    for tag in "abc":
        fn = chain(fn, lambda x, tag=tag: calls.append(tag))
    fn(0)
    assert calls == ["a", "b", "c"]


# -- TraceEvent / ring buffer ----------------------------------------------


def test_trace_event_dict_round_trip():
    event = TraceEvent(1.5e-3, DROP, port="leaf0->spine1", flow_id=3,
                       seq=17, priority=2)
    back = TraceEvent.from_dict(event.to_dict())
    for name in TraceEvent.__slots__:
        assert getattr(back, name) == getattr(event, name)


def test_trace_event_omits_defaults():
    assert TraceEvent(0.0, FLOW_START, flow_id=1).to_dict() == {
        "t": 0.0, "kind": FLOW_START, "flow": 1}


def test_ring_buffer_bounds_memory_but_counts_everything():
    telem = Telemetry(capacity=4)
    for i in range(10):
        telem.record(DROP, float(i), flow_id=i)
    assert len(telem) == 4
    assert telem.events_seen == 10
    assert telem.counts[DROP] == 10
    assert [e.flow_id for e in telem.iter_events()] == [6, 7, 8, 9]
    summary = telem.summary()
    assert summary.events_seen == 10
    assert summary.events_kept == 4
    assert "kept 4/10" in summary.describe()


def test_bad_capacity_rejected():
    with pytest.raises(ValueError):
        Telemetry(capacity=0)


def test_telemetry_is_single_run():
    scenario = incast()
    telem = run(Dctcp(), scenario, observe=True).telemetry
    with pytest.raises(RuntimeError):
        run(Dctcp(), incast(), observe=telem)


# -- equivalence: observed runs change nothing -----------------------------


def test_observed_run_is_bit_identical():
    bare = run(Dctcp(), incast())
    observed = run(Dctcp(), incast(), observe=True)
    assert observed.stats == bare.stats
    assert observed.wall_events == bare.wall_events
    assert [f.fct for f in observed.flows] == [f.fct for f in bare.flows]
    assert bare.telemetry is None
    assert observed.telemetry is not None


def test_observe_flag_forms():
    assert run(Dctcp(), incast(), observe=False).telemetry is None
    telem = Telemetry(capacity=128)
    assert run(Dctcp(), incast(), observe=telem).telemetry is telem
    with pytest.raises(TypeError):
        run(Dctcp(), incast(), observe="yes")


# -- summary vs. the simulator's own counters ------------------------------


def test_summary_matches_network_counters():
    result = run(Dctcp(), incast(), observe=True)
    telem = result.telemetry
    summary = telem.summary()
    network = result.topology.network
    assert summary.drops == network.total_drops()
    assert summary.marks == network.total_marked()
    assert summary.retransmits == result.health.retransmits_total
    assert summary.rtos == result.health.rtos_total
    assert summary.flows_started == len(result.flows)
    assert summary.flows_completed == result.completed
    # the trace saw every drop/mark the counters saw (no overflow here)
    assert summary.counts.get(DROP, 0) == summary.drops
    assert summary.counts.get(MARK, 0) == summary.marks
    assert summary.events_seen == summary.events_kept


def test_flow_counters_harvested():
    result = run(Dctcp(), incast(), observe=True)
    counters = result.telemetry.flow_counters
    assert set(counters) == {f.flow_id for f in result.flows}
    assert all(c["completed"] for c in counters.values())
    assert sum(c["retransmits"] for c in counters.values()) \
        == result.health.retransmits_total


def test_profile_feeds_events_per_sec():
    result = run(Dctcp(), incast(), observe=True)
    summary = result.telemetry.summary()
    assert summary.slices == len(result.telemetry.profile) > 0
    assert summary.sim_events == result.wall_events
    assert summary.wall_seconds > 0.0
    assert summary.events_per_sec > 0.0


def test_fault_transitions_traced():
    result = run(Dctcp(), blackout_scenario(), observe=True)
    telem = result.telemetry
    downs = list(telem.iter_events(FAULT_DOWN))
    ups = list(telem.iter_events(FAULT_UP))
    assert len(downs) == len(ups) == 1
    assert downs[0].port == "sw0->sw1"
    assert downs[0].time == pytest.approx(0.0002)
    assert ups[0].time == pytest.approx(0.0022)
    assert result.health.ok
    # under faults, the rollup still agrees with the simulator's counters
    summary = telem.summary()
    assert summary.drops == result.topology.network.total_drops()
    assert summary.retransmits == result.health.retransmits_total > 0
    assert summary.rtos == result.health.rtos_total


def test_flow_lifecycle_traced_in_order():
    result = run(Dctcp(), incast(), observe=True)
    telem = result.telemetry
    starts = list(telem.iter_events(FLOW_START))
    completes = list(telem.iter_events(FLOW_COMPLETE))
    assert len(starts) == len(completes) == len(result.flows)
    times = [e.time for e in telem.iter_events()]
    assert times == sorted(times)  # trace is in simulated-time order


# -- coexistence with the legacy tracers -----------------------------------


def test_drop_tracer_and_telemetry_chain():
    scenario = incast()
    topo = scenario.build_topology()
    tracer = DropTracer.attach(topo.network)  # legacy hook consumer first
    telem = Telemetry().attach(topo.sim, topo.network)

    flows = scenario.build_flows(topo)
    scheme = Dctcp()
    scheme.configure_network(topo.network)
    from repro.transport.base import TransportContext
    ctx = TransportContext(topo.sim, topo.network, scenario.config)
    for flow in flows:
        topo.sim.schedule_at(flow.start_time, lambda f=flow:
                             scheme.start_flow(f, ctx))
    topo.sim.run(until=scenario.max_time)
    # chaining: both consumers saw every drop the counters saw
    assert len(tracer) == topo.network.total_drops() > 0
    assert telem.counts.get(DROP, 0) == topo.network.total_drops()


# -- JSONL persistence -----------------------------------------------------


def test_jsonl_round_trip(tmp_path):
    result = run(Dctcp(), incast(), observe=True)
    telem = result.telemetry
    path = tmp_path / "trace.jsonl"
    written = telem.export_jsonl(path)
    assert written == len(telem)
    loaded = load_jsonl(path)
    assert len(loaded) == written
    for original, back in zip(telem.iter_events(), loaded):
        for name in TraceEvent.__slots__:
            assert getattr(back, name) == getattr(original, name)


# -- parallel / pickling ---------------------------------------------------


def test_telemetry_summary_pickles():
    summary = run(Dctcp(), incast(), observe=True).telemetry.summary()
    clone = pickle.loads(pickle.dumps(summary))
    assert clone == summary


def test_grid_task_observe_round_trips_summary():
    import dataclasses
    serial = run(Dctcp(), incast(), observe=True).telemetry.summary()
    tasks = [GridTask(scheme_factory=Dctcp, scenario_factory=incast,
                      label="obs", observe=True)]
    for jobs in (1, 2):
        [summary] = run_grid(tasks, jobs=jobs)
        # everything except wall-clock timing is deterministic
        assert dataclasses.replace(summary.telemetry, wall_seconds=0.0) \
            == dataclasses.replace(serial, wall_seconds=0.0)
    [plain] = run_grid([GridTask(scheme_factory=Dctcp,
                                 scenario_factory=incast, label="bare")])
    assert plain.telemetry is None


def test_summary_combine():
    a = run(Dctcp(), incast(seed=3), observe=True).telemetry.summary()
    b = run(Dctcp(), incast(seed=4), observe=True).telemetry.summary()
    total = TelemetrySummary.combine([a, b])
    assert total.drops == a.drops + b.drops
    assert total.marks == a.marks + b.marks
    assert total.flows_completed == a.flows_completed + b.flows_completed
    assert total.sim_events == a.sim_events + b.sim_events
    assert total.counts.get(FLOW_COMPLETE, 0) \
        == a.counts.get(FLOW_COMPLETE, 0) + b.counts.get(FLOW_COMPLETE, 0)


def test_summary_combine_many_disjoint_and_overlapping_counts():
    a = TelemetrySummary(events_seen=1, counts={"drop": 2, "mark": 1},
                         drops=2, marks=1, peak_pending=5)
    b = TelemetrySummary(events_seen=2, counts={"mark": 4, "pause": 3},
                         marks=4, peak_pending=9)
    c = TelemetrySummary(events_seen=3, counts={"trim": 7}, trims=7,
                         peak_pending=1)
    total = TelemetrySummary.combine([a, b, c])
    # overlapping keys add; disjoint keys survive untouched
    assert total.counts == {"drop": 2, "mark": 5, "pause": 3, "trim": 7}
    assert total.events_seen == 6
    assert total.drops == 2 and total.marks == 5 and total.trims == 7
    # peak_pending is a high-water mark, not a sum
    assert total.peak_pending == 9
    # order-independent
    assert TelemetrySummary.combine([c, b, a]) == total
